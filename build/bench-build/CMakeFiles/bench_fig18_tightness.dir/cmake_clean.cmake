file(REMOVE_RECURSE
  "../bench/bench_fig18_tightness"
  "../bench/bench_fig18_tightness.pdb"
  "CMakeFiles/bench_fig18_tightness.dir/bench_fig18_tightness.cc.o"
  "CMakeFiles/bench_fig18_tightness.dir/bench_fig18_tightness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
