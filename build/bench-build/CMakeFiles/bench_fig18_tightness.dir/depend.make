# Empty dependencies file for bench_fig18_tightness.
# This may be replaced when dependencies are built.
