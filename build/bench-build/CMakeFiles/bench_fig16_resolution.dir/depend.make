# Empty dependencies file for bench_fig16_resolution.
# This may be replaced when dependencies are built.
