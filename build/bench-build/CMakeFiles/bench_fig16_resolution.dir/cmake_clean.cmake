file(REMOVE_RECURSE
  "../bench/bench_fig16_resolution"
  "../bench/bench_fig16_resolution.pdb"
  "CMakeFiles/bench_fig16_resolution.dir/bench_fig16_resolution.cc.o"
  "CMakeFiles/bench_fig16_resolution.dir/bench_fig16_resolution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
