# Empty compiler generated dependencies file for bench_fig22_otherkernels_eps.
# This may be replaced when dependencies are built.
