file(REMOVE_RECURSE
  "../bench/bench_fig22_otherkernels_eps"
  "../bench/bench_fig22_otherkernels_eps.pdb"
  "CMakeFiles/bench_fig22_otherkernels_eps.dir/bench_fig22_otherkernels_eps.cc.o"
  "CMakeFiles/bench_fig22_otherkernels_eps.dir/bench_fig22_otherkernels_eps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_otherkernels_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
