file(REMOVE_RECURSE
  "../bench/bench_fig23_otherkernels_tau"
  "../bench/bench_fig23_otherkernels_tau.pdb"
  "CMakeFiles/bench_fig23_otherkernels_tau.dir/bench_fig23_otherkernels_tau.cc.o"
  "CMakeFiles/bench_fig23_otherkernels_tau.dir/bench_fig23_otherkernels_tau.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_otherkernels_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
