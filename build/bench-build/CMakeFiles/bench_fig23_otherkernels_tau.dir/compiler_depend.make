# Empty compiler generated dependencies file for bench_fig23_otherkernels_tau.
# This may be replaced when dependencies are built.
