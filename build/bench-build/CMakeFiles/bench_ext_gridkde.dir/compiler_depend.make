# Empty compiler generated dependencies file for bench_ext_gridkde.
# This may be replaced when dependencies are built.
