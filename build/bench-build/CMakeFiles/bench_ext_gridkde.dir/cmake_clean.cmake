file(REMOVE_RECURSE
  "../bench/bench_ext_gridkde"
  "../bench/bench_ext_gridkde.pdb"
  "CMakeFiles/bench_ext_gridkde.dir/bench_ext_gridkde.cc.o"
  "CMakeFiles/bench_ext_gridkde.dir/bench_ext_gridkde.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gridkde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
