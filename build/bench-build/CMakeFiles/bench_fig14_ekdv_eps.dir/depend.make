# Empty dependencies file for bench_fig14_ekdv_eps.
# This may be replaced when dependencies are built.
