file(REMOVE_RECURSE
  "../bench/bench_fig2_illustration"
  "../bench/bench_fig2_illustration.pdb"
  "CMakeFiles/bench_fig2_illustration.dir/bench_fig2_illustration.cc.o"
  "CMakeFiles/bench_fig2_illustration.dir/bench_fig2_illustration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
