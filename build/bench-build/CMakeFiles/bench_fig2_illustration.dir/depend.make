# Empty dependencies file for bench_fig2_illustration.
# This may be replaced when dependencies are built.
