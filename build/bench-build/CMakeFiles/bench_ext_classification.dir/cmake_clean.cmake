file(REMOVE_RECURSE
  "../bench/bench_ext_classification"
  "../bench/bench_ext_classification.pdb"
  "CMakeFiles/bench_ext_classification.dir/bench_ext_classification.cc.o"
  "CMakeFiles/bench_ext_classification.dir/bench_ext_classification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
