# Empty dependencies file for bench_fig21_progressive_frames.
# This may be replaced when dependencies are built.
