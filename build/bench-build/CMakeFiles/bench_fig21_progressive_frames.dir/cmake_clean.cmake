file(REMOVE_RECURSE
  "../bench/bench_fig21_progressive_frames"
  "../bench/bench_fig21_progressive_frames.pdb"
  "CMakeFiles/bench_fig21_progressive_frames.dir/bench_fig21_progressive_frames.cc.o"
  "CMakeFiles/bench_fig21_progressive_frames.dir/bench_fig21_progressive_frames.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_progressive_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
