file(REMOVE_RECURSE
  "../bench/bench_ext_regression"
  "../bench/bench_ext_regression.pdb"
  "CMakeFiles/bench_ext_regression.dir/bench_ext_regression.cc.o"
  "CMakeFiles/bench_ext_regression.dir/bench_ext_regression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
