# Empty dependencies file for bench_ext_regression.
# This may be replaced when dependencies are built.
