# Empty dependencies file for bench_fig15_tkdv_tau.
# This may be replaced when dependencies are built.
