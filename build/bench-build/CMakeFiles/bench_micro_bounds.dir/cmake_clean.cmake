file(REMOVE_RECURSE
  "../bench/bench_micro_bounds"
  "../bench/bench_micro_bounds.pdb"
  "CMakeFiles/bench_micro_bounds.dir/bench_micro_bounds.cc.o"
  "CMakeFiles/bench_micro_bounds.dir/bench_micro_bounds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
