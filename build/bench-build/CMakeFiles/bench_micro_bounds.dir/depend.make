# Empty dependencies file for bench_micro_bounds.
# This may be replaced when dependencies are built.
