# Empty dependencies file for bench_fig27_expkernel.
# This may be replaced when dependencies are built.
