file(REMOVE_RECURSE
  "../bench/bench_fig27_expkernel"
  "../bench/bench_fig27_expkernel.pdb"
  "CMakeFiles/bench_fig27_expkernel.dir/bench_fig27_expkernel.cc.o"
  "CMakeFiles/bench_fig27_expkernel.dir/bench_fig27_expkernel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig27_expkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
