# Empty dependencies file for bench_ablation_quad.
# This may be replaced when dependencies are built.
