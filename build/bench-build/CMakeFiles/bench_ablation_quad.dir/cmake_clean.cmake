file(REMOVE_RECURSE
  "../bench/bench_ablation_quad"
  "../bench/bench_ablation_quad.pdb"
  "CMakeFiles/bench_ablation_quad.dir/bench_ablation_quad.cc.o"
  "CMakeFiles/bench_ablation_quad.dir/bench_ablation_quad.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
