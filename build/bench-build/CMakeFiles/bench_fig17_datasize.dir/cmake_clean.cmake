file(REMOVE_RECURSE
  "../bench/bench_fig17_datasize"
  "../bench/bench_fig17_datasize.pdb"
  "CMakeFiles/bench_fig17_datasize.dir/bench_fig17_datasize.cc.o"
  "CMakeFiles/bench_fig17_datasize.dir/bench_fig17_datasize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
