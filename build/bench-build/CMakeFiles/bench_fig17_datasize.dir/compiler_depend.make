# Empty compiler generated dependencies file for bench_fig17_datasize.
# This may be replaced when dependencies are built.
