# Empty dependencies file for bench_fig19_quality.
# This may be replaced when dependencies are built.
