file(REMOVE_RECURSE
  "../bench/bench_fig20_progressive"
  "../bench/bench_fig20_progressive.pdb"
  "CMakeFiles/bench_fig20_progressive.dir/bench_fig20_progressive.cc.o"
  "CMakeFiles/bench_fig20_progressive.dir/bench_fig20_progressive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
