# Empty dependencies file for bench_fig20_progressive.
# This may be replaced when dependencies are built.
