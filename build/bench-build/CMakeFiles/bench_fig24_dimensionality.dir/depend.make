# Empty dependencies file for bench_fig24_dimensionality.
# This may be replaced when dependencies are built.
