file(REMOVE_RECURSE
  "../bench/bench_fig24_dimensionality"
  "../bench/bench_fig24_dimensionality.pdb"
  "CMakeFiles/bench_fig24_dimensionality.dir/bench_fig24_dimensionality.cc.o"
  "CMakeFiles/bench_fig24_dimensionality.dir/bench_fig24_dimensionality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
