# Empty dependencies file for dynamic_kdv_test.
# This may be replaced when dependencies are built.
