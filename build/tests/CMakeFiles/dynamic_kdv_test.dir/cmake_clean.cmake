file(REMOVE_RECURSE
  "CMakeFiles/dynamic_kdv_test.dir/dynamic_kdv_test.cc.o"
  "CMakeFiles/dynamic_kdv_test.dir/dynamic_kdv_test.cc.o.d"
  "dynamic_kdv_test"
  "dynamic_kdv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_kdv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
