# Empty compiler generated dependencies file for regressor_test.
# This may be replaced when dependencies are built.
