file(REMOVE_RECURSE
  "CMakeFiles/regressor_test.dir/regressor_test.cc.o"
  "CMakeFiles/regressor_test.dir/regressor_test.cc.o.d"
  "regressor_test"
  "regressor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regressor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
