file(REMOVE_RECURSE
  "CMakeFiles/profile_bounds_test.dir/profile_bounds_test.cc.o"
  "CMakeFiles/profile_bounds_test.dir/profile_bounds_test.cc.o.d"
  "profile_bounds_test"
  "profile_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
