# Empty compiler generated dependencies file for profile_bounds_test.
# This may be replaced when dependencies are built.
