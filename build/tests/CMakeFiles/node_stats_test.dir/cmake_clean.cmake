file(REMOVE_RECURSE
  "CMakeFiles/node_stats_test.dir/node_stats_test.cc.o"
  "CMakeFiles/node_stats_test.dir/node_stats_test.cc.o.d"
  "node_stats_test"
  "node_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
