# Empty dependencies file for block_tau_test.
# This may be replaced when dependencies are built.
