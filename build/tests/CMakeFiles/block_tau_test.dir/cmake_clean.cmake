file(REMOVE_RECURSE
  "CMakeFiles/block_tau_test.dir/block_tau_test.cc.o"
  "CMakeFiles/block_tau_test.dir/block_tau_test.cc.o.d"
  "block_tau_test"
  "block_tau_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_tau_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
