
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dynamic/CMakeFiles/kdv_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/kdv_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/regress/CMakeFiles/kdv_regress.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/kdv_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/workbench/CMakeFiles/kdv_workbench.dir/DependInfo.cmake"
  "/root/repo/build/src/progressive/CMakeFiles/kdv_progressive.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kdv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/kdv_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/kdv_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kdv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/kdv_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/kdv_index.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/kdv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kdv_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/kdv_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kdv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
