file(REMOVE_RECURSE
  "CMakeFiles/node_bounds_test.dir/node_bounds_test.cc.o"
  "CMakeFiles/node_bounds_test.dir/node_bounds_test.cc.o.d"
  "node_bounds_test"
  "node_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
