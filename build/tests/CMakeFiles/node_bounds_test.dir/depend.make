# Empty dependencies file for node_bounds_test.
# This may be replaced when dependencies are built.
