file(REMOVE_RECURSE
  "CMakeFiles/grid_kde_test.dir/grid_kde_test.cc.o"
  "CMakeFiles/grid_kde_test.dir/grid_kde_test.cc.o.d"
  "grid_kde_test"
  "grid_kde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_kde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
