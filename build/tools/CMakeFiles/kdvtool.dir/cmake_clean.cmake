file(REMOVE_RECURSE
  "CMakeFiles/kdvtool.dir/kdvtool.cpp.o"
  "CMakeFiles/kdvtool.dir/kdvtool.cpp.o.d"
  "kdvtool"
  "kdvtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdvtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
