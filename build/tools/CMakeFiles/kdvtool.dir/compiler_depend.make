# Empty compiler generated dependencies file for kdvtool.
# This may be replaced when dependencies are built.
