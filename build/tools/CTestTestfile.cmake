# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(kdvtool_usage "/root/repo/build/tools/kdvtool")
set_tests_properties(kdvtool_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_generate "/root/repo/build/tools/kdvtool" "generate" "--dataset" "crime" "--scale" "0.001" "--out" "kdvtool_test.csv")
set_tests_properties(kdvtool_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_info "/root/repo/build/tools/kdvtool" "info" "--dataset" "el_nino" "--scale" "0.001")
set_tests_properties(kdvtool_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_render "/root/repo/build/tools/kdvtool" "render" "--dataset" "crime" "--scale" "0.001" "--width" "64" "--eps" "0.01" "--out" "kdvtool_test.ppm")
set_tests_properties(kdvtool_render PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_render_csv_roundtrip "/root/repo/build/tools/kdvtool" "render" "--in" "kdvtool_test.csv" "--width" "48" "--method" "karl" "--out" "kdvtool_csv.ppm")
set_tests_properties(kdvtool_render_csv_roundtrip PROPERTIES  DEPENDS "kdvtool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_hotspot "/root/repo/build/tools/kdvtool" "hotspot" "--dataset" "crime" "--scale" "0.001" "--width" "64" "--tau-sigma" "0.1" "--out" "kdvtool_hot.ppm")
set_tests_properties(kdvtool_hotspot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_hotspot_block "/root/repo/build/tools/kdvtool" "hotspot" "--dataset" "crime" "--scale" "0.001" "--width" "64" "--tau-sigma" "0.1" "--block" "--out" "kdvtool_hot_block.ppm")
set_tests_properties(kdvtool_hotspot_block PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_progressive "/root/repo/build/tools/kdvtool" "progressive" "--dataset" "crime" "--scale" "0.001" "--width" "64" "--budget" "0.2" "--out" "kdvtool_prog.ppm")
set_tests_properties(kdvtool_progressive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_classify "/root/repo/build/tools/kdvtool" "classify" "--in" "/root/repo/tools/testdata/labeled.csv" "--width" "48" "--out" "kdvtool_classes.ppm")
set_tests_properties(kdvtool_classify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_regress "/root/repo/build/tools/kdvtool" "regress" "--in" "/root/repo/tools/testdata/targets.csv" "--width" "48" "--eps" "0.02" "--out" "kdvtool_regress.ppm")
set_tests_properties(kdvtool_regress PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_classify_rejects_missing_input "/root/repo/build/tools/kdvtool" "classify" "--width" "32")
set_tests_properties(kdvtool_classify_rejects_missing_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_rejects_unknown_kernel "/root/repo/build/tools/kdvtool" "render" "--dataset" "crime" "--scale" "0.001" "--kernel" "bogus")
set_tests_properties(kdvtool_rejects_unknown_kernel PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(kdvtool_rejects_karl_triangular "/root/repo/build/tools/kdvtool" "render" "--dataset" "crime" "--scale" "0.001" "--kernel" "triangular" "--method" "karl")
set_tests_properties(kdvtool_rejects_karl_triangular PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;44;add_test;/root/repo/tools/CMakeLists.txt;0;")
