file(REMOVE_RECURSE
  "libkdv_bounds.a"
)
