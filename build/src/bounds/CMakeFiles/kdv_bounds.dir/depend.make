# Empty dependencies file for kdv_bounds.
# This may be replaced when dependencies are built.
