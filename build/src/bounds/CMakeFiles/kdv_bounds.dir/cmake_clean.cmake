file(REMOVE_RECURSE
  "CMakeFiles/kdv_bounds.dir/node_bounds.cc.o"
  "CMakeFiles/kdv_bounds.dir/node_bounds.cc.o.d"
  "CMakeFiles/kdv_bounds.dir/profile.cc.o"
  "CMakeFiles/kdv_bounds.dir/profile.cc.o.d"
  "libkdv_bounds.a"
  "libkdv_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
