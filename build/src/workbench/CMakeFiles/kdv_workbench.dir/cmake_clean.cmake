file(REMOVE_RECURSE
  "CMakeFiles/kdv_workbench.dir/workbench.cc.o"
  "CMakeFiles/kdv_workbench.dir/workbench.cc.o.d"
  "libkdv_workbench.a"
  "libkdv_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
