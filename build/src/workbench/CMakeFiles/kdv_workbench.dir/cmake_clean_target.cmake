file(REMOVE_RECURSE
  "libkdv_workbench.a"
)
