# Empty dependencies file for kdv_workbench.
# This may be replaced when dependencies are built.
