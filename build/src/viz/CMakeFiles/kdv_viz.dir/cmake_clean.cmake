file(REMOVE_RECURSE
  "CMakeFiles/kdv_viz.dir/block_tau.cc.o"
  "CMakeFiles/kdv_viz.dir/block_tau.cc.o.d"
  "CMakeFiles/kdv_viz.dir/color_map.cc.o"
  "CMakeFiles/kdv_viz.dir/color_map.cc.o.d"
  "CMakeFiles/kdv_viz.dir/frame.cc.o"
  "CMakeFiles/kdv_viz.dir/frame.cc.o.d"
  "CMakeFiles/kdv_viz.dir/render.cc.o"
  "CMakeFiles/kdv_viz.dir/render.cc.o.d"
  "libkdv_viz.a"
  "libkdv_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
