# Empty dependencies file for kdv_viz.
# This may be replaced when dependencies are built.
