file(REMOVE_RECURSE
  "libkdv_viz.a"
)
