
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/block_tau.cc" "src/viz/CMakeFiles/kdv_viz.dir/block_tau.cc.o" "gcc" "src/viz/CMakeFiles/kdv_viz.dir/block_tau.cc.o.d"
  "/root/repo/src/viz/color_map.cc" "src/viz/CMakeFiles/kdv_viz.dir/color_map.cc.o" "gcc" "src/viz/CMakeFiles/kdv_viz.dir/color_map.cc.o.d"
  "/root/repo/src/viz/frame.cc" "src/viz/CMakeFiles/kdv_viz.dir/frame.cc.o" "gcc" "src/viz/CMakeFiles/kdv_viz.dir/frame.cc.o.d"
  "/root/repo/src/viz/render.cc" "src/viz/CMakeFiles/kdv_viz.dir/render.cc.o" "gcc" "src/viz/CMakeFiles/kdv_viz.dir/render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kdv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/kdv_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kdv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/kdv_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/kdv_index.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kdv_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
