# Empty dependencies file for kdv_regress.
# This may be replaced when dependencies are built.
