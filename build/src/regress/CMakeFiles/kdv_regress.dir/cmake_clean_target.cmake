file(REMOVE_RECURSE
  "libkdv_regress.a"
)
