file(REMOVE_RECURSE
  "CMakeFiles/kdv_regress.dir/kernel_regressor.cc.o"
  "CMakeFiles/kdv_regress.dir/kernel_regressor.cc.o.d"
  "CMakeFiles/kdv_regress.dir/weighted_bounds.cc.o"
  "CMakeFiles/kdv_regress.dir/weighted_bounds.cc.o.d"
  "CMakeFiles/kdv_regress.dir/weighted_stats.cc.o"
  "CMakeFiles/kdv_regress.dir/weighted_stats.cc.o.d"
  "libkdv_regress.a"
  "libkdv_regress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_regress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
