# Empty dependencies file for kdv_classify.
# This may be replaced when dependencies are built.
