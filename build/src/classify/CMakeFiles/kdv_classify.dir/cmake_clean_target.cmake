file(REMOVE_RECURSE
  "libkdv_classify.a"
)
