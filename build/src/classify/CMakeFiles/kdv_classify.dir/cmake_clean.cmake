file(REMOVE_RECURSE
  "CMakeFiles/kdv_classify.dir/kde_classifier.cc.o"
  "CMakeFiles/kdv_classify.dir/kde_classifier.cc.o.d"
  "libkdv_classify.a"
  "libkdv_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
