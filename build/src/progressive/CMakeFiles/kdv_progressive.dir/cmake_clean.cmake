file(REMOVE_RECURSE
  "CMakeFiles/kdv_progressive.dir/progressive.cc.o"
  "CMakeFiles/kdv_progressive.dir/progressive.cc.o.d"
  "libkdv_progressive.a"
  "libkdv_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
