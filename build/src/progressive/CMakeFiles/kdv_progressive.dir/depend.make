# Empty dependencies file for kdv_progressive.
# This may be replaced when dependencies are built.
