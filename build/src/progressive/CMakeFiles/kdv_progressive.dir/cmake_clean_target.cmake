file(REMOVE_RECURSE
  "libkdv_progressive.a"
)
