file(REMOVE_RECURSE
  "libkdv_index.a"
)
