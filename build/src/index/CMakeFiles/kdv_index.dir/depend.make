# Empty dependencies file for kdv_index.
# This may be replaced when dependencies are built.
