file(REMOVE_RECURSE
  "CMakeFiles/kdv_index.dir/kdtree.cc.o"
  "CMakeFiles/kdv_index.dir/kdtree.cc.o.d"
  "CMakeFiles/kdv_index.dir/node_stats.cc.o"
  "CMakeFiles/kdv_index.dir/node_stats.cc.o.d"
  "CMakeFiles/kdv_index.dir/serialization.cc.o"
  "CMakeFiles/kdv_index.dir/serialization.cc.o.d"
  "libkdv_index.a"
  "libkdv_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
