# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("kernel")
subdirs("data")
subdirs("index")
subdirs("bounds")
subdirs("core")
subdirs("sampling")
subdirs("viz")
subdirs("progressive")
subdirs("stats")
subdirs("workbench")
subdirs("classify")
subdirs("regress")
subdirs("approx")
subdirs("dynamic")
