# Empty dependencies file for kdv_stats.
# This may be replaced when dependencies are built.
