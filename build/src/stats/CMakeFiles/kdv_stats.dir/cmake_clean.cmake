file(REMOVE_RECURSE
  "CMakeFiles/kdv_stats.dir/density_stats.cc.o"
  "CMakeFiles/kdv_stats.dir/density_stats.cc.o.d"
  "CMakeFiles/kdv_stats.dir/pca.cc.o"
  "CMakeFiles/kdv_stats.dir/pca.cc.o.d"
  "libkdv_stats.a"
  "libkdv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
