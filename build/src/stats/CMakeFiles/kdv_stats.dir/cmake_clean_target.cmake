file(REMOVE_RECURSE
  "libkdv_stats.a"
)
