file(REMOVE_RECURSE
  "libkdv_util.a"
)
