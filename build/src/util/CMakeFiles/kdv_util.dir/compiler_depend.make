# Empty compiler generated dependencies file for kdv_util.
# This may be replaced when dependencies are built.
