file(REMOVE_RECURSE
  "CMakeFiles/kdv_util.dir/csv.cc.o"
  "CMakeFiles/kdv_util.dir/csv.cc.o.d"
  "CMakeFiles/kdv_util.dir/flags.cc.o"
  "CMakeFiles/kdv_util.dir/flags.cc.o.d"
  "libkdv_util.a"
  "libkdv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
