file(REMOVE_RECURSE
  "CMakeFiles/kdv_dynamic.dir/dynamic_kdv.cc.o"
  "CMakeFiles/kdv_dynamic.dir/dynamic_kdv.cc.o.d"
  "libkdv_dynamic.a"
  "libkdv_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
