file(REMOVE_RECURSE
  "libkdv_dynamic.a"
)
