# Empty compiler generated dependencies file for kdv_dynamic.
# This may be replaced when dependencies are built.
