# Empty compiler generated dependencies file for kdv_kernel.
# This may be replaced when dependencies are built.
