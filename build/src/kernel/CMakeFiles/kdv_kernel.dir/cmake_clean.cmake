file(REMOVE_RECURSE
  "CMakeFiles/kdv_kernel.dir/bandwidth.cc.o"
  "CMakeFiles/kdv_kernel.dir/bandwidth.cc.o.d"
  "CMakeFiles/kdv_kernel.dir/kernel.cc.o"
  "CMakeFiles/kdv_kernel.dir/kernel.cc.o.d"
  "libkdv_kernel.a"
  "libkdv_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
