file(REMOVE_RECURSE
  "libkdv_kernel.a"
)
