file(REMOVE_RECURSE
  "CMakeFiles/kdv_geom.dir/morton.cc.o"
  "CMakeFiles/kdv_geom.dir/morton.cc.o.d"
  "libkdv_geom.a"
  "libkdv_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
