# Empty dependencies file for kdv_geom.
# This may be replaced when dependencies are built.
