file(REMOVE_RECURSE
  "libkdv_geom.a"
)
