# Empty compiler generated dependencies file for kdv_approx.
# This may be replaced when dependencies are built.
