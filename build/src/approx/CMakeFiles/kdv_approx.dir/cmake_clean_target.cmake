file(REMOVE_RECURSE
  "libkdv_approx.a"
)
