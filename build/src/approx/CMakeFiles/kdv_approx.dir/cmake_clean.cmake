file(REMOVE_RECURSE
  "CMakeFiles/kdv_approx.dir/grid_kde.cc.o"
  "CMakeFiles/kdv_approx.dir/grid_kde.cc.o.d"
  "libkdv_approx.a"
  "libkdv_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
