# Empty dependencies file for kdv_core.
# This may be replaced when dependencies are built.
