file(REMOVE_RECURSE
  "CMakeFiles/kdv_core.dir/evaluator.cc.o"
  "CMakeFiles/kdv_core.dir/evaluator.cc.o.d"
  "CMakeFiles/kdv_core.dir/kdv_runner.cc.o"
  "CMakeFiles/kdv_core.dir/kdv_runner.cc.o.d"
  "CMakeFiles/kdv_core.dir/refinement_stream.cc.o"
  "CMakeFiles/kdv_core.dir/refinement_stream.cc.o.d"
  "libkdv_core.a"
  "libkdv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
