file(REMOVE_RECURSE
  "libkdv_core.a"
)
