file(REMOVE_RECURSE
  "CMakeFiles/kdv_data.dir/datasets.cc.o"
  "CMakeFiles/kdv_data.dir/datasets.cc.o.d"
  "libkdv_data.a"
  "libkdv_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
