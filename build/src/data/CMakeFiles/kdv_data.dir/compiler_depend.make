# Empty compiler generated dependencies file for kdv_data.
# This may be replaced when dependencies are built.
