file(REMOVE_RECURSE
  "libkdv_data.a"
)
