file(REMOVE_RECURSE
  "libkdv_sampling.a"
)
