file(REMOVE_RECURSE
  "CMakeFiles/kdv_sampling.dir/zorder.cc.o"
  "CMakeFiles/kdv_sampling.dir/zorder.cc.o.d"
  "libkdv_sampling.a"
  "libkdv_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdv_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
