
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/zorder.cc" "src/sampling/CMakeFiles/kdv_sampling.dir/zorder.cc.o" "gcc" "src/sampling/CMakeFiles/kdv_sampling.dir/zorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/kdv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kdv_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/kdv_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kdv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
