# Empty dependencies file for kdv_sampling.
# This may be replaced when dependencies are built.
