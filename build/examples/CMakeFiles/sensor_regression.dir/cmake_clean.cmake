file(REMOVE_RECURSE
  "CMakeFiles/sensor_regression.dir/sensor_regression.cpp.o"
  "CMakeFiles/sensor_regression.dir/sensor_regression.cpp.o.d"
  "sensor_regression"
  "sensor_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
