# Empty compiler generated dependencies file for sensor_regression.
# This may be replaced when dependencies are built.
