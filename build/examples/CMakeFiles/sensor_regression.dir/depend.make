# Empty dependencies file for sensor_regression.
# This may be replaced when dependencies are built.
