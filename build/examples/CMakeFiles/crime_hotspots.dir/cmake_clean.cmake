file(REMOVE_RECURSE
  "CMakeFiles/crime_hotspots.dir/crime_hotspots.cpp.o"
  "CMakeFiles/crime_hotspots.dir/crime_hotspots.cpp.o.d"
  "crime_hotspots"
  "crime_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crime_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
