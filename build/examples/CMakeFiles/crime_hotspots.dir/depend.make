# Empty dependencies file for crime_hotspots.
# This may be replaced when dependencies are built.
