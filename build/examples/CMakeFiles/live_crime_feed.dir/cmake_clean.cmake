file(REMOVE_RECURSE
  "CMakeFiles/live_crime_feed.dir/live_crime_feed.cpp.o"
  "CMakeFiles/live_crime_feed.dir/live_crime_feed.cpp.o.d"
  "live_crime_feed"
  "live_crime_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_crime_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
