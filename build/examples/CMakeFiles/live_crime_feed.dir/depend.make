# Empty dependencies file for live_crime_feed.
# This may be replaced when dependencies are built.
