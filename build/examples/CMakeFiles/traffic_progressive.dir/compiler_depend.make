# Empty compiler generated dependencies file for traffic_progressive.
# This may be replaced when dependencies are built.
