file(REMOVE_RECURSE
  "CMakeFiles/traffic_progressive.dir/traffic_progressive.cpp.o"
  "CMakeFiles/traffic_progressive.dir/traffic_progressive.cpp.o.d"
  "traffic_progressive"
  "traffic_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
