file(REMOVE_RECURSE
  "CMakeFiles/multi_kernel_ecology.dir/multi_kernel_ecology.cpp.o"
  "CMakeFiles/multi_kernel_ecology.dir/multi_kernel_ecology.cpp.o.d"
  "multi_kernel_ecology"
  "multi_kernel_ecology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_kernel_ecology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
