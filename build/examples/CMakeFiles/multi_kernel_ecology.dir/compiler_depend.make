# Empty compiler generated dependencies file for multi_kernel_ecology.
# This may be replaced when dependencies are built.
