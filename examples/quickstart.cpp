// Quickstart: synthesize a clustered 2-d dataset, run εKDV with QUAD, and
// write the color map as a PPM image.
//
//   ./quickstart [output.ppm]
#include <cstdio>
#include <string>

#include "quadkdv.h"

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "quickstart_heatmap.ppm";

  // 1. A dataset: ~27k points mimicking the paper's crime data (Table 5).
  kdv::PointSet points = kdv::GenerateMixture(kdv::CrimeSpec(0.1));
  std::printf("dataset: %zu points\n", points.size());

  // 2. Validate + index it and pick the Gaussian kernel with Scott's-rule
  //    bandwidth. Create() returns a Status instead of aborting on bad data.
  kdv::StatusOr<std::unique_ptr<kdv::Workbench>> bench_or =
      kdv::Workbench::Create(std::move(points), kdv::KernelType::kGaussian);
  if (!bench_or.ok()) {
    std::fprintf(stderr, "quickstart: %s\n",
                 bench_or.status().ToString().c_str());
    return 1;
  }
  kdv::Workbench& bench = **bench_or;
  std::printf("ingest: %s\n", bench.ingest_report().Summary().c_str());
  std::printf("kernel: %s, gamma=%.4g, weight=%.4g\n",
              kdv::KernelTypeName(bench.kernel()), bench.params().gamma,
              bench.params().weight);

  // 3. εKDV with the QUAD bounds at 320x240.
  kdv::KdeEvaluator quad = bench.MakeEvaluator(kdv::Method::kQuad);
  kdv::PixelGrid grid(320, 240, bench.data_bounds());
  kdv::BatchStats stats;
  kdv::DensityFrame frame = kdv::RenderEpsFrame(quad, grid, 0.01, &stats);
  std::printf("rendered %llu pixels in %.3f s (%.1f refinement steps/pixel)\n",
              static_cast<unsigned long long>(stats.queries), stats.seconds,
              static_cast<double>(stats.iterations) /
                  static_cast<double>(stats.queries));

  // 4. Write the heat map.
  if (!kdv::RenderHeatMap(frame).WritePpm(output)) {
    std::fprintf(stderr, "failed to write %s\n", output.c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
