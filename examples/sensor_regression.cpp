// Spatial interpolation of sensor readings via Nadaraya–Watson kernel
// regression (the paper's §8 future-work direction, cf. precipitation
// interpolation in [27]): given scattered non-negative measurements,
// estimate the field everywhere with certified (1±ε) precision and render
// it as a heat map. Compares QUAD's certified regression against brute
// force.
//
//   ./sensor_regression [out.ppm]
#include <cmath>
#include <cstdio>
#include <string>

#include "quadkdv.h"

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "sensor_field.ppm";

  // Synthetic sensor network: readings follow a smooth field plus noise.
  kdv::Rng rng(321);
  kdv::PointSet sensors;
  std::vector<double> readings;
  const int kSensors = 20000;
  for (int i = 0; i < kSensors; ++i) {
    kdv::Point p{rng.NextDouble(), rng.NextDouble()};
    double field = 5.0 + 3.0 * std::sin(4.0 * p[0]) * std::cos(3.0 * p[1]);
    sensors.push_back(p);
    readings.push_back(std::max(field + rng.Gaussian(0.0, 0.3), 0.0));
  }
  std::printf("sensor network: %d stations\n", kSensors);

  kdv::KernelRegressor::Options options;
  options.method = kdv::Method::kQuad;
  kdv::KernelRegressor reg(kdv::PointSet(sensors),
                           std::vector<double>(readings), options);

  // Interpolate the field on a grid with ε = 0.01 certified error.
  const int kW = 160, kH = 120;
  kdv::Rect domain(2);
  domain.Expand(kdv::Point{0.0, 0.0});
  domain.Expand(kdv::Point{1.0, 1.0});
  kdv::PixelGrid grid(kW, kH, domain);

  kdv::DensityFrame field(kW, kH);
  kdv::Timer timer;
  uint64_t total_points = 0;
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      kdv::KernelRegressor::Result r =
          reg.Estimate(grid.PixelCenter(x, y), 0.01);
      field.at(x, y) = r.estimate;
      total_points += r.points_scanned;
    }
  }
  double secs = timer.ElapsedSeconds();
  std::printf("interpolated %d pixels in %.3fs "
              "(%.0f of %d points touched per pixel)\n",
              kW * kH, secs,
              static_cast<double>(total_points) / (kW * kH), kSensors);

  // Spot-check against brute force at a few pixels.
  double worst = 0.0;
  for (int i = 0; i < 20; ++i) {
    kdv::Point q{rng.NextDouble(), rng.NextDouble()};
    double exact = reg.EstimateExact(q);
    double est = reg.Estimate(q, 0.01).estimate;
    if (exact > 0) worst = std::max(worst, std::abs(est - exact) / exact);
  }
  std::printf("max observed relative error on spot checks: %.2g "
              "(certified <= 0.01)\n", worst);

  if (!kdv::RenderHeatMap(field).WritePpm(output)) {
    std::fprintf(stderr, "failed to write %s\n", output.c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
