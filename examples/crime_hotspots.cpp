// Hotspot detection (the paper's motivating criminology scenario, Fig. 1-2):
// τKDV renders a two-color map marking regions whose kernel density exceeds
// a threshold. Compares the tKDC baseline against QUAD on the same mask.
//
//   ./crime_hotspots [out_prefix]
#include <cstdio>
#include <string>

#include "quadkdv.h"

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "crime";

  kdv::PointSet points = kdv::GenerateMixture(kdv::CrimeSpec(0.1));
  std::printf("crime-analogue dataset: %zu incident locations\n",
              points.size());

  kdv::StatusOr<std::unique_ptr<kdv::Workbench>> bench_or =
      kdv::Workbench::Create(std::move(points), kdv::KernelType::kGaussian);
  if (!bench_or.ok()) {
    std::fprintf(stderr, "crime_hotspots: %s\n",
                 bench_or.status().ToString().c_str());
    return 1;
  }
  kdv::Workbench& bench = **bench_or;
  kdv::PixelGrid grid(320, 240, bench.data_bounds());

  // Thresholds placed around the density statistics (paper §7.2):
  // μ - 0.1σ, μ, μ + 0.1σ.
  kdv::KdeEvaluator quad = bench.MakeEvaluator(kdv::Method::kQuad);
  kdv::MeanStd stats = kdv::EstimateDensityStats(quad, grid, /*stride=*/8);
  std::printf("density stats over screen: mean=%.4g stddev=%.4g\n",
              stats.mean, stats.stddev);

  kdv::KdeEvaluator tkdc = bench.MakeEvaluator(kdv::Method::kTkdc);

  const double ks[] = {-0.1, 0.0, 0.1};
  for (double k : ks) {
    double tau = stats.mean + k * stats.stddev;

    kdv::BatchStats quad_stats;
    kdv::BinaryFrame mask = kdv::RenderTauFrame(quad, grid, tau, &quad_stats);
    kdv::BatchStats tkdc_stats;
    kdv::BinaryFrame mask_ref =
        kdv::RenderTauFrame(tkdc, grid, tau, &tkdc_stats);

    size_t hot = 0;
    for (uint8_t v : mask.values) hot += v;
    double mismatch = kdv::BinaryMismatchRate(mask.values, mask_ref.values);
    std::printf(
        "tau = mu%+.1fsigma: %5.1f%% hot pixels | QUAD %6.3fs vs tKDC %6.3fs "
        "(speedup %.1fx, mask mismatch %.2g)\n",
        k, 100.0 * hot / mask.values.size(), quad_stats.seconds,
        tkdc_stats.seconds,
        tkdc_stats.seconds / (quad_stats.seconds > 0 ? quad_stats.seconds
                                                     : 1e-9),
        mismatch);

    char path[256];
    std::snprintf(path, sizeof(path), "%s_hotspots_k%+.1f.ppm",
                  prefix.c_str(), k);
    if (!kdv::RenderThresholdMap(mask).WritePpm(path)) {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
    std::printf("  wrote %s\n", path);
  }
  return 0;
}
