// Anytime traffic-hotspot monitoring (paper §6 / Fig. 21): the progressive
// framework streams coarse-to-fine εKDV frames; an operator can stop as soon
// as the picture is good enough. This example renders frames at increasing
// time budgets and reports their quality against the fully refined frame.
//
//   ./traffic_progressive [out_prefix]
#include <cstdio>
#include <string>
#include <vector>

#include "quadkdv.h"

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "traffic";

  // Traffic accidents cluster along a few corridors: reuse the many-hotspot
  // crime-style mixture at El-nino scale.
  kdv::MixtureSpec spec = kdv::CrimeSpec(0.15);
  spec.name = "traffic";
  spec.seed = 2024;
  kdv::PointSet points = kdv::GenerateMixture(spec);
  std::printf("traffic-analogue dataset: %zu incidents\n", points.size());

  kdv::Workbench bench(std::move(points), kdv::KernelType::kGaussian);
  kdv::PixelGrid grid(256, 192, bench.data_bounds());
  kdv::KdeEvaluator quad = bench.MakeEvaluator(kdv::Method::kQuad);

  // Ground truth for quality reporting: the completed progressive run.
  kdv::ProgressiveResult full =
      kdv::RenderProgressive(quad, grid, 0.01, /*budget=*/0.0);
  std::printf("full frame: %llu pixels in %.3f s\n",
              static_cast<unsigned long long>(full.pixels_evaluated),
              full.stats.seconds);

  const std::vector<double> budgets = {0.02, 0.05, 0.2, 0.5};
  for (double budget : budgets) {
    kdv::ProgressiveResult partial =
        kdv::RenderProgressive(quad, grid, 0.01, budget);
    double err = kdv::AverageRelativeError(partial.frame.values,
                                           full.frame.values, 1e-12);
    std::printf(
        "budget %.2fs: %6llu/%zu pixels evaluated, avg rel err %.4f%s\n",
        budget,
        static_cast<unsigned long long>(partial.pixels_evaluated),
        grid.num_pixels(), err, partial.completed ? " (completed)" : "");

    char path[256];
    std::snprintf(path, sizeof(path), "%s_t%.2fs.ppm", prefix.c_str(),
                  budget);
    if (!kdv::RenderHeatMap(partial.frame).WritePpm(path)) {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
  }
  std::printf("wrote %zu progressive frames with prefix '%s'\n",
              budgets.size(), prefix.c_str());
  return 0;
}
