// Streaming hotspot monitoring: a sliding 30-day window over a simulated
// incident feed. New incidents are inserted, expired ones removed, and the
// τKDV hotspot mask is re-rendered after each day — no index rebuild per
// update thanks to the dynamic buffers (src/dynamic).
//
//   ./live_crime_feed [out_prefix]
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "quadkdv.h"

namespace {

// One day's incidents: hotspots drift slowly over time.
kdv::PointSet DayIncidents(int day, kdv::Rng* rng) {
  kdv::PointSet pts;
  const int n = 200 + static_cast<int>(rng->UniformInt(100));
  double drift = 0.003 * day;
  for (int i = 0; i < n; ++i) {
    if (rng->NextDouble() < 0.5) {
      pts.push_back(kdv::Point{rng->Gaussian(0.3 + drift, 0.05),
                               rng->Gaussian(0.4, 0.05)});
    } else if (rng->NextDouble() < 0.7) {
      pts.push_back(kdv::Point{rng->Gaussian(0.7, 0.04),
                               rng->Gaussian(0.6 - drift, 0.04)});
    } else {
      pts.push_back(kdv::Point{rng->NextDouble(), rng->NextDouble()});
    }
  }
  return pts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "live";
  const int kWindowDays = 30;
  const int kSimulatedDays = 45;

  kdv::Rng rng(777);
  std::deque<kdv::PointSet> window;

  // Prime the window.
  kdv::PointSet initial;
  for (int day = 0; day < kWindowDays; ++day) {
    window.push_back(DayIncidents(day, &rng));
    const kdv::PointSet& d = window.back();
    initial.insert(initial.end(), d.begin(), d.end());
  }

  kdv::DynamicKdv::Options options;
  options.method = kdv::Method::kQuad;
  options.gamma_override =
      kdv::MakeScottParams(kdv::KernelType::kGaussian, initial).gamma;
  kdv::DynamicKdv feed(std::move(initial), options);
  std::printf("window primed: %zu incidents over %d days\n",
              feed.num_points(), kWindowDays);

  kdv::Rect domain(2);
  domain.Expand(kdv::Point{0.0, 0.0});
  domain.Expand(kdv::Point{1.0, 1.0});
  kdv::PixelGrid grid(160, 120, domain);

  // τ fixed from the initial window so hotspot counts are comparable.
  double tau = 0.0;
  {
    double mean = 0.0;
    int samples = 0;
    for (int py = 0; py < grid.height(); py += 8) {
      for (int px = 0; px < grid.width(); px += 8) {
        mean += feed.EvaluateEps(grid.PixelCenter(px, py), 0.05).estimate;
        ++samples;
      }
    }
    tau = 1.5 * mean / samples;
  }

  kdv::Timer total;
  for (int day = kWindowDays; day < kSimulatedDays; ++day) {
    // Advance the window: expire the oldest day, ingest the new one.
    for (const kdv::Point& p : window.front()) feed.Remove(p);
    window.pop_front();
    window.push_back(DayIncidents(day, &rng));
    for (const kdv::Point& p : window.back()) feed.Insert(p);

    // Re-render the hotspot mask.
    kdv::BinaryFrame mask(grid.width(), grid.height());
    size_t hot = 0;
    for (int py = 0; py < grid.height(); ++py) {
      for (int px = 0; px < grid.width(); ++px) {
        bool above =
            feed.EvaluateTau(grid.PixelCenter(px, py), tau).above_threshold;
        mask.values[grid.PixelIndex(px, py)] = above ? 1 : 0;
        hot += above;
      }
    }
    if (day % 5 == 0 || day + 1 == kSimulatedDays) {
      char path[128];
      std::snprintf(path, sizeof(path), "%s_day%03d.ppm", prefix.c_str(),
                    day);
      kdv::RenderThresholdMap(mask).WritePpm(path);
      std::printf(
          "day %3d: %zu live incidents, %4.1f%% hot, buffers i=%zu r=%zu "
          "-> %s\n",
          day, feed.num_points(), 100.0 * hot / grid.num_pixels(),
          feed.pending_inserts(), feed.pending_removals(), path);
    }
  }
  std::printf("simulated %d days in %.2fs total\n",
              kSimulatedDays - kWindowDays, total.ElapsedSeconds());
  return 0;
}
