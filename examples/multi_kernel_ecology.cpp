// Ecological modeling with non-Gaussian kernels (paper §5 / Table 4):
// pollution-style data visualized with triangular, cosine and exponential
// kernels — the kernels KARL cannot accelerate but QUAD can. Renders one
// εKDV map per kernel and reports QUAD vs aKDE timings.
//
//   ./multi_kernel_ecology [out_prefix]
#include <cstdio>
#include <string>

#include "quadkdv.h"

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "ecology";

  // Pollution readings: smooth wide plumes (El-nino-like structure).
  kdv::MixtureSpec spec = kdv::ElNinoSpec(0.15);
  spec.name = "pollution";
  kdv::PointSet points = kdv::GenerateMixture(spec);
  std::printf("pollution-analogue dataset: %zu sensor readings\n",
              points.size());

  const kdv::KernelType kernels[] = {kdv::KernelType::kTriangular,
                                     kdv::KernelType::kCosine,
                                     kdv::KernelType::kExponential};
  for (kdv::KernelType kernel : kernels) {
    kdv::Workbench bench(kdv::PointSet(points), kernel);
    kdv::PixelGrid grid(240, 180, bench.data_bounds());

    // KARL is not applicable here (paper §5.1) — Table 6 in code:
    if (bench.Supports(kdv::Method::kKarl)) {
      std::fprintf(stderr, "unexpected: KARL should not support %s\n",
                   kdv::KernelTypeName(kernel));
      return 1;
    }

    kdv::KdeEvaluator quad = bench.MakeEvaluator(kdv::Method::kQuad);
    kdv::KdeEvaluator akde = bench.MakeEvaluator(kdv::Method::kAkde);

    kdv::BatchStats quad_stats;
    kdv::DensityFrame frame = kdv::RenderEpsFrame(quad, grid, 0.01,
                                                  &quad_stats);
    kdv::BatchStats akde_stats;
    kdv::DensityFrame ref = kdv::RenderEpsFrame(akde, grid, 0.01,
                                                &akde_stats);

    double disagreement =
        kdv::AverageRelativeError(frame.values, ref.values, 1e-12);
    std::printf(
        "%-12s QUAD %6.3fs vs aKDE %6.3fs (speedup %5.1fx, frame delta "
        "%.2g)\n",
        kdv::KernelTypeName(kernel), quad_stats.seconds, akde_stats.seconds,
        akde_stats.seconds /
            (quad_stats.seconds > 0 ? quad_stats.seconds : 1e-9),
        disagreement);

    std::string path =
        prefix + "_" + kdv::KernelTypeName(kernel) + ".ppm";
    if (!kdv::RenderHeatMap(frame).WritePpm(path)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("  wrote %s\n", path.c_str());
  }
  return 0;
}
