// Serving throughput: closed-loop load against RenderService, swept over
// worker-thread counts. Seeds the perf trajectory for the concurrent
// serving layer: requests/sec plus p50/p99 end-to-end latency per thread
// count, printed as a table and written to BENCH_serve.json (in the
// working directory) for machine consumption.
//
// Each sweep runs 2x(threads) closed-loop clients: every client submits a
// request, waits for its outcome, and immediately submits the next, so the
// service is always saturated but never oversubscribed past the admission
// window (a shed request is simply retried). Scaling knobs: KDV_BENCH_SCALE,
// KDV_BENCH_PIXELS (bench_common.h) and KDV_BENCH_SERVE_REQUESTS.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

using kdv::RenderService;
using kdv::ServeOutcome;
using kdv::ServeRequestOptions;
using kdv::StatusCode;
using kdv::StatusOr;

int RequestsPerSweep() {
  const char* env = std::getenv("KDV_BENCH_SERVE_REQUESTS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 200;
}

std::string BenchDir() {
  const char* env = std::getenv("KDV_BENCH_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return ".";
}

// Nearest-rank percentile of an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct SweepResult {
  int threads = 0;
  int requests = 0;
  uint64_t shed_retries = 0;
  double wall_seconds = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t browned = 0;  // requests served below their asked tier
  uint64_t shed = 0;     // submits rejected (admission or governor ceiling)
  uint64_t cache_hits = 0;  // tile-frontier cache hits (tile-shared sweeps)
};

// `oversubscribe` multiplies the closed-loop client count per worker (2 is
// the saturated-but-admittable baseline; 4 is sustained overload).
// `governor` arms the brownout governor; `certified_seconds` (one measured
// full-quality render) calibrates its queue-wait saturation to the
// workload: 4x oversubscription queues ~3 renders' worth of wait, so a
// saturation of 4x one render puts the sustained overload in the brownout
// band rather than past the shed ceiling.
SweepResult RunSweep(const kdv::KdeEvaluator& evaluator,
                     const kdv::PixelGrid& grid, int threads, int requests,
                     int oversubscribe, bool governor,
                     double certified_seconds, bool tile_shared = false) {
  RenderService::Options options;
  options.num_threads = threads;
  options.max_queue = static_cast<size_t>(2 * threads);
  options.tile_shared = tile_shared;
  if (governor) {
    options.governor.enabled = true;
    options.governor.queue_wait_saturation_seconds =
        std::max(4.0 * certified_seconds, 0.01);
  }
  RenderService service(&evaluator, options);

  const int clients = oversubscribe * threads;
  std::atomic<int> next{0};
  std::atomic<uint64_t> shed_retries{0};
  std::mutex mu;
  std::vector<double> latencies_ms;

  kdv::Timer wall;
  std::vector<std::thread> swarm;
  for (int c = 0; c < clients; ++c) {
    swarm.emplace_back([&, c] {
      // Client-side retry pacing for shed requests; deterministic per client.
      kdv::Backoff shed_backoff({0.2, 2.0, 5.0, 0.5}, 0xBE9C4u + c);
      std::vector<double> local_ms;
      while (true) {
        if (next.fetch_add(1) >= requests) break;
        kdv::Timer request_timer;
        ServeRequestOptions request;
        request.eps = 0.05;
        while (true) {
          StatusOr<std::future<ServeOutcome>> ticket =
              service.Submit(grid, request);
          if (ticket.ok()) {
            (void)ticket->get();
            local_ms.push_back(request_timer.ElapsedSeconds() * 1000.0);
            shed_backoff.Reset();
            break;
          }
          // Closed-loop client: a shed request is retried until admitted.
          shed_retries.fetch_add(1);
          double delay = shed_backoff.NextDelayMs();
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay));
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }
  for (std::thread& t : swarm) t.join();
  double wall_seconds = wall.ElapsedSeconds();
  service.Stop();
  const kdv::ServiceStats stats = service.stats();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  SweepResult result;
  result.threads = threads;
  result.requests = static_cast<int>(latencies_ms.size());
  result.shed_retries = shed_retries.load();
  result.wall_seconds = wall_seconds;
  result.rps = wall_seconds > 0.0 ? latencies_ms.size() / wall_seconds : 0.0;
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  result.browned = stats.brownout_applied;
  result.shed = stats.shed;
  result.cache_hits = stats.frontier_cache_hits;
  return result;
}

}  // namespace

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Serve", "RenderService closed-loop throughput vs "
                                  "worker threads (crime analogue, eps=0.05)");

  Workbench bench(GenerateMixture(CrimeSpec(kdv_bench::BenchScale())),
                  KernelType::kGaussian);
  KdeEvaluator evaluator = bench.MakeEvaluator(Method::kQuad);
  PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
  const int requests = RequestsPerSweep();

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> thread_counts = {1, 2, 4, 8};
  thread_counts.erase(
      std::remove_if(thread_counts.begin(), thread_counts.end(),
                     [&](int t) { return hw != 0 && t > static_cast<int>(2 * hw); }),
      thread_counts.end());

  std::printf("\n%8s %10s %12s %10s %10s %12s\n", "threads", "requests",
              "req/sec", "p50(ms)", "p99(ms)", "shed-retry");
  // Calibration render for the governor sweeps below.
  Timer certified_timer;
  (void)RenderEpsFrame(evaluator, grid, 0.05, nullptr);
  const double certified_seconds = certified_timer.ElapsedSeconds();

  std::vector<SweepResult> results;
  for (int threads : thread_counts) {
    SweepResult r = RunSweep(evaluator, grid, threads, requests,
                             /*oversubscribe=*/2, /*governor=*/false,
                             certified_seconds);
    results.push_back(r);
    std::printf("%8d %10d %12.1f %10.2f %10.2f %12llu\n", r.threads,
                r.requests, r.rps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.shed_retries));
  }

  // Tile-shared sweeps: same saturated closed loop with shared-traversal
  // tile refinement and the epoch-keyed frontier cache on. Repeated renders
  // of the same viewport reuse the cached frontiers, so req/sec should rise
  // and cache hits should approach the request count minus the cold frames.
  std::printf("\n%8s %10s %12s %10s %10s %12s  (tile-shared)\n", "threads",
              "requests", "req/sec", "p50(ms)", "p99(ms)", "cache-hit");
  std::vector<SweepResult> shared_results;
  for (int threads : thread_counts) {
    SweepResult r = RunSweep(evaluator, grid, threads, requests,
                             /*oversubscribe=*/2, /*governor=*/false,
                             certified_seconds, /*tile_shared=*/true);
    shared_results.push_back(r);
    std::printf("%8d %10d %12.1f %10.2f %10.2f %12llu\n", r.threads,
                r.requests, r.rps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.cache_hits));
  }

  // Overload sweeps: 4x oversubscribed, admission control alone vs the
  // brownout governor. The interesting deltas: with the governor armed,
  // browned-out (degraded-tier) serving replaces shed-retry churn, so
  // throughput holds and tail latency shrinks under identical load.
  std::printf("\n%8s %10s %12s %10s %10s %10s %10s  (4x overload)\n",
              "threads", "governor", "req/sec", "p50(ms)", "p99(ms)",
              "browned", "shed");
  std::vector<SweepResult> overload_results;
  std::vector<bool> overload_governor;
  for (int threads : thread_counts) {
    for (bool governor : {false, true}) {
      SweepResult r = RunSweep(evaluator, grid, threads, requests,
                               /*oversubscribe=*/4, governor,
                               certified_seconds);
      overload_results.push_back(r);
      overload_governor.push_back(governor);
      std::printf("%8d %10s %12.1f %10.2f %10.2f %10llu %10llu\n", r.threads,
                  governor ? "on" : "off", r.rps, r.p50_ms, r.p99_ms,
                  static_cast<unsigned long long>(r.browned),
                  static_cast<unsigned long long>(r.shed));
    }
  }

  // Stream to a temp and publish atomically: a crashed or interrupted bench
  // never leaves a truncated BENCH_serve.json for CI to parse.
  const std::string json_path = BenchDir() + "/BENCH_serve.json";
  const std::string json_temp = kdv::TempPathFor(json_path);
  std::FILE* json = std::fopen(json_temp.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_temp.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\":\"serve_throughput\",");
  std::fprintf(json, "\"build\":\"%s\",\"simd\":\"%s\",",
               kdv::BuildStamp().c_str(),
               SimdLevelName(ActiveSimdLevel()));
  std::fprintf(json, "\"dataset\":\"crime\",\"scale\":%.6g,",
               kdv_bench::BenchScale());
  std::fprintf(json, "\"width\":%d,\"height\":%d,\"eps\":0.05,",
               grid.width(), grid.height());
  std::fprintf(json, "\"requests_per_sweep\":%d,\"sweeps\":[", requests);
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(json,
                 "%s{\"threads\":%d,\"requests\":%d,"
                 "\"wall_seconds\":%.6f,\"requests_per_sec\":%.3f,"
                 "\"latency_p50_ms\":%.4f,\"latency_p99_ms\":%.4f,"
                 "\"shed_retries\":%llu}",
                 i == 0 ? "" : ",", r.threads, r.requests, r.wall_seconds,
                 r.rps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.shed_retries));
  }
  std::fprintf(json, "],\"tile_shared_sweeps\":[");
  for (size_t i = 0; i < shared_results.size(); ++i) {
    const SweepResult& r = shared_results[i];
    std::fprintf(json,
                 "%s{\"threads\":%d,\"requests\":%d,"
                 "\"wall_seconds\":%.6f,\"requests_per_sec\":%.3f,"
                 "\"latency_p50_ms\":%.4f,\"latency_p99_ms\":%.4f,"
                 "\"shed_retries\":%llu,\"frontier_cache_hits\":%llu}",
                 i == 0 ? "" : ",", r.threads, r.requests, r.wall_seconds,
                 r.rps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.shed_retries),
                 static_cast<unsigned long long>(r.cache_hits));
  }
  std::fprintf(json, "],\"overload_sweeps\":[");
  for (size_t i = 0; i < overload_results.size(); ++i) {
    const SweepResult& r = overload_results[i];
    std::fprintf(json,
                 "%s{\"threads\":%d,\"governor\":%s,\"requests\":%d,"
                 "\"wall_seconds\":%.6f,\"requests_per_sec\":%.3f,"
                 "\"latency_p50_ms\":%.4f,\"latency_p99_ms\":%.4f,"
                 "\"shed_retries\":%llu,\"browned\":%llu,\"shed\":%llu}",
                 i == 0 ? "" : ",", r.threads,
                 overload_governor[i] ? "true" : "false", r.requests,
                 r.wall_seconds, r.rps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.shed_retries),
                 static_cast<unsigned long long>(r.browned),
                 static_cast<unsigned long long>(r.shed));
  }
  std::fprintf(json, "],");
  // Observability block: the process metric registry after every sweep —
  // queue-wait/request/backoff quantiles from the serve instrumentation
  // (pre-escaped JSON from JsonWriter).
  std::fprintf(json, "\"metrics\":%s}\n",
               kdv_bench::MetricsBlockJson().c_str());
  std::fclose(json);
  kdv::Status published = kdv::AtomicPublish(json_temp, json_path);
  if (!published.ok()) {
    std::fprintf(stderr, "cannot publish %s: %s\n", json_path.c_str(),
                 published.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
