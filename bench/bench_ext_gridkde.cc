// Extension benchmark: the "function approximation" camp (paper Table 2,
// Raykar et al. / Yang et al.) represented by grid-convolution KDE. Shows
// the trade-off the paper's problem statement is built on: the heuristic is
// fast, but its error is uncontrolled — it violates any small ε at some
// pixels, while QUAD certifies ε everywhere.
#include <cstdio>

#include "bench_common.h"
#include "approx/grid_kde.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Extension",
                         "grid-convolution KDE (camp 1) vs certified εKDV");

  for (const MixtureSpec& spec : {CrimeSpec(kdv_bench::BenchScale()),
                                  HomeSpec(kdv_bench::BenchScale())}) {
    Workbench bench(GenerateMixture(spec), KernelType::kGaussian);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());

    KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
    DensityFrame truth = RenderExactFrame(exact, grid, nullptr);
    const double floor = 1e-4 * ComputeMeanStd(truth.values).mean;

    std::printf("\n(%s, n=%zu)\n", spec.name.c_str(), bench.num_points());
    std::printf("%-18s %10s %14s %14s %12s\n", "method", "time(s)",
                "avg rel err", "max rel err", "guarantee");

    for (int g : {64, 128, 256, 512}) {
      GridKde::Options options;
      options.grid_size = g;
      Timer timer;
      GridKde approx(bench.tree().points(), bench.params(),
                     bench.data_bounds(), options);
      DensityFrame frame = approx.RenderFrame(grid);
      double secs = timer.ElapsedSeconds();
      char name[32];
      std::snprintf(name, sizeof(name), "grid %dx%d", g, g);
      std::printf("%-18s %10.3f %14.4g %14.4g %12s\n", name, secs,
                  AverageRelativeError(frame.values, truth.values, floor),
                  MaxRelativeError(frame.values, truth.values, floor),
                  "none");
    }

    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    BatchStats stats;
    DensityFrame frame = RenderEpsFrame(quad, grid, 0.01, &stats);
    std::printf("%-18s %10.3f %14.4g %14.4g %12s\n", "QUAD eps=0.01",
                stats.seconds,
                AverageRelativeError(frame.values, truth.values, floor),
                MaxRelativeError(frame.values, truth.values, floor),
                "eps=0.01");
  }
  return 0;
}
