// Figure 18: bound values of KARL vs QUAD as a function of refinement
// iteration, on the pixel with the highest KDE value of the home analogue
// (εKDV, ε = 0.01). Paper result: QUAD's interval collapses and triggers the
// stopping condition far earlier than KARL's.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 18",
                         "bound value vs iteration at the hottest pixel "
                         "(home analogue, eps=0.01)");

  Workbench bench(GenerateMixture(HomeSpec(kdv_bench::BenchScale())),
                  KernelType::kGaussian);
  PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  KdeEvaluator karl = bench.MakeEvaluator(Method::kKarl);

  // Locate the hottest pixel with a coarse pass.
  Point hottest = grid.PixelCenter(grid.width() / 2, grid.height() / 2);
  double best = -1.0;
  for (int py = 0; py < grid.height(); py += 4) {
    for (int px = 0; px < grid.width(); px += 4) {
      Point q = grid.PixelCenter(px, py);
      double v = quad.EvaluateEps(q, 0.05).estimate;
      if (v > best) {
        best = v;
        hottest = q;
      }
    }
  }
  std::printf("hottest pixel density ~ %.6g\n\n", best);

  const double eps = 0.01;
  std::vector<BoundStep> quad_trace, karl_trace;
  EvalResult rq = quad.EvaluateEpsTraced(hottest, eps, &quad_trace);
  EvalResult rk = karl.EvaluateEpsTraced(hottest, eps, &karl_trace);

  std::printf("%-10s %14s %14s %14s %14s\n", "iteration", "LB_KARL",
              "UB_KARL", "LB_QUAD", "UB_QUAD");
  size_t rows = std::max(quad_trace.size(), karl_trace.size());
  size_t step = std::max<size_t>(1, rows / 40);
  for (size_t i = 0; i < rows; i += step) {
    const BoundStep* k = i < karl_trace.size() ? &karl_trace[i] : nullptr;
    const BoundStep* q = i < quad_trace.size() ? &quad_trace[i] : nullptr;
    std::printf("%-10zu", i);
    if (k != nullptr) {
      std::printf(" %14.6g %14.6g", k->lower, k->upper);
    } else {
      std::printf(" %14s %14s", "(stopped)", "");
    }
    if (q != nullptr) {
      std::printf(" %14.6g %14.6g", q->lower, q->upper);
    } else {
      std::printf(" %14s %14s", "(stopped)", "");
    }
    std::printf("\n");
  }

  std::printf("\nQUAD stops after %llu iterations; KARL after %llu "
              "(ratio %.1fx)\n",
              static_cast<unsigned long long>(rq.iterations),
              static_cast<unsigned long long>(rk.iterations),
              rq.iterations > 0
                  ? static_cast<double>(rk.iterations) /
                        static_cast<double>(rq.iterations)
                  : 0.0);

  std::FILE* csv = std::fopen("fig18.csv", "w");
  if (csv != nullptr) {
    std::fprintf(csv, "method,iteration,lower,upper\n");
    for (const BoundStep& s : karl_trace) {
      std::fprintf(csv, "KARL,%llu,%.17g,%.17g\n",
                   static_cast<unsigned long long>(s.iteration), s.lower,
                   s.upper);
    }
    for (const BoundStep& s : quad_trace) {
      std::fprintf(csv, "QUAD,%llu,%.17g,%.17g\n",
                   static_cast<unsigned long long>(s.iteration), s.lower,
                   s.upper);
    }
    std::fclose(csv);
    std::printf("wrote fig18.csv\n");
  }
  return 0;
}
