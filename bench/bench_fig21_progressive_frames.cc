// Figure 21: QUAD-based progressive visualization of the home analogue at
// five time budgets. Writes one PPM per timestamp (the paper's strip of five
// frames) and reports how much of the frame was refined at each budget.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 21",
                         "QUAD progressive frames at five timestamps (home "
                         "analogue)");

  Workbench bench(GenerateMixture(HomeSpec(kdv_bench::BenchScale())),
                  KernelType::kGaussian);
  PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);

  DensityFrame truth = RenderEpsFrame(quad, grid, 0.001, nullptr);
  const double floor = 1e-6 * ComputeMeanStd(truth.values).mean;

  const std::vector<double> budgets = {0.005, 0.02, 0.05, 0.2, 0.5};
  std::printf("%-10s %14s %14s   %s\n", "budget(s)", "pixels", "avg rel err",
              "image");
  for (double budget : budgets) {
    ProgressiveResult r = RenderProgressive(quad, grid, 0.01, budget);
    char path[64];
    std::snprintf(path, sizeof(path), "fig21_t%.3f.ppm", budget);
    RenderHeatMap(r.frame).WritePpm(path);
    std::printf("%-10.3f %8llu/%zu %14.5f   %s%s\n", budget,
                static_cast<unsigned long long>(r.pixels_evaluated),
                grid.num_pixels(),
                AverageRelativeError(r.frame.values, truth.values, floor),
                path, r.completed ? " (completed)" : "");
  }
  return 0;
}
