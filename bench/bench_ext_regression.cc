// Extension benchmark: Nadaraya–Watson kernel regression with certified
// bounds (paper §8 future work). Measures queries/sec to certify (1±ε)
// regression estimates under each bound family, sweeping ε — the regression
// analogue of Fig. 14.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "regress/kernel_regressor.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Extension",
                         "kernel regression: certified NW estimates, "
                         "varying ε (Gaussian kernel)");

  const size_t n = std::max<size_t>(
      2000, static_cast<size_t>(2000000 * kdv_bench::BenchScale()));
  Rng rng(31);
  PointSet xs;
  std::vector<double> ys;
  for (size_t i = 0; i < n; ++i) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    xs.push_back(p);
    ys.push_back(
        std::max(4.0 + 2.0 * std::sin(5.0 * p[0]) + std::cos(3.0 * p[1]) +
                     rng.Gaussian(0.0, 0.2),
                 0.0));
  }

  const int kQueries = 400;
  PointSet queries;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }

  std::printf("\n%zu samples, %d queries\n", n, kQueries);
  std::printf("%-8s %12s %12s %12s %12s\n", "eps", "EXACT", "aKDE", "KARL",
              "QUAD");

  for (double eps : {0.01, 0.02, 0.05}) {
    std::printf("%-8.2f", eps);
    for (Method method :
         {Method::kExact, Method::kAkde, Method::kKarl, Method::kQuad}) {
      KernelRegressor::Options options;
      options.method = method;
      KernelRegressor reg(PointSet(xs), std::vector<double>(ys), options);
      Timer timer;
      double checksum = 0.0;
      for (const Point& q : queries) {
        checksum += reg.Estimate(q, eps).estimate;
      }
      double qps = kQueries / std::max(timer.ElapsedSeconds(), 1e-9);
      std::printf(" %12.1f", qps);
      (void)checksum;
    }
    std::printf("\n");
  }
  std::printf("\n(values are queries/sec; higher is better)\n");
  return 0;
}
