// Shared helpers for the figure/table reproduction benchmarks.
//
// Every bench binary prints the same rows/series as the corresponding paper
// figure. Dataset sizes are scaled down by default so the full suite runs on
// a laptop in minutes; set KDV_BENCH_SCALE (relative to the paper's full
// cardinalities, default 0.01) and KDV_BENCH_PIXELS (pixels along the x
// axis, default 160, paper: 1280) to approach the paper's setup.
#ifndef QUADKDV_BENCH_BENCH_COMMON_H_
#define QUADKDV_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "quadkdv.h"

namespace kdv_bench {

// Dataset scale relative to the paper's cardinalities (Table 5).
inline double BenchScale() {
  const char* env = std::getenv("KDV_BENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return 0.01;
}

// Horizontal resolution; vertical is 3/4 of it (the paper's 4:3 screens).
inline int BenchPixelsX() {
  const char* env = std::getenv("KDV_BENCH_PIXELS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 16) return v;
  }
  return 160;
}

inline kdv::PixelGrid MakeGrid(const kdv::Rect& domain, int px_x) {
  return kdv::PixelGrid(px_x, px_x * 3 / 4, domain);
}

inline kdv::PixelGrid MakeGrid(const kdv::Rect& domain) {
  return MakeGrid(domain, BenchPixelsX());
}

// Prints the standard bench header.
inline void PrintHeader(const std::string& figure,
                        const std::string& description) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("dataset scale %.4g of paper cardinalities, resolution %dx%d\n",
              BenchScale(), BenchPixelsX(), BenchPixelsX() * 3 / 4);
  std::printf("==============================================================="
              "=\n");
}

// Formats a duration like the paper's log-scale time plots.
inline std::string Secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%9.3f", s);
  return buf;
}

// Writes one CSV row of doubles to an already-open file (no-op if null).
inline void CsvRow(std::FILE* f, const std::vector<double>& values) {
  if (f == nullptr) return;
  for (size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f, "%s%.17g", i == 0 ? "" : ",", values[i]);
  }
  std::fprintf(f, "\n");
}

// Per-run observability block for the bench JSON artifacts: every counter
// the run incremented plus count/sum/p50/p99 of every duration histogram
// (queue wait, tile pass, refinement, bound evals per pixel). Built with
// JsonWriter so it splices into the artifact as one pre-escaped value.
inline std::string MetricsBlockJson() {
  const kdv::obs::MetricsSnapshot snap =
      kdv::obs::MetricsRegistry::Global().Snapshot();
  kdv::JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) w.Key(name).Value(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const kdv::obs::HistogramSnapshot& h : snap.histograms) {
    w.Key(h.name).BeginObject()
        .Key("count").Value(h.count)
        .Key("sum").Number(h.sum, 9)
        .Key("p50").Number(h.p50, 9)
        .Key("p99").Number(h.p99, 9)
        .EndObject();
  }
  w.EndObject().EndObject();
  return w.Take();
}

}  // namespace kdv_bench

#endif  // QUADKDV_BENCH_BENCH_COMMON_H_
