// Figure 14: εKDV response time vs relative error ε on the four datasets
// (aKDE, KARL, QUAD, Z-order). Paper result: QUAD is at least one order of
// magnitude faster than every competitor at every ε.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader(
      "Figure 14", "εKDV response time (s), varying ε, Gaussian kernel");

  const std::vector<double> eps_values = {0.01, 0.02, 0.03, 0.04, 0.05};
  std::FILE* csv = std::fopen("fig14.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "dataset,eps,method,seconds\n");

  for (const MixtureSpec& spec : PaperDatasetSpecs(kdv_bench::BenchScale())) {
    Workbench bench(GenerateMixture(spec), KernelType::kGaussian);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
    std::printf("\n(%s, n=%zu)\n", spec.name.c_str(), bench.num_points());
    std::printf("%-8s %10s %10s %10s %10s\n", "eps", "aKDE", "KARL", "QUAD",
                "Z-order");

    for (double eps : eps_values) {
      double secs[4];
      const Method methods[] = {Method::kAkde, Method::kKarl, Method::kQuad};
      for (int i = 0; i < 3; ++i) {
        KdeEvaluator evaluator = bench.MakeEvaluator(methods[i]);
        BatchStats stats;
        RenderEpsFrame(evaluator, grid, eps, &stats);
        secs[i] = stats.seconds;
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%g,%s,%.6f\n", spec.name.c_str(), eps,
                       MethodName(methods[i]), stats.seconds);
        }
      }
      {
        KdeEvaluator zorder = bench.MakeZorderEvaluator(eps);
        BatchStats stats;
        RenderEpsFrame(zorder, grid, eps, &stats);
        secs[3] = stats.seconds;
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%g,Z-order,%.6f\n", spec.name.c_str(), eps,
                       stats.seconds);
        }
      }
      std::printf("%-8.2f %10.3f %10.3f %10.3f %10.3f\n", eps, secs[0],
                  secs[1], secs[2], secs[3]);
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig14.csv\n");
  return 0;
}
