// Figure 19: visualization quality of εKDV (ε = 0.01) across methods on the
// home analogue. All deterministic-guarantee methods (aKDE, KARL, QUAD)
// produce color maps indistinguishable from exact KDV; Z-order is close but
// only probabilistically bounded. Writes one PPM per method and prints the
// error table.
#include <cstdio>
#include <string>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 19",
                         "εKDV quality across methods (home analogue, "
                         "eps=0.01)");

  Workbench bench(GenerateMixture(HomeSpec(kdv_bench::BenchScale())),
                  KernelType::kGaussian);
  PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
  const double eps = 0.01;

  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  BatchStats exact_stats;
  DensityFrame truth = RenderExactFrame(exact, grid, &exact_stats);
  RenderHeatMap(truth).WritePpm("fig19_exact.ppm");
  std::printf("%-10s %10s %14s %14s   %s\n", "method", "time(s)",
              "avg rel err", "max rel err", "image");
  std::printf("%-10s %10.3f %14s %14s   %s\n", "EXACT", exact_stats.seconds,
              "0", "0", "fig19_exact.ppm");

  const double floor = 1e-6 * ComputeMeanStd(truth.values).mean;

  for (Method method : {Method::kAkde, Method::kKarl, Method::kQuad}) {
    KdeEvaluator evaluator = bench.MakeEvaluator(method);
    BatchStats stats;
    DensityFrame frame = RenderEpsFrame(evaluator, grid, eps, &stats);
    std::string path =
        std::string("fig19_") + MethodName(method) + ".ppm";
    RenderHeatMap(frame).WritePpm(path);
    std::printf("%-10s %10.3f %14.6g %14.6g   %s\n", MethodName(method),
                stats.seconds,
                AverageRelativeError(frame.values, truth.values, floor),
                MaxRelativeError(frame.values, truth.values, floor),
                path.c_str());
  }
  {
    KdeEvaluator zorder = bench.MakeZorderEvaluator(eps);
    BatchStats stats;
    DensityFrame frame = RenderEpsFrame(zorder, grid, eps, &stats);
    RenderHeatMap(frame).WritePpm("fig19_zorder.ppm");
    std::printf("%-10s %10.3f %14.6g %14.6g   %s\n", "Z-order", stats.seconds,
                AverageRelativeError(frame.values, truth.values, floor),
                MaxRelativeError(frame.values, truth.values, floor),
                "fig19_zorder.ppm");
  }
  std::printf("\n(deterministic methods respect max rel err <= eps; Z-order "
              "is probabilistic)\n");
  return 0;
}
