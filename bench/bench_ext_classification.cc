// Extension benchmark (the paper's future-work direction §8): kernel
// density classification with bound-based early termination. Compares how
// many refinement steps / points each bound family needs to *certify* the
// predicted class, versus exact evaluation — the cross-class analogue of
// τKDV pruning.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "classify/kde_classifier.h"

namespace {

std::vector<kdv::PointSet> MakeClasses(size_t n_per_class, int num_classes,
                                       uint64_t seed) {
  kdv::Rng rng(seed);
  std::vector<kdv::PointSet> classes(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    // Class centers on a circle; overlapping but separable blobs.
    double angle = 6.28318530718 * c / num_classes;
    double cx = 0.5 + 0.3 * std::cos(angle);
    double cy = 0.5 + 0.3 * std::sin(angle);
    for (size_t i = 0; i < n_per_class; ++i) {
      classes[c].push_back(
          kdv::Point{rng.Gaussian(cx, 0.12), rng.Gaussian(cy, 0.12)});
    }
  }
  return classes;
}

}  // namespace

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Extension",
                         "kernel density classification: cost to certify "
                         "the argmax class");

  const size_t n_per_class =
      std::max<size_t>(500, static_cast<size_t>(200000 *
                                                kdv_bench::BenchScale()));
  const int num_classes = 3;
  const int num_queries = 500;

  Rng rng(77);
  PointSet queries;
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(Point{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
  }

  std::printf("\n%d classes x %zu points, %d queries (Gaussian kernel)\n",
              num_classes, n_per_class, num_queries);
  std::printf("%-8s %12s %14s %12s %10s\n", "method", "iters/query",
              "points/query", "certified%", "time(s)");

  int reference_labels[3] = {0, 0, 0};
  std::vector<int> exact_labels;
  for (Method method :
       {Method::kExact, Method::kAkde, Method::kKarl, Method::kQuad}) {
    KdeClassifier::Options options;
    options.method = method;
    KdeClassifier clf(MakeClasses(n_per_class, num_classes, 55), options);

    uint64_t iters = 0, points = 0, certified = 0;
    std::vector<int> labels;
    Timer timer;
    for (const Point& q : queries) {
      KdeClassifier::Result r = clf.Classify(q);
      iters += r.iterations;
      points += r.points_scanned;
      certified += r.certified ? 1 : 0;
      labels.push_back(r.label);
    }
    double secs = timer.ElapsedSeconds();
    std::printf("%-8s %12.1f %14.1f %11.1f%% %10.3f\n", MethodName(method),
                static_cast<double>(iters) / num_queries,
                static_cast<double>(points) / num_queries,
                100.0 * static_cast<double>(certified) / num_queries, secs);

    if (method == Method::kExact) {
      exact_labels = labels;
      for (int l : labels) reference_labels[l]++;
    } else {
      // All bound families must agree with exact classification.
      size_t mismatches = 0;
      for (int i = 0; i < num_queries; ++i) {
        if (labels[i] != exact_labels[i]) ++mismatches;
      }
      if (mismatches != 0) {
        std::printf("  WARNING: %zu label mismatches vs EXACT\n", mismatches);
      }
    }
  }
  std::printf("\nlabel distribution (EXACT): %d / %d / %d\n",
              reference_labels[0], reference_labels[1], reference_labels[2]);
  return 0;
}
