// Figure 20: average relative error of the progressive visualization
// framework under increasing time budgets, for EXACT, aKDE, KARL, Z-order
// and QUAD on all four datasets. Paper result: at every timestamp QUAD has
// evaluated more pixels than any competitor and therefore shows the lowest
// error; it reaches near-εKDV quality within fractions of a second.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 20",
                         "progressive framework: avg rel error vs time "
                         "budget (eps=0.01)");

  // Budgets follow the paper's geometric ladder, shrunk by one step since
  // the bench datasets are smaller.
  const std::vector<double> budgets = {0.002, 0.01, 0.05, 0.25, 1.25};
  const double eps = 0.01;

  std::FILE* csv = std::fopen("fig20.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "dataset,budget,method,avg_rel_err\n");

  for (const MixtureSpec& spec : PaperDatasetSpecs(kdv_bench::BenchScale())) {
    Workbench bench(GenerateMixture(spec), KernelType::kGaussian);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());

    // Reference frame: tightly certified εKDV (ε = 0.001) with QUAD.
    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    DensityFrame truth = RenderEpsFrame(quad, grid, 0.001, nullptr);
    const double floor = 1e-6 * ComputeMeanStd(truth.values).mean;

    std::printf("\n(%s, n=%zu)\n", spec.name.c_str(), bench.num_points());
    std::printf("%-10s %12s %12s %12s %12s %12s\n", "budget(s)", "EXACT",
                "aKDE", "KARL", "Z-order", "QUAD");

    for (double budget : budgets) {
      std::printf("%-10.3f", budget);
      struct Entry {
        const char* name;
        KdeEvaluator evaluator;
      };
      std::vector<Entry> entries;
      entries.push_back({"EXACT", bench.MakeEvaluator(Method::kExact)});
      entries.push_back({"aKDE", bench.MakeEvaluator(Method::kAkde)});
      entries.push_back({"KARL", bench.MakeEvaluator(Method::kKarl)});
      entries.push_back({"Z-order", bench.MakeZorderEvaluator(eps)});
      entries.push_back({"QUAD", bench.MakeEvaluator(Method::kQuad)});
      for (Entry& e : entries) {
        ProgressiveResult r =
            RenderProgressive(e.evaluator, grid, eps, budget);
        double err =
            AverageRelativeError(r.frame.values, truth.values, floor);
        std::printf(" %12.5f", err);
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%g,%s,%.8f\n", spec.name.c_str(), budget,
                       e.name, err);
        }
      }
      std::printf("\n");
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig20.csv\n");
  return 0;
}
