// Ablation study of QUAD's design choices (DESIGN.md §4):
//   (a) which bound side matters — quadratic lower only, quadratic upper
//       only, or both (hybrids of QUAD and KARL);
//   (b) kd-tree leaf size;
//   (c) the trivial-bound safety clamp.
// Reported as εKDV frame time on the home analogue, ε = 0.01.
#include <cstdio>
#include <memory>

#include "bench_common.h"

namespace {

using kdv::BoundPair;
using kdv::NodeBounds;
using kdv::NodeStats;
using kdv::Point;

// Combines the lower bound of one method with the upper bound of another.
class HybridBounds final : public NodeBounds {
 public:
  HybridBounds(const kdv::KernelParams& params, const NodeBounds* lower_src,
               const NodeBounds* upper_src)
      : NodeBounds(params, kdv::BoundsOptions{}),
        lower_src_(lower_src),
        upper_src_(upper_src) {}

  BoundPair Evaluate(const NodeStats& stats, const Point& q) const override {
    BoundPair b;
    b.lower = lower_src_->Evaluate(stats, q).lower;
    b.upper = upper_src_->Evaluate(stats, q).upper;
    if (b.upper < b.lower) b.upper = b.lower;
    return b;
  }
  const char* name() const override { return "hybrid"; }

 private:
  const NodeBounds* lower_src_;
  const NodeBounds* upper_src_;
};

double TimeFrame(const kdv::KdeEvaluator& evaluator,
                 const kdv::PixelGrid& grid) {
  kdv::BatchStats stats;
  kdv::RenderEpsFrame(evaluator, grid, 0.01, &stats);
  return stats.seconds;
}

}  // namespace

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Ablation", "QUAD design choices (home analogue, "
                                     "εKDV, eps=0.01)");

  PointSet points = GenerateMixture(HomeSpec(kdv_bench::BenchScale()));

  // (a) Bound-side ablation on a fixed tree.
  {
    Workbench bench(PointSet(points), KernelType::kGaussian);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
    KernelParams params = bench.params();

    auto karl = MakeNodeBounds(Method::kKarl, params);
    auto quad = MakeNodeBounds(Method::kQuad, params);
    HybridBounds lower_only(params, quad.get(), karl.get());
    HybridBounds upper_only(params, karl.get(), quad.get());

    std::printf("\n(a) bound sides (linear = KARL, quadratic = QUAD)\n");
    std::printf("%-34s %10s\n", "configuration", "time(s)");
    std::printf("%-34s %10.3f\n", "linear both (KARL)",
                TimeFrame(KdeEvaluator(&bench.tree(), params, karl.get()),
                          grid));
    std::printf("%-34s %10.3f\n", "quadratic lower + linear upper",
                TimeFrame(KdeEvaluator(&bench.tree(), params, &lower_only),
                          grid));
    std::printf("%-34s %10.3f\n", "linear lower + quadratic upper",
                TimeFrame(KdeEvaluator(&bench.tree(), params, &upper_only),
                          grid));
    std::printf("%-34s %10.3f\n", "quadratic both (QUAD)",
                TimeFrame(KdeEvaluator(&bench.tree(), params, quad.get()),
                          grid));
  }

  // (b) Leaf-size sweep.
  {
    std::printf("\n(b) kd-tree leaf size (QUAD)\n");
    std::printf("%-12s %12s %10s\n", "leaf size", "build(s)", "time(s)");
    for (size_t leaf : {8u, 16u, 32u, 64u, 128u, 256u}) {
      Workbench::Options options;
      options.leaf_size = leaf;
      Timer timer;
      Workbench bench(PointSet(points), KernelType::kGaussian, options);
      double build = timer.ElapsedSeconds();
      PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
      KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
      std::printf("%-12zu %12.3f %10.3f\n", leaf, build,
                  TimeFrame(quad, grid));
    }
  }

  // (d) τKDV granularity: per-pixel vs block-level certification.
  {
    Workbench bench(PointSet(points), KernelType::kGaussian);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    MeanStd density = EstimateDensityStats(quad, grid, /*stride=*/8);

    std::printf("\n(d) τKDV granularity (QUAD, tau=mu)\n");
    std::printf("%-18s %10s %16s\n", "mode", "time(s)", "pixel evals");
    BatchStats per_pixel;
    RenderTauFrame(quad, grid, density.mean, &per_pixel);
    std::printf("%-18s %10.3f %16llu\n", "per-pixel", per_pixel.seconds,
                static_cast<unsigned long long>(per_pixel.queries));
    BlockTauStats blocked;
    RenderTauFrameBlocked(quad, grid, density.mean, &blocked);
    std::printf("%-18s %10.3f %16llu\n", "block-certified", blocked.seconds,
                static_cast<unsigned long long>(blocked.pixel_evaluations));
  }

  // (c) Safety clamp on/off.
  {
    std::printf("\n(c) trivial-bound safety clamp (QUAD)\n");
    std::printf("%-12s %10s\n", "clamp", "time(s)");
    for (bool clamp : {true, false}) {
      Workbench::Options options;
      options.bounds.clamp_with_trivial = clamp;
      Workbench bench(PointSet(points), KernelType::kGaussian, options);
      PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
      KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
      std::printf("%-12s %10.3f\n", clamp ? "on" : "off",
                  TimeFrame(quad, grid));
    }
  }
  return 0;
}
