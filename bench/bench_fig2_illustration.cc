// Figure 2: the paper's illustration of the three operations on one dataset
// — (a) exact KDV, (b) εKDV with ε = 0.01 (visually identical), (c) τKDV
// two-color map. Writes the three PPMs and quantifies the (in)visibility of
// the differences.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 2",
                         "exact KDV vs εKDV (ε=0.01) vs τKDV illustration "
                         "(crime analogue)");

  Workbench bench(GenerateMixture(CrimeSpec(kdv_bench::BenchScale())),
                  KernelType::kGaussian);
  PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());

  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  BatchStats exact_stats;
  DensityFrame truth = RenderExactFrame(exact, grid, &exact_stats);
  RenderHeatMap(truth).WritePpm("fig2a_exact.ppm");

  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  BatchStats eps_stats;
  DensityFrame approx = RenderEpsFrame(quad, grid, 0.01, &eps_stats);
  RenderHeatMap(approx).WritePpm("fig2b_ekdv.ppm");

  MeanStd stats = ComputeMeanStd(truth.values);
  double tau = stats.mean + 0.1 * stats.stddev;
  BatchStats tau_stats;
  BinaryFrame mask = RenderTauFrame(quad, grid, tau, &tau_stats);
  RenderThresholdMap(mask).WritePpm("fig2c_tkdv.ppm");

  double max_err = MaxRelativeError(approx.values, truth.values,
                                    1e-6 * stats.mean);
  size_t hot = 0;
  for (uint8_t v : mask.values) hot += v;

  std::printf("(a) exact KDV:   %.3fs -> fig2a_exact.ppm\n",
              exact_stats.seconds);
  std::printf("(b) εKDV (QUAD): %.3fs (%.0fx faster), max rel err %.2g "
              "-> fig2b_ekdv.ppm\n",
              eps_stats.seconds,
              exact_stats.seconds / std::max(eps_stats.seconds, 1e-9),
              max_err);
  std::printf("(c) τKDV (QUAD): %.3fs, tau=%.4g, %.1f%% hot pixels "
              "-> fig2c_tkdv.ppm\n",
              tau_stats.seconds, tau,
              100.0 * static_cast<double>(hot) /
                  static_cast<double>(mask.values.size()));
  return 0;
}
