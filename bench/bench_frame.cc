// Intra-frame parallel rendering throughput: serial renderers vs the tiled
// parallel renderers (viz/parallel_render.h) swept over frame thread counts
// and over the shared-traversal tile refiner (--tile-shared analogue), plus
// the AoS-vs-SoA leaf-kernel microbenchmark that underpins the EXACT method.
// Prints pixels/sec tables and writes BENCH_frame.json for machine
// consumption — CI's perf smoke parses it.
//
// The benchmark doubles as an exactness check: every per-pixel parallel
// frame is compared bitwise against the serial baseline, every SoA leaf sum
// against its AoS oracle, and every tile-shared frame against the
// EvaluateExact oracle on a pixel sample (the tile-shared path returns
// different — but still certified — estimates, so the check is the ε
// certificate itself, not bit equality). Any violation fails the run with a
// non-zero exit.
//
// Scaling knobs: KDV_BENCH_SCALE (dataset cardinality, bench_common.h),
// KDV_BENCH_FRAME_PIXELS (square frame edge; default sweeps 512 and 1024),
// KDV_BENCH_FRAME_REPS (timed repetitions, best-of, default 3),
// KDV_BENCH_DIR (directory for BENCH_frame.json, default ".").
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

using kdv::BatchStats;
using kdv::BinaryFrame;
using kdv::DensityFrame;
using kdv::KdeEvaluator;
using kdv::PixelGrid;
using kdv::QueryControl;
using kdv::RenderOptions;
using kdv::ThreadPool;

std::vector<int> FramePixelsList() {
  const char* env = std::getenv("KDV_BENCH_FRAME_PIXELS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 16) return {v};
  }
  return {512, 1024};
}

int FrameReps() {
  const char* env = std::getenv("KDV_BENCH_FRAME_REPS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 3;
}

std::string BenchDir() {
  const char* env = std::getenv("KDV_BENCH_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return ".";
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool SameBits(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

struct FrameTiming {
  double eps_seconds = 0.0;  // best-of-reps wall time
  double tau_seconds = 0.0;
  uint64_t eps_nodes_visited = 0;  // per-pixel bound evaluations
  uint64_t tau_nodes_visited = 0;
  uint64_t tile_nodes_visited = 0;  // region bound evaluations (tile pass)
  uint64_t tiles_decided = 0;
  bool identical = true;  // parallel output matched the serial baseline
  bool certified = true;  // tile-shared output satisfied its certificate
};

std::unique_ptr<ThreadPool> MakePool(int threads) {
  if (threads == 0 || kdv::ResolveRenderThreads(threads) <= 1) return nullptr;
  ThreadPool::Options popts;
  popts.num_threads =
      static_cast<size_t>(kdv::ResolveRenderThreads(threads) - 1);
  popts.max_queue = 2 * popts.num_threads + 2;
  return std::make_unique<ThreadPool>(popts);
}

// Certificate oracle for the tile-shared path: on a deterministic pixel
// sample, the εKDV estimate must satisfy |est - F| <= eps·F and the τKDV
// mask must match the exact classification. Exact sums are expensive, so the
// sample is capped; stride keeps it spread over the whole frame.
bool CheckCertificates(const KdeEvaluator& evaluator, const PixelGrid& grid,
                       double eps, double tau, const DensityFrame& eps_frame,
                       const BinaryFrame& tau_frame) {
  const size_t total = static_cast<size_t>(grid.width()) * grid.height();
  const size_t sample = 256;
  const size_t stride = std::max<size_t>(1, total / sample);
  for (size_t i = 0; i < total; i += stride) {
    const int x = static_cast<int>(i) % grid.width();
    const int y = static_cast<int>(i) / grid.width();
    const double exact = evaluator.EvaluateExact(grid.PixelCenter(x, y));
    const double est = eps_frame.values[i];
    if (std::abs(est - exact) > eps * exact + 1e-12) {
      std::fprintf(stderr,
                   "certificate violation at pixel %zu: est=%.17g exact=%.17g "
                   "eps=%g\n",
                   i, est, exact, eps);
      return false;
    }
    const bool hot = exact >= tau;
    if ((tau_frame.values[i] != 0) != hot && exact != tau) {
      std::fprintf(stderr,
                   "tau misclassification at pixel %zu: exact=%.17g tau=%.17g "
                   "mask=%d\n",
                   i, exact, tau, static_cast<int>(tau_frame.values[i]));
      return false;
    }
  }
  return true;
}

// Renders the eps and tau frames `reps` times at `threads` frame threads
// (0 = serial baseline path) and keeps the best wall time of each. Per-pixel
// parallel frames are checked bitwise against the serial baselines;
// tile-shared frames are checked against the certificate oracle instead.
FrameTiming TimeFrames(const KdeEvaluator& evaluator, const PixelGrid& grid,
                       double eps, double tau, int threads, bool tile_shared,
                       int reps, const DensityFrame* eps_baseline,
                       const BinaryFrame* tau_baseline) {
  FrameTiming timing;
  std::unique_ptr<ThreadPool> pool = MakePool(threads);
  RenderOptions options;
  options.num_threads = threads;
  options.tile_shared = tile_shared;
  QueryControl control;  // no deadline, not cancellable

  for (int rep = 0; rep < reps; ++rep) {
    BatchStats eps_stats;
    DensityFrame eps_frame =
        threads == 0 && !tile_shared
            ? kdv::RenderEpsFrame(evaluator, grid, eps, &eps_stats)
            : kdv::RenderEpsFrameParallel(evaluator, grid, eps, options,
                                          pool.get(), control, &eps_stats);
    BatchStats tau_stats;
    BinaryFrame tau_frame =
        threads == 0 && !tile_shared
            ? kdv::RenderTauFrame(evaluator, grid, tau, &tau_stats)
            : kdv::RenderTauFrameParallel(evaluator, grid, tau, options,
                                          pool.get(), control, &tau_stats);
    if (rep == 0 || eps_stats.seconds < timing.eps_seconds) {
      timing.eps_seconds = eps_stats.seconds;
    }
    if (rep == 0 || tau_stats.seconds < timing.tau_seconds) {
      timing.tau_seconds = tau_stats.seconds;
    }
    if (rep == 0) {
      timing.eps_nodes_visited = eps_stats.nodes_visited;
      timing.tau_nodes_visited = tau_stats.nodes_visited;
      timing.tile_nodes_visited =
          eps_stats.tile_nodes_visited + tau_stats.tile_nodes_visited;
      timing.tiles_decided = eps_stats.tiles_decided + tau_stats.tiles_decided;
      if (tile_shared) {
        timing.certified = CheckCertificates(evaluator, grid, eps, tau,
                                             eps_frame, tau_frame);
      }
    }
    if (!tile_shared && eps_baseline != nullptr &&
        !SameBits(eps_frame.values, eps_baseline->values)) {
      timing.identical = false;
    }
    if (tau_baseline != nullptr &&
        !SameBits(tau_frame.values, tau_baseline->values)) {
      // τKDV masks must agree bit-for-bit even tile-shared: both paths are
      // certified classifiers of the same predicate.
      timing.identical = false;
    }
  }
  return timing;
}

struct LeafTiming {
  double aos_seconds = 0.0;
  double soa_seconds = 0.0;
  uint64_t point_sums = 0;  // queries x points per timed pass
  bool identical = true;
};

// Times whole-root LeafSumAoS vs LeafSumSoA (the EXACT method's inner loop)
// over the grid's pixel centers, best-of-reps, checking bit-equality of
// every pair of sums.
LeafTiming TimeLeafKernels(const kdv::KdTree& tree,
                           const kdv::KernelParams& params,
                           const PixelGrid& grid, int reps) {
  // Enough queries to dominate timer overhead, few enough that the AoS
  // pass stays fast at full scale.
  std::vector<kdv::Point> queries = grid.AllPixelCenters();
  const size_t max_queries = 4096;
  if (queries.size() > max_queries) queries.resize(max_queries);
  const uint32_t n = static_cast<uint32_t>(tree.num_points());

  LeafTiming timing;
  timing.point_sums = static_cast<uint64_t>(queries.size()) * n;
  std::vector<double> aos_sums(queries.size());
  std::vector<double> soa_sums(queries.size());
  for (int rep = 0; rep < reps; ++rep) {
    kdv::Timer aos_timer;
    for (size_t i = 0; i < queries.size(); ++i) {
      aos_sums[i] = kdv::LeafSumAoS(tree, params, 0, n, queries[i]);
    }
    double aos_seconds = aos_timer.ElapsedSeconds();
    kdv::Timer soa_timer;
    for (size_t i = 0; i < queries.size(); ++i) {
      soa_sums[i] = kdv::LeafSumSoA(tree, params, 0, n, queries[i]);
    }
    double soa_seconds = soa_timer.ElapsedSeconds();
    if (rep == 0 || aos_seconds < timing.aos_seconds) {
      timing.aos_seconds = aos_seconds;
    }
    if (rep == 0 || soa_seconds < timing.soa_seconds) {
      timing.soa_seconds = soa_seconds;
    }
    if (!SameBits(aos_sums, soa_sums)) timing.identical = false;
  }
  return timing;
}

double PixelsPerSec(const PixelGrid& grid, double seconds) {
  return seconds > 0.0
             ? static_cast<double>(grid.width()) * grid.height() / seconds
             : 0.0;
}

double PixelsPerSec(int px, double seconds) {
  return seconds > 0.0 ? static_cast<double>(px) * px / seconds : 0.0;
}

struct Sweep {
  int threads;
  bool tile_shared;
  FrameTiming timing;
};

struct ResolutionReport {
  int px = 0;
  double tau = 0.0;
  FrameTiming serial;
  std::vector<Sweep> sweeps;
};

}  // namespace

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader(
      "Frame", "intra-frame parallel + tile-shared rendering, serial vs "
               "tiled (crime analogue, eps=0.05, tau=mean density)");

  const std::vector<int> pixel_sweep = FramePixelsList();
  const int reps = FrameReps();
  Workbench bench(GenerateMixture(CrimeSpec(kdv_bench::BenchScale())),
                  KernelType::kGaussian);
  KdeEvaluator evaluator = bench.MakeEvaluator(Method::kQuad);
  const double eps = 0.05;

  std::printf("n=%zu, reps=%d (best-of), hardware threads %u, simd %s\n",
              bench.num_points(), reps, std::thread::hardware_concurrency(),
              SimdLevelName(ActiveSimdLevel()));

  const int thread_counts[] = {1, 2, 4, 8};
  const int shared_threads[] = {1, 8};
  std::vector<ResolutionReport> reports;
  bool all_identical = true;
  bool all_certified = true;

  for (int px : pixel_sweep) {
    ResolutionReport report;
    report.px = px;
    PixelGrid grid(px, px, bench.data_bounds());
    report.tau = EstimateDensityStats(evaluator, grid, /*stride=*/8).mean;
    const double tau = report.tau;

    // Serial baselines: timing reference AND the bit-exactness oracle.
    BatchStats base_stats;
    DensityFrame eps_baseline =
        RenderEpsFrame(evaluator, grid, eps, &base_stats);
    BinaryFrame tau_baseline =
        RenderTauFrame(evaluator, grid, tau, &base_stats);
    report.serial = TimeFrames(evaluator, grid, eps, tau, /*threads=*/0,
                               /*tile_shared=*/false, reps, &eps_baseline,
                               &tau_baseline);

    std::printf("\n-- frame %dx%d --\n", px, px);
    std::printf("%14s %14s %14s %10s %12s %6s\n", "config", "eps px/sec",
                "tau px/sec", "eps spdup", "node evals", "ok");
    std::printf("%14s %14.0f %14.0f %10.2f %12llu %6s\n", "serial",
                PixelsPerSec(grid, report.serial.eps_seconds),
                PixelsPerSec(grid, report.serial.tau_seconds), 1.0,
                static_cast<unsigned long long>(
                    report.serial.eps_nodes_visited),
                report.serial.identical ? "yes" : "NO");
    all_identical = all_identical && report.serial.identical;

    for (int threads : thread_counts) {
      FrameTiming t = TimeFrames(evaluator, grid, eps, tau, threads,
                                 /*tile_shared=*/false, reps, &eps_baseline,
                                 &tau_baseline);
      all_identical = all_identical && t.identical;
      report.sweeps.push_back({threads, false, t});
      char label[32];
      std::snprintf(label, sizeof(label), "par-%d", threads);
      std::printf("%14s %14.0f %14.0f %10.2f %12llu %6s\n", label,
                  PixelsPerSec(grid, t.eps_seconds),
                  PixelsPerSec(grid, t.tau_seconds),
                  t.eps_seconds > 0.0
                      ? report.serial.eps_seconds / t.eps_seconds
                      : 0.0,
                  static_cast<unsigned long long>(t.eps_nodes_visited),
                  t.identical ? "yes" : "NO");
    }
    for (int threads : shared_threads) {
      FrameTiming t = TimeFrames(evaluator, grid, eps, tau, threads,
                                 /*tile_shared=*/true, reps,
                                 /*eps_baseline=*/nullptr, &tau_baseline);
      all_identical = all_identical && t.identical;
      all_certified = all_certified && t.certified;
      report.sweeps.push_back({threads, true, t});
      char label[32];
      std::snprintf(label, sizeof(label), "shared-%d", threads);
      std::printf("%14s %14.0f %14.0f %10.2f %12llu %6s\n", label,
                  PixelsPerSec(grid, t.eps_seconds),
                  PixelsPerSec(grid, t.tau_seconds),
                  t.eps_seconds > 0.0
                      ? report.serial.eps_seconds / t.eps_seconds
                      : 0.0,
                  static_cast<unsigned long long>(t.eps_nodes_visited),
                  t.identical && t.certified ? "yes" : "NO");
    }
    reports.push_back(std::move(report));
  }

  PixelGrid leaf_grid(reports.front().px, reports.front().px,
                      bench.data_bounds());
  LeafTiming leaf = TimeLeafKernels(bench.tree(), bench.params(), leaf_grid,
                                    reps);
  all_identical = all_identical && leaf.identical;
  const double aos_pps =
      leaf.aos_seconds > 0.0 ? leaf.point_sums / leaf.aos_seconds : 0.0;
  const double soa_pps =
      leaf.soa_seconds > 0.0 ? leaf.point_sums / leaf.soa_seconds : 0.0;
  std::printf("\nleaf kernel (EXACT whole-root sum, %llu point-sums/pass):\n",
              static_cast<unsigned long long>(leaf.point_sums));
  std::printf("%10s %14.3g points/sec\n", "AoS", aos_pps);
  std::printf("%10s %14.3g points/sec (%.2fx, bitwise %s)\n", "SoA", soa_pps,
              leaf.aos_seconds > 0.0 && leaf.soa_seconds > 0.0
                  ? leaf.aos_seconds / leaf.soa_seconds
                  : 0.0,
              leaf.identical ? "equal" : "UNEQUAL");

  // Stream to a temp and publish atomically: a crashed or interrupted bench
  // never leaves a truncated BENCH_frame.json for CI to parse.
  const std::string json_path = BenchDir() + "/BENCH_frame.json";
  const std::string json_temp = kdv::TempPathFor(json_path);
  std::FILE* json = std::fopen(json_temp.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_temp.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\":\"frame_parallel\",");
  std::fprintf(json, "\"build\":\"%s\",\"simd\":\"%s\",",
               kdv::BuildStamp().c_str(),
               SimdLevelName(ActiveSimdLevel()));
  std::fprintf(json, "\"dataset\":\"crime\",\"scale\":%.6g,",
               kdv_bench::BenchScale());
  std::fprintf(json, "\"num_points\":%zu,\"reps\":%d,", bench.num_points(),
               reps);
  std::fprintf(json, "\"hardware_threads\":%u,",
               std::thread::hardware_concurrency());
  std::fprintf(json, "\"eps\":%.6g,", eps);
  std::fprintf(json, "\"bitwise_identical\":%s,",
               all_identical ? "true" : "false");
  std::fprintf(json, "\"certified\":%s,", all_certified ? "true" : "false");
  std::fprintf(json, "\"resolutions\":[");
  for (size_t r = 0; r < reports.size(); ++r) {
    const ResolutionReport& report = reports[r];
    std::fprintf(json, "%s{\"width\":%d,\"height\":%d,\"tau\":%.17g,",
                 r == 0 ? "" : ",", report.px, report.px, report.tau);
    std::fprintf(json,
                 "\"serial\":{\"eps_pixels_per_sec\":%.3f,"
                 "\"tau_pixels_per_sec\":%.3f,"
                 "\"eps_nodes_visited\":%llu,\"tau_nodes_visited\":%llu},",
                 PixelsPerSec(report.px, report.serial.eps_seconds),
                 PixelsPerSec(report.px, report.serial.tau_seconds),
                 static_cast<unsigned long long>(
                     report.serial.eps_nodes_visited),
                 static_cast<unsigned long long>(
                     report.serial.tau_nodes_visited));
    std::fprintf(json, "\"sweeps\":[");
    for (size_t i = 0; i < report.sweeps.size(); ++i) {
      const Sweep& s = report.sweeps[i];
      std::fprintf(
          json,
          "%s{\"threads\":%d,\"tile_shared\":%s,"
          "\"eps_pixels_per_sec\":%.3f,\"tau_pixels_per_sec\":%.3f,"
          "\"eps_speedup\":%.4f,\"tau_speedup\":%.4f,"
          "\"eps_nodes_visited\":%llu,\"tau_nodes_visited\":%llu,"
          "\"tile_nodes_visited\":%llu,\"tiles_decided\":%llu}",
          i == 0 ? "" : ",", s.threads, s.tile_shared ? "true" : "false",
          PixelsPerSec(report.px, s.timing.eps_seconds),
          PixelsPerSec(report.px, s.timing.tau_seconds),
          s.timing.eps_seconds > 0.0
              ? report.serial.eps_seconds / s.timing.eps_seconds
              : 0.0,
          s.timing.tau_seconds > 0.0
              ? report.serial.tau_seconds / s.timing.tau_seconds
              : 0.0,
          static_cast<unsigned long long>(s.timing.eps_nodes_visited),
          static_cast<unsigned long long>(s.timing.tau_nodes_visited),
          static_cast<unsigned long long>(s.timing.tile_nodes_visited),
          static_cast<unsigned long long>(s.timing.tiles_decided));
    }
    std::fprintf(json, "]}");
  }
  std::fprintf(json, "],");
  // Observability block: the process metric registry after the sweeps —
  // per-stage duration quantiles and the bound-evals-per-pixel histogram
  // the renders recorded (pre-escaped JSON from JsonWriter).
  std::fprintf(json, "\"metrics\":%s,",
               kdv_bench::MetricsBlockJson().c_str());
  std::fprintf(json,
               "\"leaf_kernel\":{\"aos_points_per_sec\":%.3f,"
               "\"soa_points_per_sec\":%.3f,\"soa_speedup\":%.4f}}\n",
               aos_pps, soa_pps,
               leaf.aos_seconds > 0.0 && leaf.soa_seconds > 0.0
                   ? leaf.aos_seconds / leaf.soa_seconds
                   : 0.0);
  std::fclose(json);
  kdv::Status published = kdv::AtomicPublish(json_temp, json_path);
  if (!published.ok()) {
    std::fprintf(stderr, "cannot publish %s: %s\n", json_path.c_str(),
                 published.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!all_identical || !all_certified) {
    std::fprintf(stderr,
                 "FAIL: parallel/SoA output diverged from its baseline or a "
                 "tile-shared certificate was violated\n");
    return 1;
  }
  return 0;
}
