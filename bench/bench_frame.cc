// Intra-frame parallel rendering throughput: serial renderers vs the tiled
// parallel renderers (viz/parallel_render.h) swept over frame thread counts,
// plus the AoS-vs-SoA leaf-kernel microbenchmark that underpins the EXACT
// method. Prints pixels/sec tables and writes BENCH_frame.json (in the
// working directory) for machine consumption — CI's perf smoke parses it.
//
// The benchmark doubles as an exactness check: every parallel frame is
// compared bitwise against the serial baseline, and every SoA leaf sum
// against its AoS oracle; any mismatch fails the run with a non-zero exit.
//
// Scaling knobs: KDV_BENCH_SCALE (dataset cardinality, bench_common.h),
// KDV_BENCH_FRAME_PIXELS (square frame edge, default 512),
// KDV_BENCH_FRAME_REPS (timed repetitions, best-of, default 3).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

using kdv::BatchStats;
using kdv::BinaryFrame;
using kdv::DensityFrame;
using kdv::KdeEvaluator;
using kdv::PixelGrid;
using kdv::QueryControl;
using kdv::RenderOptions;
using kdv::ThreadPool;

int FramePixels() {
  const char* env = std::getenv("KDV_BENCH_FRAME_PIXELS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 16) return v;
  }
  return 512;
}

int FrameReps() {
  const char* env = std::getenv("KDV_BENCH_FRAME_REPS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 3;
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool SameBits(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

struct FrameTiming {
  double eps_seconds = 0.0;  // best-of-reps wall time
  double tau_seconds = 0.0;
  bool identical = true;  // parallel output matched the serial baseline
};

// Renders the eps and tau frames `reps` times at `threads` frame threads
// (0 = serial baseline path) and keeps the best wall time of each. Every
// parallel frame is checked bitwise against the serial baselines.
FrameTiming TimeFrames(const KdeEvaluator& evaluator, const PixelGrid& grid,
                       double eps, double tau, int threads, int reps,
                       const DensityFrame* eps_baseline,
                       const BinaryFrame* tau_baseline) {
  FrameTiming timing;
  std::unique_ptr<ThreadPool> pool;
  if (threads != 0 && kdv::ResolveRenderThreads(threads) > 1) {
    ThreadPool::Options popts;
    popts.num_threads =
        static_cast<size_t>(kdv::ResolveRenderThreads(threads) - 1);
    popts.max_queue = 2 * popts.num_threads + 2;
    pool = std::make_unique<ThreadPool>(popts);
  }
  RenderOptions options;
  options.num_threads = threads;
  QueryControl control;  // no deadline, not cancellable

  for (int rep = 0; rep < reps; ++rep) {
    BatchStats eps_stats;
    DensityFrame eps_frame =
        threads == 0
            ? kdv::RenderEpsFrame(evaluator, grid, eps, &eps_stats)
            : kdv::RenderEpsFrameParallel(evaluator, grid, eps, options,
                                          pool.get(), control, &eps_stats);
    BatchStats tau_stats;
    BinaryFrame tau_frame =
        threads == 0
            ? kdv::RenderTauFrame(evaluator, grid, tau, &tau_stats)
            : kdv::RenderTauFrameParallel(evaluator, grid, tau, options,
                                          pool.get(), control, &tau_stats);
    if (rep == 0 || eps_stats.seconds < timing.eps_seconds) {
      timing.eps_seconds = eps_stats.seconds;
    }
    if (rep == 0 || tau_stats.seconds < timing.tau_seconds) {
      timing.tau_seconds = tau_stats.seconds;
    }
    if (eps_baseline != nullptr &&
        !SameBits(eps_frame.values, eps_baseline->values)) {
      timing.identical = false;
    }
    if (tau_baseline != nullptr &&
        !SameBits(tau_frame.values, tau_baseline->values)) {
      timing.identical = false;
    }
  }
  return timing;
}

struct LeafTiming {
  double aos_seconds = 0.0;
  double soa_seconds = 0.0;
  uint64_t point_sums = 0;  // queries x points per timed pass
  bool identical = true;
};

// Times whole-root LeafSumAoS vs LeafSumSoA (the EXACT method's inner loop)
// over the grid's pixel centers, best-of-reps, checking bit-equality of
// every pair of sums.
LeafTiming TimeLeafKernels(const kdv::KdTree& tree,
                           const kdv::KernelParams& params,
                           const PixelGrid& grid, int reps) {
  // Enough queries to dominate timer overhead, few enough that the AoS
  // pass stays fast at full scale.
  std::vector<kdv::Point> queries = grid.AllPixelCenters();
  const size_t max_queries = 4096;
  if (queries.size() > max_queries) queries.resize(max_queries);
  const uint32_t n = static_cast<uint32_t>(tree.num_points());

  LeafTiming timing;
  timing.point_sums = static_cast<uint64_t>(queries.size()) * n;
  std::vector<double> aos_sums(queries.size());
  std::vector<double> soa_sums(queries.size());
  for (int rep = 0; rep < reps; ++rep) {
    kdv::Timer aos_timer;
    for (size_t i = 0; i < queries.size(); ++i) {
      aos_sums[i] = kdv::LeafSumAoS(tree, params, 0, n, queries[i]);
    }
    double aos_seconds = aos_timer.ElapsedSeconds();
    kdv::Timer soa_timer;
    for (size_t i = 0; i < queries.size(); ++i) {
      soa_sums[i] = kdv::LeafSumSoA(tree, params, 0, n, queries[i]);
    }
    double soa_seconds = soa_timer.ElapsedSeconds();
    if (rep == 0 || aos_seconds < timing.aos_seconds) {
      timing.aos_seconds = aos_seconds;
    }
    if (rep == 0 || soa_seconds < timing.soa_seconds) {
      timing.soa_seconds = soa_seconds;
    }
    if (!SameBits(aos_sums, soa_sums)) timing.identical = false;
  }
  return timing;
}

double PixelsPerSec(const PixelGrid& grid, double seconds) {
  return seconds > 0.0
             ? static_cast<double>(grid.width()) * grid.height() / seconds
             : 0.0;
}

}  // namespace

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader(
      "Frame", "intra-frame parallel rendering, serial vs tiled "
               "(crime analogue, eps=0.05, tau=mean density)");

  const int px = FramePixels();
  const int reps = FrameReps();
  Workbench bench(GenerateMixture(CrimeSpec(kdv_bench::BenchScale())),
                  KernelType::kGaussian);
  KdeEvaluator evaluator = bench.MakeEvaluator(Method::kQuad);
  PixelGrid grid(px, px, bench.data_bounds());
  const double eps = 0.05;
  const double tau = EstimateDensityStats(evaluator, grid, /*stride=*/8).mean;

  std::printf("frame %dx%d, n=%zu, reps=%d (best-of), hardware threads %u\n",
              px, px, bench.num_points(), reps,
              std::thread::hardware_concurrency());

  // Serial baselines: timing reference AND the bit-exactness oracle.
  BatchStats base_stats;
  DensityFrame eps_baseline = RenderEpsFrame(evaluator, grid, eps, &base_stats);
  BinaryFrame tau_baseline = RenderTauFrame(evaluator, grid, tau, &base_stats);
  FrameTiming serial = TimeFrames(evaluator, grid, eps, tau, /*threads=*/0,
                                  reps, &eps_baseline, &tau_baseline);

  std::printf("\n%10s %14s %14s %10s %10s %6s\n", "config", "eps px/sec",
              "tau px/sec", "eps spdup", "tau spdup", "exact");
  std::printf("%10s %14.0f %14.0f %10.2f %10.2f %6s\n", "serial",
              PixelsPerSec(grid, serial.eps_seconds),
              PixelsPerSec(grid, serial.tau_seconds), 1.0, 1.0,
              serial.identical ? "yes" : "NO");

  const int thread_counts[] = {1, 2, 4, 8};
  struct Sweep {
    int threads;
    FrameTiming timing;
  };
  std::vector<Sweep> sweeps;
  bool all_identical = serial.identical;
  for (int threads : thread_counts) {
    FrameTiming t = TimeFrames(evaluator, grid, eps, tau, threads, reps,
                               &eps_baseline, &tau_baseline);
    all_identical = all_identical && t.identical;
    sweeps.push_back({threads, t});
    char label[32];
    std::snprintf(label, sizeof(label), "par-%d", threads);
    std::printf("%10s %14.0f %14.0f %10.2f %10.2f %6s\n", label,
                PixelsPerSec(grid, t.eps_seconds),
                PixelsPerSec(grid, t.tau_seconds),
                t.eps_seconds > 0.0 ? serial.eps_seconds / t.eps_seconds : 0.0,
                t.tau_seconds > 0.0 ? serial.tau_seconds / t.tau_seconds : 0.0,
                t.identical ? "yes" : "NO");
  }

  LeafTiming leaf = TimeLeafKernels(bench.tree(), bench.params(), grid, reps);
  all_identical = all_identical && leaf.identical;
  const double aos_pps =
      leaf.aos_seconds > 0.0 ? leaf.point_sums / leaf.aos_seconds : 0.0;
  const double soa_pps =
      leaf.soa_seconds > 0.0 ? leaf.point_sums / leaf.soa_seconds : 0.0;
  std::printf("\nleaf kernel (EXACT whole-root sum, %llu point-sums/pass):\n",
              static_cast<unsigned long long>(leaf.point_sums));
  std::printf("%10s %14.3g points/sec\n", "AoS", aos_pps);
  std::printf("%10s %14.3g points/sec (%.2fx, bitwise %s)\n", "SoA", soa_pps,
              leaf.aos_seconds > 0.0 && leaf.soa_seconds > 0.0
                  ? leaf.aos_seconds / leaf.soa_seconds
                  : 0.0,
              leaf.identical ? "equal" : "UNEQUAL");

  // Stream to a temp and publish atomically: a crashed or interrupted bench
  // never leaves a truncated BENCH_frame.json for CI to parse.
  const std::string json_path = "BENCH_frame.json";
  const std::string json_temp = kdv::TempPathFor(json_path);
  std::FILE* json = std::fopen(json_temp.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_temp.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\":\"frame_parallel\",");
  std::fprintf(json, "\"dataset\":\"crime\",\"scale\":%.6g,",
               kdv_bench::BenchScale());
  std::fprintf(json, "\"width\":%d,\"height\":%d,", grid.width(),
               grid.height());
  std::fprintf(json, "\"num_points\":%zu,\"reps\":%d,", bench.num_points(),
               reps);
  std::fprintf(json, "\"hardware_threads\":%u,",
               std::thread::hardware_concurrency());
  std::fprintf(json, "\"eps\":%.6g,\"tau\":%.17g,", eps, tau);
  std::fprintf(json, "\"bitwise_identical\":%s,",
               all_identical ? "true" : "false");
  std::fprintf(json,
               "\"serial\":{\"eps_pixels_per_sec\":%.3f,"
               "\"tau_pixels_per_sec\":%.3f},",
               PixelsPerSec(grid, serial.eps_seconds),
               PixelsPerSec(grid, serial.tau_seconds));
  std::fprintf(json, "\"sweeps\":[");
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const Sweep& s = sweeps[i];
    std::fprintf(json,
                 "%s{\"threads\":%d,\"eps_pixels_per_sec\":%.3f,"
                 "\"tau_pixels_per_sec\":%.3f,"
                 "\"eps_speedup\":%.4f,\"tau_speedup\":%.4f}",
                 i == 0 ? "" : ",", s.threads,
                 PixelsPerSec(grid, s.timing.eps_seconds),
                 PixelsPerSec(grid, s.timing.tau_seconds),
                 s.timing.eps_seconds > 0.0
                     ? serial.eps_seconds / s.timing.eps_seconds
                     : 0.0,
                 s.timing.tau_seconds > 0.0
                     ? serial.tau_seconds / s.timing.tau_seconds
                     : 0.0);
  }
  std::fprintf(json, "],");
  std::fprintf(json,
               "\"leaf_kernel\":{\"aos_points_per_sec\":%.3f,"
               "\"soa_points_per_sec\":%.3f,\"soa_speedup\":%.4f}}\n",
               aos_pps, soa_pps,
               leaf.aos_seconds > 0.0 && leaf.soa_seconds > 0.0
                   ? leaf.aos_seconds / leaf.soa_seconds
                   : 0.0);
  std::fclose(json);
  kdv::Status published = kdv::AtomicPublish(json_temp, json_path);
  if (!published.ok()) {
    std::fprintf(stderr, "cannot publish %s: %s\n", json_path.c_str(),
                 published.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_frame.json\n");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel or SoA output diverged from the serial/AoS "
                 "baseline\n");
    return 1;
  }
  return 0;
}
