// Micro-benchmarks (google-benchmark): per-node bound evaluation costs,
// validating the paper's complexity claims — O(d) for aKDE/KARL and the
// distance-kernel QUAD bounds, O(d^2) for the Gaussian QUAD bounds — plus
// the aggregate-statistics primitives and index build.
#include <memory>

#include <benchmark/benchmark.h>

#include "quadkdv.h"

namespace {

kdv::PointSet RandomPoints(int n, int dim, uint64_t seed) {
  kdv::Rng rng(seed);
  kdv::PointSet pts;
  for (int i = 0; i < n; ++i) {
    kdv::Point p(dim);
    for (int j = 0; j < dim; ++j) p[j] = rng.NextDouble();
    pts.push_back(p);
  }
  return pts;
}

struct Fixture {
  explicit Fixture(int dim)
      : points(RandomPoints(256, dim, 7)),
        stats(kdv::NodeStats::Compute(points.data(), points.size())),
        query(dim) {
    kdv::Rng rng(11);
    for (int j = 0; j < dim; ++j) query[j] = rng.Uniform(-1.0, 2.0);
  }
  kdv::PointSet points;
  kdv::NodeStats stats;
  kdv::Point query;
};

void BM_SumSquaredDistances(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.stats.SumSquaredDistances(f.query));
  }
}
BENCHMARK(BM_SumSquaredDistances)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SumQuarticDistances(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.stats.SumQuarticDistances(f.query));
  }
}
BENCHMARK(BM_SumQuarticDistances)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

template <kdv::Method M, kdv::KernelType K>
void BM_BoundEvaluate(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  kdv::KernelParams params;
  params.type = K;
  params.gamma = 2.0;
  params.weight = 1.0;
  std::unique_ptr<kdv::NodeBounds> bounds = kdv::MakeNodeBounds(M, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds->Evaluate(f.stats, f.query));
  }
}

BENCHMARK(BM_BoundEvaluate<kdv::Method::kAkde, kdv::KernelType::kGaussian>)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16);
BENCHMARK(BM_BoundEvaluate<kdv::Method::kKarl, kdv::KernelType::kGaussian>)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16);
BENCHMARK(BM_BoundEvaluate<kdv::Method::kQuad, kdv::KernelType::kGaussian>)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16);
BENCHMARK(
    BM_BoundEvaluate<kdv::Method::kQuad, kdv::KernelType::kTriangular>)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16);
BENCHMARK(BM_BoundEvaluate<kdv::Method::kQuad, kdv::KernelType::kCosine>)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16);
BENCHMARK(
    BM_BoundEvaluate<kdv::Method::kQuad, kdv::KernelType::kExponential>)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16);

void BM_KdTreeBuild(benchmark::State& state) {
  kdv::PointSet pts = RandomPoints(static_cast<int>(state.range(0)), 2, 3);
  for (auto _ : state) {
    kdv::KdTree tree{kdv::PointSet(pts)};
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EpsQueryQuad(benchmark::State& state) {
  kdv::PointSet pts =
      kdv::GenerateMixture(kdv::CrimeSpec(0.01));
  kdv::Workbench bench(std::move(pts), kdv::KernelType::kGaussian);
  kdv::KdeEvaluator quad = bench.MakeEvaluator(kdv::Method::kQuad);
  kdv::Point q = bench.data_bounds().Center();
  for (auto _ : state) {
    benchmark::DoNotOptimize(quad.EvaluateEps(q, 0.01));
  }
}
BENCHMARK(BM_EpsQueryQuad);

}  // namespace

BENCHMARK_MAIN();
