// Table 5 (datasets) and Table 6 (method support matrix), plus index build
// statistics for each dataset analogue at the bench scale.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Table 5 & 6", "datasets and method support matrix");

  std::printf("\nTable 5: datasets (paper cardinality -> bench cardinality)\n");
  std::printf("%-10s %12s %12s %8s %8s %10s\n", "name", "paper n", "bench n",
              "dim", "depth", "build(s)");
  for (const MixtureSpec& full : PaperDatasetSpecs(1.0)) {
    MixtureSpec scaled = full;
    scaled.n = std::max<size_t>(
        100, static_cast<size_t>(full.n * kdv_bench::BenchScale()));
    PointSet pts = GenerateMixture(scaled);
    Timer timer;
    Workbench bench(std::move(pts), KernelType::kGaussian);
    double build_s = timer.ElapsedSeconds();
    std::printf("%-10s %12zu %12zu %8d %8d %10.3f\n", full.name.c_str(),
                full.n, bench.num_points(), bench.tree().dim(),
                bench.tree().Depth(), build_s);
  }

  std::printf("\nTable 6: operation support per method (X = supported)\n");
  std::printf("%-10s %8s %8s %8s %8s %8s\n", "op/kernel", "EXACT", "aKDE",
              "tKDC", "KARL", "QUAD");
  PointSet probe = GenerateMixture(MixtureSpec{});
  const KernelType kernels[] = {KernelType::kGaussian, KernelType::kTriangular,
                                KernelType::kCosine, KernelType::kExponential};
  for (KernelType kernel : kernels) {
    Workbench bench(PointSet(probe), kernel);
    std::printf("%-10s %8s %8s %8s %8s %8s\n", KernelTypeName(kernel),
                bench.Supports(Method::kExact) ? "X" : "-",
                bench.Supports(Method::kAkde) ? "X" : "-",
                bench.Supports(Method::kTkdc) ? "X" : "-",
                bench.Supports(Method::kKarl) ? "X" : "-",
                bench.Supports(Method::kQuad) ? "X" : "-");
  }
  std::printf("\n(εKDV additionally supported by Z-order sampling; τKDV by "
              "tKDC/KARL/QUAD — paper Table 6.)\n");
  return 0;
}
