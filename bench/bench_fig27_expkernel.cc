// Figure 27 (appendix §9.7): exponential kernel — εKDV response time on the
// crime and hep analogues (aKDE, Z-order, QUAD) and τKDV response time
// (tKDC, QUAD). Paper result: QUAD keeps its ≥1 order-of-magnitude lead; on
// hep the paper's tKDC exceeded the 2-hour budget entirely.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 27",
                         "exponential kernel: εKDV and τKDV response time "
                         "(s)");

  const MixtureSpec specs[] = {CrimeSpec(kdv_bench::BenchScale()),
                               HepSpec(kdv_bench::BenchScale())};
  const std::vector<double> eps_values = {0.01, 0.02, 0.03, 0.04, 0.05};
  const double ks[] = {-0.2, -0.1, 0.0, 0.1, 0.2};

  std::FILE* csv = std::fopen("fig27.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "dataset,op,x,method,seconds\n");

  for (const MixtureSpec& spec : specs) {
    Workbench bench(GenerateMixture(spec), KernelType::kExponential);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());

    std::printf("\n(%s, exponential kernel, n=%zu) — εKDV\n",
                spec.name.c_str(), bench.num_points());
    std::printf("%-8s %10s %10s %10s\n", "eps", "aKDE", "QUAD", "Z-order");
    for (double eps : eps_values) {
      double secs[3];
      {
        KdeEvaluator akde = bench.MakeEvaluator(Method::kAkde);
        BatchStats stats;
        RenderEpsFrame(akde, grid, eps, &stats);
        secs[0] = stats.seconds;
      }
      {
        KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
        BatchStats stats;
        RenderEpsFrame(quad, grid, eps, &stats);
        secs[1] = stats.seconds;
      }
      {
        KdeEvaluator zorder = bench.MakeZorderEvaluator(eps);
        BatchStats stats;
        RenderEpsFrame(zorder, grid, eps, &stats);
        secs[2] = stats.seconds;
      }
      std::printf("%-8.2f %10.3f %10.3f %10.3f\n", eps, secs[0], secs[1],
                  secs[2]);
      if (csv != nullptr) {
        std::fprintf(csv, "%s,eps,%g,aKDE,%.6f\n", spec.name.c_str(), eps,
                     secs[0]);
        std::fprintf(csv, "%s,eps,%g,QUAD,%.6f\n", spec.name.c_str(), eps,
                     secs[1]);
        std::fprintf(csv, "%s,eps,%g,Z-order,%.6f\n", spec.name.c_str(), eps,
                     secs[2]);
      }
    }

    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/8);
    std::printf("\n(%s, exponential kernel) — τKDV (mu=%.4g, sigma=%.4g)\n",
                spec.name.c_str(), stats.mean, stats.stddev);
    std::printf("%-12s %10s %10s\n", "tau", "tKDC", "QUAD");
    for (double k : ks) {
      double tau = std::max(stats.mean + k * stats.stddev, 1e-12);
      double secs[2];
      {
        KdeEvaluator tkdc = bench.MakeEvaluator(Method::kTkdc);
        BatchStats bstats;
        RenderTauFrame(tkdc, grid, tau, &bstats);
        secs[0] = bstats.seconds;
      }
      {
        BatchStats bstats;
        RenderTauFrame(quad, grid, tau, &bstats);
        secs[1] = bstats.seconds;
      }
      std::printf("mu%+.1fsigma   %10.3f %10.3f\n", k, secs[0], secs[1]);
      if (csv != nullptr) {
        std::fprintf(csv, "%s,tau,%.1f,tKDC,%.6f\n", spec.name.c_str(), k,
                     secs[0]);
        std::fprintf(csv, "%s,tau,%.1f,QUAD,%.6f\n", spec.name.c_str(), k,
                     secs[1]);
      }
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig27.csv\n");
  return 0;
}
