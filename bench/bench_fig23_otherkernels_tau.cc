// Figure 23: τKDV response time for triangular and cosine kernels on the
// crime and hep analogues (tKDC vs QUAD), sweeping τ ∈ {μ±kσ}. Paper result:
// QUAD outperforms tKDC by at least one order of magnitude.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 23",
                         "τKDV response time (s) for triangular / cosine "
                         "kernels, varying τ");

  const KernelType kernels[] = {KernelType::kTriangular, KernelType::kCosine};
  const MixtureSpec specs[] = {CrimeSpec(kdv_bench::BenchScale()),
                               HepSpec(kdv_bench::BenchScale())};
  const double ks[] = {-0.2, -0.1, 0.0, 0.1, 0.2};

  std::FILE* csv = std::fopen("fig23.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "dataset,kernel,k,method,seconds\n");

  for (const MixtureSpec& spec : specs) {
    PointSet points = GenerateMixture(spec);
    for (KernelType kernel : kernels) {
      Workbench bench(PointSet(points), kernel);
      PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());

      KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
      MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/8);

      std::printf("\n(%s, %s kernel, n=%zu, mu=%.4g, sigma=%.4g)\n",
                  spec.name.c_str(), KernelTypeName(kernel),
                  bench.num_points(), stats.mean, stats.stddev);
      std::printf("%-12s %10s %10s\n", "tau", "tKDC", "QUAD");

      for (double k : ks) {
        double tau = std::max(stats.mean + k * stats.stddev, 1e-12);
        double secs[2];
        {
          KdeEvaluator tkdc = bench.MakeEvaluator(Method::kTkdc);
          BatchStats bstats;
          RenderTauFrame(tkdc, grid, tau, &bstats);
          secs[0] = bstats.seconds;
        }
        {
          BatchStats bstats;
          RenderTauFrame(quad, grid, tau, &bstats);
          secs[1] = bstats.seconds;
        }
        std::printf("mu%+.1fsigma   %10.3f %10.3f\n", k, secs[0], secs[1]);
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%s,%.1f,tKDC,%.6f\n", spec.name.c_str(),
                       KernelTypeName(kernel), k, secs[0]);
          std::fprintf(csv, "%s,%s,%.1f,QUAD,%.6f\n", spec.name.c_str(),
                       KernelTypeName(kernel), k, secs[1]);
        }
      }
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig23.csv\n");
  return 0;
}
