// Figure 16: εKDV response time vs screen resolution (ε = 0.01). The paper
// sweeps 320x240 .. 2560x1920; we sweep the same 4:3 ladder scaled around
// KDV_BENCH_PIXELS. Paper result: QUAD wins at every resolution and time
// grows ~linearly in pixel count for all methods.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 16",
                         "εKDV response time (s), varying resolution, "
                         "eps=0.01, Gaussian kernel");

  const int base = kdv_bench::BenchPixelsX();
  const std::vector<int> widths = {base / 4, base / 2, base, base * 2};
  const double eps = 0.01;

  std::FILE* csv = std::fopen("fig16.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "dataset,width,method,seconds\n");

  for (const MixtureSpec& spec : PaperDatasetSpecs(kdv_bench::BenchScale())) {
    Workbench bench(GenerateMixture(spec), KernelType::kGaussian);
    std::printf("\n(%s, n=%zu)\n", spec.name.c_str(), bench.num_points());
    std::printf("%-12s %10s %10s %10s %10s\n", "resolution", "aKDE", "KARL",
                "QUAD", "Z-order");

    for (int w : widths) {
      PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds(), w);
      double secs[4];
      const Method methods[] = {Method::kAkde, Method::kKarl, Method::kQuad};
      for (int i = 0; i < 3; ++i) {
        KdeEvaluator evaluator = bench.MakeEvaluator(methods[i]);
        BatchStats stats;
        RenderEpsFrame(evaluator, grid, eps, &stats);
        secs[i] = stats.seconds;
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%d,%s,%.6f\n", spec.name.c_str(), w,
                       MethodName(methods[i]), stats.seconds);
        }
      }
      {
        KdeEvaluator zorder = bench.MakeZorderEvaluator(eps);
        BatchStats stats;
        RenderEpsFrame(zorder, grid, eps, &stats);
        secs[3] = stats.seconds;
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%d,Z-order,%.6f\n", spec.name.c_str(), w,
                       stats.seconds);
        }
      }
      char res[32];
      std::snprintf(res, sizeof(res), "%dx%d", w, w * 3 / 4);
      std::printf("%-12s %10.3f %10.3f %10.3f %10.3f\n", res, secs[0],
                  secs[1], secs[2], secs[3]);
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig16.csv\n");
  return 0;
}
