// Figure 22: εKDV response time for triangular and cosine kernels on the
// crime and hep analogues (aKDE, Z-order, QUAD; KARL is not applicable to
// distance-argument kernels, paper §5.1). Paper result: QUAD is at least an
// order of magnitude faster than aKDE and beats Z-order especially at small
// ε.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 22",
                         "εKDV response time (s) for triangular / cosine "
                         "kernels, varying ε");

  const std::vector<double> eps_values = {0.01, 0.02, 0.03, 0.04, 0.05};
  const KernelType kernels[] = {KernelType::kTriangular, KernelType::kCosine};
  const MixtureSpec specs[] = {CrimeSpec(kdv_bench::BenchScale()),
                               HepSpec(kdv_bench::BenchScale())};

  std::FILE* csv = std::fopen("fig22.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "dataset,kernel,eps,method,seconds\n");

  for (const MixtureSpec& spec : specs) {
    PointSet points = GenerateMixture(spec);
    for (KernelType kernel : kernels) {
      Workbench bench(PointSet(points), kernel);
      PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());
      std::printf("\n(%s, %s kernel, n=%zu; KARL unsupported)\n",
                  spec.name.c_str(), KernelTypeName(kernel),
                  bench.num_points());
      std::printf("%-8s %10s %10s %10s\n", "eps", "aKDE", "QUAD", "Z-order");

      for (double eps : eps_values) {
        double secs[3];
        {
          KdeEvaluator akde = bench.MakeEvaluator(Method::kAkde);
          BatchStats stats;
          RenderEpsFrame(akde, grid, eps, &stats);
          secs[0] = stats.seconds;
        }
        {
          KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
          BatchStats stats;
          RenderEpsFrame(quad, grid, eps, &stats);
          secs[1] = stats.seconds;
        }
        {
          KdeEvaluator zorder = bench.MakeZorderEvaluator(eps);
          BatchStats stats;
          RenderEpsFrame(zorder, grid, eps, &stats);
          secs[2] = stats.seconds;
        }
        std::printf("%-8.2f %10.3f %10.3f %10.3f\n", eps, secs[0], secs[1],
                    secs[2]);
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%s,%g,aKDE,%.6f\n", spec.name.c_str(),
                       KernelTypeName(kernel), eps, secs[0]);
          std::fprintf(csv, "%s,%s,%g,QUAD,%.6f\n", spec.name.c_str(),
                       KernelTypeName(kernel), eps, secs[1]);
          std::fprintf(csv, "%s,%s,%g,Z-order,%.6f\n", spec.name.c_str(),
                       KernelTypeName(kernel), eps, secs[2]);
        }
      }
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig22.csv\n");
  return 0;
}
