// Figure 17: response time vs dataset size on the hep analogue:
// (a) εKDV with ε = 0.01 (aKDE, KARL, QUAD, Z-order) and
// (b) τKDV with τ = μ (tKDC, KARL, QUAD).
// The paper samples hep down to 1M/3M/5M/7M; we sweep the same fractions of
// the bench-scaled hep cardinality.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 17",
                         "response time (s) vs dataset size (hep analogue)");

  MixtureSpec hep = HepSpec(kdv_bench::BenchScale());
  PointSet full = GenerateMixture(hep);
  const std::vector<double> fractions = {1.0 / 7, 3.0 / 7, 5.0 / 7, 1.0};
  const double eps = 0.01;

  std::FILE* csv = std::fopen("fig17.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "op,n,method,seconds\n");

  std::printf("\n(a) εKDV, eps=0.01\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "n", "aKDE", "KARL", "QUAD",
              "Z-order");
  for (double frac : fractions) {
    size_t n = static_cast<size_t>(full.size() * frac);
    PointSet subset = SamplePoints(full, n, /*seed=*/99);
    Workbench bench(std::move(subset), KernelType::kGaussian);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());

    double secs[4];
    const Method methods[] = {Method::kAkde, Method::kKarl, Method::kQuad};
    for (int i = 0; i < 3; ++i) {
      KdeEvaluator evaluator = bench.MakeEvaluator(methods[i]);
      BatchStats stats;
      RenderEpsFrame(evaluator, grid, eps, &stats);
      secs[i] = stats.seconds;
      if (csv != nullptr) {
        std::fprintf(csv, "eps,%zu,%s,%.6f\n", n, MethodName(methods[i]),
                     stats.seconds);
      }
    }
    {
      KdeEvaluator zorder = bench.MakeZorderEvaluator(eps);
      BatchStats stats;
      RenderEpsFrame(zorder, grid, eps, &stats);
      secs[3] = stats.seconds;
      if (csv != nullptr) {
        std::fprintf(csv, "eps,%zu,Z-order,%.6f\n", n, stats.seconds);
      }
    }
    std::printf("%-10zu %10.3f %10.3f %10.3f %10.3f\n", n, secs[0], secs[1],
                secs[2], secs[3]);
  }

  std::printf("\n(b) τKDV, tau=mu\n");
  std::printf("%-10s %10s %10s %10s\n", "n", "tKDC", "KARL", "QUAD");
  for (double frac : fractions) {
    size_t n = static_cast<size_t>(full.size() * frac);
    PointSet subset = SamplePoints(full, n, /*seed=*/99);
    Workbench bench(std::move(subset), KernelType::kGaussian);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());

    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    double tau = EstimateDensityStats(quad, grid, /*stride=*/8).mean;

    double secs[3];
    const Method methods[] = {Method::kTkdc, Method::kKarl, Method::kQuad};
    for (int i = 0; i < 3; ++i) {
      KdeEvaluator evaluator = bench.MakeEvaluator(methods[i]);
      BatchStats stats;
      RenderTauFrame(evaluator, grid, tau, &stats);
      secs[i] = stats.seconds;
      if (csv != nullptr) {
        std::fprintf(csv, "tau,%zu,%s,%.6f\n", n, MethodName(methods[i]),
                     stats.seconds);
      }
    }
    std::printf("%-10zu %10.3f %10.3f %10.3f\n", n, secs[0], secs[1],
                secs[2]);
  }

  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig17.csv\n");
  return 0;
}
