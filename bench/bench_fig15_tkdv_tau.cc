// Figure 15: τKDV response time vs threshold τ ∈ {μ±kσ} on the four
// datasets (tKDC, KARL, QUAD). Paper result: QUAD wins by at least one order
// of magnitude for every τ.
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader(
      "Figure 15", "τKDV response time (s), varying τ, Gaussian kernel");

  std::FILE* csv = std::fopen("fig15.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "dataset,k,method,seconds\n");

  for (const MixtureSpec& spec : PaperDatasetSpecs(kdv_bench::BenchScale())) {
    Workbench bench(GenerateMixture(spec), KernelType::kGaussian);
    PixelGrid grid = kdv_bench::MakeGrid(bench.data_bounds());

    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/8);
    std::vector<double> taus = TauSweep(stats);
    const double ks[] = {-0.3, -0.2, -0.1, 0.0, 0.1, 0.2, 0.3};

    std::printf("\n(%s, n=%zu, mu=%.4g, sigma=%.4g)\n", spec.name.c_str(),
                bench.num_points(), stats.mean, stats.stddev);
    std::printf("%-12s %10s %10s %10s\n", "tau", "tKDC", "KARL", "QUAD");

    for (size_t t = 0; t < taus.size(); ++t) {
      double secs[3];
      const Method methods[] = {Method::kTkdc, Method::kKarl, Method::kQuad};
      for (int i = 0; i < 3; ++i) {
        KdeEvaluator evaluator = bench.MakeEvaluator(methods[i]);
        BatchStats bstats;
        RenderTauFrame(evaluator, grid, taus[t], &bstats);
        secs[i] = bstats.seconds;
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%.1f,%s,%.6f\n", spec.name.c_str(), ks[t],
                       MethodName(methods[i]), bstats.seconds);
        }
      }
      std::printf("mu%+.1fsigma   %10.3f %10.3f %10.3f\n", ks[t], secs[0],
                  secs[1], secs[2]);
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig15.csv\n");
  return 0;
}
