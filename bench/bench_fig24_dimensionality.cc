// Figure 24: general kernel density estimation throughput (queries/sec) vs
// dimensionality on the home and hep analogues. Following the paper, a
// higher-dimensional dataset is reduced to d ∈ {2,4,6,8,10} via PCA, then
// εKDE point queries (ε = 0.01, Gaussian) run under SCAN (exact), aKDE,
// KARL and QUAD. Paper result: throughput of all bound-based methods decays
// with d, but QUAD stays on top; Z-order is omitted (2-d only).
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace {

kdv::PointSet RandomQueries(const kdv::PointSet& data, int count,
                            uint64_t seed) {
  kdv::Rect box = kdv::BoundingBox(data);
  kdv::Rng rng(seed);
  kdv::PointSet queries;
  for (int i = 0; i < count; ++i) {
    kdv::Point q(box.dim());
    for (int j = 0; j < box.dim(); ++j) {
      q[j] = rng.Uniform(box.lo(j), box.hi(j));
    }
    queries.push_back(q);
  }
  return queries;
}

}  // namespace

int main() {
  using namespace kdv;
  kdv_bench::PrintHeader("Figure 24",
                         "KDE throughput (queries/sec) vs dimensionality "
                         "(PCA-projected, eps=0.01)");

  const std::vector<int> dims = {2, 4, 6, 8, 10};
  const int kQueries = 200;
  const double eps = 0.01;

  struct Source {
    const char* name;
    MixtureSpec spec;
  };
  MixtureSpec home = HomeSpec(kdv_bench::BenchScale());
  home.dim = 10;
  MixtureSpec hep = HepSpec(kdv_bench::BenchScale());
  hep.dim = 10;
  const Source sources[] = {{"home", home}, {"hep", hep}};

  std::FILE* csv = std::fopen("fig24.csv", "w");
  if (csv != nullptr) {
    std::fprintf(csv, "dataset,dim,method,queries_per_sec\n");
  }

  for (const Source& source : sources) {
    PointSet raw = GenerateMixture(source.spec);
    std::printf("\n(%s, n=%zu, source dim=%d)\n", source.name, raw.size(),
                source.spec.dim);
    std::printf("%-6s %12s %12s %12s %12s\n", "dim", "SCAN", "aKDE", "KARL",
                "QUAD");

    for (int d : dims) {
      PointSet projected = PcaProject(raw, d);
      Workbench bench(std::move(projected), KernelType::kGaussian);
      PointSet queries = RandomQueries(bench.tree().points(), kQueries,
                                       1000 + d);

      double qps[4];
      {
        KdeEvaluator scan = bench.MakeEvaluator(Method::kExact);
        BatchStats stats;
        RunExactBatch(scan, queries, &stats);
        qps[0] = stats.queries / std::max(stats.seconds, 1e-9);
      }
      const Method methods[] = {Method::kAkde, Method::kKarl, Method::kQuad};
      for (int i = 0; i < 3; ++i) {
        KdeEvaluator evaluator = bench.MakeEvaluator(methods[i]);
        BatchStats stats;
        RunEpsBatch(evaluator, queries, eps, &stats);
        qps[i + 1] = stats.queries / std::max(stats.seconds, 1e-9);
      }
      std::printf("%-6d %12.1f %12.1f %12.1f %12.1f\n", d, qps[0], qps[1],
                  qps[2], qps[3]);
      if (csv != nullptr) {
        const char* names[] = {"SCAN", "aKDE", "KARL", "QUAD"};
        for (int i = 0; i < 4; ++i) {
          std::fprintf(csv, "%s,%d,%s,%.3f\n", source.name, d, names[i],
                       qps[i]);
        }
      }
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nwrote fig24.csv\n");
  return 0;
}
