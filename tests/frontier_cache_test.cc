// FrontierCache: the epoch-keyed LRU cache of tile-shared refinement
// frontiers (viz/frontier_cache.h). Covers LRU eviction order, same-key
// replacement, the capacity-0 (disabled) and capacity-1 edges, and
// concurrent Lookup/Insert. The capacity-0 cases are the regression tests
// for the Insert that took the evict branch on an empty slot vector.
#include "viz/frontier_cache.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace kdv {
namespace {

FrontierKey KeyFor(uint64_t epoch, double param) {
  FrontierKey key;
  key.epoch = epoch;
  key.width = 64;
  key.height = 48;
  key.hi0 = 1.0;
  key.hi1 = 1.0;
  key.tile_rows = 16;
  key.tile_cols = 16;
  key.param = param;
  return key;
}

std::shared_ptr<const FrameFrontiers> FrameWith(double base_lower) {
  auto frame = std::make_shared<FrameFrontiers>(1);
  (*frame)[0].base_lower = base_lower;
  return frame;
}

TEST(FrontierCacheTest, LookupMissesOnEmptyCache) {
  FrontierCache cache;
  EXPECT_EQ(cache.Lookup(KeyFor(1, 0.05)), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FrontierCacheTest, InsertThenLookupHits) {
  FrontierCache cache;
  const FrontierKey key = KeyFor(1, 0.05);
  cache.Insert(key, FrameWith(3.0));
  std::shared_ptr<const FrameFrontiers> frame = cache.Lookup(key);
  ASSERT_NE(frame, nullptr);
  EXPECT_DOUBLE_EQ((*frame)[0].base_lower, 3.0);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(FrontierCacheTest, KeyDiffersByAnyField) {
  FrontierCache cache;
  cache.Insert(KeyFor(1, 0.05), FrameWith(1.0));
  // Same geometry, different epoch / param / mode: all distinct entries.
  EXPECT_EQ(cache.Lookup(KeyFor(2, 0.05)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(1, 0.10)), nullptr);
  FrontierKey tau = KeyFor(1, 0.05);
  tau.mode = 't';
  EXPECT_EQ(cache.Lookup(tau), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(1, 0.05)), nullptr);
}

TEST(FrontierCacheTest, SameKeyInsertReplaces) {
  FrontierCache cache(2);
  const FrontierKey key = KeyFor(1, 0.05);
  cache.Insert(key, FrameWith(1.0));
  cache.Insert(key, FrameWith(2.0));
  std::shared_ptr<const FrameFrontiers> frame = cache.Lookup(key);
  ASSERT_NE(frame, nullptr);
  EXPECT_DOUBLE_EQ((*frame)[0].base_lower, 2.0);
  // Replacement must not consume a second slot: a different key still fits
  // without evicting the replaced entry.
  cache.Insert(KeyFor(2, 0.05), FrameWith(9.0));
  EXPECT_NE(cache.Lookup(key), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(2, 0.05)), nullptr);
}

TEST(FrontierCacheTest, EvictsLeastRecentlyUsed) {
  FrontierCache cache(2);
  const FrontierKey a = KeyFor(1, 0.01);
  const FrontierKey b = KeyFor(1, 0.02);
  const FrontierKey c = KeyFor(1, 0.03);
  cache.Insert(a, FrameWith(1.0));
  cache.Insert(b, FrameWith(2.0));
  // Touch `a` so `b` becomes the LRU entry.
  ASSERT_NE(cache.Lookup(a), nullptr);
  cache.Insert(c, FrameWith(3.0));
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
}

TEST(FrontierCacheTest, CapacityOneKeepsNewestOnly) {
  FrontierCache cache(1);
  const FrontierKey a = KeyFor(1, 0.01);
  const FrontierKey b = KeyFor(1, 0.02);
  cache.Insert(a, FrameWith(1.0));
  cache.Insert(b, FrameWith(2.0));
  EXPECT_EQ(cache.Lookup(a), nullptr);
  std::shared_ptr<const FrameFrontiers> frame = cache.Lookup(b);
  ASSERT_NE(frame, nullptr);
  EXPECT_DOUBLE_EQ((*frame)[0].base_lower, 2.0);
}

// Regression: capacity 0 used to take the evict branch (`0 >= 0`) and index
// slots_[0] of an empty vector. The contract now is "cache disabled".
TEST(FrontierCacheTest, CapacityZeroDisablesCache) {
  FrontierCache cache(0);
  const FrontierKey key = KeyFor(1, 0.05);
  cache.Insert(key, FrameWith(1.0));  // must not crash, must not store
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, FrameWith(2.0));
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(FrontierCacheTest, NullValueInsertIsIgnored) {
  FrontierCache cache;
  cache.Insert(KeyFor(1, 0.05), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(1, 0.05)), nullptr);
}

// Hammer one cache from several threads: interleaved Insert/Lookup over a
// key space larger than the capacity, checking only invariants that hold
// under any interleaving (no crash under tsan, values never tear — a hit
// always returns the exact frame some thread inserted for that key).
TEST(FrontierCacheTest, ConcurrentLookupInsert) {
  FrontierCache cache(4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // 8 distinct keys; the frame payload encodes its key's param so a
        // cross-key mixup is detectable.
        const int slot = (t + i) % 8;
        const FrontierKey key = KeyFor(1, 0.01 * (slot + 1));
        if (i % 3 == 0) {
          cache.Insert(key, FrameWith(static_cast<double>(slot)));
        } else {
          std::shared_ptr<const FrameFrontiers> frame = cache.Lookup(key);
          if (frame != nullptr) {
            observed_hits.fetch_add(1);
            ASSERT_EQ((*frame)[0].base_lower, static_cast<double>(slot));
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cache.hits(), observed_hits.load());
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

// Same hammer against a disabled cache: every lookup misses, nothing
// crashes (the capacity-0 regression under contention).
TEST(FrontierCacheTest, ConcurrentOpsOnDisabledCache) {
  FrontierCache cache(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 1000; ++i) {
        const FrontierKey key = KeyFor(1, 0.01 * ((t + i) % 4 + 1));
        cache.Insert(key, FrameWith(1.0));
        EXPECT_EQ(cache.Lookup(key), nullptr);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cache.hits(), 0u);
}

}  // namespace
}  // namespace kdv
