// Cross-module integration tests: the full paper pipeline on small inputs.
// Every method must produce the same color map (εKDV) / hotspot mask (τKDV)
// as the exact baseline, across kernels, and the progressive framework must
// converge to the same frame.
#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "quadkdv.h"

namespace kdv {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : points_(GenerateMixture(CrimeSpec(0.0015))) {}

  PointSet points_;
};

TEST_F(IntegrationTest, AllEpsMethodsAgreeWithExactWithinEps) {
  const double eps = 0.01;
  Workbench bench(PointSet(points_), KernelType::kGaussian);
  PixelGrid grid(20, 16, bench.data_bounds());

  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  DensityFrame truth = RenderExactFrame(exact, grid, nullptr);

  for (Method method : {Method::kAkde, Method::kKarl, Method::kQuad}) {
    KdeEvaluator evaluator = bench.MakeEvaluator(method);
    DensityFrame frame = RenderEpsFrame(evaluator, grid, eps, nullptr);
    EXPECT_LE(MaxRelativeError(frame.values, truth.values, 1e-12),
              eps + 1e-6)
        << MethodName(method);
  }
}

TEST_F(IntegrationTest, TauMasksIdenticalAcrossBoundMethods) {
  Workbench bench(PointSet(points_), KernelType::kGaussian);
  PixelGrid grid(20, 16, bench.data_bounds());

  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/2);
  double tau = stats.mean;

  KdeEvaluator tkdc = bench.MakeEvaluator(Method::kTkdc);
  KdeEvaluator karl = bench.MakeEvaluator(Method::kKarl);

  BinaryFrame m_quad = RenderTauFrame(quad, grid, tau, nullptr);
  BinaryFrame m_tkdc = RenderTauFrame(tkdc, grid, tau, nullptr);
  BinaryFrame m_karl = RenderTauFrame(karl, grid, tau, nullptr);

  EXPECT_EQ(BinaryMismatchRate(m_quad.values, m_tkdc.values), 0.0);
  EXPECT_EQ(BinaryMismatchRate(m_quad.values, m_karl.values), 0.0);
  // A meaningful tau splits the frame into both classes.
  size_t above = 0;
  for (uint8_t v : m_quad.values) above += v;
  EXPECT_GT(above, 0u);
  EXPECT_LT(above, m_quad.values.size());
}

TEST_F(IntegrationTest, OtherKernelsEndToEnd) {
  for (KernelType kernel : {KernelType::kTriangular, KernelType::kCosine,
                            KernelType::kExponential}) {
    Workbench bench(PointSet(points_), kernel);
    PixelGrid grid(16, 12, bench.data_bounds());

    KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);

    DensityFrame truth = RenderExactFrame(exact, grid, nullptr);
    DensityFrame approx = RenderEpsFrame(quad, grid, 0.01, nullptr);
    // Relative guarantee where density is nonzero; zero stays zero.
    for (size_t i = 0; i < truth.values.size(); ++i) {
      if (truth.values[i] > 1e-12) {
        EXPECT_LE(std::abs(approx.values[i] - truth.values[i]) /
                      truth.values[i],
                  0.0101)
            << KernelTypeName(kernel);
      } else {
        EXPECT_LE(approx.values[i], 1e-9) << KernelTypeName(kernel);
      }
    }
  }
}

TEST_F(IntegrationTest, ZorderPipelineQualityIsStatistical) {
  Workbench bench(PointSet(points_), KernelType::kGaussian);
  PixelGrid grid(16, 12, bench.data_bounds());

  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  DensityFrame truth = RenderExactFrame(exact, grid, nullptr);

  KdeEvaluator zorder = bench.MakeZorderEvaluator(0.05);
  DensityFrame frame = RenderEpsFrame(zorder, grid, 0.05, nullptr);
  // Probabilistic method: no deterministic per-pixel bound, but the average
  // error over the frame must be modest.
  EXPECT_LT(AverageRelativeError(frame.values, truth.values,
                                 1e-3 * ComputeMeanStd(truth.values).mean),
            0.5);
}

TEST_F(IntegrationTest, ProgressiveQuadReachesEpsQuality) {
  Workbench bench(PointSet(points_), KernelType::kGaussian);
  PixelGrid grid(16, 12, bench.data_bounds());

  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  DensityFrame truth = RenderExactFrame(exact, grid, nullptr);

  ProgressiveResult full = RenderProgressive(quad, grid, 0.01, 0.0);
  ASSERT_TRUE(full.completed);
  EXPECT_LE(MaxRelativeError(full.frame.values, truth.values, 1e-12),
            0.0101);
}

TEST_F(IntegrationTest, EndToEndImagePipelineWritesArtifacts) {
  Workbench bench(PointSet(points_), KernelType::kGaussian);
  PixelGrid grid(32, 24, bench.data_bounds());
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);

  DensityFrame frame = RenderEpsFrame(quad, grid, 0.01, nullptr);
  std::string heat_path = ::testing::TempDir() + "/kdv_heat.ppm";
  ASSERT_TRUE(RenderHeatMap(frame).WritePpm(heat_path));

  MeanStd stats = ComputeMeanStd(frame.values);
  std::string tau_path = ::testing::TempDir() + "/kdv_tau.ppm";
  ASSERT_TRUE(RenderThresholdMap(frame, stats.mean).WritePpm(tau_path));

  std::remove(heat_path.c_str());
  std::remove(tau_path.c_str());
}

TEST_F(IntegrationTest, HigherDimensionalKdeViaPca) {
  // The §7.7 pipeline: take a higher-dim dataset, PCA to d dims, run εKDE
  // point queries.
  MixtureSpec spec;
  spec.n = 3000;
  spec.dim = 6;
  spec.seed = 31;
  PointSet high = GenerateMixture(spec);

  for (int d : {2, 3, 4}) {
    PointSet projected = PcaProject(high, d);
    Workbench bench(PointSet(projected), KernelType::kGaussian);
    KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);

    Rng rng(32);
    for (int i = 0; i < 10; ++i) {
      Point q(d);
      for (int j = 0; j < d; ++j) q[j] = rng.Uniform(-1.0, 1.0);
      double truth = exact.EvaluateExact(q);
      double est = quad.EvaluateEps(q, 0.01).estimate;
      if (truth > 1e-12) {
        EXPECT_LE(std::abs(est - truth) / truth, 0.0101) << "d=" << d;
      }
    }
  }
}

}  // namespace
}  // namespace kdv
