// Tests for the batch drivers (core/kdv_runner.h) and the step-wise
// RefinementStream (core/refinement_stream.h).
#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/kdv_runner.h"
#include "core/refinement_stream.h"
#include "data/datasets.h"
#include "util/random.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest()
      : bench_(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian) {
    Rng rng(21);
    for (int i = 0; i < 50; ++i) {
      queries_.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    }
  }

  Workbench bench_;
  PointSet queries_;
};

TEST_F(RunnerTest, EpsBatchMatchesPerQueryEvaluation) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  BatchStats stats;
  std::vector<double> batch = RunEpsBatch(quad, queries_, 0.01, &stats);
  ASSERT_EQ(batch.size(), queries_.size());
  EXPECT_EQ(stats.queries, queries_.size());
  EXPECT_TRUE(stats.completed);
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quad.EvaluateEps(queries_[i], 0.01).estimate);
  }
}

TEST_F(RunnerTest, TauBatchMatchesPerQueryEvaluation) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  double tau = 0.5;
  std::vector<uint8_t> batch = RunTauBatch(quad, queries_, tau, nullptr);
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(batch[i] != 0, quad.EvaluateTau(queries_[i], tau).above_threshold);
  }
}

TEST_F(RunnerTest, ExactBatchCountsAllPoints) {
  KdeEvaluator exact = bench_.MakeEvaluator(Method::kExact);
  BatchStats stats;
  std::vector<double> batch = RunExactBatch(exact, queries_, &stats);
  EXPECT_EQ(stats.points_scanned,
            queries_.size() * bench_.num_points());
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], exact.EvaluateExact(queries_[i]));
  }
}

TEST_F(RunnerTest, OrderedRunRespectsOrderAndDeadline) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);

  // Reverse order, no deadline: all evaluated.
  std::vector<uint32_t> order(queries_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::reverse(order.begin(), order.end());
  std::vector<double> out(queries_.size(), -1.0);
  BatchStats stats;
  size_t evaluated =
      RunEpsOrdered(quad, queries_, order, 0.01, nullptr, &out, &stats);
  EXPECT_EQ(evaluated, queries_.size());
  EXPECT_TRUE(stats.completed);
  for (double v : out) EXPECT_GE(v, 0.0);

  // Expired deadline: nothing evaluated, sentinel values untouched.
  std::vector<double> out2(queries_.size(), -1.0);
  Deadline expired(1e-12);
  while (!expired.Expired()) {
  }
  BatchStats stats2;
  size_t evaluated2 =
      RunEpsOrdered(quad, queries_, order, 0.01, &expired, &out2, &stats2);
  EXPECT_EQ(evaluated2, 0u);
  EXPECT_FALSE(stats2.completed);
  for (double v : out2) EXPECT_DOUBLE_EQ(v, -1.0);
}

TEST_F(RunnerTest, OrderedRunPartialPrefix) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  std::vector<uint32_t> order = {3, 1, 4};
  std::vector<double> out(queries_.size(), -1.0);
  size_t evaluated =
      RunEpsOrdered(quad, queries_, order, 0.01, nullptr, &out, nullptr);
  EXPECT_EQ(evaluated, 3u);
  EXPECT_GE(out[3], 0.0);
  EXPECT_GE(out[1], 0.0);
  EXPECT_GE(out[4], 0.0);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
}

// ---------------------------------------------------------------------------
// RefinementStream
// ---------------------------------------------------------------------------

TEST_F(RunnerTest, StreamTightensMonotonicallyToExact) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  Point q = bench_.data_bounds().Center();
  double exact = quad.EvaluateExact(q);

  RefinementStream stream(&bench_.tree(), bench_.params(),
                          quad.bounds(), q);
  double prev_lb = stream.lower();
  double prev_ub = stream.upper();
  EXPECT_LE(prev_lb, exact + 1e-12);
  EXPECT_GE(prev_ub, exact - 1e-12);

  while (stream.Step()) {
    EXPECT_GE(stream.lower(), prev_lb - 1e-12);
    EXPECT_LE(stream.upper(), prev_ub + 1e-12);
    EXPECT_LE(stream.lower(), exact * (1 + 1e-9) + 1e-12);
    EXPECT_GE(stream.upper(), exact * (1 - 1e-9) - 1e-12);
    prev_lb = stream.lower();
    prev_ub = stream.upper();
  }
  EXPECT_TRUE(stream.exhausted());
  EXPECT_NEAR(stream.lower(), exact, 1e-6 * std::max(1.0, exact));
  EXPECT_NEAR(stream.gap(), 0.0, 1e-9);
  EXPECT_EQ(stream.points_scanned(), bench_.num_points());
}

TEST_F(RunnerTest, ExactStreamStartsExhausted) {
  Point q = bench_.data_bounds().Center();
  RefinementStream stream(&bench_.tree(), bench_.params(), nullptr, q);
  EXPECT_TRUE(stream.exhausted());
  EXPECT_FALSE(stream.Step());
  EXPECT_DOUBLE_EQ(stream.gap(), 0.0);
  KdeEvaluator exact = bench_.MakeEvaluator(Method::kExact);
  EXPECT_NEAR(stream.lower(), exact.EvaluateExact(q), 1e-12);
}

TEST_F(RunnerTest, StepCountMatchesIterations) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  Point q = bench_.data_bounds().Center();
  RefinementStream stream(&bench_.tree(), bench_.params(), quad.bounds(), q);
  uint64_t steps = 0;
  while (stream.Step()) ++steps;
  EXPECT_EQ(steps, stream.iterations());
}

}  // namespace
}  // namespace kdv
