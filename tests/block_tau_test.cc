#include <gtest/gtest.h>

#include "data/datasets.h"
#include "stats/density_stats.h"
#include "viz/block_tau.h"
#include "viz/render.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

class BlockTauTest : public ::testing::Test {
 protected:
  BlockTauTest()
      : bench_(GenerateMixture(CrimeSpec(0.003)), KernelType::kGaussian),
        grid_(48, 36, bench_.data_bounds()) {}

  Workbench bench_;
  PixelGrid grid_;
};

TEST_F(BlockTauTest, MatchesPerPixelMaskAcrossThresholds) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  MeanStd stats = EstimateDensityStats(quad, grid_, /*stride=*/4);
  for (double k : {-0.3, -0.1, 0.0, 0.1, 0.3}) {
    double tau = std::max(stats.mean + k * stats.stddev, 1e-12);
    BinaryFrame per_pixel = RenderTauFrame(quad, grid_, tau, nullptr);
    BinaryFrame blocked = RenderTauFrameBlocked(quad, grid_, tau, nullptr);
    EXPECT_EQ(BinaryMismatchRate(per_pixel.values, blocked.values), 0.0)
        << "k=" << k;
  }
}

TEST_F(BlockTauTest, MatchesPerPixelForOtherKernels) {
  for (KernelType kernel : {KernelType::kTriangular, KernelType::kCosine,
                            KernelType::kExponential}) {
    Workbench bench(GenerateMixture(CrimeSpec(0.003)), kernel);
    PixelGrid grid(32, 24, bench.data_bounds());
    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/4);
    double tau = std::max(stats.mean, 1e-12);
    BinaryFrame per_pixel = RenderTauFrame(quad, grid, tau, nullptr);
    BinaryFrame blocked = RenderTauFrameBlocked(quad, grid, tau, nullptr);
    EXPECT_EQ(BinaryMismatchRate(per_pixel.values, blocked.values), 0.0)
        << KernelTypeName(kernel);
  }
}

TEST_F(BlockTauTest, CertifiesMostPixelsAtBlockLevel) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  MeanStd stats = EstimateDensityStats(quad, grid_, /*stride=*/4);
  BlockTauStats block_stats;
  RenderTauFrameBlocked(quad, grid_, stats.mean, &block_stats);
  EXPECT_GT(block_stats.blocks_certified, 0u);
  // The τ boundary is a 1-d curve: the vast majority of pixels should be
  // decided wholesale.
  EXPECT_GT(block_stats.pixels_filled_by_blocks,
            grid_.num_pixels() / 2);
  EXPECT_EQ(block_stats.pixels_filled_by_blocks +
                block_stats.pixel_evaluations,
            grid_.num_pixels());
}

TEST_F(BlockTauTest, ExtremeThresholdsCertifyInOneBlock) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  // τ above any possible density: the whole frame certifies "below" fast.
  BlockTauStats stats;
  BinaryFrame frame = RenderTauFrameBlocked(
      quad, grid_, /*tau=*/1e9 * bench_.params().weight *
                      static_cast<double>(bench_.num_points()),
      &stats);
  for (uint8_t v : frame.values) EXPECT_EQ(v, 0);
  EXPECT_EQ(stats.pixel_evaluations, 0u);
  EXPECT_EQ(stats.blocks_certified, 1u);
}

TEST_F(BlockTauTest, SmallBlockIterationBudgetStillCorrect) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  MeanStd stats = EstimateDensityStats(quad, grid_, /*stride=*/4);
  BlockTauOptions options;
  options.max_block_iterations = 1;  // degenerate: splits almost everywhere
  BinaryFrame per_pixel = RenderTauFrame(quad, grid_, stats.mean, nullptr);
  BinaryFrame blocked =
      RenderTauFrameBlocked(quad, grid_, stats.mean, options, nullptr);
  EXPECT_EQ(BinaryMismatchRate(per_pixel.values, blocked.values), 0.0);
}

TEST_F(BlockTauTest, NonSquareAndTinyGrids) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  for (auto [w, h] : {std::pair<int, int>{1, 1}, {7, 3}, {1, 16}, {33, 2}}) {
    PixelGrid grid(w, h, bench_.data_bounds());
    MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/1);
    double tau = std::max(stats.mean, 1e-12);
    BinaryFrame per_pixel = RenderTauFrame(quad, grid, tau, nullptr);
    BinaryFrame blocked = RenderTauFrameBlocked(quad, grid, tau, nullptr);
    EXPECT_EQ(BinaryMismatchRate(per_pixel.values, blocked.values), 0.0)
        << w << "x" << h;
  }
}

TEST_F(BlockTauTest, FasterThanPerPixelOnLargeFrames) {
  Workbench bench(GenerateMixture(HomeSpec(0.01)), KernelType::kGaussian);
  PixelGrid grid(96, 72, bench.data_bounds());
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/8);

  BatchStats per_pixel_stats;
  RenderTauFrame(quad, grid, stats.mean, &per_pixel_stats);
  BlockTauStats block_stats;
  RenderTauFrameBlocked(quad, grid, stats.mean, &block_stats);
  // Per-pixel evaluations collapse to a small fraction; the wall-clock win
  // follows (allow slack for timer noise on a loaded machine).
  EXPECT_LT(block_stats.pixel_evaluations, grid.num_pixels() / 2);
  EXPECT_LT(block_stats.seconds, per_pixel_stats.seconds * 1.5);
}

}  // namespace
}  // namespace kdv
