// Crash-consistency suite for the persistence stack: atomic file writes,
// the manifest commit point, the update journal, and the recovery manager.
//
// Part 1 exercises the building blocks directly (atomic overwrite keeps the
// old bytes on failure; manifest and journal survive round trips; a torn
// journal tail is repaired, mid-segment rot is refused). Torn tails are
// produced both by hand (appending garbage bytes, runs in every build) and
// by failpoint (needs -DKDV_FAILPOINTS=ON, skips elsewhere).
//
// Part 2 drives RecoveryManager through every policy branch: happy-path
// replay, checkpoint folding, quarantine + CSV rebuild for a rotten index,
// index scavenging for a rotten manifest, orphan/temp cleanup.
//
// Part 3 is the chaos sweep from the issue: every I/O failpoint site ×
// {index write, journal append, checkpoint}. The invariant is the whole
// point of the subsystem — after an injected fault at any site, recovery
// must land on a checksum-valid *pre* or *post* state, never a torn hybrid.
// States are compared bitwise via rendered density frames over
// lexicographically sorted point sets (kd-tree construction is
// input-order-sensitive; the density it serves must not be).
#include "serve/recovery_manager.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "index/journal.h"
#include "index/manifest.h"
#include "index/serialization.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "viz/pixel_grid.h"
#include "viz/render.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

namespace fs = std::filesystem;

// Fresh, empty scratch directory under the test temp root.
std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/kdv_recovery_" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir;
}

std::string ReadFileString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileString(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Flips one byte in place, turning a checksummed file into bit rot.
void CorruptByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  ASSERT_TRUE(f.good()) << path << " shorter than offset " << offset;
  f.seekp(static_cast<std::streamoff>(offset));
  c = static_cast<char>(c ^ 0x5A);
  f.write(&c, 1);
  ASSERT_TRUE(f.good());
}

void AppendGarbage(const std::string& path, const std::string& garbage) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool PointLess(const Point& a, const Point& b) {
  if (a.dim() != b.dim()) return a.dim() < b.dim();
  for (int i = 0; i < a.dim(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

// Bitwise state fingerprint: the certified density frame rendered from the
// sorted point set. Two states with the same fingerprint serve the same
// densities; sorting removes the kd-tree's input-order sensitivity.
std::vector<double> FrameSignature(const PointSet& points) {
  PointSet sorted = points;
  std::sort(sorted.begin(), sorted.end(), PointLess);
  Workbench bench(std::move(sorted), KernelType::kGaussian);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  PixelGrid grid(16, 12, bench.data_bounds());
  DensityFrame frame = RenderEpsFrame(quad, grid, 0.05, nullptr);
  return frame.values;
}

PointSet BasePoints() { return GenerateMixture(CrimeSpec(0.002)); }

// Deterministic 2-d batch, disjoint from the mixture clusters.
PointSet MakeBatch(int tag, int n) {
  PointSet out;
  for (int i = 0; i < n; ++i) {
    Point p(2);
    p[0] = 40.0 + 3.0 * tag + 0.25 * i;
    p[1] = -20.0 - 2.0 * tag + 0.125 * i;
    out.push_back(p);
  }
  return out;
}

void AppendAll(PointSet* dst, const PointSet& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

// ---------------------------------------------------------------------------
// Atomic file writes
// ---------------------------------------------------------------------------

TEST(AtomicFileTest, CreatesOverwritesAndLeavesNoTemp) {
  const std::string dir = TestDir("atomic_basic");
  const std::string path = dir + "/state.bin";
  ASSERT_TRUE(AtomicWriteFile(path, std::string("first contents")).ok());
  EXPECT_EQ(ReadFileString(path), "first contents");
  ASSERT_TRUE(AtomicWriteFile(path, std::string("second, longer contents")).ok());
  EXPECT_EQ(ReadFileString(path), "second, longer contents");
  EXPECT_FALSE(fs::exists(TempPathFor(path)));
}

TEST(AtomicFileTest, ReclaimsStaleTempFromPriorTornWrite) {
  const std::string dir = TestDir("atomic_stale");
  const std::string path = dir + "/state.bin";
  WriteFileString(TempPathFor(path), "half-written junk left by a crash");
  ASSERT_TRUE(AtomicWriteFile(path, std::string("clean")).ok());
  EXPECT_EQ(ReadFileString(path), "clean");
  EXPECT_FALSE(fs::exists(TempPathFor(path)));
}

class AtomicFileChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::enabled()) {
      GTEST_SKIP() << "failpoints not compiled in (build with "
                      "-DKDV_FAILPOINTS=ON)";
    }
    failpoint::Reset();
  }
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(AtomicFileChaosTest, FailedOverwriteLeavesOldContentsIntact) {
  for (const char* site : {"io.write", "io.fsync", "io.rename"}) {
    SCOPED_TRACE(site);
    const std::string dir = TestDir(std::string("atomic_fault_") + site);
    const std::string path = dir + "/state.bin";
    ASSERT_TRUE(AtomicWriteFile(path, std::string("committed")).ok());
    ASSERT_TRUE(failpoint::Arm(site, failpoint::Action::kError).ok());
    Status status = AtomicWriteFile(path, std::string("torn replacement"));
    failpoint::Reset();
    EXPECT_FALSE(status.ok()) << status.ToString();
    EXPECT_EQ(ReadFileString(path), "committed");
    // The next un-faulted write reclaims whatever residue the fault left.
    ASSERT_TRUE(AtomicWriteFile(path, std::string("repaired")).ok());
    EXPECT_EQ(ReadFileString(path), "repaired");
    EXPECT_FALSE(fs::exists(TempPathFor(path)));
  }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST(ManifestTest, RoundTripsAllFields) {
  const std::string path = TestDir("manifest_rt") + "/MANIFEST";
  Manifest m;
  m.generation = 7;
  m.journal_floor = 42;
  m.index_file = IndexFileName(7);
  ASSERT_TRUE(SaveManifest(path, m).ok());
  StatusOr<Manifest> loaded = LoadManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 7u);
  EXPECT_EQ(loaded->journal_floor, 42u);
  EXPECT_EQ(loaded->index_file, "index-00000007.kdv");
}

TEST(ManifestTest, MissingIsNotFoundAndRotIsDataLoss) {
  const std::string dir = TestDir("manifest_rot");
  const std::string path = dir + "/MANIFEST";
  EXPECT_EQ(LoadManifest(path).status().code(), StatusCode::kNotFound);

  Manifest m;
  m.generation = 1;
  m.journal_floor = 1;
  m.index_file = IndexFileName(1);
  ASSERT_TRUE(SaveManifest(path, m).ok());
  // Flip a body byte (past the 4-byte magic): the CRC must catch it.
  CorruptByteAt(path, 9);
  EXPECT_EQ(LoadManifest(path).status().code(), StatusCode::kDataLoss);

  // Truncation is also DataLoss, not a crash.
  ASSERT_TRUE(SaveManifest(path, m).ok());
  const std::string whole = ReadFileString(path);
  WriteFileString(path, whole.substr(0, whole.size() / 2));
  EXPECT_EQ(LoadManifest(path).status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

struct ReplayedBatch {
  JournalOp op;
  PointSet points;
};

Status CollectReplay(std::vector<ReplayedBatch>* out, JournalOp op,
                     const PointSet& points) {
  out->push_back({op, points});
  return OkStatus();
}

TEST(JournalTest, AppendsAndReplaysBatchesInOrder) {
  const std::string dir = TestDir("journal_rt") + "/wal";
  PointSet inserts = MakeBatch(1, 5);
  PointSet removes = MakeBatch(1, 2);
  {
    StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    ASSERT_TRUE((*j)->Append(JournalOp::kInsert, inserts).ok());
    ASSERT_TRUE((*j)->Append(JournalOp::kRemove, removes).ok());
  }
  StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1);
  ASSERT_TRUE(j.ok());
  std::vector<ReplayedBatch> seen;
  JournalReplayStats stats;
  ASSERT_TRUE((*j)
                  ->Replay([&](JournalOp op, const PointSet& pts) {
                    return CollectReplay(&seen, op, pts);
                  },
                           &stats)
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].op, JournalOp::kInsert);
  EXPECT_EQ(seen[0].points, inserts);
  EXPECT_EQ(seen[1].op, JournalOp::kRemove);
  EXPECT_EQ(seen[1].points, removes);
  EXPECT_EQ(stats.records_applied, 2u);
  EXPECT_EQ(stats.points_applied, 7u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST(JournalTest, RejectsEmptyAndRaggedBatches) {
  const std::string dir = TestDir("journal_bad") + "/wal";
  StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->Append(JournalOp::kInsert, PointSet{}).code(),
            StatusCode::kInvalidArgument);
  PointSet ragged;
  ragged.push_back(Point(2));
  ragged.push_back(Point(3));
  EXPECT_EQ((*j)->Append(JournalOp::kInsert, ragged).code(),
            StatusCode::kInvalidArgument);
}

TEST(JournalTest, RotatesPastSegmentCapAndDropsFoldedSegments) {
  const std::string dir = TestDir("journal_rotate") + "/wal";
  Journal::Options options;
  options.max_segment_bytes = 64;  // every append lands in a fresh segment
  StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1, options);
  ASSERT_TRUE(j.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*j)->Append(JournalOp::kInsert, MakeBatch(i, 3)).ok());
  }
  EXPECT_GT((*j)->tail_sequence(), 1u);

  StatusOr<uint64_t> new_floor = (*j)->Rotate();
  ASSERT_TRUE(new_floor.ok());
  (*j)->DropSegmentsBelow(*new_floor);
  EXPECT_EQ((*j)->floor(), *new_floor);
  EXPECT_FALSE(fs::exists(dir + "/" + Journal::SegmentFileName(1)));

  // Everything folded away: a replay from the new floor sees nothing.
  std::vector<ReplayedBatch> seen;
  JournalReplayStats stats;
  ASSERT_TRUE((*j)
                  ->Replay([&](JournalOp op, const PointSet& pts) {
                    return CollectReplay(&seen, op, pts);
                  },
                           &stats)
                  .ok());
  EXPECT_TRUE(seen.empty());
}

TEST(JournalTest, TornTailIsTruncatedOnceAndReplayIsIdempotent) {
  const std::string dir = TestDir("journal_torn") + "/wal";
  {
    StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->Append(JournalOp::kInsert, MakeBatch(0, 4)).ok());
    ASSERT_TRUE((*j)->Append(JournalOp::kInsert, MakeBatch(1, 4)).ok());
  }
  const std::string seg = dir + "/" + Journal::SegmentFileName(1);
  const uint64_t good_size = fs::file_size(seg);
  const std::string garbage = "torn half-record!";
  AppendGarbage(seg, garbage);

  StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1);
  ASSERT_TRUE(j.ok());
  std::vector<ReplayedBatch> seen;
  JournalReplayStats stats;
  ASSERT_TRUE((*j)
                  ->Replay([&](JournalOp op, const PointSet& pts) {
                    return CollectReplay(&seen, op, pts);
                  },
                           &stats)
                  .ok());
  EXPECT_EQ(seen.size(), 2u);  // both acknowledged batches survive
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.torn_bytes_truncated, garbage.size());
  EXPECT_EQ(fs::file_size(seg), good_size);  // physically repaired

  // The tail is clean now: replaying again truncates nothing, and the
  // repaired segment accepts new appends.
  seen.clear();
  JournalReplayStats again;
  ASSERT_TRUE((*j)
                  ->Replay([&](JournalOp op, const PointSet& pts) {
                    return CollectReplay(&seen, op, pts);
                  },
                           &again)
                  .ok());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_FALSE(again.tail_truncated);
  EXPECT_TRUE((*j)->Append(JournalOp::kInsert, MakeBatch(2, 1)).ok());
}

TEST(JournalTest, MidSegmentCorruptionIsDataLossNotACrashArtifact) {
  const std::string dir = TestDir("journal_rot") + "/wal";
  {
    StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->Append(JournalOp::kInsert, MakeBatch(0, 4)).ok());
    ASSERT_TRUE((*j)->Rotate().ok());
    ASSERT_TRUE((*j)->Append(JournalOp::kInsert, MakeBatch(1, 4)).ok());
  }
  // Damage a payload byte in segment 1 — NOT the tail segment, so this can
  // only be bit rot and must be refused, never "repaired" by truncation.
  CorruptByteAt(dir + "/" + Journal::SegmentFileName(1), 16 + 8 + 4);

  StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1);
  ASSERT_TRUE(j.ok());
  JournalReplayStats stats;
  Status status = (*j)->Replay(
      [](JournalOp, const PointSet&) { return OkStatus(); }, &stats);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_FALSE(stats.tail_truncated);
}

class JournalChaosTest : public AtomicFileChaosTest {};

TEST_F(JournalChaosTest, InjectedTornTailIsRepairedOnReplay) {
  const std::string dir = TestDir("journal_fp") + "/wal";
  StatusOr<std::unique_ptr<Journal>> j = Journal::Open(dir, 1);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE((*j)->Append(JournalOp::kInsert, MakeBatch(0, 4)).ok());

  ASSERT_TRUE(failpoint::Arm("journal.tail", failpoint::Action::kError).ok());
  Status torn = (*j)->Append(JournalOp::kInsert, MakeBatch(1, 4));
  failpoint::Reset();
  ASSERT_FALSE(torn.ok());

  // Reopen cold, as recovery would: the acknowledged batch replays, the
  // torn one is cut away.
  j->reset();
  j = Journal::Open(dir, 1);
  ASSERT_TRUE(j.ok());
  std::vector<ReplayedBatch> seen;
  JournalReplayStats stats;
  ASSERT_TRUE((*j)
                  ->Replay([&](JournalOp op, const PointSet& pts) {
                    return CollectReplay(&seen, op, pts);
                  },
                           &stats)
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].points, MakeBatch(0, 4));
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_GT(stats.torn_bytes_truncated, 0u);
}

// ---------------------------------------------------------------------------
// RecoveryManager policy branches
// ---------------------------------------------------------------------------

TEST(RecoveryManagerTest, BootstrapThenRecoverServesIdenticalDensities) {
  const std::string dir = TestDir("rm_roundtrip");
  RecoveryOptions options;
  options.state_dir = dir;
  const PointSet base = BasePoints();

  {
    StatusOr<RecoveredState> boot = RecoveryManager::Bootstrap(options, base);
    ASSERT_TRUE(boot.ok()) << boot.status().ToString();
    EXPECT_EQ(boot->generation, 1u);
    EXPECT_TRUE(fs::exists(dir + "/MANIFEST"));
    EXPECT_TRUE(fs::exists(dir + "/" + IndexFileName(1)));
    EXPECT_TRUE(fs::exists(dir + "/wal/" + Journal::SegmentFileName(1)));
  }  // close the bootstrap journal fd before recovering cold

  RecoveryReport report;
  StatusOr<RecoveredState> rec = RecoveryManager::Recover(options, &report);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(report.source, RecoverySource::kManifest);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_FALSE(report.possible_data_loss);
  EXPECT_FALSE(report.journal_quarantined);
  EXPECT_EQ(FrameSignature(rec->live_points), FrameSignature(base));
  EXPECT_NE(report.Summary().find("manifest"), std::string::npos);
}

TEST(RecoveryManagerTest, BootstrapRefusesToClobberExistingState) {
  const std::string dir = TestDir("rm_noclobber");
  RecoveryOptions options;
  options.state_dir = dir;
  ASSERT_TRUE(RecoveryManager::Bootstrap(options, MakeBatch(0, 8)).ok());
  StatusOr<RecoveredState> again =
      RecoveryManager::Bootstrap(options, MakeBatch(1, 8));
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryManagerTest, JournaledInsertsAndRemovesReplayOnRecover) {
  const std::string dir = TestDir("rm_replay");
  RecoveryOptions options;
  options.state_dir = dir;
  const PointSet base = BasePoints();
  const PointSet batch = MakeBatch(3, 6);

  std::optional<RecoveredState> state;
  {
    StatusOr<RecoveredState> boot = RecoveryManager::Bootstrap(options, base);
    ASSERT_TRUE(boot.ok());
    state.emplace(*std::move(boot));
  }
  ASSERT_TRUE(state->journal->Append(JournalOp::kInsert, batch).ok());
  PointSet removed;
  removed.push_back(base.front());
  ASSERT_TRUE(state->journal->Append(JournalOp::kRemove, removed).ok());
  state.reset();

  PointSet expected = base;
  AppendAll(&expected, batch);
  expected.erase(expected.begin());

  RecoveryReport report;
  StatusOr<RecoveredState> rec = RecoveryManager::Recover(options, &report);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(report.journal_stats.records_applied, 2u);
  EXPECT_EQ(rec->live_points.size(), expected.size());
  EXPECT_EQ(FrameSignature(rec->live_points), FrameSignature(expected));
}

TEST(RecoveryManagerTest, CheckpointFoldsJournalIntoNextGeneration) {
  const std::string dir = TestDir("rm_checkpoint");
  RecoveryOptions options;
  options.state_dir = dir;
  const PointSet base = BasePoints();
  const PointSet batch = MakeBatch(5, 9);

  std::optional<RecoveredState> state;
  {
    StatusOr<RecoveredState> boot = RecoveryManager::Bootstrap(options, base);
    ASSERT_TRUE(boot.ok());
    state.emplace(*std::move(boot));
  }
  ASSERT_TRUE(state->journal->Append(JournalOp::kInsert, batch).ok());
  AppendAll(&state->live_points, batch);

  ASSERT_TRUE(RecoveryManager::RunCheckpoint(&*state).ok());
  EXPECT_EQ(state->generation, 2u);
  EXPECT_TRUE(fs::exists(dir + "/" + IndexFileName(2)));
  EXPECT_FALSE(fs::exists(dir + "/" + IndexFileName(1)));  // folded away
  state.reset();

  PointSet expected = base;
  AppendAll(&expected, batch);
  RecoveryReport report;
  StatusOr<RecoveredState> rec = RecoveryManager::Recover(options, &report);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(report.generation, 2u);
  EXPECT_EQ(report.journal_stats.records_applied, 0u);  // nothing left to replay
  EXPECT_EQ(FrameSignature(rec->live_points), FrameSignature(expected));
}

TEST(RecoveryManagerTest, RottenIndexIsQuarantinedAndRebuiltFromCsv) {
  const std::string dir = TestDir("rm_csv");
  const std::string csv = dir + "/fallback.csv";
  const PointSet base = BasePoints();
  ASSERT_TRUE(SavePointsCsv(csv, base).ok());

  RecoveryOptions options;
  options.state_dir = dir;
  options.csv_fallback = csv;
  {
    StatusOr<RecoveredState> boot = RecoveryManager::Bootstrap(options, base);
    ASSERT_TRUE(boot.ok());
    // A journaled batch that will be lost with the index it was a delta of.
    ASSERT_TRUE(boot->journal->Append(JournalOp::kInsert, MakeBatch(7, 4)).ok());
  }
  const std::string index_path = dir + "/" + IndexFileName(1);
  CorruptByteAt(index_path, fs::file_size(index_path) / 2);

  RecoveryReport report;
  StatusOr<RecoveredState> rec = RecoveryManager::Recover(options, &report);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(report.source, RecoverySource::kCsvRebuild);
  EXPECT_TRUE(report.possible_data_loss);
  EXPECT_TRUE(report.journal_quarantined);
  ASSERT_FALSE(report.quarantined.empty());
  bool index_quarantined = false;
  for (const std::string& q : report.quarantined) {
    EXPECT_TRUE(fs::exists(q)) << q;
    if (q.find("index-00000001.kdv.quarantine") != std::string::npos) {
      index_quarantined = true;
    }
  }
  EXPECT_TRUE(index_quarantined);
  // The rebuilt dataset is exactly the CSV: the journaled batch is gone,
  // which is why the report screams possible data loss.
  EXPECT_EQ(FrameSignature(rec->live_points), FrameSignature(base));
  EXPECT_NE(report.Summary().find("POSSIBLE DATA LOSS"), std::string::npos);
}

TEST(RecoveryManagerTest, RottenIndexWithoutFallbackFailsLoudly) {
  const std::string dir = TestDir("rm_nofallback");
  RecoveryOptions options;
  options.state_dir = dir;
  ASSERT_TRUE(RecoveryManager::Bootstrap(options, MakeBatch(0, 16)).ok());
  const std::string index_path = dir + "/" + IndexFileName(1);
  CorruptByteAt(index_path, fs::file_size(index_path) / 2);

  RecoveryReport report;
  StatusOr<RecoveredState> rec = RecoveryManager::Recover(options, &report);
  EXPECT_FALSE(rec.ok());
}

TEST(RecoveryManagerTest, RottenManifestScavengesHighestValidIndex) {
  const std::string dir = TestDir("rm_scavenge");
  RecoveryOptions options;
  options.state_dir = dir;
  const PointSet base = BasePoints();
  ASSERT_TRUE(RecoveryManager::Bootstrap(options, base).ok());
  CorruptByteAt(dir + "/MANIFEST", 9);

  {
    RecoveryReport report;
    StatusOr<RecoveredState> rec = RecoveryManager::Recover(options, &report);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(report.source, RecoverySource::kScavengedIndex);
    EXPECT_TRUE(report.possible_data_loss);
    bool manifest_quarantined = false;
    for (const std::string& q : report.quarantined) {
      if (q.find("MANIFEST.quarantine") != std::string::npos) {
        manifest_quarantined = true;
      }
    }
    EXPECT_TRUE(manifest_quarantined);
    EXPECT_EQ(FrameSignature(rec->live_points), FrameSignature(base));
  }

  // The scavenge re-committed a fresh manifest: the next recovery is a
  // plain happy path again.
  RecoveryReport second;
  StatusOr<RecoveredState> again = RecoveryManager::Recover(options, &second);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(second.source, RecoverySource::kManifest);
  EXPECT_FALSE(second.possible_data_loss);
}

TEST(RecoveryManagerTest, OrphanIndexesAndStaleTempsAreSweptAway) {
  const std::string dir = TestDir("rm_orphans");
  RecoveryOptions options;
  options.state_dir = dir;
  ASSERT_TRUE(RecoveryManager::Bootstrap(options, MakeBatch(0, 16)).ok());
  // An uncommitted checkpoint leftover and a torn atomic-write temp.
  WriteFileString(dir + "/" + IndexFileName(9), "never committed");
  WriteFileString(dir + "/MANIFEST.kdvtmp", "torn temp");

  RecoveryReport report;
  StatusOr<RecoveredState> rec = RecoveryManager::Recover(options, &report);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(report.orphan_indexes_removed, 1u);
  EXPECT_GE(report.stale_temps_removed, 1u);
  EXPECT_FALSE(fs::exists(dir + "/" + IndexFileName(9)));
  EXPECT_FALSE(fs::exists(dir + "/MANIFEST.kdvtmp"));
}

// ---------------------------------------------------------------------------
// The chaos sweep: every I/O site × every persistence operation
// ---------------------------------------------------------------------------

class RecoveryChaosTest : public AtomicFileChaosTest {};

TEST_F(RecoveryChaosTest, EveryIoFaultRecoversToPreOrPostStateNeverTorn) {
  enum class Op { kIndexWrite, kJournalAppend, kCheckpoint };
  struct OpSpec {
    Op op;
    const char* name;
  };
  const OpSpec kOps[] = {{Op::kIndexWrite, "index_write"},
                         {Op::kJournalAppend, "journal_append"},
                         {Op::kCheckpoint, "checkpoint"}};
  const char* kSites[] = {"io.write", "io.fsync", "io.rename", "journal.tail"};

  const PointSet base = BasePoints();
  const PointSet resident = MakeBatch(1, 8);  // journaled before the fault
  const PointSet batch = MakeBatch(2, 6);     // the batch the fault may tear

  for (const char* site : kSites) {
    for (const OpSpec& spec : kOps) {
      SCOPED_TRACE(std::string(site) + " x " + spec.name);
      const std::string dir =
          TestDir(std::string("sweep_") + site + "_" + spec.name);
      RecoveryOptions options;
      options.state_dir = dir;

      std::optional<RecoveredState> state;
      {
        StatusOr<RecoveredState> boot =
            RecoveryManager::Bootstrap(options, base);
        ASSERT_TRUE(boot.ok()) << boot.status().ToString();
        state.emplace(*std::move(boot));
      }
      ASSERT_TRUE(state->journal->Append(JournalOp::kInsert, resident).ok());
      AppendAll(&state->live_points, resident);

      const PointSet pre = state->live_points;
      // Acceptable post-fault states. The index write and the checkpoint
      // never change the live set, so only `pre` is legal for them. A torn
      // append must be treated as not-applied — but an io.fsync fault can
      // leave the record fully durable, so either state is legal.
      std::vector<PointSet> legal = {pre};

      // max_hits=1: the fault hits the operation under test exactly once
      // and never fires again (recovery itself must run un-faulted).
      ASSERT_TRUE(
          failpoint::Arm(site, failpoint::Action::kError, 10, /*max_hits=*/1)
              .ok());
      switch (spec.op) {
        case Op::kIndexWrite: {
          // Re-persisting the committed index: failure must leave the old
          // checksummed bytes, success rewrites them identically.
          (void)SaveKdTree(*state->tree,
                           dir + "/" + IndexFileName(state->generation));
          break;
        }
        case Op::kJournalAppend: {
          (void)state->journal->Append(JournalOp::kInsert, batch);
          PointSet post = pre;
          AppendAll(&post, batch);
          legal.push_back(std::move(post));
          break;
        }
        case Op::kCheckpoint: {
          (void)RecoveryManager::RunCheckpoint(&*state);
          break;
        }
      }
      failpoint::Reset();
      state.reset();  // crash: drop every open fd, recover cold

      RecoveryReport report;
      StatusOr<RecoveredState> rec = RecoveryManager::Recover(options, &report);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString() << "\n"
                            << report.Summary();
      const std::vector<double> got = FrameSignature(rec->live_points);
      bool matched = false;
      for (const PointSet& candidate : legal) {
        if (got == FrameSignature(candidate)) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched)
          << "recovered state is neither pre nor post: " << report.Summary();

      // Whatever the recovered state, it must be fully servable: the
      // journal accepts appends and a follow-up checkpoint commits.
      ASSERT_TRUE(rec->journal->Append(JournalOp::kInsert, MakeBatch(9, 2)).ok());
      AppendAll(&rec->live_points, MakeBatch(9, 2));
      EXPECT_TRUE(RecoveryManager::RunCheckpoint(&*rec).ok());
    }
  }
}

}  // namespace
}  // namespace kdv
