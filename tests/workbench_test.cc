#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "viz/pixel_grid.h"
#include "viz/render.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

// Renders a small εKDV frame and requires every density to be finite; the
// degenerate-input contract is "flat frame, never NaN".
void ExpectFiniteFrame(Workbench& bench) {
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  PixelGrid grid(16, 12, bench.data_bounds());
  DensityFrame frame = RenderEpsFrame(quad, grid, 0.05, nullptr);
  for (double v : frame.values) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
}

TEST(WorkbenchTest, IndexesDatasetAndDerivesScottParams) {
  PointSet pts = GenerateMixture(CrimeSpec(0.002));
  size_t n = pts.size();
  KernelParams reference = MakeScottParams(KernelType::kGaussian, pts);

  Workbench bench(std::move(pts), KernelType::kGaussian);
  EXPECT_EQ(bench.num_points(), n);
  EXPECT_DOUBLE_EQ(bench.params().gamma, reference.gamma);
  EXPECT_DOUBLE_EQ(bench.params().weight, reference.weight);
  EXPECT_EQ(bench.kernel(), KernelType::kGaussian);
}

TEST(WorkbenchTest, GammaOverride) {
  Workbench::Options options;
  options.gamma_override = 3.5;
  Workbench bench(GenerateMixture(MixtureSpec{}), KernelType::kGaussian,
                  options);
  EXPECT_DOUBLE_EQ(bench.params().gamma, 3.5);
}

TEST(WorkbenchTest, SupportMatrixMatchesTable6) {
  Workbench gaussian(GenerateMixture(MixtureSpec{}), KernelType::kGaussian);
  EXPECT_TRUE(gaussian.Supports(Method::kExact));
  EXPECT_TRUE(gaussian.Supports(Method::kAkde));
  EXPECT_TRUE(gaussian.Supports(Method::kTkdc));
  EXPECT_TRUE(gaussian.Supports(Method::kKarl));
  EXPECT_TRUE(gaussian.Supports(Method::kQuad));
  EXPECT_TRUE(gaussian.Supports(Method::kZorder));

  Workbench triangular(GenerateMixture(MixtureSpec{}),
                       KernelType::kTriangular);
  EXPECT_FALSE(triangular.Supports(Method::kKarl));  // paper §5.1
  EXPECT_TRUE(triangular.Supports(Method::kQuad));
  EXPECT_TRUE(triangular.Supports(Method::kAkde));
}

TEST(WorkbenchTest, EvaluatorsShareTheSameTree) {
  Workbench bench(GenerateMixture(MixtureSpec{}), KernelType::kGaussian);
  KdeEvaluator a = bench.MakeEvaluator(Method::kQuad);
  KdeEvaluator b = bench.MakeEvaluator(Method::kAkde);
  EXPECT_EQ(&a.tree(), &b.tree());
  EXPECT_EQ(&a.tree(), &bench.tree());
}

TEST(WorkbenchTest, MethodsAgreeOnDensityValues) {
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  KdeEvaluator karl = bench.MakeEvaluator(Method::kKarl);

  Point q = bench.data_bounds().Center();
  double truth = exact.EvaluateExact(q);
  EXPECT_NEAR(quad.EvaluateEps(q, 0.01).estimate, truth, 0.011 * truth);
  EXPECT_NEAR(karl.EvaluateEps(q, 0.01).estimate, truth, 0.011 * truth);
}

TEST(WorkbenchTest, ZorderEvaluatorUsesReducedWeightedSample) {
  Workbench bench(GenerateMixture(HomeSpec(0.005)), KernelType::kGaussian);
  // At ε = 0.2 the coreset bound asks for ~900 points, well below n.
  KdeEvaluator zorder = bench.MakeZorderEvaluator(0.2);
  // Sample is smaller than the full dataset...
  EXPECT_LT(zorder.tree().num_points(), bench.num_points());
  // ...and reweighted to compensate.
  EXPECT_GT(zorder.params().weight, bench.params().weight);

  // Aggregate scale is preserved at the data centroid.
  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  Point q = bench.data_bounds().Center();
  double full = exact.EvaluateExact(q);
  double reduced = zorder.EvaluateExact(q);
  ASSERT_GT(full, 0.0);
  EXPECT_NEAR(reduced / full, 1.0, 0.3);
}

// ---------------------------------------------------------------------------
// Degenerate inputs: each must yield a Status (empty) or a finite flat
// frame (single point, all-identical, zero-variance dimension) — never an
// abort or NaN densities.
// ---------------------------------------------------------------------------

TEST(WorkbenchDegenerateTest, EmptyDatasetReturnsStatus) {
  StatusOr<std::unique_ptr<Workbench>> bench =
      Workbench::Create(PointSet{}, KernelType::kGaussian);
  ASSERT_FALSE(bench.ok());
  EXPECT_EQ(bench.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkbenchDegenerateTest, NonFinitePointRejectedByDefault) {
  PointSet pts{Point{0.0, 0.0}, Point{std::nan(""), 1.0}};
  StatusOr<std::unique_ptr<Workbench>> bench =
      Workbench::Create(std::move(pts), KernelType::kGaussian);
  ASSERT_FALSE(bench.ok());
  EXPECT_EQ(bench.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkbenchDegenerateTest, DropPolicyRecoversFromNaNRows) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  pts[3] = Point{std::nan(""), 0.5};
  const size_t n = pts.size();
  Workbench::Options options;
  options.validate.policy = ValidateOptions::BadPointPolicy::kDrop;
  StatusOr<std::unique_ptr<Workbench>> bench =
      Workbench::Create(std::move(pts), KernelType::kGaussian, options);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  EXPECT_EQ((*bench)->num_points(), n - 1);
  EXPECT_EQ((*bench)->ingest_report().dropped_nonfinite, 1u);
  ExpectFiniteFrame(**bench);
}

TEST(WorkbenchDegenerateTest, SinglePointRendersFiniteFrame) {
  StatusOr<std::unique_ptr<Workbench>> bench =
      Workbench::Create(PointSet{Point{0.5, 0.5}}, KernelType::kGaussian);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  EXPECT_TRUE((*bench)->ingest_report().degenerate);
  ExpectFiniteFrame(**bench);
}

TEST(WorkbenchDegenerateTest, AllIdenticalPointsRenderFiniteFrame) {
  StatusOr<std::unique_ptr<Workbench>> bench = Workbench::Create(
      PointSet(64, Point{2.0, -1.0}), KernelType::kGaussian);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  EXPECT_TRUE((*bench)->ingest_report().all_identical);
  ExpectFiniteFrame(**bench);
  // Scott's rule must have fallen back to a positive bandwidth.
  EXPECT_GT((*bench)->params().gamma, 0.0);
  EXPECT_TRUE(std::isfinite((*bench)->params().gamma));
}

TEST(WorkbenchDegenerateTest, ZeroVarianceDimensionRendersFiniteFrame) {
  PointSet pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back(Point{static_cast<double>(i) / 100.0, 0.25});
  }
  StatusOr<std::unique_ptr<Workbench>> bench =
      Workbench::Create(std::move(pts), KernelType::kGaussian);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  ASSERT_EQ((*bench)->ingest_report().zero_variance_dims.size(), 1u);
  EXPECT_EQ((*bench)->ingest_report().zero_variance_dims[0], 1);
  ExpectFiniteFrame(**bench);
}

// ---------------------------------------------------------------------------
// Query-parameter validation (the Workbench/kdvtool boundary)
// ---------------------------------------------------------------------------

TEST(ValidateParamsTest, AcceptsOrdinaryValues) {
  EXPECT_TRUE(ValidateEps(0.01).ok());
  EXPECT_TRUE(ValidateTau(1e-6).ok());
  EXPECT_TRUE(ValidateGamma(2.5).ok());
}

TEST(ValidateParamsTest, RejectsNonPositiveAndNonFinite) {
  const double kBad[] = {0.0, -1.0, std::nan(""),
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()};
  for (double v : kBad) {
    EXPECT_EQ(ValidateEps(v).code(), StatusCode::kInvalidArgument) << v;
    EXPECT_EQ(ValidateTau(v).code(), StatusCode::kInvalidArgument) << v;
    EXPECT_EQ(ValidateGamma(v).code(), StatusCode::kInvalidArgument) << v;
  }
}

TEST(ValidateParamsTest, ErrorMessageNamesTheParameter) {
  Status status = ValidateEps(-0.5);
  EXPECT_NE(status.message().find("eps"), std::string::npos);
}

TEST(WorkbenchCreateTest, RejectsNaNGammaOverride) {
  Workbench::Options options;
  options.gamma_override = std::nan("");
  StatusOr<std::unique_ptr<Workbench>> bench = Workbench::Create(
      GenerateMixture(MixtureSpec{}), KernelType::kGaussian, options);
  EXPECT_FALSE(bench.ok());
  EXPECT_EQ(bench.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkbenchCreateTest, RejectsZeroGammaOverride) {
  Workbench::Options options;
  options.gamma_override = 0.0;
  StatusOr<std::unique_ptr<Workbench>> bench = Workbench::Create(
      GenerateMixture(MixtureSpec{}), KernelType::kGaussian, options);
  EXPECT_FALSE(bench.ok());
  EXPECT_EQ(bench.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkbenchCreateTest, NegativeGammaOverrideMeansScottsRule) {
  Workbench::Options options;
  options.gamma_override = -1.0;
  StatusOr<std::unique_ptr<Workbench>> bench = Workbench::Create(
      GenerateMixture(MixtureSpec{}), KernelType::kGaussian, options);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  EXPECT_GT((*bench)->params().gamma, 0.0);
}

TEST(WorkbenchCreateTest, ExtremeGammaOverrideRendersFiniteFrame) {
  // A legal-but-absurd bandwidth (γ = 1e300) must survive the whole render
  // path on the clamped-exponent kernels without a single NaN/Inf pixel.
  Workbench::Options options;
  options.gamma_override = 1e300;
  StatusOr<std::unique_ptr<Workbench>> bench = Workbench::Create(
      GenerateMixture(MixtureSpec{}), KernelType::kGaussian, options);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  ExpectFiniteFrame(**bench);
}

TEST(WorkbenchTest, ZorderCacheReturnsSameTreeForSameEps) {
  Workbench bench(GenerateMixture(MixtureSpec{}), KernelType::kGaussian);
  KdeEvaluator a = bench.MakeZorderEvaluator(0.05);
  KdeEvaluator b = bench.MakeZorderEvaluator(0.05);
  EXPECT_EQ(&a.tree(), &b.tree());
  KdeEvaluator c = bench.MakeZorderEvaluator(0.2);
  EXPECT_NE(&a.tree(), &c.tree());
}

}  // namespace
}  // namespace kdv
