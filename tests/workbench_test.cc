#include <gtest/gtest.h>

#include "data/datasets.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

TEST(WorkbenchTest, IndexesDatasetAndDerivesScottParams) {
  PointSet pts = GenerateMixture(CrimeSpec(0.002));
  size_t n = pts.size();
  KernelParams reference = MakeScottParams(KernelType::kGaussian, pts);

  Workbench bench(std::move(pts), KernelType::kGaussian);
  EXPECT_EQ(bench.num_points(), n);
  EXPECT_DOUBLE_EQ(bench.params().gamma, reference.gamma);
  EXPECT_DOUBLE_EQ(bench.params().weight, reference.weight);
  EXPECT_EQ(bench.kernel(), KernelType::kGaussian);
}

TEST(WorkbenchTest, GammaOverride) {
  Workbench::Options options;
  options.gamma_override = 3.5;
  Workbench bench(GenerateMixture(MixtureSpec{}), KernelType::kGaussian,
                  options);
  EXPECT_DOUBLE_EQ(bench.params().gamma, 3.5);
}

TEST(WorkbenchTest, SupportMatrixMatchesTable6) {
  Workbench gaussian(GenerateMixture(MixtureSpec{}), KernelType::kGaussian);
  EXPECT_TRUE(gaussian.Supports(Method::kExact));
  EXPECT_TRUE(gaussian.Supports(Method::kAkde));
  EXPECT_TRUE(gaussian.Supports(Method::kTkdc));
  EXPECT_TRUE(gaussian.Supports(Method::kKarl));
  EXPECT_TRUE(gaussian.Supports(Method::kQuad));
  EXPECT_TRUE(gaussian.Supports(Method::kZorder));

  Workbench triangular(GenerateMixture(MixtureSpec{}),
                       KernelType::kTriangular);
  EXPECT_FALSE(triangular.Supports(Method::kKarl));  // paper §5.1
  EXPECT_TRUE(triangular.Supports(Method::kQuad));
  EXPECT_TRUE(triangular.Supports(Method::kAkde));
}

TEST(WorkbenchTest, EvaluatorsShareTheSameTree) {
  Workbench bench(GenerateMixture(MixtureSpec{}), KernelType::kGaussian);
  KdeEvaluator a = bench.MakeEvaluator(Method::kQuad);
  KdeEvaluator b = bench.MakeEvaluator(Method::kAkde);
  EXPECT_EQ(&a.tree(), &b.tree());
  EXPECT_EQ(&a.tree(), &bench.tree());
}

TEST(WorkbenchTest, MethodsAgreeOnDensityValues) {
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  KdeEvaluator karl = bench.MakeEvaluator(Method::kKarl);

  Point q = bench.data_bounds().Center();
  double truth = exact.EvaluateExact(q);
  EXPECT_NEAR(quad.EvaluateEps(q, 0.01).estimate, truth, 0.011 * truth);
  EXPECT_NEAR(karl.EvaluateEps(q, 0.01).estimate, truth, 0.011 * truth);
}

TEST(WorkbenchTest, ZorderEvaluatorUsesReducedWeightedSample) {
  Workbench bench(GenerateMixture(HomeSpec(0.005)), KernelType::kGaussian);
  // At ε = 0.2 the coreset bound asks for ~900 points, well below n.
  KdeEvaluator zorder = bench.MakeZorderEvaluator(0.2);
  // Sample is smaller than the full dataset...
  EXPECT_LT(zorder.tree().num_points(), bench.num_points());
  // ...and reweighted to compensate.
  EXPECT_GT(zorder.params().weight, bench.params().weight);

  // Aggregate scale is preserved at the data centroid.
  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  Point q = bench.data_bounds().Center();
  double full = exact.EvaluateExact(q);
  double reduced = zorder.EvaluateExact(q);
  ASSERT_GT(full, 0.0);
  EXPECT_NEAR(reduced / full, 1.0, 0.3);
}

TEST(WorkbenchTest, ZorderCacheReturnsSameTreeForSameEps) {
  Workbench bench(GenerateMixture(MixtureSpec{}), KernelType::kGaussian);
  KdeEvaluator a = bench.MakeZorderEvaluator(0.05);
  KdeEvaluator b = bench.MakeZorderEvaluator(0.05);
  EXPECT_EQ(&a.tree(), &b.tree());
  KdeEvaluator c = bench.MakeZorderEvaluator(0.2);
  EXPECT_NE(&a.tree(), &c.tree());
}

}  // namespace
}  // namespace kdv
