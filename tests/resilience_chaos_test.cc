// Chaos suite for the resilient render path.
//
// Part 1 exercises the ResilientRenderer degradation ladder with ordinary
// inputs (runs in every build). Part 2 sweeps every registered failpoint
// site with every fault kind and asserts the render either degrades to a
// valid outcome or fails with a clean non-OK status — never a crash, hang,
// or non-finite pixel. The sweep needs -DKDV_FAILPOINTS=ON and skips itself
// elsewhere; CI runs it via the failpoints job (`ctest -L fault`).
#include "serve/resilient_renderer.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "util/failpoint.h"
#include "viz/frame.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

class ResilientRendererTest : public ::testing::Test {
 protected:
  ResilientRendererTest()
      : bench_(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian),
        evaluator_(bench_.MakeEvaluator(Method::kQuad)),
        grid_(16, 12, bench_.data_bounds()) {}

  void ExpectFinite(const DensityFrame& frame) {
    ASSERT_EQ(frame.values.size(),
              static_cast<size_t>(grid_.width()) * grid_.height());
    for (double v : frame.values) EXPECT_TRUE(std::isfinite(v));
  }

  Workbench bench_;
  KdeEvaluator evaluator_;
  PixelGrid grid_;
};

TEST_F(ResilientRendererTest, UnlimitedBudgetCertifies) {
  ResilientRenderer renderer(&evaluator_);
  ResilientRenderOptions options;
  options.eps = 0.01;
  options.budget_seconds = -1.0;
  RenderOutcome outcome = renderer.Render(grid_, options);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.tier, QualityTier::kCertified);
  EXPECT_DOUBLE_EQ(outcome.certified_eps, 0.01);
  EXPECT_FALSE(outcome.deadline_expired);
  EXPECT_EQ(outcome.pixels_scrubbed, 0u);
  ExpectFinite(outcome.frame);
}

TEST_F(ResilientRendererTest, ZeroBudgetDegradesToCoarse) {
  ResilientRenderer renderer(&evaluator_);
  ResilientRenderOptions options;
  options.budget_seconds = 0.0;
  RenderOutcome outcome = renderer.Render(grid_, options);
  EXPECT_TRUE(outcome.ok());  // a degraded render is still a served render
  EXPECT_TRUE(outcome.deadline_expired);
  EXPECT_EQ(outcome.tier, QualityTier::kCoarse);
  EXPECT_LT(outcome.certified_eps, 0.0);
  ExpectFinite(outcome.frame);
  // The coarse frame is a real density map, not a flat placeholder.
  double max_v = 0.0;
  for (double v : outcome.frame.values) max_v = std::max(max_v, v);
  EXPECT_GT(max_v, 0.0);
}

TEST_F(ResilientRendererTest, ZeroBudgetFailFastReturnsDeadlineExceeded) {
  ResilientRenderer renderer(&evaluator_);
  ResilientRenderOptions options;
  options.budget_seconds = 0.0;
  options.degrade = false;
  RenderOutcome outcome = renderer.Render(grid_, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(outcome.deadline_expired);
  ExpectFinite(outcome.frame);
}

TEST_F(ResilientRendererTest, CancellationIsNeverReportedAsServed) {
  ResilientRenderer renderer(&evaluator_);
  CancelToken token;
  token.RequestCancel();
  ResilientRenderOptions options;
  options.cancel = &token;
  RenderOutcome outcome = renderer.Render(grid_, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(outcome.cancelled);
  ExpectFinite(outcome.frame);
}

TEST_F(ResilientRendererTest, QualityTierNamesAreStable) {
  EXPECT_STREQ(QualityTierName(QualityTier::kCertified), "certified");
  EXPECT_STREQ(QualityTierName(QualityTier::kProgressive), "progressive");
  EXPECT_STREQ(QualityTierName(QualityTier::kCoarse), "coarse");
  EXPECT_STREQ(QualityTierName(QualityTier::kFlat), "flat");
}

TEST_F(ResilientRendererTest, NonPlanarDataFallsBackToFlat) {
  // GridKde is 2-d only: a 3-d dataset with a zero budget must land on the
  // flat tier rather than crash the coarse stage.
  PointSet points;
  for (int i = 0; i < 64; ++i) {
    Point p(3);
    p[0] = static_cast<double>(i % 8);
    p[1] = static_cast<double>(i / 8);
    p[2] = static_cast<double>(i % 3);
    points.push_back(p);
  }
  Workbench bench(std::move(points), KernelType::kGaussian);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  PixelGrid grid(8, 8, bench.data_bounds());
  ResilientRenderer renderer(&quad);
  ResilientRenderOptions options;
  options.budget_seconds = 0.0;
  RenderOutcome outcome = renderer.Render(grid, options);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.tier, QualityTier::kFlat);
  for (double v : outcome.frame.values) EXPECT_EQ(v, 0.0);
}

// ---------------------------------------------------------------------------
// Failpoint sweep (needs -DKDV_FAILPOINTS=ON)
// ---------------------------------------------------------------------------

class ChaosSweepTest : public ResilientRendererTest {
 protected:
  void SetUp() override {
    if (!failpoint::enabled()) {
      GTEST_SKIP() << "failpoints not compiled in (build with "
                      "-DKDV_FAILPOINTS=ON)";
    }
    failpoint::Reset();
  }
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(ChaosSweepTest, EverySiteEveryActionDegradesOrFailsCleanly) {
  const failpoint::Action kActions[] = {
      failpoint::Action::kError,
      failpoint::Action::kNaN,
      failpoint::Action::kDelay,
  };
  for (const std::string& site : failpoint::AllSites()) {
    for (failpoint::Action action : kActions) {
      SCOPED_TRACE("site=" + site + " action=" +
                   std::to_string(static_cast<int>(action)));
      failpoint::Reset();
      ASSERT_TRUE(failpoint::Arm(site, action, /*delay_ms=*/1).ok());

      ResilientRenderer renderer(&evaluator_);
      ResilientRenderOptions options;
      options.eps = 0.05;
      options.budget_seconds = 5.0;  // generous: delays must not hang us
      RenderOutcome outcome = renderer.Render(grid_, options);

      // Contract: a finite, correctly sized frame always comes back, and
      // the outcome is either a served (possibly degraded) render or a
      // clean non-OK status.
      ExpectFinite(outcome.frame);
      if (!outcome.ok()) {
        EXPECT_FALSE(outcome.status.message().empty());
      }
      if (outcome.tier == QualityTier::kCertified) {
        EXPECT_TRUE(outcome.ok());
        EXPECT_DOUBLE_EQ(outcome.certified_eps, 0.05);
      } else {
        EXPECT_LT(outcome.certified_eps, 0.0);
      }
    }
  }
}

TEST_F(ChaosSweepTest, InjectedEntryFaultStillShipsACoarseFrame) {
  ASSERT_TRUE(
      failpoint::Arm("serve.render", failpoint::Action::kError).ok());
  ResilientRenderer renderer(&evaluator_);
  ResilientRenderOptions options;
  RenderOutcome outcome = renderer.Render(grid_, options);
  EXPECT_FALSE(outcome.ok());  // the fault is reported...
  EXPECT_EQ(outcome.tier, QualityTier::kCoarse);  // ...but a frame ships
  ExpectFinite(outcome.frame);
}

TEST_F(ChaosSweepTest, DoubleFaultLandsOnFlatTier) {
  ASSERT_TRUE(
      failpoint::Arm("serve.render", failpoint::Action::kError).ok());
  ASSERT_TRUE(
      failpoint::Arm("serve.coarse", failpoint::Action::kError).ok());
  ResilientRenderer renderer(&evaluator_);
  ResilientRenderOptions options;
  RenderOutcome outcome = renderer.Render(grid_, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.tier, QualityTier::kFlat);
  for (double v : outcome.frame.values) EXPECT_EQ(v, 0.0);
}

TEST_F(ChaosSweepTest, NumericFaultInRefinementIsClampedAndCounted) {
  ASSERT_TRUE(
      failpoint::Arm("refine.step", failpoint::Action::kNaN).ok());
  ResilientRenderer renderer(&evaluator_);
  ResilientRenderOptions options;
  options.eps = 0.05;
  RenderOutcome outcome = renderer.Render(grid_, options);
  ExpectFinite(outcome.frame);
  EXPECT_GT(outcome.numeric_faults, 0u);
  // Clamped pixels lose their certificate, so the frame must not claim one.
  EXPECT_NE(outcome.tier, QualityTier::kCertified);
}

TEST_F(ChaosSweepTest, DelayInTheScheduleTripsTheDeadline) {
  // 5ms of injected latency per region op against a 50ms budget: the
  // deadline must fire and the ladder must still deliver a frame.
  ASSERT_TRUE(failpoint::Arm("progressive.op", failpoint::Action::kDelay,
                             /*delay_ms=*/5)
                  .ok());
  ResilientRenderer renderer(&evaluator_);
  ResilientRenderOptions options;
  options.budget_seconds = 0.05;
  RenderOutcome outcome = renderer.Render(grid_, options);
  EXPECT_TRUE(outcome.deadline_expired);
  EXPECT_TRUE(outcome.ok());  // degraded, not failed
  ExpectFinite(outcome.frame);
}

}  // namespace
}  // namespace kdv
