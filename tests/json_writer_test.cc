// util/json_writer: the one JSON emitter every tool/bench/exporter routes
// through, and the strict validator tests run emitted artifacts through.
// The escaping and non-finite cases are regression tests for the hand-rolled
// printf JSON this writer replaced (unescaped "out":"%s", %g printing bare
// nan/inf).
#include "util/json_writer.h"

#include <cmath>
#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace kdv {
namespace {

TEST(JsonEscapedTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscaped("heat.ppm"), "heat.ppm");
  EXPECT_EQ(JsonEscaped(""), "");
}

TEST(JsonEscapedTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscaped("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscaped("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
  EXPECT_EQ(JsonEscaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscaped(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscaped("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonNumberTest, FormatsFiniteScrubsNonFinite) {
  EXPECT_EQ(JsonNumber(0.5, 6), "0.5");
  EXPECT_EQ(JsonNumber(std::nan(""), 6), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity(), 6), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity(), 6), "null");
}

TEST(JsonWriterTest, FlatObjectWithCommas) {
  JsonWriter w;
  w.BeginObject().Key("a").Value(1).Key("b").Value("x").EndObject();
  EXPECT_EQ(w.Take(), "{\"a\":1,\"b\":\"x\"}");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.BeginObject().Key("rows").BeginArray();
  w.BeginObject().Key("n").Value(uint64_t{7}).EndObject();
  w.Value(true).Null();
  w.EndArray().Key("ok").Value(false).EndObject();
  EXPECT_EQ(w.Take(), "{\"rows\":[{\"n\":7},true,null],\"ok\":false}");
}

TEST(JsonWriterTest, EscapesKeysAndStringValues) {
  JsonWriter w;
  w.BeginObject().Key("pa\"th").Value("a\\b\nc").EndObject();
  const std::string doc = w.Take();
  EXPECT_EQ(doc, "{\"pa\\\"th\":\"a\\\\b\\nc\"}");
  EXPECT_TRUE(JsonValidate(doc).ok());
}

TEST(JsonWriterTest, NonFiniteValuesBecomeNull) {
  JsonWriter w;
  w.BeginObject()
      .Key("nan").Value(std::nan(""))
      .Key("inf").Number(std::numeric_limits<double>::infinity(), 3)
      .EndObject();
  const std::string doc = w.Take();
  EXPECT_EQ(doc, "{\"nan\":null,\"inf\":null}");
  EXPECT_TRUE(JsonValidate(doc).ok());
}

TEST(JsonWriterTest, IntegerOverloadsKeepFullPrecision) {
  JsonWriter w;
  w.BeginObject()
      .Key("u64").Value(std::numeric_limits<uint64_t>::max())
      .Key("i64").Value(std::numeric_limits<int64_t>::min())
      .Key("neg").Value(-3)
      .EndObject();
  EXPECT_EQ(w.Take(),
            "{\"u64\":18446744073709551615,"
            "\"i64\":-9223372036854775808,\"neg\":-3}");
}

TEST(JsonWriterTest, TopLevelArrayAndReuseAfterTake) {
  JsonWriter w;
  w.BeginArray().Value(1).Value(2).EndArray();
  EXPECT_EQ(w.Take(), "[1,2]");
  // The writer is reusable after Take().
  w.BeginObject().EndObject();
  EXPECT_EQ(w.Take(), "{}");
}

TEST(JsonWriterTest, RawSplicesPrebuiltJson) {
  JsonWriter inner;
  inner.BeginObject().Key("p50").Number(0.25, 6).EndObject();
  JsonWriter w;
  w.BeginObject().Key("metrics").Raw(inner.Take()).EndObject();
  const std::string doc = w.Take();
  EXPECT_EQ(doc, "{\"metrics\":{\"p50\":0.25}}");
  EXPECT_TRUE(JsonValidate(doc).ok());
}

TEST(JsonValidateTest, AcceptsValidDocuments) {
  EXPECT_TRUE(JsonValidate("{}").ok());
  EXPECT_TRUE(JsonValidate("[]").ok());
  EXPECT_TRUE(JsonValidate("  {\"a\":[1,2.5,-3e2,true,false,null]} ").ok());
  EXPECT_TRUE(JsonValidate("\"just a string\"").ok());
  EXPECT_TRUE(JsonValidate("0").ok());
  EXPECT_TRUE(JsonValidate("-0.5e-3").ok());
  EXPECT_TRUE(JsonValidate("{\"u\":\"\\u00e9\",\"q\":\"\\\"\"}").ok());
}

TEST(JsonValidateTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValidate("").ok());
  EXPECT_FALSE(JsonValidate("{").ok());
  EXPECT_FALSE(JsonValidate("{\"a\":}").ok());
  EXPECT_FALSE(JsonValidate("{\"a\":1,}").ok());     // trailing comma
  EXPECT_FALSE(JsonValidate("[1,2,]").ok());         // trailing comma
  EXPECT_FALSE(JsonValidate("{'a':1}").ok());        // single quotes
  EXPECT_FALSE(JsonValidate("{\"a\":nan}").ok());    // the old %g output
  EXPECT_FALSE(JsonValidate("{\"a\":inf}").ok());
  EXPECT_FALSE(JsonValidate("{\"a\":01}").ok());     // leading zero
  EXPECT_FALSE(JsonValidate("{\"a\":1} extra").ok());  // trailing garbage
  EXPECT_FALSE(JsonValidate("{\"a\":\"\x01\"}").ok());  // raw control char
  EXPECT_FALSE(JsonValidate("{\"a\":\"\\x\"}").ok());   // bad escape
  EXPECT_FALSE(JsonValidate("{\"a\":\"\\u12g4\"}").ok());
  EXPECT_FALSE(JsonValidate("{\"a\" 1}").ok());      // missing colon
  EXPECT_FALSE(JsonValidate("[1 2]").ok());          // missing comma
}

TEST(JsonValidateTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(JsonValidate(deep).ok());
  // A modest depth is fine.
  std::string ok = "1";
  for (int i = 0; i < 20; ++i) ok = "[" + ok + "]";
  EXPECT_TRUE(JsonValidate(ok).ok());
}

// End-to-end property: whatever the writer produces, the validator accepts.
TEST(JsonWriterTest, EmittedDocumentsAlwaysValidate) {
  JsonWriter w;
  w.BeginObject()
      .Key("path\\with\"stuff").Value("line1\nline2\tend")
      .Key("vals").BeginArray()
          .Value(std::nan(""))
          .Value(1e308)
          .Value(uint64_t{0})
          .Value("\x7f control-adjacent")
      .EndArray()
      .Key("nested").BeginObject()
          .Key("deep").BeginArray().BeginObject().EndObject().EndArray()
      .EndObject()
      .EndObject();
  const Status valid = JsonValidate(w.Take());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

}  // namespace
}  // namespace kdv
