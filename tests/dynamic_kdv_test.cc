#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "dynamic/dynamic_kdv.h"
#include "util/random.h"

namespace kdv {
namespace {

PointSet Blob(int n, double cx, double cy, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(Point{rng.Gaussian(cx, 0.2), rng.Gaussian(cy, 0.2)});
  }
  return pts;
}

// Brute force over an explicit live set.
double Brute(const PointSet& live, const KernelParams& params,
             const Point& q) {
  double s = 0.0;
  for (const Point& p : live) {
    s += params.EvalSquaredDistance(SquaredDistance(q, p));
  }
  return params.weight * s;
}

TEST(DynamicKdvTest, InitialStateMatchesStaticEvaluation) {
  PointSet pts = Blob(2000, 0.5, 0.5, 1);
  DynamicKdv dyn(PointSet(pts), DynamicKdv::Options{});
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    double exact = Brute(pts, dyn.params(), q);
    EXPECT_NEAR(dyn.EvaluateExact(q), exact, 1e-9 * std::max(1.0, exact));
    EvalResult r = dyn.EvaluateEps(q, 0.01);
    if (exact > 1e-12) {
      EXPECT_LE(std::abs(r.estimate - exact) / exact, 0.0101);
    }
  }
}

TEST(DynamicKdvTest, InsertsAreVisibleWithGuarantee) {
  PointSet pts = Blob(2000, 0.5, 0.5, 3);
  DynamicKdv::Options options;
  options.rebuild_fraction = 10.0;  // keep everything in the buffer
  DynamicKdv dyn(PointSet(pts), options);

  PointSet live = pts;
  Rng rng(4);
  for (int i = 0; i < 150; ++i) {
    Point p{rng.Gaussian(0.8, 0.05), rng.Gaussian(0.8, 0.05)};
    dyn.Insert(p);
    live.push_back(p);
  }
  EXPECT_EQ(dyn.pending_inserts(), 150u);
  EXPECT_EQ(dyn.num_points(), live.size());

  for (int i = 0; i < 20; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    double exact = Brute(live, dyn.params(), q);
    EvalResult r = dyn.EvaluateEps(q, 0.01);
    EXPECT_LE(r.lower, exact * (1 + 1e-9) + 1e-12);
    EXPECT_GE(r.upper, exact * (1 - 1e-9) - 1e-12);
    if (exact > 1e-12) {
      EXPECT_LE(std::abs(r.estimate - exact) / exact, 0.0101);
    }
  }
}

TEST(DynamicKdvTest, RemovalsAreVisibleWithGuarantee) {
  PointSet pts = Blob(2000, 0.5, 0.5, 5);
  DynamicKdv::Options options;
  options.rebuild_fraction = 10.0;
  DynamicKdv dyn(PointSet(pts), options);

  PointSet live = pts;
  // Remove 100 existing points.
  for (int i = 0; i < 100; ++i) {
    dyn.Remove(pts[i * 7]);
    live.erase(std::find(live.begin(), live.end(), pts[i * 7]));
  }
  EXPECT_EQ(dyn.pending_removals(), 100u);
  EXPECT_EQ(dyn.num_points(), live.size());

  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    double exact = Brute(live, dyn.params(), q);
    EvalResult r = dyn.EvaluateEps(q, 0.01);
    if (exact > 1e-12) {
      EXPECT_LE(std::abs(r.estimate - exact) / exact, 0.0101);
    }
  }
}

TEST(DynamicKdvTest, InsertThenRemoveCancels) {
  PointSet pts = Blob(500, 0.5, 0.5, 7);
  DynamicKdv dyn(PointSet(pts), DynamicKdv::Options{});
  Point extra{0.9, 0.9};
  dyn.Insert(extra);
  EXPECT_EQ(dyn.pending_inserts(), 1u);
  dyn.Remove(extra);
  EXPECT_EQ(dyn.pending_inserts(), 0u);
  EXPECT_EQ(dyn.pending_removals(), 0u);
  EXPECT_EQ(dyn.num_points(), 500u);
}

TEST(DynamicKdvTest, RemoveThenReinsertCancels) {
  PointSet pts = Blob(500, 0.5, 0.5, 8);
  DynamicKdv::Options options;
  options.rebuild_fraction = 10.0;
  DynamicKdv dyn(PointSet(pts), options);
  dyn.Remove(pts[0]);
  EXPECT_EQ(dyn.pending_removals(), 1u);
  dyn.Insert(pts[0]);
  EXPECT_EQ(dyn.pending_removals(), 0u);
  EXPECT_EQ(dyn.num_points(), 500u);
}

TEST(DynamicKdvTest, AutomaticRebuildFoldsBuffers) {
  PointSet pts = Blob(100, 0.5, 0.5, 9);
  DynamicKdv::Options options;
  options.rebuild_fraction = 0.2;  // rebuild after >20 buffered inserts
  DynamicKdv dyn(PointSet(pts), options);

  Rng rng(10);
  for (int i = 0; i < 30; ++i) {
    dyn.Insert(Point{rng.NextDouble(), rng.NextDouble()});
  }
  EXPECT_LT(dyn.pending_inserts(), 30u);  // at least one rebuild happened
  EXPECT_EQ(dyn.num_points(), 130u);
}

TEST(DynamicKdvTest, ManualRebuildPreservesAnswers) {
  PointSet pts = Blob(1000, 0.4, 0.6, 11);
  DynamicKdv::Options options;
  options.rebuild_fraction = 10.0;
  options.gamma_override =
      MakeScottParams(KernelType::kGaussian, pts).gamma;  // freeze gamma
  DynamicKdv dyn(PointSet(pts), options);

  Rng rng(12);
  PointSet live = pts;
  for (int i = 0; i < 50; ++i) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    dyn.Insert(p);
    live.push_back(p);
  }
  Point q{0.5, 0.5};
  double before = dyn.EvaluateExact(q);
  dyn.Rebuild();
  EXPECT_EQ(dyn.pending_inserts(), 0u);
  double after = dyn.EvaluateExact(q);
  EXPECT_NEAR(before, after, 1e-9 * std::max(1.0, before));
  EXPECT_NEAR(after, Brute(live, dyn.params(), q),
              1e-9 * std::max(1.0, after));
}

TEST(DynamicKdvTest, TauTracksLiveSet) {
  // Start with one blob; τ between "blob present" and "blob absent" at its
  // center flips when the blob is removed.
  PointSet a = Blob(500, 0.3, 0.3, 13);
  PointSet b = Blob(500, 0.8, 0.8, 14);
  PointSet all = a;
  all.insert(all.end(), b.begin(), b.end());

  DynamicKdv::Options options;
  options.rebuild_fraction = 10.0;
  DynamicKdv dyn(PointSet(all), options);

  Point center_b{0.8, 0.8};
  double density_with = dyn.EvaluateExact(center_b);
  double tau = 0.5 * density_with;
  EXPECT_TRUE(dyn.EvaluateTau(center_b, tau).above_threshold);

  for (const Point& p : b) dyn.Remove(p);
  EXPECT_EQ(dyn.num_points(), a.size());
  EXPECT_FALSE(dyn.EvaluateTau(center_b, tau).above_threshold);
}

TEST(DynamicKdvTest, StressRandomMutationsStayConsistent) {
  PointSet pts = Blob(800, 0.5, 0.5, 15);
  DynamicKdv::Options options;
  options.rebuild_fraction = 0.1;
  options.gamma_override =
      MakeScottParams(KernelType::kGaussian, pts).gamma;
  DynamicKdv dyn(PointSet(pts), options);

  PointSet live = pts;
  Rng rng(16);
  for (int round = 0; round < 200; ++round) {
    if (rng.NextDouble() < 0.6 || live.size() < 100) {
      Point p{rng.NextDouble(), rng.NextDouble()};
      dyn.Insert(p);
      live.push_back(p);
    } else {
      size_t idx = rng.UniformInt(live.size());
      dyn.Remove(live[idx]);
      live.erase(live.begin() + idx);
    }
  }
  EXPECT_EQ(dyn.num_points(), live.size());
  for (int i = 0; i < 10; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    double exact = Brute(live, dyn.params(), q);
    EXPECT_NEAR(dyn.EvaluateExact(q), exact, 1e-8 * std::max(1.0, exact));
    EvalResult r = dyn.EvaluateEps(q, 0.02);
    if (exact > 1e-12) {
      EXPECT_LE(std::abs(r.estimate - exact) / exact, 0.0201);
    }
  }
}

}  // namespace
}  // namespace kdv
