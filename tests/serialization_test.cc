#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "index/serialization.h"
#include "core/evaluator.h"
#include "bounds/node_bounds.h"
#include "util/random.h"

namespace kdv {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  PointSet pts = GenerateMixture(CrimeSpec(0.002));
  KdTree tree{PointSet(pts)};

  std::string path = TempPath("kdv_tree.bin");
  ASSERT_TRUE(SaveKdTree(tree, path));
  std::unique_ptr<KdTree> loaded = LoadKdTree(path);
  ASSERT_NE(loaded, nullptr);

  EXPECT_EQ(loaded->num_points(), tree.num_points());
  EXPECT_EQ(loaded->num_nodes(), tree.num_nodes());
  EXPECT_EQ(loaded->dim(), tree.dim());
  EXPECT_EQ(loaded->Depth(), tree.Depth());
  for (size_t i = 0; i < tree.num_points(); ++i) {
    EXPECT_EQ(loaded->points()[i], tree.points()[i]);
    EXPECT_EQ(loaded->original_index(i), tree.original_index(i));
  }
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const KdTree::Node& a = tree.node(static_cast<int32_t>(i));
    const KdTree::Node& b = loaded->node(static_cast<int32_t>(i));
    EXPECT_EQ(a.begin, b.begin);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.left, b.left);
    EXPECT_EQ(a.right, b.right);
    // Recomputed stats match.
    EXPECT_DOUBLE_EQ(a.stats.sum_sq_norm(), b.stats.sum_sq_norm());
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadedTreeAnswersQueriesIdentically) {
  PointSet pts = GenerateMixture(HomeSpec(0.002));
  KernelParams params = MakeScottParams(KernelType::kGaussian, pts);
  KdTree tree{PointSet(pts)};

  std::string path = TempPath("kdv_tree2.bin");
  ASSERT_TRUE(SaveKdTree(tree, path));
  std::unique_ptr<KdTree> loaded = LoadKdTree(path);
  ASSERT_NE(loaded, nullptr);

  auto bounds_a = MakeNodeBounds(Method::kQuad, params);
  auto bounds_b = MakeNodeBounds(Method::kQuad, params);
  KdeEvaluator original(&tree, params, bounds_a.get());
  KdeEvaluator reloaded(loaded.get(), params, bounds_b.get());

  Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    EvalResult ra = original.EvaluateEps(q, 0.01);
    EvalResult rb = reloaded.EvaluateEps(q, 0.01);
    EXPECT_EQ(ra.estimate, rb.estimate);
    EXPECT_EQ(ra.iterations, rb.iterations);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsMissingFile) {
  EXPECT_EQ(LoadKdTree("/nonexistent/tree.bin"), nullptr);
}

TEST(SerializationTest, RejectsBadMagicAndTruncation) {
  std::string path = TempPath("kdv_bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a tree";
  }
  EXPECT_EQ(LoadKdTree(path), nullptr);

  // Valid header then truncation.
  PointSet pts = GenerateMixture(MixtureSpec{});
  KdTree tree{std::move(pts)};
  ASSERT_TRUE(SaveKdTree(tree, path));
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), content.size() / 2);
  }
  EXPECT_EQ(LoadKdTree(path), nullptr);
  std::remove(path.c_str());
}

TEST(SerializationTest, FromSerializedRejectsCorruptStructure) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  KdTree tree{PointSet(pts)};

  // Clone the parts.
  std::vector<KdTree::Node> nodes;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    nodes.push_back(tree.node(static_cast<int32_t>(i)));
  }

  // (a) Broken permutation.
  {
    std::vector<uint32_t> idx = tree.original_indices();
    idx[0] = idx[1];
    EXPECT_EQ(KdTree::FromSerialized(PointSet(tree.points()), idx, nodes),
              nullptr);
  }
  // (b) Child range that does not partition the parent.
  if (!nodes[0].IsLeaf()) {
    std::vector<KdTree::Node> bad = nodes;
    bad[bad[0].left].end -= 1;
    EXPECT_EQ(KdTree::FromSerialized(PointSet(tree.points()),
                                     tree.original_indices(), bad),
              nullptr);
  }
  // (c) Cycle (node pointing at the root).
  if (!nodes[0].IsLeaf()) {
    std::vector<KdTree::Node> bad = nodes;
    bad[bad[0].left].left = 0;
    bad[bad[0].left].right = 0;
    EXPECT_EQ(KdTree::FromSerialized(PointSet(tree.points()),
                                     tree.original_indices(), bad),
              nullptr);
  }
  // (d) Root not covering all points.
  {
    std::vector<KdTree::Node> bad = nodes;
    bad[0].end -= 1;
    EXPECT_EQ(KdTree::FromSerialized(PointSet(tree.points()),
                                     tree.original_indices(), bad),
              nullptr);
  }
  // Sanity: unmodified parts load fine.
  EXPECT_NE(KdTree::FromSerialized(PointSet(tree.points()),
                                   tree.original_indices(), nodes),
            nullptr);
}

}  // namespace
}  // namespace kdv
