#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "index/serialization.h"
#include "core/evaluator.h"
#include "bounds/node_bounds.h"
#include "util/random.h"

namespace kdv {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectTreesEqual(const KdTree& a, const KdTree& b) {
  ASSERT_EQ(b.num_points(), a.num_points());
  ASSERT_EQ(b.num_nodes(), a.num_nodes());
  EXPECT_EQ(b.dim(), a.dim());
  EXPECT_EQ(b.Depth(), a.Depth());
  for (size_t i = 0; i < a.num_points(); ++i) {
    EXPECT_EQ(b.points()[i], a.points()[i]);
    EXPECT_EQ(b.original_index(i), a.original_index(i));
  }
  for (size_t i = 0; i < a.num_nodes(); ++i) {
    const KdTree::Node& na = a.node(static_cast<int32_t>(i));
    const KdTree::Node& nb = b.node(static_cast<int32_t>(i));
    EXPECT_EQ(na.begin, nb.begin);
    EXPECT_EQ(na.end, nb.end);
    EXPECT_EQ(na.left, nb.left);
    EXPECT_EQ(na.right, nb.right);
    // Recomputed stats match.
    EXPECT_DOUBLE_EQ(na.stats.sum_sq_norm(), nb.stats.sum_sq_norm());
  }
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  PointSet pts = GenerateMixture(CrimeSpec(0.002));
  KdTree tree{PointSet(pts)};

  std::string path = TempPath("kdv_tree.bin");
  ASSERT_TRUE(SaveKdTree(tree, path).ok());
  StatusOr<std::unique_ptr<KdTree>> loaded = LoadKdTree(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTreesEqual(tree, **loaded);
  std::remove(path.c_str());
}

TEST(SerializationTest, V1RoundTripStillReadable) {
  PointSet pts = GenerateMixture(CrimeSpec(0.002));
  KdTree tree{PointSet(pts)};

  std::string path = TempPath("kdv_tree_v1.bin");
  ASSERT_TRUE(SaveKdTree(tree, path, /*version=*/1).ok());
  StatusOr<std::unique_ptr<KdTree>> loaded = LoadKdTree(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTreesEqual(tree, **loaded);

  // The v1 file really is the legacy layout: smaller than v2 by exactly the
  // payload-length + four CRC fields.
  std::string path_v2 = TempPath("kdv_tree_v2.bin");
  ASSERT_TRUE(SaveKdTree(tree, path_v2, /*version=*/2).ok());
  std::ifstream v1(path, std::ios::binary | std::ios::ate);
  std::ifstream v2(path_v2, std::ios::binary | std::ios::ate);
  EXPECT_EQ(static_cast<long>(v1.tellg()) + 24, static_cast<long>(v2.tellg()));
  std::remove(path.c_str());
  std::remove(path_v2.c_str());
}

TEST(SerializationTest, RejectsUnsupportedSaveVersion) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  KdTree tree{std::move(pts)};
  Status status = SaveKdTree(tree, TempPath("kdv_tree_v9.bin"), 9);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, LoadedTreeAnswersQueriesIdentically) {
  PointSet pts = GenerateMixture(HomeSpec(0.002));
  KernelParams params = MakeScottParams(KernelType::kGaussian, pts);
  KdTree tree{PointSet(pts)};

  std::string path = TempPath("kdv_tree2.bin");
  ASSERT_TRUE(SaveKdTree(tree, path).ok());
  StatusOr<std::unique_ptr<KdTree>> loaded = LoadKdTree(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  auto bounds_a = MakeNodeBounds(Method::kQuad, params);
  auto bounds_b = MakeNodeBounds(Method::kQuad, params);
  KdeEvaluator original(&tree, params, bounds_a.get());
  KdeEvaluator reloaded(loaded->get(), params, bounds_b.get());

  Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    EvalResult ra = original.EvaluateEps(q, 0.01);
    EvalResult rb = reloaded.EvaluateEps(q, 0.01);
    EXPECT_EQ(ra.estimate, rb.estimate);
    EXPECT_EQ(ra.iterations, rb.iterations);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsMissingFile) {
  StatusOr<std::unique_ptr<KdTree>> result = LoadKdTree("/nonexistent/t.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SerializationTest, RejectsBadMagicAndTruncation) {
  std::string path = TempPath("kdv_bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a tree";
  }
  StatusOr<std::unique_ptr<KdTree>> bad_magic = LoadKdTree(path);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bad_magic.status().message().find("magic"), std::string::npos);

  // Valid header then truncation.
  PointSet pts = GenerateMixture(MixtureSpec{});
  KdTree tree{std::move(pts)};
  ASSERT_TRUE(SaveKdTree(tree, path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), content.size() / 2);
  }
  StatusOr<std::unique_ptr<KdTree>> truncated = LoadKdTree(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsFutureFormatVersion) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  KdTree tree{std::move(pts)};
  std::string path = TempPath("kdv_future.bin");
  ASSERT_TRUE(SaveKdTree(tree, path).ok());
  {
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(4);  // version field follows the 4-byte magic
    uint32_t version = 99;
    io.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  StatusOr<std::unique_ptr<KdTree>> result = LoadKdTree(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  std::remove(path.c_str());
}

TEST(SerializationTest, FromSerializedRejectsCorruptStructure) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  KdTree tree{PointSet(pts)};

  // Clone the parts.
  std::vector<KdTree::Node> nodes;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    nodes.push_back(tree.node(static_cast<int32_t>(i)));
  }

  // (a) Broken permutation.
  {
    std::vector<uint32_t> idx = tree.original_indices();
    idx[0] = idx[1];
    auto result = KdTree::FromSerialized(PointSet(tree.points()), idx, nodes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(result.status().message().find("permutation"),
              std::string::npos);
  }
  // (b) Child range that does not partition the parent.
  if (!nodes[0].IsLeaf()) {
    std::vector<KdTree::Node> bad = nodes;
    bad[bad[0].left].end -= 1;
    auto result = KdTree::FromSerialized(PointSet(tree.points()),
                                         tree.original_indices(), bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
  // (c) Cycle (node pointing at the root).
  if (!nodes[0].IsLeaf()) {
    std::vector<KdTree::Node> bad = nodes;
    bad[bad[0].left].left = 0;
    bad[bad[0].left].right = 0;
    auto result = KdTree::FromSerialized(PointSet(tree.points()),
                                         tree.original_indices(), bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
  // (d) Root not covering all points.
  {
    std::vector<KdTree::Node> bad = nodes;
    bad[0].end -= 1;
    auto result = KdTree::FromSerialized(PointSet(tree.points()),
                                         tree.original_indices(), bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
  // Sanity: unmodified parts load fine.
  EXPECT_TRUE(KdTree::FromSerialized(PointSet(tree.points()),
                                     tree.original_indices(), nodes)
                  .ok());
}

}  // namespace
}  // namespace kdv
