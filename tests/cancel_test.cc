#include "util/cancel.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/kdv_runner.h"
#include "data/datasets.h"
#include "progressive/progressive.h"
#include "util/timer.h"
#include "viz/frame.h"
#include "viz/pixel_grid.h"
#include "viz/render.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken token;
  CancelToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.RequestCancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(token.cancelled());
}

TEST(QueryControlTest, DefaultNeverStops) {
  QueryControl control;
  EXPECT_FALSE(control.CanStop());
  EXPECT_EQ(control.CheckStop(), StopReason::kNone);
}

TEST(QueryControlTest, CancelWinsOverDeadline) {
  Deadline expired(1e-12);
  CancelToken token;
  token.RequestCancel();
  while (!expired.Expired()) {
  }
  QueryControl control;
  control.deadline = &expired;
  control.cancel = &token;
  EXPECT_EQ(control.CheckStop(), StopReason::kCancel);
}

TEST(QueryControlTest, DeadlineExpiryReported) {
  Deadline expired(1e-12);
  while (!expired.Expired()) {
  }
  QueryControl control;
  control.deadline = &expired;
  EXPECT_EQ(control.CheckStop(), StopReason::kDeadline);
}

// ---------------------------------------------------------------------------
// Propagation through the batch runners and renderers
// ---------------------------------------------------------------------------

class ControlPropagationTest : public ::testing::Test {
 protected:
  ControlPropagationTest()
      : bench_(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian),
        grid_(16, 12, bench_.data_bounds()) {}

  Workbench bench_;
  PixelGrid grid_;
};

TEST_F(ControlPropagationTest, CancelledBatchStopsAndReportsIt) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  CancelToken token;
  token.RequestCancel();
  QueryControl control;
  control.cancel = &token;

  BatchStats stats;
  std::vector<double> out =
      RunEpsBatch(quad, grid_.AllPixelCenters(), 0.01, control, &stats);
  ASSERT_EQ(out.size(), grid_.num_pixels());
  EXPECT_TRUE(stats.cancelled);
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(stats.queries, 0u);
  for (double v : out) EXPECT_EQ(v, 0.0);  // unreached entries stay zero
}

TEST_F(ControlPropagationTest, ExpiredDeadlineStopsEveryBatchKind) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  Deadline expired(1e-12);
  while (!expired.Expired()) {
  }
  QueryControl control;
  control.deadline = &expired;

  BatchStats eps_stats;
  RunEpsBatch(quad, grid_.AllPixelCenters(), 0.01, control, &eps_stats);
  EXPECT_TRUE(eps_stats.deadline_expired);
  EXPECT_FALSE(eps_stats.completed);

  BatchStats tau_stats;
  RunTauBatch(quad, grid_.AllPixelCenters(), 1e-3, control, &tau_stats);
  EXPECT_TRUE(tau_stats.deadline_expired);
  EXPECT_FALSE(tau_stats.completed);

  BatchStats exact_stats;
  RunExactBatch(quad, grid_.AllPixelCenters(), control, &exact_stats);
  EXPECT_TRUE(exact_stats.deadline_expired);
  EXPECT_FALSE(exact_stats.completed);
}

TEST_F(ControlPropagationTest, NoControlMatchesLegacyOverloads) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  BatchStats a, b;
  std::vector<double> with_control = RunEpsBatch(
      quad, grid_.AllPixelCenters(), 0.01, QueryControl(), &a);
  std::vector<double> without =
      RunEpsBatch(quad, grid_.AllPixelCenters(), 0.01, &b);
  ASSERT_EQ(with_control.size(), without.size());
  for (size_t i = 0; i < without.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_control[i], without[i]);
  }
  EXPECT_TRUE(a.completed);
  EXPECT_FALSE(a.deadline_expired);
  EXPECT_FALSE(a.cancelled);
}

TEST_F(ControlPropagationTest, EvaluatorInterruptedMidQuery) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  CancelToken token;
  token.RequestCancel();
  QueryControl control;
  control.cancel = &token;
  control.check_interval = 1;

  // Even a single-query evaluation observes the cancel at iteration
  // granularity and still returns a valid (finite, ordered) envelope.
  EvalResult r = quad.EvaluateEps(grid_.PixelCenter(8, 6), 1e-9, control);
  EXPECT_TRUE(r.interrupted);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.lower, r.upper);
}

TEST_F(ControlPropagationTest, CancelledRenderFramesStayFinite) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  CancelToken token;
  token.RequestCancel();
  QueryControl control;
  control.cancel = &token;

  BatchStats stats;
  DensityFrame frame = RenderEpsFrame(quad, grid_, 0.01, control, &stats);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(ScrubNonFinite(&frame), 0u);
}

TEST_F(ControlPropagationTest, ProgressiveReportsCancellation) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  CancelToken token;
  token.RequestCancel();
  QueryControl control;
  control.cancel = &token;

  ProgressiveResult r = RenderProgressive(
      quad, grid_, 0.01, control,
      QuadTreeSchedule(grid_.width(), grid_.height()));
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.pixels_evaluated, 0u);
  EXPECT_EQ(ScrubNonFinite(&r.frame), 0u);  // fully painted, finite
}

TEST_F(ControlPropagationTest, MidFlightCancelStopsALongBatch) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  CancelToken token;
  QueryControl control;
  control.cancel = &token;

  // Cancel after the first poll fires: evaluate one query, then flip the
  // flag from "another thread" simulated by a pre-cancelled token copy.
  // (Deterministic single-thread variant: cancel immediately after a first
  // uncontrolled run proves at least one query completes.)
  BatchStats warmup;
  RunEpsBatch(quad, grid_.AllPixelCenters(), 0.05, &warmup);
  ASSERT_EQ(warmup.queries, grid_.num_pixels());

  token.RequestCancel();
  BatchStats stats;
  RunEpsBatch(quad, grid_.AllPixelCenters(), 0.05, control, &stats);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_LT(stats.queries, grid_.num_pixels());
}

}  // namespace
}  // namespace kdv
