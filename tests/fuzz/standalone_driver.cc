// Fallback driver for toolchains without libFuzzer (GCC — the container and
// the default CI image). Replays corpus files from argv; with no arguments,
// runs a deterministic built-in smoke corpus: structured seeds that reach
// past the magic-number checks of each parser, plus xorshift-generated
// garbage at several sizes. This is a smoke test of the harness, not real
// coverage-guided fuzzing — CI's fuzz job uses Clang + libFuzzer for that.
#include "fuzz_driver.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace {

uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

void RunInput(const std::vector<uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

int RunBuiltinCorpus() {
  int inputs = 0;

  // Structured seeds: each parser's magic / plausible-text openings, so the
  // smoke run reaches past the first rejection branch of every loader.
  const char* seeds[] = {
      "",
      "\n",
      "1,2\n3,4\n",
      "x,y\n1,2\n1e309,2\n",
      "nan,inf\n0x1p3,7\n",
      "1,2,3\n4,5\n6,7,8\n",
      "KDVT",
      "KDVJ",
      "KDVM",
      "KDVT\x02\x00\x00\x00",
      "KDVJ\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00",
  };
  for (const char* seed : seeds) {
    std::string s(seed);
    RunInput(std::vector<uint8_t>(s.begin(), s.end()));
    ++inputs;
  }

  // Deterministic garbage at sizes that straddle each format's header and
  // first-record boundaries.
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  for (size_t size : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    for (int round = 0; round < 16; ++round) {
      std::vector<uint8_t> bytes(size);
      for (uint8_t& b : bytes) {
        b = static_cast<uint8_t>(NextRand(&rng) & 0xFF);
      }
      RunInput(bytes);
      ++inputs;
    }
  }

  // Valid-magic prefixes with garbage tails: past the magic check, into the
  // header validation.
  for (const char* magic : {"KDVT", "KDVJ"}) {
    for (size_t size : {8u, 32u, 128u, 512u}) {
      std::vector<uint8_t> bytes(size);
      for (size_t i = 0; i < 4 && i < size; ++i) {
        bytes[i] = static_cast<uint8_t>(magic[i]);
      }
      for (size_t i = 4; i < size; ++i) {
        bytes[i] = static_cast<uint8_t>(NextRand(&rng) & 0xFF);
      }
      RunInput(bytes);
      ++inputs;
    }
  }
  return inputs;
}

}  // namespace

int main(int argc, char** argv) {
  int inputs = 0;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::FILE* f = std::fopen(argv[i], "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "fuzz: cannot open corpus file %s\n", argv[i]);
        return 2;
      }
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      std::fseek(f, 0, SEEK_SET);
      std::vector<uint8_t> bytes(size > 0 ? static_cast<size_t>(size) : 0);
      if (!bytes.empty() &&
          std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        std::fclose(f);
        std::fprintf(stderr, "fuzz: short read on %s\n", argv[i]);
        return 2;
      }
      std::fclose(f);
      RunInput(bytes);
      ++inputs;
    }
  } else {
    inputs = RunBuiltinCorpus();
  }
  std::printf("fuzz-smoke: %d inputs, no crashes\n", inputs);
  return 0;
}
