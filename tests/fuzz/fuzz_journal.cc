// Fuzz target: the journal segment reader (index/journal.h). Replay() is
// the crash-recovery path: it must distinguish torn tails (repairable) from
// mid-file corruption (DataLoss) on arbitrary bytes, truncate only at
// record boundaries, and never over-allocate from a hostile length field.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "fuzz_driver.h"
#include "index/journal.h"
#include "util/status.h"

namespace {

// One journal directory per process, holding exactly the fuzzed segment.
const std::string& JournalDir() {
  static const std::string dir = [] {
    const char* env = std::getenv("TMPDIR");
    std::string root = env != nullptr && env[0] != '\0' ? env : "/tmp";
    std::string d = root + "/kdv-fuzz-journal-" +
                    std::to_string(static_cast<long>(::getpid()));
    ::mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string segment =
      JournalDir() + "/" + kdv::Journal::SegmentFileName(1);
  {
    std::FILE* f = std::fopen(segment.c_str(), "wb");
    if (f == nullptr) return 0;
    if (size > 0 && std::fwrite(data, 1, size, f) != size) {
      std::fclose(f);
      return 0;
    }
    std::fclose(f);
  }

  kdv::StatusOr<std::unique_ptr<kdv::Journal>> journal =
      kdv::Journal::Open(JournalDir(), /*floor=*/1);
  if (!journal.ok()) return 0;

  kdv::JournalReplayStats stats;
  kdv::Status replayed = (*journal)->Replay(
      [](kdv::JournalOp, const kdv::PointSet& batch) {
        // Frame validation guarantees applied batches are non-empty.
        if (batch.empty()) __builtin_trap();
        return kdv::OkStatus();
      },
      &stats);
  // Either every surviving record applied, or the damage was classified as
  // DataLoss. Any other outcome is a contract break worth crashing on.
  if (!replayed.ok() &&
      replayed.code() != kdv::StatusCode::kDataLoss) {
    __builtin_trap();
  }
  return 0;
}
