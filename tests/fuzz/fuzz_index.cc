// Fuzz target: the kd-tree index deserializer (index/serialization.h).
// This file format is what the scrubber and recovery manager re-load after
// crashes and bit rot, so LoadKdTree must reject arbitrary corruption with
// a Status — bounded allocations, no aborts — and any tree it does accept
// must be structurally usable.
#include <memory>

#include "fuzz_driver.h"
#include "index/kdtree.h"
#include "index/serialization.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static kdv_fuzz::ScratchFile scratch("index");
  if (!scratch.Write(data, size)) return 0;

  kdv::StatusOr<std::unique_ptr<kdv::KdTree>> loaded =
      kdv::LoadKdTree(scratch.path());
  if (loaded.ok()) {
    // Sections were CRC-verified, so acceptance means a usable tree: walk
    // the cheap structural accessors the serving path trusts.
    const kdv::KdTree& tree = **loaded;
    if (tree.num_points() == 0) __builtin_trap();
    (void)tree.points();
  }
  return 0;
}
