// Fuzz target: the CSV ingestion path (util/csv.h) — both the single-line
// double parser and the whole-file reader with its ragged-row / malformed
// accounting. CSV is the one format fed by end users rather than by our own
// writer, so it sees the most hostile bytes.
#include <string>
#include <vector>

#include "fuzz_driver.h"
#include "util/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Line parser, both finiteness policies. NUL bytes, overlong fields, and
  // strtod extensions (hex floats, inf/nan) must all come back as `false`,
  // never as a crash or an accepted non-finite value.
  std::vector<double> fields;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    const std::string line =
        text.substr(start, end == std::string::npos ? end : end - start);
    (void)kdv::ParseCsvDoubles(line, &fields);
    (void)kdv::ParseCsvDoubles(line, &fields, /*allow_nonfinite=*/true);
    if (end == std::string::npos) break;
    start = end + 1;
  }

  // Whole-file reader: skips bad rows, never mixes ragged rows in.
  static kdv_fuzz::ScratchFile scratch("csv");
  if (!scratch.Write(data, size)) return 0;
  std::vector<std::vector<double>> rows;
  kdv::CsvReadStats stats;
  if (kdv::ReadCsvFile(scratch.path(), &rows, &stats).ok() && !rows.empty()) {
    // Invariant: every kept row has the first kept row's column count.
    const size_t width = rows.front().size();
    for (const std::vector<double>& row : rows) {
      if (row.size() != width) __builtin_trap();
    }
  }
  return 0;
}
