#include "fuzz_driver.h"

#include <cstdlib>
#include <unistd.h>

namespace kdv_fuzz {

namespace {

std::string TempDirRoot() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr && env[0] != '\0' ? env : "/tmp";
}

}  // namespace

ScratchFile::ScratchFile(const char* tag) {
  path_ = TempDirRoot() + "/kdv-fuzz-" + tag + "-" +
          std::to_string(static_cast<long>(::getpid())) + ".bin";
}

ScratchFile::~ScratchFile() { std::remove(path_.c_str()); }

bool ScratchFile::Write(const uint8_t* data, size_t size) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t wrote = size > 0 ? std::fwrite(data, 1, size, f) : 0;
  const bool ok = std::fclose(f) == 0 && wrote == size;
  return ok;
}

}  // namespace kdv_fuzz
