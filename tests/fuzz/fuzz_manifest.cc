// Fuzz target: the manifest loader (index/manifest.h). The manifest is the
// atomic commit point of every checkpoint — a half-written or rotted one
// must come back as NotFound/DataLoss for the recovery manager to act on,
// never crash the process that is trying to recover.
#include "fuzz_driver.h"
#include "index/manifest.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static kdv_fuzz::ScratchFile scratch("manifest");
  if (!scratch.Write(data, size)) return 0;
  kdv::StatusOr<kdv::Manifest> loaded = kdv::LoadManifest(scratch.path());
  if (loaded.ok()) {
    // An accepted manifest names a non-empty index file (the CRC frame
    // covered the name).
    if (loaded->index_file.empty()) __builtin_trap();
  }
  return 0;
}
