// Shared declarations for the fuzz harnesses (tests/fuzz/).
//
// Every target defines the libFuzzer entry point:
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// Under Clang with -DKDV_FUZZ=ON the targets link against libFuzzer
// (-fsanitize=fuzzer,address) and fuzz for real. The container/CI toolchain
// is GCC, which has no libFuzzer — there the same entry point is driven by
// standalone_driver.cc: it replays any corpus files given on the command
// line, plus a deterministic built-in smoke corpus, so the harness itself
// is compiled and exercised on every toolchain.
//
// Contract for targets: never crash, never leak, never allocate
// unboundedly, whatever the bytes. Rejections must come back as Status
// errors (or `false`), not aborts — these are the parsers that face
// on-disk state written by previous (possibly crashed) versions of the
// process.
#ifndef QUADKDV_TESTS_FUZZ_FUZZ_DRIVER_H_
#define QUADKDV_TESTS_FUZZ_FUZZ_DRIVER_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace kdv_fuzz {

// A scratch file reused across iterations (the loaders under test are
// path-based). One static instance per target; the path is stable so the
// filesystem is not churned with one file per input.
class ScratchFile {
 public:
  explicit ScratchFile(const char* tag);
  ~ScratchFile();

  // Overwrites the scratch file with `size` bytes. False on I/O failure
  // (callers skip the iteration rather than abort).
  bool Write(const uint8_t* data, size_t size);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace kdv_fuzz

#endif  // QUADKDV_TESTS_FUZZ_FUZZ_DRIVER_H_
