#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "stats/density_stats.h"
#include "stats/pca.h"
#include "util/random.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// MeanStd / TauSweep
// ---------------------------------------------------------------------------

TEST(MeanStdTest, KnownValues) {
  MeanStd s = ComputeMeanStd({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(MeanStdTest, ConstantVector) {
  MeanStd s = ComputeMeanStd({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(TauSweepTest, SevenThresholdsCenteredOnMean) {
  std::vector<double> taus = TauSweep({10.0, 2.0});
  ASSERT_EQ(taus.size(), 7u);
  EXPECT_NEAR(taus[0], 10.0 - 0.6, 1e-9);
  EXPECT_NEAR(taus[3], 10.0, 1e-9);
  EXPECT_NEAR(taus[6], 10.0 + 0.6, 1e-9);
}

TEST(TauSweepTest, FlooredAtPositive) {
  std::vector<double> taus = TauSweep({0.0, 1.0});
  for (double t : taus) EXPECT_GT(t, 0.0);
}

TEST(DensityStatsTest, SubsampledEstimateTracksFullGridStats) {
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  PixelGrid grid(32, 24, bench.data_bounds());

  MeanStd full = EstimateDensityStats(quad, grid, /*stride=*/1);
  MeanStd sub = EstimateDensityStats(quad, grid, /*stride=*/4);
  ASSERT_GT(full.mean, 0.0);
  EXPECT_NEAR(sub.mean / full.mean, 1.0, 0.35);
  // σ should at least be in the same ballpark.
  EXPECT_GT(sub.stddev, 0.0);
}

// ---------------------------------------------------------------------------
// Covariance / Jacobi / PCA
// ---------------------------------------------------------------------------

TEST(CovarianceTest, DiagonalForIndependentDims) {
  Rng rng(1);
  PointSet pts;
  for (int i = 0; i < 20000; ++i) {
    pts.push_back(Point{rng.Gaussian(0.0, 2.0), rng.Gaussian(5.0, 0.5)});
  }
  SymMatrix cov = Covariance(pts);
  EXPECT_NEAR(cov.at(0, 0), 4.0, 0.15);
  EXPECT_NEAR(cov.at(1, 1), 0.25, 0.02);
  EXPECT_NEAR(cov.at(0, 1), 0.0, 0.05);
  EXPECT_DOUBLE_EQ(cov.at(0, 1), cov.at(1, 0));
}

TEST(JacobiTest, DiagonalMatrixEigenvalues) {
  SymMatrix m;
  m.dim = 3;
  m.m = {3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0};
  EigenDecomposition eig = JacobiEigenSymmetric(m);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-10);
}

TEST(JacobiTest, KnownSymmetricMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with eigenvectors (1,1), (1,-1).
  SymMatrix m;
  m.dim = 2;
  m.m = {2.0, 1.0, 1.0, 2.0};
  EigenDecomposition eig = JacobiEigenSymmetric(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  double ratio = eig.eigenvectors[0][0] / eig.eigenvectors[0][1];
  EXPECT_NEAR(ratio, 1.0, 1e-8);
}

TEST(JacobiTest, EigenvectorsAreOrthonormal) {
  Rng rng(7);
  SymMatrix m;
  m.dim = 5;
  m.m.assign(25, 0.0);
  for (int i = 0; i < 5; ++i) {
    for (int j = i; j < 5; ++j) {
      double v = rng.Uniform(-1.0, 1.0);
      m.at(i, j) = v;
      m.at(j, i) = v;
    }
  }
  EigenDecomposition eig = JacobiEigenSymmetric(m);
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      double dot = 0.0;
      for (int i = 0; i < 5; ++i) {
        dot += eig.eigenvectors[a][i] * eig.eigenvectors[b][i];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8) << a << "," << b;
    }
  }
}

TEST(JacobiTest, ReconstructsMatrix) {
  // A = V diag(λ) V^T must reproduce the input.
  Rng rng(8);
  SymMatrix m;
  m.dim = 4;
  m.m.assign(16, 0.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = i; j < 4; ++j) {
      double v = rng.Uniform(-2.0, 2.0);
      m.at(i, j) = v;
      m.at(j, i) = v;
    }
  }
  EigenDecomposition eig = JacobiEigenSymmetric(m);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) {
        sum += eig.eigenvalues[k] * eig.eigenvectors[k][i] *
               eig.eigenvectors[k][j];
      }
      EXPECT_NEAR(sum, m.at(i, j), 1e-8);
    }
  }
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points along y = 2x with small noise: PC1 explains almost everything.
  Rng rng(9);
  PointSet pts;
  for (int i = 0; i < 5000; ++i) {
    double t = rng.Gaussian();
    pts.push_back(Point{t + rng.Gaussian(0.0, 0.01),
                        2.0 * t + rng.Gaussian(0.0, 0.01)});
  }
  PointSet projected = PcaProject(pts, 1);
  ASSERT_EQ(projected.size(), pts.size());
  EXPECT_EQ(projected[0].dim(), 1);

  // Variance along PC1 ~ variance of sqrt(5) * t = 5.
  double mean = 0.0;
  for (const Point& p : projected) mean += p[0];
  mean /= static_cast<double>(projected.size());
  double var = 0.0;
  for (const Point& p : projected) var += (p[0] - mean) * (p[0] - mean);
  var /= static_cast<double>(projected.size());
  EXPECT_NEAR(var, 5.0, 0.5);
}

TEST(PcaTest, FullDimensionProjectionPreservesPairwiseDistances) {
  Rng rng(10);
  PointSet pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back(Point{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
  }
  PointSet projected = PcaProject(pts, 3);
  // A rotation: pairwise distances are preserved.
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(Distance(pts[i], pts[i + 1]),
                Distance(projected[i], projected[i + 1]), 1e-8);
  }
}

TEST(PcaTest, ProjectionDimensionsAreVarianceOrdered) {
  Rng rng(11);
  PointSet pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back(Point{rng.Gaussian(0.0, 3.0), rng.Gaussian(0.0, 1.0),
                        rng.Gaussian(0.0, 0.2)});
  }
  PointSet projected = PcaProject(pts, 3);
  double var[3] = {0.0, 0.0, 0.0};
  for (const Point& p : projected) {
    for (int j = 0; j < 3; ++j) var[j] += p[j] * p[j];
  }
  EXPECT_GT(var[0], var[1]);
  EXPECT_GT(var[1], var[2]);
}

}  // namespace
}  // namespace kdv
