// Property tests for the profile-level bound coefficients: pointwise
// correctness (bounds stay on the right side of the kernel profile over the
// whole interval) and the paper's tightness claims (quadratic bounds between
// the profile and the linear / trivial bounds).
#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "bounds/profile.h"
#include "util/random.h"

namespace kdv {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTol = 1e-9;

// Random [x_min, x_max] intervals with varying width scales.
std::pair<double, double> RandomInterval(Rng* rng, double max_value) {
  double a = rng->Uniform(0.0, max_value);
  double b = rng->Uniform(0.0, max_value);
  if (a > b) std::swap(a, b);
  if (b - a < 1e-6) b = a + 1e-6;
  return {a, b};
}

// ---------------------------------------------------------------------------
// KARL linear bounds on exp(-x)
// ---------------------------------------------------------------------------

TEST(ExpLinearTest, ChordUpperBoundsExpOnInterval) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 8.0);
    LinearCoeffs up = ExpChordUpper(lo, hi);
    for (int i = 0; i <= 100; ++i) {
      double x = lo + (hi - lo) * i / 100.0;
      EXPECT_GE(up.Eval(x), std::exp(-x) - kTol)
          << "interval [" << lo << ", " << hi << "] at x=" << x;
    }
    // Interpolates the endpoints.
    EXPECT_NEAR(up.Eval(lo), std::exp(-lo), 1e-12);
    EXPECT_NEAR(up.Eval(hi), std::exp(-hi), 1e-12);
  }
}

TEST(ExpLinearTest, TangentLowerBoundsExpEverywhere) {
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    double t = rng.Uniform(0.0, 8.0);
    LinearCoeffs low = ExpTangentLower(t);
    EXPECT_NEAR(low.Eval(t), std::exp(-t), 1e-12);  // touches at t
    for (int i = 0; i <= 100; ++i) {
      double x = rng.Uniform(0.0, 12.0);
      EXPECT_LE(low.Eval(x), std::exp(-x) + kTol) << "t=" << t << " x=" << x;
    }
  }
}

// ---------------------------------------------------------------------------
// QUAD Gaussian bounds (Theorem 1 / §4.3)
// ---------------------------------------------------------------------------

TEST(ExpQuadTest, UpperInterpolatesEndpoints) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 6.0);
    QuadraticCoeffs q = ExpQuadUpper(lo, hi);
    EXPECT_NEAR(q.Eval(lo), std::exp(-lo), 1e-10);
    EXPECT_NEAR(q.Eval(hi), std::exp(-hi), 1e-10);
  }
}

TEST(ExpQuadTest, UpperCurvatureIsNonNegative) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 6.0);
    EXPECT_GE(ExpQuadUpper(lo, hi).a, -1e-15);
  }
}

// Theorem 1 correctness: exp(-x) <= Q_U(x) on [x_min, x_max].
TEST(ExpQuadTest, UpperBoundsExpOnInterval) {
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 8.0);
    QuadraticCoeffs q = ExpQuadUpper(lo, hi);
    for (int i = 0; i <= 200; ++i) {
      double x = lo + (hi - lo) * i / 200.0;
      EXPECT_GE(q.Eval(x), std::exp(-x) - kTol)
          << "interval [" << lo << ", " << hi << "] at x=" << x;
    }
  }
}

// Theorem 1 tightness: Q_U(x) <= chord E_U(x) on [x_min, x_max].
TEST(ExpQuadTest, UpperTighterThanChord) {
  Rng rng(6);
  for (int trial = 0; trial < 500; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 8.0);
    QuadraticCoeffs q = ExpQuadUpper(lo, hi);
    LinearCoeffs lin = ExpChordUpper(lo, hi);
    for (int i = 0; i <= 100; ++i) {
      double x = lo + (hi - lo) * i / 100.0;
      EXPECT_LE(q.Eval(x), lin.Eval(x) + kTol);
    }
  }
}

TEST(ExpQuadTest, LowerTouchesTangentPointAndXmax) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 6.0);
    double t = rng.Uniform(lo, hi - 1e-7);
    QuadraticCoeffs q = ExpQuadLower(t, hi);
    EXPECT_NEAR(q.Eval(t), std::exp(-t), 1e-9);
    EXPECT_NEAR(q.Eval(hi), std::exp(-hi), 1e-9);
  }
}

// §4.3 correctness: Q_L(x) <= exp(-x) on [x_min, x_max].
TEST(ExpQuadTest, LowerBoundsExpOnInterval) {
  Rng rng(8);
  for (int trial = 0; trial < 500; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 8.0);
    double t = rng.Uniform(lo, hi - 1e-7);
    QuadraticCoeffs q = ExpQuadLower(t, hi);
    for (int i = 0; i <= 200; ++i) {
      double x = lo + (hi - lo) * i / 200.0;
      EXPECT_LE(q.Eval(x), std::exp(-x) + kTol)
          << "t=" << t << " interval [" << lo << ", " << hi << "] x=" << x;
    }
  }
}

// §4.3 tightness: Q_L(x) >= tangent line E_L(x) on [x_min, x_max].
TEST(ExpQuadTest, LowerTighterThanTangentLine) {
  Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 8.0);
    double t = rng.Uniform(lo, hi - 1e-7);
    QuadraticCoeffs q = ExpQuadLower(t, hi);
    LinearCoeffs lin = ExpTangentLower(t);
    for (int i = 0; i <= 100; ++i) {
      double x = lo + (hi - lo) * i / 100.0;
      EXPECT_GE(q.Eval(x), lin.Eval(x) - kTol);
    }
  }
}

TEST(ExpQuadTest, TangentPointIsClampedMean) {
  // Mean of x_i = gamma * S1 / n.
  EXPECT_DOUBLE_EQ(GaussianTangentPoint(2.0, 10.0, 4.0, 0.0, 100.0), 5.0);
  // Clamped below and above.
  EXPECT_DOUBLE_EQ(GaussianTangentPoint(2.0, 10.0, 4.0, 6.0, 100.0), 6.0);
  EXPECT_DOUBLE_EQ(GaussianTangentPoint(2.0, 10.0, 4.0, 0.0, 3.0), 3.0);
}

// ---------------------------------------------------------------------------
// Triangular kernel (§5.2)
// ---------------------------------------------------------------------------

double TriangularProfile(double x) { return x < 1.0 ? 1.0 - x : 0.0; }

TEST(TriangularQuadTest, UpperInterpolatesEndpointsAndBounds) {
  Rng rng(10);
  for (int trial = 0; trial < 500; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 2.0);
    QuadraticCoeffs q = TriangularQuadUpper(lo, hi);
    EXPECT_NEAR(q.Eval(lo), TriangularProfile(lo), 1e-10);
    EXPECT_NEAR(q.Eval(hi), TriangularProfile(hi), 1e-10);
    for (int i = 0; i <= 200; ++i) {
      double x = lo + (hi - lo) * i / 200.0;
      EXPECT_GE(q.Eval(x), TriangularProfile(x) - kTol)
          << "[" << lo << "," << hi << "] x=" << x;
    }
  }
}

// Lemma 5: the quadratic upper bound is tighter than the constant
// max(1 - x_min, 0) on the interval.
TEST(TriangularQuadTest, UpperTighterThanTrivial) {
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 2.0);
    QuadraticCoeffs q = TriangularQuadUpper(lo, hi);
    double trivial = TriangularProfile(lo);
    for (int i = 0; i <= 50; ++i) {
      double x = lo + (hi - lo) * i / 50.0;
      EXPECT_LE(q.Eval(x), trivial + kTol);
    }
  }
}

// §5.2.2: Q_L(x) = a x^2 + c with c = 1 + 1/(4a) lower-bounds max(1-x, 0)
// everywhere (below 1-x by the discriminant argument; below 0 region too).
TEST(TriangularQuadTest, LowerBoundsProfileEverywhere) {
  Rng rng(12);
  for (int trial = 0; trial < 500; ++trial) {
    double m2 = rng.Uniform(1e-4, 4.0);
    QuadraticCoeffs q = TriangularQuadLower(m2);
    for (int i = 0; i <= 300; ++i) {
      double x = 3.0 * i / 300.0;
      EXPECT_LE(q.Eval(x), TriangularProfile(x) + kTol)
          << "m2=" << m2 << " x=" << x;
    }
  }
}

TEST(TriangularQuadTest, LowerSatisfiesTangencyIdentity) {
  // c = 1 + 1/(4a): a x^2 + x + c - 1 has a double root.
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    double m2 = rng.Uniform(1e-4, 4.0);
    QuadraticCoeffs q = TriangularQuadLower(m2);
    double discriminant = 1.0 - 4.0 * q.a * (q.c - 1.0);
    EXPECT_NEAR(discriminant, 0.0, 1e-9);
    EXPECT_LT(q.a, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Cosine kernel (§9.6.1 / §9.6.2)
// ---------------------------------------------------------------------------

double CosineProfile(double x) { return x <= kPi / 2 ? std::cos(x) : 0.0; }

TEST(CosineQuadTest, UpperInterpolatesAndBoundsOnSupport) {
  Rng rng(14);
  for (int trial = 0; trial < 500; ++trial) {
    double lo = rng.Uniform(0.0, kPi / 2 - 1e-4);
    double hi = rng.Uniform(lo + 1e-6, kPi / 2);
    QuadraticCoeffs q = CosineQuadUpper(lo, hi);
    EXPECT_NEAR(q.Eval(lo), std::cos(lo), 1e-10);
    EXPECT_NEAR(q.Eval(hi), std::cos(hi), 1e-10);
    for (int i = 0; i <= 200; ++i) {
      double x = lo + (hi - lo) * i / 200.0;
      EXPECT_GE(q.Eval(x), std::cos(x) - kTol)
          << "[" << lo << "," << hi << "] x=" << x;
    }
  }
}

// Lemma 9's tightness remark: Q_U(x) <= cos(x_min) on the interval.
TEST(CosineQuadTest, UpperTighterThanTrivial) {
  Rng rng(15);
  for (int trial = 0; trial < 300; ++trial) {
    double lo = rng.Uniform(0.0, kPi / 2 - 1e-4);
    double hi = rng.Uniform(lo + 1e-6, kPi / 2);
    QuadraticCoeffs q = CosineQuadUpper(lo, hi);
    for (int i = 0; i <= 50; ++i) {
      double x = lo + (hi - lo) * i / 50.0;
      EXPECT_LE(q.Eval(x), std::cos(lo) + kTol);
    }
  }
}

// Lemma 10 + the support-edge argument: the lower bound holds for all
// x >= 0, including past pi/2 where the profile clamps to zero.
TEST(CosineQuadTest, LowerBoundsClampedProfileEverywhere) {
  Rng rng(16);
  for (int trial = 0; trial < 500; ++trial) {
    double x_max = rng.Uniform(1e-3, kPi / 2);
    QuadraticCoeffs q = CosineQuadLower(x_max);
    EXPECT_NEAR(q.Eval(x_max), std::cos(x_max), 1e-10);  // touches
    for (int i = 0; i <= 300; ++i) {
      double x = 3.0 * i / 300.0;
      EXPECT_LE(q.Eval(x), CosineProfile(x) + kTol)
          << "x_max=" << x_max << " x=" << x;
    }
  }
}

// ---------------------------------------------------------------------------
// Exponential kernel (§9.6.3 / §9.6.4)
// ---------------------------------------------------------------------------

TEST(ExponentialQuadTest, UpperInterpolatesAndBounds) {
  Rng rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 6.0);
    QuadraticCoeffs q = ExponentialQuadUpper(lo, hi);
    EXPECT_NEAR(q.Eval(lo), std::exp(-lo), 1e-10);
    EXPECT_NEAR(q.Eval(hi), std::exp(-hi), 1e-10);
    for (int i = 0; i <= 200; ++i) {
      double x = lo + (hi - lo) * i / 200.0;
      EXPECT_GE(q.Eval(x), std::exp(-x) - kTol);
    }
  }
}

TEST(ExponentialQuadTest, UpperTighterThanTrivial) {
  Rng rng(18);
  for (int trial = 0; trial < 300; ++trial) {
    auto [lo, hi] = RandomInterval(&rng, 6.0);
    QuadraticCoeffs q = ExponentialQuadUpper(lo, hi);
    for (int i = 0; i <= 50; ++i) {
      double x = lo + (hi - lo) * i / 50.0;
      EXPECT_LE(q.Eval(x), std::exp(-lo) + kTol);
    }
  }
}

// Lemma 12: valid lower bound for every x >= 0.
TEST(ExponentialQuadTest, LowerBoundsExpEverywhere) {
  Rng rng(19);
  for (int trial = 0; trial < 500; ++trial) {
    double t = rng.Uniform(1e-3, 6.0);
    QuadraticCoeffs q = ExponentialQuadLower(t);
    EXPECT_NEAR(q.Eval(t), std::exp(-t), 1e-10);  // touches at t
    for (int i = 0; i <= 300; ++i) {
      double x = 10.0 * i / 300.0;
      EXPECT_LE(q.Eval(x), std::exp(-x) + kTol) << "t=" << t << " x=" << x;
    }
  }
}

TEST(ExponentialQuadTest, TangentPointIsClampedRms) {
  // t* = sqrt(gamma^2 * S1 / n).
  EXPECT_DOUBLE_EQ(ExponentialTangentPoint(2.0, 9.0, 4.0, 0.0, 100.0),
                   std::sqrt(4.0 * 9.0 / 4.0));
  EXPECT_DOUBLE_EQ(ExponentialTangentPoint(2.0, 9.0, 4.0, 5.0, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(ExponentialTangentPoint(2.0, 9.0, 4.0, 0.0, 1.0), 1.0);
}

}  // namespace
}  // namespace kdv
