#include <cmath>

#include <gtest/gtest.h>

#include "approx/grid_kde.h"
#include "data/datasets.h"
#include "stats/density_stats.h"
#include "viz/frame.h"
#include "viz/render.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

TEST(GridKdeTest, TruncationRadiusPerKernel) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  Rect domain = BoundingBox(pts);

  KernelParams gaussian{KernelType::kGaussian, 4.0, 1.0};
  GridKde g(pts, gaussian, domain, GridKde::Options{});
  // exp(-gamma d^2) < 1e-4 at d = sqrt(ln(1e4)/4).
  EXPECT_NEAR(g.truncation_radius(), std::sqrt(std::log(1e4) / 4.0), 1e-9);

  KernelParams triangular{KernelType::kTriangular, 4.0, 1.0};
  GridKde t(pts, triangular, domain, GridKde::Options{});
  EXPECT_NEAR(t.truncation_radius(), 1.0 / 4.0, 1e-12);  // support edge / γ
}

TEST(GridKdeTest, AccuracyImprovesWithGridResolution) {
  Workbench bench(GenerateMixture(CrimeSpec(0.003)), KernelType::kGaussian);
  PixelGrid grid(24, 18, bench.data_bounds());
  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  DensityFrame truth = RenderExactFrame(exact, grid, nullptr);
  const double floor = 1e-3 * ComputeMeanStd(truth.values).mean;

  double prev_err = 1e9;
  for (int g : {16, 64, 256}) {
    GridKde::Options options;
    options.grid_size = g;
    GridKde approx(bench.tree().points(), bench.params(),
                   bench.data_bounds(), options);
    DensityFrame frame = approx.RenderFrame(grid);
    double err = AverageRelativeError(frame.values, truth.values, floor);
    EXPECT_LT(err, prev_err + 1e-6) << "grid " << g;
    prev_err = err;
  }
  // At 256 cells the approximation is decent on smooth mixtures...
  EXPECT_LT(prev_err, 0.05);
}

TEST(GridKdeTest, NoGuaranteeUnlikeBoundMethods) {
  // ...but a coarse grid violates ε = 0.01 by a wide margin — the camp-1
  // trade-off the paper excludes from εKDV.
  Workbench bench(GenerateMixture(CrimeSpec(0.003)), KernelType::kGaussian);
  PixelGrid grid(24, 18, bench.data_bounds());
  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  DensityFrame truth = RenderExactFrame(exact, grid, nullptr);
  const double floor = 1e-3 * ComputeMeanStd(truth.values).mean;

  GridKde::Options options;
  options.grid_size = 8;
  GridKde approx(bench.tree().points(), bench.params(), bench.data_bounds(),
                 options);
  DensityFrame frame = approx.RenderFrame(grid);
  EXPECT_GT(MaxRelativeError(frame.values, truth.values, floor), 0.01);
}

TEST(GridKdeTest, MassIsApproximatelyConserved) {
  // With an untruncated finite-support kernel fully inside the domain, the
  // total binned weight equals n * w per evaluation of a covering integral;
  // check the simpler invariant: density at a far point is ~0 and at the
  // single bin's center equals count * w * K(within-cell offset).
  PointSet pts(100, Point{0.5, 0.5});
  Rect domain(2);
  domain.Expand(Point{0.0, 0.0});
  domain.Expand(Point{1.0, 1.0});
  KernelParams params{KernelType::kGaussian, 10.0, 0.01};
  GridKde::Options options;
  options.grid_size = 64;
  GridKde g(pts, params, domain, options);

  // All 100 points share one cell; its center is within half a cell of
  // (0.5, 0.5).
  double v = g.Evaluate(Point{0.5, 0.5});
  EXPECT_GT(v, 0.9);   // ~100 * 0.01 * K(tiny)
  EXPECT_LE(v, 1.0 + 1e-9);
  EXPECT_DOUBLE_EQ(g.Evaluate(Point{100.0, 100.0}), 0.0);
}

TEST(GridKdeTest, PrecomputeMatchesDirectEvaluation) {
  // The precomputed table holds exact direct evaluations at cell centers
  // and interpolates between them, so: identical values at cell centers,
  // close values everywhere on a smooth mixture, and out-of-domain queries
  // clamp to the boundary instead of decaying to zero.
  Workbench bench(GenerateMixture(CrimeSpec(0.003)), KernelType::kGaussian);
  PixelGrid grid(24, 18, bench.data_bounds());

  GridKde::Options options;
  options.grid_size = 128;
  GridKde direct(bench.tree().points(), bench.params(), bench.data_bounds(),
                 options);
  options.precompute = true;
  GridKde tabled(bench.tree().points(), bench.params(), bench.data_bounds(),
                 options);

  DensityFrame direct_frame = direct.RenderFrame(grid);
  DensityFrame tabled_frame = tabled.RenderFrame(grid);
  const double floor = 1e-3 * ComputeMeanStd(direct_frame.values).mean;
  EXPECT_LT(AverageRelativeError(tabled_frame.values, direct_frame.values,
                                 floor),
            0.02);

  // A query placed exactly on a cell center hits one table entry with zero
  // interpolation weight on its neighbors: bit-identical to direct.
  const Rect& domain = bench.data_bounds();
  Point center(2);
  const int cell = 37;
  center[0] = domain.lo(0) + (cell + 0.5) * domain.Length(0) / 128;
  center[1] = domain.lo(1) + (cell + 0.5) * domain.Length(1) / 128;
  EXPECT_DOUBLE_EQ(tabled.Evaluate(center), direct.Evaluate(center));

  // Clamped, not zeroed, outside the domain (documented trade-off).
  Point far(2);
  far[0] = domain.hi(0) + 100.0;
  far[1] = domain.hi(1) + 100.0;
  EXPECT_DOUBLE_EQ(tabled.Evaluate(far),
                   tabled.Evaluate(Point{
                       domain.lo(0) + 127.5 * domain.Length(0) / 128,
                       domain.lo(1) + 127.5 * domain.Length(1) / 128}));
}

TEST(GridKdeTest, MuchFasterThanExactOnLargeData) {
  Workbench bench(GenerateMixture(HomeSpec(0.02)), KernelType::kGaussian);
  PixelGrid grid(64, 48, bench.data_bounds());

  Timer build_timer;
  GridKde approx(bench.tree().points(), bench.params(), bench.data_bounds(),
                 GridKde::Options{});
  DensityFrame frame = approx.RenderFrame(grid);
  double grid_time = build_timer.ElapsedSeconds();

  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  BatchStats stats;
  RenderExactFrame(exact, grid, &stats);
  EXPECT_LT(grid_time, stats.seconds);
  (void)frame;
}

}  // namespace
}  // namespace kdv
