// Concurrent chaos suite for the render service stack.
//
// Everything here is written to run clean under ThreadSanitizer
// (-DKDV_SANITIZE=thread); CI's tsan job runs this suite via
// `ctest -L concurrency`. Part 1 covers the substrate (ThreadPool drain and
// shedding, CircuitBreaker state machine with an injected clock, concurrent
// const use of a shared KdeEvaluator). Part 2 covers RenderService behavior
// under load: overload sheds instead of queueing unboundedly, drain
// terminates, queue-aware deadlines, cancelled requests never report as
// served. Part 3 is the failpoint × cancellation × deadline sweep and the
// retry/breaker paths, which need -DKDV_FAILPOINTS=ON and skip elsewhere.
#include "serve/render_service.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/kdv_runner.h"
#include "data/datasets.h"
#include "util/failpoint.h"
#include "util/mem_budget.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesEveryAdmittedTask) {
  ThreadPool pool({/*num_threads=*/4, /*max_queue=*/1024});
  std::atomic<int> executed{0};
  const int kTasks = 500;
  int admitted = 0;
  for (int i = 0; i < kTasks; ++i) {
    if (pool.TrySubmit([&executed] { executed.fetch_add(1); }).ok()) {
      ++admitted;
    }
  }
  pool.Stop();
  EXPECT_EQ(executed.load(), admitted);
  EXPECT_EQ(pool.tasks_executed(), static_cast<uint64_t>(admitted));
}

TEST(ThreadPoolTest, FullQueueRejectsWithResourceExhausted) {
  ThreadPool pool({/*num_threads=*/1, /*max_queue=*/2});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  // Park the single worker, then fill the queue.
  ASSERT_TRUE(pool.TrySubmit([gate] { gate.wait(); }).ok());
  // The worker may not have dequeued yet; admit until the queue is full.
  int admitted = 1;
  Status status = OkStatus();
  for (int i = 0; i < 4 && status.ok(); ++i) {
    status = pool.TrySubmit([gate] { gate.wait(); });
    if (status.ok()) ++admitted;
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_LE(admitted, 3);  // 1 running + 2 queued
  release.set_value();
  pool.Stop();
}

TEST(ThreadPoolTest, StopDrainsQueuedTasksAndRejectsNewOnes) {
  ThreadPool pool({/*num_threads=*/2, /*max_queue=*/64});
  std::atomic<int> executed{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(pool
                    .TrySubmit([&executed] {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                      executed.fetch_add(1);
                    })
                    .ok());
  }
  pool.Stop();  // must finish all 32, then return
  EXPECT_EQ(executed.load(), 32);
  Status after = pool.TrySubmit([] {});
  EXPECT_EQ(after.code(), StatusCode::kUnavailable);
  pool.Stop();  // idempotent
}

TEST(ThreadPoolTest, ConcurrentSubmittersLoseNoTasks) {
  ThreadPool pool({/*num_threads=*/4, /*max_queue=*/4096});
  std::atomic<int> executed{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (pool.TrySubmit([&executed] { executed.fetch_add(1); }).ok()) {
          admitted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Stop();
  EXPECT_EQ(executed.load(), admitted.load());
  EXPECT_EQ(admitted.load(), 800);  // queue was deep enough for everything
}

// ---------------------------------------------------------------------------
// Backoff (determinism is covered in util_test; here: thread interplay)
// ---------------------------------------------------------------------------

TEST(BackoffTest, SequenceGrowsToCapAndJitterStaysInBand) {
  Backoff backoff({/*initial_ms=*/1.0, /*multiplier=*/2.0, /*max_ms=*/8.0,
                   /*jitter=*/0.5},
                  /*seed=*/42);
  double prev_base = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    double base = std::min(8.0, 1.0 * std::pow(2.0, attempt));
    double d = backoff.NextDelayMs();
    EXPECT_GE(d, base * 0.5);
    EXPECT_LE(d, base);
    EXPECT_GE(base, prev_base);
    prev_base = base;
  }
  EXPECT_EQ(backoff.attempts(), 8);
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0);
  EXPECT_LE(backoff.NextDelayMs(), 1.0);  // schedule restarted
}

// ---------------------------------------------------------------------------
// CircuitBreaker (injected clock: fully deterministic)
// ---------------------------------------------------------------------------

class BreakerTest : public ::testing::Test {
 protected:
  ManualClock clock_;
  CircuitBreaker::Options opts_{/*failure_threshold=*/3,
                                /*cooldown_seconds=*/1.0};
  CircuitBreaker breaker_{opts_, &clock_};
};

TEST_F(BreakerTest, TripsAfterConsecutiveFaultsOnly) {
  breaker_.RecordFault();
  breaker_.RecordFault();
  breaker_.RecordSuccess();  // breaks the run
  breaker_.RecordFault();
  breaker_.RecordFault();
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker_.AllowCertified());
  breaker_.RecordFault();  // third consecutive
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker_.trips(), 1u);
  EXPECT_FALSE(breaker_.AllowCertified());
}

TEST_F(BreakerTest, HalfOpenProbeRecoversAfterCooldown) {
  for (int i = 0; i < 3; ++i) breaker_.RecordFault();
  ASSERT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  clock_.SetTime(0.5);
  EXPECT_FALSE(breaker_.AllowCertified());  // still cooling down
  clock_.SetTime(1.5);
  EXPECT_TRUE(breaker_.AllowCertified());  // the half-open probe
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker_.AllowCertified());  // only one probe at a time
  breaker_.RecordSuccess();
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker_.AllowCertified());
}

TEST_F(BreakerTest, FailedProbeReopensAndRestartsCooldown) {
  for (int i = 0; i < 3; ++i) breaker_.RecordFault();
  clock_.SetTime(1.5);
  ASSERT_TRUE(breaker_.AllowCertified());
  breaker_.RecordFault();  // probe failed
  EXPECT_EQ(breaker_.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker_.trips(), 2u);
  clock_.SetTime(2.0);  // cooldown restarted at 1.5
  EXPECT_FALSE(breaker_.AllowCertified());
  clock_.SetTime(2.6);
  EXPECT_TRUE(breaker_.AllowCertified());
}

// ---------------------------------------------------------------------------
// Concurrency-hazard regressions from the audit
// ---------------------------------------------------------------------------

TEST(ConcurrencyAuditTest, CancelTokenCancellationIsVisibleAcrossThreads) {
  CancelToken token;
  std::atomic<int> observers_done{0};
  std::vector<std::thread> observers;
  for (int t = 0; t < 4; ++t) {
    observers.emplace_back([&] {
      while (!token.cancelled()) {
        std::this_thread::yield();
      }
      observers_done.fetch_add(1);
    });
  }
  std::thread canceller([copy = token] { copy.RequestCancel(); });
  canceller.join();
  for (std::thread& t : observers) t.join();
  EXPECT_EQ(observers_done.load(), 4);
  EXPECT_TRUE(token.cancelled());
}

TEST(ConcurrencyAuditTest, FailpointRegistryIsRaceFreeUnderArmAndHit) {
  // The hit-side functions are always compiled (they just see nothing armed
  // in a non-failpoint build), so this races Arm/Disarm/hits against
  // ConsumeStatus from many threads in every configuration; TSAN verifies.
  const std::string site = "serve.render";
  std::atomic<bool> stop{false};
  std::vector<std::thread> hitters;
  for (int t = 0; t < 4; ++t) {
    hitters.emplace_back([&] {
      while (!stop.load()) {
        (void)failpoint::ConsumeStatus("serve.render");
        failpoint::MaybeDelay("serve.coarse");
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        failpoint::Arm(site, failpoint::Action::kError, /*delay_ms=*/0,
                       /*max_hits=*/3)
            .ok());
    (void)failpoint::hits(site);
    failpoint::Disarm(site);
  }
  stop.store(true);
  for (std::thread& t : hitters) t.join();
  failpoint::Reset();
}

TEST(ConcurrencyAuditTest, SharedEvaluatorSupportsConcurrentConstQueries) {
  // KdeEvaluator / KdTree / NodeBounds are immutable after construction;
  // hammer one instance from many threads (TSAN proves the contract).
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  KdeEvaluator evaluator = bench.MakeEvaluator(Method::kQuad);
  PixelGrid grid(12, 9, bench.data_bounds());
  std::atomic<uint64_t> nonfinite{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      for (int y = 0; y < grid.height(); ++y) {
        for (int x = 0; x < grid.width(); ++x) {
          EvalResult r = evaluator.EvaluateEps(grid.PixelCenter(x, y), 0.05);
          if (!std::isfinite(r.estimate)) nonfinite.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(nonfinite.load(), 0u);
}

// ---------------------------------------------------------------------------
// RenderService
// ---------------------------------------------------------------------------

class RenderServiceTest : public ::testing::Test {
 protected:
  RenderServiceTest()
      : bench_(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian),
        evaluator_(bench_.MakeEvaluator(Method::kQuad)),
        grid_(16, 12, bench_.data_bounds()) {}

  void ExpectFinite(const DensityFrame& frame) {
    ASSERT_EQ(frame.values.size(),
              static_cast<size_t>(grid_.width()) * grid_.height());
    for (double v : frame.values) EXPECT_TRUE(std::isfinite(v));
  }

  Workbench bench_;
  KdeEvaluator evaluator_;
  PixelGrid grid_;
};

TEST_F(RenderServiceTest, ConcurrentClientsAllGetCertifiedFrames) {
  RenderService::Options options;
  options.num_threads = 4;
  options.max_queue = 256;
  RenderService service(&evaluator_, options);
  ServeRequestOptions request;
  request.eps = 0.05;

  std::vector<std::future<ServeOutcome>> tickets;
  for (int i = 0; i < 48; ++i) {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*std::move(t));
  }
  for (std::future<ServeOutcome>& t : tickets) {
    ServeOutcome outcome = t.get();
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.render.tier, QualityTier::kCertified);
    EXPECT_EQ(outcome.attempts, 1);
    ExpectFinite(outcome.render.frame);
  }
  service.Stop();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 48u);
  EXPECT_EQ(stats.admitted, 48u);
  EXPECT_EQ(stats.completed, 48u);
  EXPECT_EQ(stats.served_ok, 48u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.tier_certified, 48u);
}

TEST_F(RenderServiceTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  RenderService::Options options;
  options.num_threads = 1;
  options.max_queue = 2;  // => max_in_flight = 3
  RenderService service(&evaluator_, options);
  ServeRequestOptions request;
  request.eps = 0.01;

  // Burst far past capacity from several threads at once. At most
  // max_in_flight requests may be pending at any instant, so with a burst
  // much larger than capacity some MUST be shed, and every rejection must
  // be kResourceExhausted.
  std::atomic<int> shed{0}, admitted{0}, wrong_code{0};
  std::mutex mu;
  std::vector<std::future<ServeOutcome>> tickets;
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        StatusOr<std::future<ServeOutcome>> t =
            service.Submit(grid_, request);
        if (t.ok()) {
          admitted.fetch_add(1);
          std::lock_guard<std::mutex> lock(mu);
          tickets.push_back(*std::move(t));
        } else if (t.status().code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          wrong_code.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::future<ServeOutcome>& t : tickets) {
    ServeOutcome outcome = t.get();
    ExpectFinite(outcome.render.frame);
  }
  service.Stop();

  EXPECT_EQ(wrong_code.load(), 0);
  EXPECT_GT(shed.load(), 0);  // 64 near-simultaneous submits vs capacity 3
  EXPECT_EQ(admitted.load() + shed.load(), 64);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(shed.load()));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(admitted.load()));
}

TEST_F(RenderServiceTest, StopDrainsEveryAdmittedRequest) {
  RenderService::Options options;
  options.num_threads = 2;
  options.max_queue = 64;
  RenderService service(&evaluator_, options);
  ServeRequestOptions request;

  std::vector<std::future<ServeOutcome>> tickets;
  for (int i = 0; i < 24; ++i) {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*std::move(t));
  }
  service.Stop();  // must not deadlock, must finish all 24
  for (std::future<ServeOutcome>& t : tickets) {
    ServeOutcome outcome = t.get();  // every promise resolves
    ExpectFinite(outcome.render.frame);
  }
  StatusOr<std::future<ServeOutcome>> late = service.Submit(grid_, request);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().completed, 24u);
}

TEST_F(RenderServiceTest, DeadlineKeepsTickingWhileQueued) {
  PixelGrid big_grid(96, 72, bench_.data_bounds());
  RenderService::Options options;
  options.num_threads = 1;
  options.max_queue = 8;
  RenderService service(&evaluator_, options);

  // Occupy the single worker with a heavy un-budgeted request, then enqueue
  // budgeted ones whose 1µs deadlines expire while they wait.
  ServeRequestOptions slow;
  slow.eps = 0.001;
  StatusOr<std::future<ServeOutcome>> head = service.Submit(big_grid, slow);
  ASSERT_TRUE(head.ok());

  ServeRequestOptions tiny_budget;
  tiny_budget.budget_seconds = 1e-6;
  StatusOr<std::future<ServeOutcome>> degraded =
      service.Submit(grid_, tiny_budget);
  ASSERT_TRUE(degraded.ok());

  ServeRequestOptions fail_fast = tiny_budget;
  fail_fast.degrade = false;
  StatusOr<std::future<ServeOutcome>> failed =
      service.Submit(grid_, fail_fast);
  ASSERT_TRUE(failed.ok());

  ServeOutcome d = degraded->get();
  EXPECT_TRUE(d.render.deadline_expired);
  EXPECT_TRUE(d.ok());  // degraded mode still serves a lower-tier frame
  EXPECT_NE(d.render.tier, QualityTier::kCertified);
  ExpectFinite(d.render.frame);

  ServeOutcome f = failed->get();
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(f.render.deadline_expired);

  (void)head->get();
  service.Stop();
  EXPECT_GE(service.stats().deadline_expired, 2u);
}

TEST_F(RenderServiceTest, CancelledRequestsNeverReportAsServed) {
  RenderService::Options options;
  options.num_threads = 2;
  options.max_queue = 128;
  RenderService service(&evaluator_, options);

  CancelToken token;
  ServeRequestOptions request;
  request.eps = 0.005;
  request.cancel = &token;

  std::vector<std::future<ServeOutcome>> tickets;
  for (int i = 0; i < 32; ++i) {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*std::move(t));
  }
  token.RequestCancel();  // races the in-flight renders: both outcomes legal

  size_t cancelled = 0;
  for (std::future<ServeOutcome>& t : tickets) {
    ServeOutcome outcome = t.get();
    if (outcome.render.cancelled) {
      // The invariant under test: a cancelled request must carry a non-OK
      // kCancelled status, never "served".
      EXPECT_FALSE(outcome.ok());
      EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
      ++cancelled;
    } else {
      EXPECT_TRUE(outcome.ok());
    }
    ExpectFinite(outcome.render.frame);
  }
  service.Stop();
  EXPECT_GT(cancelled, 0u);  // 32 queued renders cannot all beat the cancel
  EXPECT_EQ(service.stats().cancelled, cancelled);
}

// ---------------------------------------------------------------------------
// Hot-swap and readiness
// ---------------------------------------------------------------------------

TEST_F(RenderServiceTest, ColdStartRejectsUntilFirstEvaluatorIsPublished) {
  RenderService::Options options;
  options.num_threads = 2;
  RenderService service(options);  // recovery-manager path: no evaluator yet
  EXPECT_EQ(service.Health(), ServiceHealth::kStarting);
  EXPECT_EQ(service.stats().epoch, 0u);
  // "No epoch yet" is explicit, not inferred from the raw id: before the
  // first SwapEvaluator the stats must say so (the JSON emitters render the
  // epoch as null off this bit).
  EXPECT_FALSE(service.stats().epoch_published);

  ServeRequestOptions request;
  StatusOr<std::future<ServeOutcome>> ticket = service.Submit(grid_, request);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);

  // A recovery manager reports replay in progress, then publishes.
  service.SetHealth(ServiceHealth::kRecovering);
  EXPECT_EQ(service.Health(), ServiceHealth::kRecovering);
  service.SwapEvaluator(&evaluator_);
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);

  ticket = service.Submit(grid_, request);
  ASSERT_TRUE(ticket.ok());
  ServeOutcome outcome = ticket->get();
  EXPECT_TRUE(outcome.ok());
  ExpectFinite(outcome.render.frame);
  service.Stop();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_TRUE(stats.epoch_published);
}

TEST_F(RenderServiceTest, HotSwapUnderLoadDropsNoAdmittedRequest) {
  // A second evaluator to flip to and from. Built before any thread starts:
  // MakeEvaluator is not thread-safe, published epochs are.
  KdeEvaluator next = bench_.MakeEvaluator(Method::kQuad);

  RenderService::Options options;
  options.num_threads = 4;
  options.max_queue = 512;
  RenderService service(&evaluator_, options);
  ServeRequestOptions request;
  request.eps = 0.05;

  // Swap continuously while clients submit: every admitted request must
  // resolve OK on whichever epoch it snapshotted.
  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    int flips = 0;
    while (!stop_swapping.load()) {
      service.SwapEvaluator((flips++ % 2 == 0) ? &next : &evaluator_);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::future<ServeOutcome>> tickets;
  for (int i = 0; i < 96; ++i) {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    if (t.ok()) tickets.push_back(*std::move(t));
  }
  for (std::future<ServeOutcome>& t : tickets) {
    ServeOutcome outcome = t.get();
    EXPECT_TRUE(outcome.ok()) << outcome.status.ToString();
    ExpectFinite(outcome.render.frame);
  }
  stop_swapping.store(true);
  swapper.join();
  service.Stop();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(tickets.size()));
  EXPECT_EQ(stats.served_ok, static_cast<uint64_t>(tickets.size()));
  EXPECT_GE(stats.swaps, 2u);  // the initial publication plus the churn
  EXPECT_EQ(stats.epoch, stats.swaps);
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);
}

// ---------------------------------------------------------------------------
// Runtime self-defense: brownout health transitions, watchdog benignity
// ---------------------------------------------------------------------------

TEST_F(RenderServiceTest, BrownoutDegradesThenHealthRecoversHysteretically) {
  RenderService::Options options;
  options.num_threads = 2;
  options.max_queue = 64;
  options.governor.enabled = true;
  // The memory signal is the deterministic pressure lever: the test pins it
  // with a ScopedMemCharge instead of racing real queue waits.
  options.governor.memory_budget_bytes = 1 << 20;
  options.governor.recover_hold_seconds = 0.0;  // stepwise but immediate
  RenderService service(&evaluator_, options);
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);

  ServeRequestOptions request;
  {
    // 85% of budget: inside the brownout band (>= enter_coarse 0.80) but
    // below the shed ceiling — everything is still served, just cheaper.
    ScopedMemCharge pressure(&MemBudget::Global(), MemSource::kFrameBuffers,
                             (1u << 20) * 85 / 100);
    std::vector<std::future<ServeOutcome>> tickets;
    for (int i = 0; i < 8; ++i) {
      StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
      ASSERT_TRUE(t.ok());
      tickets.push_back(*std::move(t));
    }
    for (std::future<ServeOutcome>& t : tickets) {
      ServeOutcome outcome = t.get();
      EXPECT_TRUE(outcome.ok());
      EXPECT_EQ(outcome.render.tier, QualityTier::kCoarse);  // browned out
      ExpectFinite(outcome.render.frame);
    }
    EXPECT_EQ(service.Health(), ServiceHealth::kDegraded);
    ServiceStats mid = service.stats();
    EXPECT_EQ(mid.brownout_applied, 8u);
    EXPECT_EQ(mid.shed, 0u);  // the band degrades; it does not reject
    EXPECT_EQ(mid.governor_level, 2);

    // Fail-fast requests keep their certified-or-error contract even in a
    // brownout: their tier is never silently lowered.
    ServeRequestOptions fail_fast;
    fail_fast.degrade = false;
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, fail_fast);
    ASSERT_TRUE(t.ok());
    ServeOutcome certified = t->get();
    EXPECT_TRUE(certified.ok());
    EXPECT_EQ(certified.render.tier, QualityTier::kCertified);

    {
      // Past the hard ceiling the governor finally sheds, synchronously.
      ScopedMemCharge overload(&MemBudget::Global(), MemSource::kFrameBuffers,
                               (1u << 20) * 30 / 100);
      StatusOr<std::future<ServeOutcome>> rejected =
          service.Submit(grid_, request);
      ASSERT_FALSE(rejected.ok());
      EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
      EXPECT_GE(service.stats().brownout_shed, 1u);
    }
  }

  // Pressure gone: recovery walks the ladder one step per assessment
  // (coarse -> progressive -> normal), so a short trickle of healthy
  // requests returns the service to kServing.
  for (int i = 0; i < 8 && service.Health() != ServiceHealth::kServing; ++i) {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    ASSERT_TRUE(t.ok());
    ServeOutcome outcome = t->get();
    EXPECT_TRUE(outcome.ok());
  }
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.governor_level, 0);
  EXPECT_EQ(stats.governor_max_level, 2);
  EXPECT_GE(stats.tier_certified, 1u);

  // The transition log is contiguous and de-escalates strictly one level at
  // a time — the monotone-brownout property the overload-chaos CI job
  // asserts on serve-sim output.
  std::vector<OverloadGovernor::Transition> transitions =
      service.governor_transitions();
  ASSERT_GE(transitions.size(), 3u);
  for (size_t i = 0; i < transitions.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(transitions[i].from, transitions[i - 1].to);
      EXPECT_GE(transitions[i].at_seconds, transitions[i - 1].at_seconds);
    }
    const int delta = static_cast<int>(transitions[i].to) -
                      static_cast<int>(transitions[i].from);
    if (delta < 0) {
      EXPECT_EQ(delta, -1);
    }
  }
  service.Stop();
}

TEST_F(RenderServiceTest, WatchdogLeavesHealthyRendersAlone) {
  RenderService::Options options;
  options.num_threads = 2;
  options.max_queue = 32;
  options.watchdog.enabled = true;
  options.watchdog.poll_interval_seconds = 0.002;
  options.watchdog.no_progress_seconds = 0.5;
  RenderService service(&evaluator_, options);
  ServeRequestOptions request;
  request.budget_seconds = 30.0;

  std::vector<std::future<ServeOutcome>> tickets;
  for (int i = 0; i < 16; ++i) {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*std::move(t));
  }
  for (std::future<ServeOutcome>& t : tickets) {
    ServeOutcome outcome = t.get();
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.render.tier, QualityTier::kCertified);
  }
  service.Stop();
  EXPECT_EQ(service.stats().watchdog_kills, 0u);
  EXPECT_TRUE(service.watchdog_stall_reports().empty());
}

// ---------------------------------------------------------------------------
// Failpoint-driven paths (retry, breaker, chaos sweep): -DKDV_FAILPOINTS=ON
// ---------------------------------------------------------------------------

class ServiceChaosTest : public RenderServiceTest {
 protected:
  void SetUp() override {
    if (!failpoint::enabled()) {
      GTEST_SKIP() << "failpoints not compiled in (build with "
                      "-DKDV_FAILPOINTS=ON)";
    }
    failpoint::Reset();
  }
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(ServiceChaosTest, TransientFaultIsRetriedWithBackoffAndRecovers) {
  ASSERT_TRUE(failpoint::Arm("serve.render", failpoint::Action::kError,
                             /*delay_ms=*/0, /*max_hits=*/1)
                  .ok());
  RenderService::Options options;
  options.num_threads = 1;
  options.max_attempts = 3;
  ManualClock clock;  // backoff sleeps advance it; nothing else does
  options.clock = &clock;
  RenderService service(&evaluator_, options);

  StatusOr<std::future<ServeOutcome>> t =
      service.Submit(grid_, ServeRequestOptions());
  ASSERT_TRUE(t.ok());
  ServeOutcome outcome = t->get();
  service.Stop();

  EXPECT_TRUE(outcome.ok());  // second attempt succeeded
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.render.tier, QualityTier::kCertified);
  // Exactly one backoff sleep ran, and it went through the clock seam:
  // the manual clock only moves when the service's retry path waits on it.
  EXPECT_GT(clock.NowSeconds(), 0.0);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.faults, 1u);
  EXPECT_EQ(stats.served_ok, 1u);
}

TEST_F(ServiceChaosTest, PersistentFaultExhaustsRetriesAndShipsDegraded) {
  ASSERT_TRUE(
      failpoint::Arm("serve.render", failpoint::Action::kError).ok());
  RenderService::Options options;
  options.num_threads = 1;
  options.max_attempts = 3;
  options.breaker.failure_threshold = 100;  // keep the breaker out of this
  ManualClock clock;  // retry backoff burns virtual time, not wall time
  options.clock = &clock;
  RenderService service(&evaluator_, options);

  StatusOr<std::future<ServeOutcome>> t =
      service.Submit(grid_, ServeRequestOptions());
  ASSERT_TRUE(t.ok());
  ServeOutcome outcome = t->get();
  service.Stop();

  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kInternal);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.render.tier, QualityTier::kCoarse);  // degraded frame
  ExpectFinite(outcome.render.frame);
  EXPECT_EQ(service.stats().retries, 2u);
}

TEST_F(ServiceChaosTest, BreakerTripsServesCoarseDirectlyAndRecovers) {
  ASSERT_TRUE(
      failpoint::Arm("serve.render", failpoint::Action::kError).ok());
  // Manual service clock: the cooldown elapses when the test says so, not
  // when wall time passes (TSAN slows everything down unpredictably).
  ManualClock clock;
  RenderService::Options options;
  options.num_threads = 1;
  options.max_attempts = 1;  // one fault per request: deterministic count
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_seconds = 60.0;
  options.clock = &clock;
  RenderService service(&evaluator_, options);
  ServeRequestOptions request;

  // Three faulting requests trip the breaker.
  for (int i = 0; i < 3; ++i) {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    ASSERT_TRUE(t.ok());
    ServeOutcome outcome = t->get();
    EXPECT_FALSE(outcome.ok());
    EXPECT_FALSE(outcome.breaker_open);
  }
  EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(service.stats().breaker_trips, 1u);

  // While open, requests short-circuit to the coarse tier without touching
  // the (still faulting) certified path...
  {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    ASSERT_TRUE(t.ok());
    ServeOutcome outcome = t->get();
    EXPECT_TRUE(outcome.breaker_open);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.render.tier, QualityTier::kCoarse);
    EXPECT_EQ(outcome.attempts, 0);
    ExpectFinite(outcome.render.frame);
  }
  // ...and fail-fast requests surface kUnavailable.
  {
    ServeRequestOptions fail_fast;
    fail_fast.degrade = false;
    StatusOr<std::future<ServeOutcome>> t =
        service.Submit(grid_, fail_fast);
    ASSERT_TRUE(t.ok());
    ServeOutcome outcome = t->get();
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(outcome.breaker_open);
  }
  EXPECT_GE(service.stats().unavailable, 2u);

  // Heal the path and let the cooldown elapse: the half-open probe
  // recovers.
  failpoint::Reset();
  clock.SetTime(120.0);
  {
    StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
    ASSERT_TRUE(t.ok());
    ServeOutcome outcome = t->get();
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.render.tier, QualityTier::kCertified);
    EXPECT_FALSE(outcome.breaker_open);
  }
  EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kClosed);
  service.Stop();
}

TEST_F(ServiceChaosTest, WatchdogKillsWedgedRenderAndBreakerRecovers) {
  // Wedge the first certified render where it never polls its deadline:
  // refine.stall parks it until a force-cancel arrives, which only the
  // watchdog can deliver. Single-shot, so later renders are healthy.
  ASSERT_TRUE(failpoint::Arm("refine.stall", failpoint::Action::kDelay,
                             /*delay_ms=*/10000, /*max_hits=*/1)
                  .ok());
  ManualClock clock;  // service/breaker time: advanced by the test only
  RenderService::Options options;
  options.num_threads = 1;
  options.max_attempts = 1;
  options.breaker.failure_threshold = 1;  // one stall trips it
  options.breaker.cooldown_seconds = 60.0;
  options.clock = &clock;
  // The watchdog must see real elapsed time: the injected stall wedges the
  // render in wall-clock terms, and only a real-time monitor can catch it.
  options.watchdog.clock = CurrentClock();
  options.watchdog.enabled = true;
  options.watchdog.poll_interval_seconds = 0.005;
  options.watchdog.deadline_multiple = 2.0;
  options.watchdog.no_progress_seconds = 0.0;  // isolate the overrun criterion
  RenderService service(&evaluator_, options);

  ServeRequestOptions request;
  request.budget_seconds = 0.2;
  Timer wall;
  StatusOr<std::future<ServeOutcome>> t = service.Submit(grid_, request);
  ASSERT_TRUE(t.ok());
  ServeOutcome outcome = t->get();

  // The watchdog, not the 10s stall, bounded the request: the kill lands
  // within deadline_multiple x budget plus monitor latency.
  EXPECT_LT(wall.ElapsedSeconds(), 5.0);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(std::string(outcome.status.message()).find("watchdog"),
            std::string::npos);
  ExpectFinite(outcome.render.frame);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.watchdog_kills, 1u);
  EXPECT_EQ(stats.cancelled, 0u);  // not misattributed to the client
  std::vector<StallReport> reports = service.watchdog_stall_reports();
  ASSERT_GE(reports.size(), 1u);
  EXPECT_FALSE(reports[0].no_progress);  // overrun, not heartbeat silence

  // The stall tripped the breaker: degraded but still serving coarse.
  EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(service.Health(), ServiceHealth::kDegraded);
  {
    StatusOr<std::future<ServeOutcome>> shorted =
        service.Submit(grid_, request);
    ASSERT_TRUE(shorted.ok());
    ServeOutcome o = shorted->get();
    EXPECT_TRUE(o.ok());
    EXPECT_TRUE(o.breaker_open);
    EXPECT_EQ(o.render.tier, QualityTier::kCoarse);
  }

  // Cooldown elapses on the fake clock; the stall was single-shot, so the
  // half-open probe renders certified and closes the breaker again.
  clock.SetTime(120.0);
  {
    StatusOr<std::future<ServeOutcome>> probe = service.Submit(grid_, request);
    ASSERT_TRUE(probe.ok());
    ServeOutcome o = probe->get();
    EXPECT_TRUE(o.ok());
    EXPECT_EQ(o.render.tier, QualityTier::kCertified);
    EXPECT_FALSE(o.breaker_open);
  }
  EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);
  service.Stop();
}

// The acceptance sweep: many client threads × every failpoint site and
// action × budgets × mid-flight cancellation, all at once, on one service.
// The invariants are the serving contract: every future resolves, every
// frame is finite, cancelled requests are never "served", rejections are
// kResourceExhausted only — and the whole thing is TSAN-clean.
TEST_F(ServiceChaosTest, ConcurrentFailpointCancellationDeadlineSweep) {
  const failpoint::Action kActions[] = {
      failpoint::Action::kError,
      failpoint::Action::kNaN,
      failpoint::Action::kDelay,
  };
  RenderService::Options options;
  options.num_threads = 4;
  options.max_queue = 8;
  options.max_attempts = 2;
  options.breaker.failure_threshold = 4;
  options.breaker.cooldown_seconds = 0.01;
  options.backoff.initial_ms = 0.01;  // retries must not slow the sweep
  options.backoff.max_ms = 0.1;
  RenderService service(&evaluator_, options);

  std::atomic<uint64_t> wrong_rejection{0};
  std::atomic<uint64_t> served_cancelled{0};
  std::atomic<uint64_t> nonfinite{0};

  for (const std::string& site : failpoint::AllSites()) {
    for (failpoint::Action action : kActions) {
      SCOPED_TRACE("site=" + site);
      failpoint::Reset();
      ASSERT_TRUE(failpoint::Arm(site, action, /*delay_ms=*/1).ok());

      CancelToken token;
      std::vector<std::thread> clients;
      for (int c = 0; c < 6; ++c) {
        clients.emplace_back([&, c] {
          ServeRequestOptions request;
          request.eps = 0.05;
          // Mix of budgets and policies across clients.
          request.budget_seconds = (c % 3 == 0) ? 0.02 : -1.0;
          request.degrade = (c % 4 != 3);
          if (c % 2 == 0) request.cancel = &token;
          for (int i = 0; i < 3; ++i) {
            StatusOr<std::future<ServeOutcome>> t =
                service.Submit(grid_, request);
            if (!t.ok()) {
              if (t.status().code() != StatusCode::kResourceExhausted) {
                wrong_rejection.fetch_add(1);
              }
              continue;
            }
            if (c % 2 == 0 && i == 1) token.RequestCancel();
            ServeOutcome outcome = t->get();
            if (outcome.render.cancelled && outcome.ok()) {
              served_cancelled.fetch_add(1);
            }
            for (double v : outcome.render.frame.values) {
              if (!std::isfinite(v)) nonfinite.fetch_add(1);
            }
          }
        });
      }
      for (std::thread& t : clients) t.join();
    }
  }
  service.Stop();

  EXPECT_EQ(wrong_rejection.load(), 0u);
  EXPECT_EQ(served_cancelled.load(), 0u);
  EXPECT_EQ(nonfinite.load(), 0u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed);
}

}  // namespace
}  // namespace kdv
