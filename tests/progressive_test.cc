#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "progressive/progressive.h"
#include "viz/frame.h"
#include "viz/render.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

TEST(QuadTreeScheduleTest, CoversEveryPixelAsRepresentative) {
  for (auto [w, h] : std::vector<std::pair<int, int>>{
           {8, 8}, {16, 12}, {7, 5}, {1, 1}, {1, 9}, {13, 1}}) {
    std::vector<RegionOp> schedule = QuadTreeSchedule(w, h);
    std::set<std::pair<int, int>> reps;
    for (const RegionOp& op : schedule) {
      ASSERT_GE(op.cx, op.x0);
      ASSERT_LT(op.cx, op.x1);
      ASSERT_GE(op.cy, op.y0);
      ASSERT_LT(op.cy, op.y1);
      ASSERT_GE(op.x0, 0);
      ASSERT_LE(op.x1, w);
      ASSERT_GE(op.y0, 0);
      ASSERT_LE(op.y1, h);
      reps.insert({op.cx, op.cy});
    }
    EXPECT_EQ(reps.size(), static_cast<size_t>(w) * h)
        << "schedule misses pixels for " << w << "x" << h;
  }
}

TEST(QuadTreeScheduleTest, CoarseRegionsComeFirst) {
  std::vector<RegionOp> schedule = QuadTreeSchedule(16, 16);
  // First op covers the whole frame.
  EXPECT_EQ(schedule[0].x0, 0);
  EXPECT_EQ(schedule[0].y0, 0);
  EXPECT_EQ(schedule[0].x1, 16);
  EXPECT_EQ(schedule[0].y1, 16);
  // Region areas are (weakly) decreasing along the schedule.
  auto area = [](const RegionOp& op) {
    return (op.x1 - op.x0) * (op.y1 - op.y0);
  };
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(area(schedule[i]), area(schedule[i - 1]));
  }
}

TEST(RowMajorScheduleTest, OnePixelPerOpInOrder) {
  std::vector<RegionOp> schedule = RowMajorSchedule(3, 2);
  ASSERT_EQ(schedule.size(), 6u);
  EXPECT_EQ(schedule[0].cx, 0);
  EXPECT_EQ(schedule[0].cy, 0);
  EXPECT_EQ(schedule[4].cx, 1);
  EXPECT_EQ(schedule[4].cy, 1);
  for (const RegionOp& op : schedule) {
    EXPECT_EQ(op.x1 - op.x0, 1);
    EXPECT_EQ(op.y1 - op.y0, 1);
  }
}

// ---------------------------------------------------------------------------
// Progressive rendering
// ---------------------------------------------------------------------------

class ProgressiveRenderTest : public ::testing::Test {
 protected:
  ProgressiveRenderTest()
      : bench_(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian),
        grid_(16, 12, bench_.data_bounds()) {}

  Workbench bench_;
  PixelGrid grid_;
};

TEST_F(ProgressiveRenderTest, UnboundedRunEvaluatesEveryPixel) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  ProgressiveResult result = RenderProgressive(quad, grid_, 0.01, 0.0);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.pixels_evaluated, grid_.num_pixels());

  // Completed progressive frame equals the plain εKDV frame.
  DensityFrame direct = RenderEpsFrame(quad, grid_, 0.01, nullptr);
  for (size_t i = 0; i < direct.values.size(); ++i) {
    EXPECT_NEAR(result.frame.values[i], direct.values[i], 1e-12);
  }
}

TEST_F(ProgressiveRenderTest, TinyBudgetProducesPartialResult) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  ProgressiveResult result = RenderProgressive(quad, grid_, 0.01, 1e-9);
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.pixels_evaluated, grid_.num_pixels());
  EXPECT_FALSE(result.stats.completed);
}

TEST_F(ProgressiveRenderTest, QualityImprovesWithBudget) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  KdeEvaluator exact = bench_.MakeEvaluator(Method::kExact);
  DensityFrame truth = RenderExactFrame(exact, grid_, nullptr);

  // Run the schedule to fixed op-counts by slicing it manually (time budgets
  // flake on loaded machines; op counts are deterministic).
  std::vector<RegionOp> schedule =
      QuadTreeSchedule(grid_.width(), grid_.height());
  std::vector<double> errors;
  for (size_t ops : {schedule.size() / 16, schedule.size() / 4,
                     schedule.size()}) {
    std::vector<RegionOp> prefix(schedule.begin(), schedule.begin() + ops);
    ProgressiveResult r = RenderProgressive(quad, grid_, 0.01, 0.0, prefix);
    errors.push_back(
        AverageRelativeError(r.frame.values, truth.values, 1e-12));
  }
  EXPECT_LE(errors[2], errors[0] + 1e-12);
  EXPECT_LE(errors[2], 0.011);  // full schedule: εKDV-quality
}

TEST_F(ProgressiveRenderTest, PartialFrameHasNoUntouchedPixels) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  // Run only the first ops: even so, every pixel must carry some value from
  // a coarse representative (i.e. the first op paints the whole frame).
  std::vector<RegionOp> schedule =
      QuadTreeSchedule(grid_.width(), grid_.height());
  std::vector<RegionOp> prefix(schedule.begin(), schedule.begin() + 1);
  ProgressiveResult r = RenderProgressive(quad, grid_, 0.01, 0.0, prefix);
  EXPECT_EQ(r.pixels_evaluated, 1u);
  double v = r.frame.values[grid_.PixelIndex(grid_.width() / 2,
                                             grid_.height() / 2)];
  for (double val : r.frame.values) EXPECT_DOUBLE_EQ(val, v);
}

TEST_F(ProgressiveRenderTest, MaxErrorIsMonotoneAcrossCheckpoints) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  KdeEvaluator exact = bench_.MakeEvaluator(Method::kExact);
  DensityFrame truth = RenderExactFrame(exact, grid_, nullptr);

  // Checkpoints at quad-tree level boundaries (each level multiplies the op
  // count by ~4): the worst-pixel error against the exact frame must be
  // non-increasing as refinement proceeds.
  std::vector<RegionOp> schedule =
      QuadTreeSchedule(grid_.width(), grid_.height());
  std::vector<double> errors;
  for (size_t ops = 1; ops < schedule.size(); ops *= 4) {
    std::vector<RegionOp> prefix(schedule.begin(), schedule.begin() + ops);
    ProgressiveResult r = RenderProgressive(quad, grid_, 0.01, 0.0, prefix);
    errors.push_back(MaxRelativeError(r.frame.values, truth.values, 1e-12));
  }
  ProgressiveResult full = RenderProgressive(quad, grid_, 0.01, 0.0);
  errors.push_back(
      MaxRelativeError(full.frame.values, truth.values, 1e-12));
  for (size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LE(errors[i], errors[i - 1] + 1e-12)
        << "max error regressed between checkpoints " << i - 1 << " and "
        << i;
  }
  EXPECT_LE(errors.back(), 0.011);  // full schedule: εKDV-certified
}

TEST_F(ProgressiveRenderTest, ExpiredBudgetStillPaintsEveryPixelFinite) {
  KdeEvaluator quad = bench_.MakeEvaluator(Method::kQuad);
  Deadline expired(1e-12);
  while (!expired.Expired()) {
  }
  QueryControl control;
  control.deadline = &expired;
  ProgressiveResult r = RenderProgressive(
      quad, grid_, 0.01, control,
      QuadTreeSchedule(grid_.width(), grid_.height()));
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadline_expired);
  EXPECT_EQ(r.pixels_evaluated, 0u);
  ASSERT_EQ(r.frame.values.size(), grid_.num_pixels());
  for (double v : r.frame.values) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0);  // nothing was evaluated; the frame is flat but valid
  }
}

TEST_F(ProgressiveRenderTest, WorksWithExactAndSamplingEvaluators) {
  KdeEvaluator exact = bench_.MakeEvaluator(Method::kExact);
  ProgressiveResult r1 = RenderProgressive(exact, grid_, 0.01, 0.0);
  EXPECT_TRUE(r1.completed);

  KdeEvaluator zorder = bench_.MakeZorderEvaluator(0.05);
  ProgressiveResult r2 = RenderProgressive(zorder, grid_, 0.05, 0.0);
  EXPECT_TRUE(r2.completed);
  EXPECT_EQ(r2.pixels_evaluated, grid_.num_pixels());
}

}  // namespace
}  // namespace kdv
