// Soundness suite for region bounds and the shared-traversal tile refiner.
//
// The certified-error story of tile-shared rendering rests on two claims:
//   1. Region soundness — EvaluateRegion(stats, rect) brackets the node's
//      exact contribution F_n(q) for EVERY query point q inside rect, for
//      every bound profile. (This is a property about one node; no
//      interval-containment relation to the per-pixel bounds is required or
//      asserted — a region bound may cross a per-pixel bound either way.)
//   2. Frontier contract — a valid TileFrontier's baseline plus its
//      frontier-node region intervals is a certified envelope of F_P(q) for
//      every q in the tile, decided tiles meet their ε/τ certificate
//      outright, and the εKDV acceptance budget keeps even an exhausted
//      seeded stream within ub <= (1+eps)·lb.
// Both are checked against brute-force exact sums on randomly placed query
// rects and query samples, across every approximate method's bound class.
#include "core/tile_refiner.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "bounds/node_bounds.h"
#include "core/evaluator.h"
#include "core/leaf_kernel.h"
#include "data/datasets.h"
#include "geom/rect.h"
#include "index/kdtree.h"
#include "util/random.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

PointSet TestDataset(size_t n = 1200, uint64_t seed = 97) {
  MixtureSpec spec;
  spec.n = n;
  spec.num_clusters = 3;
  spec.seed = seed;
  return GenerateMixture(spec);
}

std::unique_ptr<Workbench> MakeBench(
    KernelType kernel = KernelType::kGaussian) {
  StatusOr<std::unique_ptr<Workbench>> bench =
      Workbench::Create(TestDataset(), kernel);
  EXPECT_TRUE(bench.ok()) << bench.status().ToString();
  return *std::move(bench);
}

// Exact contribution of one subtree to F_P(q): the node's points are
// contiguous in the tree's point order.
double ExactNodeSum(const KdTree& tree, const KernelParams& params,
                    const KdTree::Node& node, const Point& q) {
  return LeafSumAoS(tree, params, node.begin, node.end, q);
}

// A random query rect somewhere around the data domain, including rects
// that straddle or sit outside it. Degenerate (point) rects are included
// via the min extent of 0.
Rect RandomQueryRect(Rng* rng, const Rect& domain) {
  const double span0 = domain.hi(0) - domain.lo(0);
  const double span1 = domain.hi(1) - domain.lo(1);
  Rect rect(2);
  const double cx = rng->Uniform(domain.lo(0) - 0.2 * span0,
                                 domain.hi(0) + 0.2 * span0);
  const double cy = rng->Uniform(domain.lo(1) - 0.2 * span1,
                                 domain.hi(1) + 0.2 * span1);
  const double ex = rng->Uniform(0.0, 0.15 * span0);
  const double ey = rng->Uniform(0.0, 0.15 * span1);
  Point lo{cx - ex, cy - ey};
  Point hi{cx + ex, cy + ey};
  rect.Expand(lo);
  rect.Expand(hi);
  return rect;
}

Point RandomPointIn(Rng* rng, const Rect& rect) {
  return Point{rng->Uniform(rect.lo(0), rect.hi(0)),
               rng->Uniform(rect.lo(1), rect.hi(1))};
}

const Method kApproxMethods[] = {Method::kQuad, Method::kKarl, Method::kAkde,
                                 Method::kTkdc};

// Claim 1: region bounds bracket the exact subtree sum for every sampled
// query point in the rect, for every node of the tree and every bound class.
TEST(RegionBoundsTest, RegionIntervalBracketsExactSumForSampledQueries) {
  auto bench = MakeBench();
  Rng rng(4242);
  for (Method method : kApproxMethods) {
    KdeEvaluator evaluator = bench->MakeEvaluator(method);
    const NodeBounds* bounds = evaluator.bounds();
    ASSERT_NE(bounds, nullptr);
    const KdTree& tree = evaluator.tree();
    for (int trial = 0; trial < 12; ++trial) {
      Rect rect = RandomQueryRect(&rng, bench->data_bounds());
      for (size_t n = 0; n < tree.num_nodes(); ++n) {
        const KdTree::Node& node = tree.node(static_cast<int32_t>(n));
        BoundPair region = bounds->EvaluateRegion(node.stats, rect);
        ASSERT_TRUE(std::isfinite(region.lower));
        ASSERT_TRUE(std::isfinite(region.upper));
        for (int s = 0; s < 4; ++s) {
          Point q = RandomPointIn(&rng, rect);
          const double exact =
              ExactNodeSum(tree, evaluator.params(), node, q);
          const double slack = 1e-9 * (1.0 + std::abs(exact));
          ASSERT_GE(exact, region.lower - slack)
              << "method " << static_cast<int>(method) << " node " << n;
          ASSERT_LE(exact, region.upper + slack)
              << "method " << static_cast<int>(method) << " node " << n;
        }
      }
    }
  }
}

// Claim 2a: the frontier envelope holds pointwise over the tile, both as a
// whole and node by node.
TEST(TileRefinerTest, FrontierEnvelopeHoldsForSampledQueries) {
  auto bench = MakeBench();
  Rng rng(777);
  for (Method method : kApproxMethods) {
    KdeEvaluator evaluator = bench->MakeEvaluator(method);
    const KdTree& tree = evaluator.tree();
    TileRefiner refiner(&tree, evaluator.params(), evaluator.bounds());
    for (int trial = 0; trial < 20; ++trial) {
      Rect rect = RandomQueryRect(&rng, bench->data_bounds());
      const bool eps_mode = (trial % 2) == 0;
      const double eps = 0.05;
      const double tau = 0.3;
      TileFrontier tf = eps_mode ? refiner.BuildEps(rect, eps)
                                 : refiner.BuildTau(rect, tau);
      if (!tf.valid) continue;
      for (int s = 0; s < 8; ++s) {
        Point q = RandomPointIn(&rng, rect);
        const double exact = evaluator.EvaluateExact(q);
        const double slack = 1e-9 * (1.0 + std::abs(exact));
        if (tf.decided) {
          if (eps_mode) {
            ASSERT_LE(std::abs(tf.decided_value - exact),
                      eps * exact + slack);
          } else {
            if (exact > tau + slack) ASSERT_TRUE(tf.decided_above);
            if (exact < tau - slack) ASSERT_FALSE(tf.decided_above);
          }
          continue;
        }
        double frontier_sum = 0.0;
        for (const TileFrontier::Node& fn : tf.nodes) {
          const double node_exact = ExactNodeSum(
              tree, evaluator.params(), tree.node(fn.node), q);
          ASSERT_GE(node_exact, fn.lower - slack);
          ASSERT_LE(node_exact, fn.upper + slack);
          frontier_sum += node_exact;
        }
        ASSERT_GE(exact, tf.base_lower + frontier_sum - slack);
        ASSERT_LE(exact, tf.base_upper + frontier_sum + slack);
        if (eps_mode) {
          // Acceptance budget: even a stream that exhausts at exactly the
          // seeded baseline gap still satisfies the ε termination test.
          const double lb = tf.base_lower + frontier_sum;
          const double ub = tf.base_upper + frontier_sum;
          ASSERT_LE(ub, (1.0 + eps) * lb + slack);
        } else {
          // τKDV accepts only zero-gap intervals: the baseline is exact.
          ASSERT_NEAR(tf.base_lower, tf.base_upper,
                      1e-9 * (1.0 + std::abs(tf.base_lower)));
        }
      }
    }
  }
}

// Claim 2b, consumed end to end: a stream seeded from a frontier yields an
// estimate meeting the same certificate as a root-seeded one, for every
// pixel of the tile (here: a dense sample).
TEST(TileRefinerTest, SeededEvaluationMeetsCertificates) {
  auto bench = MakeBench();
  Rng rng(31);
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  TileRefiner refiner(&evaluator.tree(), evaluator.params(),
                      evaluator.bounds());
  QueryControl control;
  RefinementStream scratch = evaluator.MakeScratch();
  const double eps = 0.05;
  const double tau = 0.3;
  for (int trial = 0; trial < 25; ++trial) {
    Rect rect = RandomQueryRect(&rng, bench->data_bounds());
    TileFrontier eps_tf = refiner.BuildEps(rect, eps);
    TileFrontier tau_tf = refiner.BuildTau(rect, tau);
    for (int s = 0; s < 6; ++s) {
      Point q = RandomPointIn(&rng, rect);
      const double exact = evaluator.EvaluateExact(q);
      const double slack = 1e-9 * (1.0 + std::abs(exact));
      if (eps_tf.valid && !eps_tf.decided) {
        EvalResult r =
            evaluator.EvaluateEpsSeeded(q, eps, eps_tf, control, &scratch);
        EXPECT_LE(std::abs(r.estimate - exact), eps * exact + slack);
        EXPECT_GE(exact, r.lower - slack);
        EXPECT_LE(exact, r.upper + slack);
      }
      if (tau_tf.valid && !tau_tf.decided) {
        TauResult r =
            evaluator.EvaluateTauSeeded(q, tau, tau_tf, control, &scratch);
        if (exact > tau + slack) EXPECT_TRUE(r.above_threshold);
        if (exact < tau - slack) EXPECT_FALSE(r.above_threshold);
      }
    }
  }
}

// An invalid frontier must never be produced silently decided, and the
// refiner must stay within its configured visit budget.
TEST(TileRefinerTest, RespectsVisitBudget) {
  auto bench = MakeBench();
  Rng rng(5);
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  TileRefinerOptions options;
  options.max_nodes_visited = 64;
  options.max_frontier = 16;
  TileRefiner refiner(&evaluator.tree(), evaluator.params(),
                      evaluator.bounds(), options);
  for (int trial = 0; trial < 10; ++trial) {
    Rect rect = RandomQueryRect(&rng, bench->data_bounds());
    TileFrontier tf = refiner.BuildEps(rect, 0.05);
    EXPECT_LE(tf.nodes_visited, 64u + 2u);  // one expansion may overshoot
    EXPECT_LE(tf.nodes.size(), 16u + 2u);
    if (tf.valid && !tf.decided) EXPECT_FALSE(tf.nodes.empty());
  }
}

}  // namespace
}  // namespace kdv
