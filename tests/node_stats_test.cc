#include <cmath>

#include <gtest/gtest.h>

#include "geom/point.h"
#include "index/node_stats.h"
#include "util/random.h"

namespace kdv {
namespace {

PointSet RandomPoints(int n, int dim, uint64_t seed, double lo = -2.0,
                      double hi = 2.0) {
  Rng rng(seed);
  PointSet pts;
  for (int i = 0; i < n; ++i) {
    Point p(dim);
    for (int j = 0; j < dim; ++j) p[j] = rng.Uniform(lo, hi);
    pts.push_back(p);
  }
  return pts;
}

double BruteSumSq(const PointSet& pts, const Point& q) {
  double s = 0.0;
  for (const Point& p : pts) s += SquaredDistance(q, p);
  return s;
}

double BruteSumQuartic(const PointSet& pts, const Point& q) {
  double s = 0.0;
  for (const Point& p : pts) {
    double d = SquaredDistance(q, p);
    s += d * d;
  }
  return s;
}

TEST(NodeStatsTest, BasicAggregates) {
  PointSet pts{Point{1.0, 0.0}, Point{0.0, 2.0}, Point{3.0, 4.0}};
  NodeStats s = NodeStats::Compute(pts.data(), pts.size());
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.dim(), 2);
  EXPECT_DOUBLE_EQ(s.sum()[0], 4.0);
  EXPECT_DOUBLE_EQ(s.sum()[1], 6.0);
  EXPECT_DOUBLE_EQ(s.sum_sq_norm(), 1.0 + 4.0 + 25.0);
  EXPECT_DOUBLE_EQ(s.sum_quartic_norm(), 1.0 + 16.0 + 625.0);
  // v_P = sum ||p||^2 p.
  EXPECT_DOUBLE_EQ(s.sum_sq_norm_p()[0], 1.0 * 1.0 + 4.0 * 0.0 + 25.0 * 3.0);
  EXPECT_DOUBLE_EQ(s.sum_sq_norm_p()[1], 1.0 * 0.0 + 4.0 * 2.0 + 25.0 * 4.0);
  // C = sum p p^T.
  EXPECT_DOUBLE_EQ(s.outer_product_sum()[0], 1.0 + 0.0 + 9.0);    // xx
  EXPECT_DOUBLE_EQ(s.outer_product_sum()[1], 0.0 + 0.0 + 12.0);   // xy
  EXPECT_DOUBLE_EQ(s.outer_product_sum()[3], 0.0 + 4.0 + 16.0);   // yy
  EXPECT_TRUE(s.mbr().Contains(Point{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(s.mbr().hi(0), 3.0);
}

// Lemma 1 identity: S1 via aggregates equals brute force.
TEST(NodeStatsTest, SumSquaredDistancesMatchesBruteForce2D) {
  PointSet pts = RandomPoints(100, 2, 1);
  NodeStats s = NodeStats::Compute(pts.data(), pts.size());
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    Point q{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    EXPECT_NEAR(s.SumSquaredDistances(q), BruteSumSq(pts, q), 1e-8);
  }
}

// Lemma 3 identity: S2 via aggregates equals brute force.
TEST(NodeStatsTest, SumQuarticDistancesMatchesBruteForce2D) {
  PointSet pts = RandomPoints(100, 2, 3);
  NodeStats s = NodeStats::Compute(pts.data(), pts.size());
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    Point q{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    EXPECT_NEAR(s.SumQuarticDistances(q), BruteSumQuartic(pts, q), 1e-6);
  }
}

// Parameterized sweep over dimensionality: the identities hold for every d
// used by the dimensionality experiment (paper §7.7).
class NodeStatsDimTest : public ::testing::TestWithParam<int> {};

TEST_P(NodeStatsDimTest, AggregateIdentitiesHold) {
  const int d = GetParam();
  PointSet pts = RandomPoints(60, d, 10 + d);
  NodeStats s = NodeStats::Compute(pts.data(), pts.size());
  Rng rng(100 + d);
  for (int i = 0; i < 20; ++i) {
    Point q(d);
    for (int j = 0; j < d; ++j) q[j] = rng.Uniform(-3, 3);
    double brute_s1 = BruteSumSq(pts, q);
    double brute_s2 = BruteSumQuartic(pts, q);
    EXPECT_NEAR(s.SumSquaredDistances(q), brute_s1,
                1e-9 * std::max(1.0, brute_s1));
    EXPECT_NEAR(s.SumQuarticDistances(q), brute_s2,
                1e-9 * std::max(1.0, brute_s2));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, NodeStatsDimTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10, 16));

TEST(NodeStatsTest, SinglePoint) {
  PointSet pts{Point{1.0, -1.0}};
  NodeStats s = NodeStats::Compute(pts.data(), 1);
  Point q{4.0, 3.0};
  double d2 = SquaredDistance(q, pts[0]);
  EXPECT_NEAR(s.SumSquaredDistances(q), d2, 1e-10);
  EXPECT_NEAR(s.SumQuarticDistances(q), d2 * d2, 1e-8);
}

TEST(NodeStatsTest, QueryAtCentroidNonNegative) {
  // Cancellation stress: all points identical, query identical.
  PointSet pts(50, Point{0.3, 0.7});
  NodeStats s = NodeStats::Compute(pts.data(), pts.size());
  EXPECT_GE(s.SumSquaredDistances(Point{0.3, 0.7}), 0.0);
  EXPECT_GE(s.SumQuarticDistances(Point{0.3, 0.7}), 0.0);
  EXPECT_NEAR(s.SumSquaredDistances(Point{0.3, 0.7}), 0.0, 1e-12);
}

}  // namespace
}  // namespace kdv
