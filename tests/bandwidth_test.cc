#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "kernel/bandwidth.h"

namespace kdv {
namespace {

TEST(BandwidthTest, SilvermanIsScottTimesFactor) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  const double d = 2.0;
  double factor = std::pow(4.0 / (d + 2.0), 1.0 / (d + 4.0));
  EXPECT_NEAR(SilvermanBandwidth(pts), factor * ScottBandwidth(pts), 1e-12);
}

TEST(BandwidthTest, SilvermanEqualsScottExactlyIn2D) {
  // (4/(d+2))^(1/(d+4)) == 1 for d = 2: the rules coincide on KDV data.
  PointSet pts = GenerateMixture(MixtureSpec{});
  EXPECT_NEAR(SilvermanBandwidth(pts), ScottBandwidth(pts), 1e-12);
}

TEST(BandwidthTest, SilvermanSmallerThanScottIn3D) {
  // (4/5)^(1/7) < 1 for d = 3.
  MixtureSpec spec;
  spec.dim = 3;
  PointSet pts = GenerateMixture(spec);
  EXPECT_LT(SilvermanBandwidth(pts), ScottBandwidth(pts));
}

TEST(BandwidthTest, SelectBandwidthDispatches) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  EXPECT_DOUBLE_EQ(SelectBandwidth(BandwidthRule::kScott, pts),
                   ScottBandwidth(pts));
  EXPECT_DOUBLE_EQ(SelectBandwidth(BandwidthRule::kSilverman, pts),
                   SilvermanBandwidth(pts));
}

TEST(BandwidthTest, GammaConventionsPerKernelFamily) {
  EXPECT_DOUBLE_EQ(GammaFromBandwidth(KernelType::kGaussian, 2.0),
                   1.0 / 8.0);
  EXPECT_DOUBLE_EQ(GammaFromBandwidth(KernelType::kTriangular, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(GammaFromBandwidth(KernelType::kCosine, 0.25), 4.0);
}

TEST(BandwidthTest, MakeParamsWithRuleMatchesScottHelper) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  KernelParams via_rule =
      MakeParamsWithRule(KernelType::kGaussian, BandwidthRule::kScott, pts);
  KernelParams via_scott = MakeScottParams(KernelType::kGaussian, pts);
  EXPECT_DOUBLE_EQ(via_rule.gamma, via_scott.gamma);
  EXPECT_DOUBLE_EQ(via_rule.weight, via_scott.weight);
}

TEST(BandwidthTest, DegenerateInputsFallBack) {
  PointSet one{Point{1.0, 1.0}};
  EXPECT_GT(SilvermanBandwidth(one), 0.0);
}

TEST(BandwidthTest, RuleNames) {
  EXPECT_STREQ(BandwidthRuleName(BandwidthRule::kScott), "scott");
  EXPECT_STREQ(BandwidthRuleName(BandwidthRule::kSilverman), "silverman");
}

}  // namespace
}  // namespace kdv
