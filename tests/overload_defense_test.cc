// Unit suite for the runtime self-defense layer: the MemBudget accountant,
// retryable-fault classification, the brownout governor's hysteresis state
// machine (driven by an injected clock), the render watchdog's two kill
// criteria (driven by SweepOnce), and the integrity scrubber's CRC sweep,
// rebaseline, and pixel-oracle checks against real on-disk trees.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "index/serialization.h"
#include "serve/overload_governor.h"
#include "serve/render_service.h"
#include "serve/scrubber.h"
#include "serve/watchdog.h"
#include "util/failpoint.h"
#include "util/mem_budget.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// MemBudget
// ---------------------------------------------------------------------------

TEST(MemBudgetTest, ChargesAndReleasesBalanceExactly) {
  MemBudget budget;
  budget.Charge(MemSource::kRefinementScratch, 100);
  budget.Charge(MemSource::kFrameBuffers, 250);
  budget.Charge(MemSource::kTaskQueue, 50);
  EXPECT_EQ(budget.used_bytes(), 400u);
  EXPECT_EQ(budget.used_bytes(MemSource::kRefinementScratch), 100u);
  EXPECT_EQ(budget.used_bytes(MemSource::kFrameBuffers), 250u);
  EXPECT_EQ(budget.used_bytes(MemSource::kTaskQueue), 50u);
  budget.Release(MemSource::kFrameBuffers, 250);
  budget.Release(MemSource::kRefinementScratch, 100);
  budget.Release(MemSource::kTaskQueue, 50);
  EXPECT_EQ(budget.used_bytes(), 0u);
}

TEST(MemBudgetTest, PeakTracksTheHighWaterMark) {
  MemBudget budget;
  budget.Charge(MemSource::kFrameBuffers, 300);
  budget.Release(MemSource::kFrameBuffers, 300);
  budget.Charge(MemSource::kFrameBuffers, 120);
  EXPECT_EQ(budget.peak_bytes(), 300u);
  budget.ResetPeak();
  budget.Charge(MemSource::kFrameBuffers, 10);
  EXPECT_GE(budget.peak_bytes(), 130u);  // reset re-seeds from current usage
  budget.Release(MemSource::kFrameBuffers, 130);
}

TEST(MemBudgetTest, OverReleaseClampsToZeroInsteadOfWrapping) {
  MemBudget budget;
  budget.Charge(MemSource::kTaskQueue, 10);
  budget.Release(MemSource::kTaskQueue, 1000);  // caller bug: must not wrap
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.used_bytes(MemSource::kTaskQueue), 0u);
  // The accountant still works after the clamp.
  budget.Charge(MemSource::kTaskQueue, 7);
  EXPECT_EQ(budget.used_bytes(), 7u);
  budget.Release(MemSource::kTaskQueue, 7);
}

TEST(MemBudgetTest, ScopedChargeReleasesOnDestructionAndMove) {
  MemBudget budget;
  {
    ScopedMemCharge charge(&budget, MemSource::kFrameBuffers, 64);
    EXPECT_EQ(budget.used_bytes(), 64u);
    ScopedMemCharge moved = std::move(charge);
    EXPECT_EQ(budget.used_bytes(), 64u);  // ownership moved, not doubled
    ScopedMemCharge other(&budget, MemSource::kFrameBuffers, 16);
    other = std::move(moved);  // releases other's 16, keeps the 64
    EXPECT_EQ(budget.used_bytes(), 64u);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Retry classification (satellite bugfix: shed work must not be retried)
// ---------------------------------------------------------------------------

TEST(RetryClassificationTest, OnlyInternalFaultsAreRetryable) {
  EXPECT_TRUE(IsRetryableRenderFault(StatusCode::kInternal));
  // Retrying shed work amplifies the overload that shed it.
  EXPECT_FALSE(IsRetryableRenderFault(StatusCode::kResourceExhausted));
  // Someone already gave up on these.
  EXPECT_FALSE(IsRetryableRenderFault(StatusCode::kCancelled));
  EXPECT_FALSE(IsRetryableRenderFault(StatusCode::kDeadlineExceeded));
  // The breaker is open on purpose.
  EXPECT_FALSE(IsRetryableRenderFault(StatusCode::kUnavailable));
  // Deterministic failures won't get better.
  EXPECT_FALSE(IsRetryableRenderFault(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableRenderFault(StatusCode::kDataLoss));
  EXPECT_FALSE(IsRetryableRenderFault(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableRenderFault(StatusCode::kOk));
}

// ---------------------------------------------------------------------------
// OverloadGovernor
// ---------------------------------------------------------------------------

OverloadGovernor::Options GovernorOptions(ManualClock* clock) {
  OverloadGovernor::Options options;
  options.enabled = true;
  options.in_flight_capacity = 10;
  options.recover_hold_seconds = 0.5;
  options.clock = clock;
  return options;
}

TEST(OverloadGovernorTest, EscalatesImmediatelyAsPressureRises) {
  ManualClock now;
  OverloadGovernor governor(GovernorOptions(&now));

  governor.RecordInFlight(2);  // pressure 0.2
  OverloadGovernor::Decision d = governor.Assess();
  EXPECT_EQ(d.level, OverloadGovernor::Level::kNormal);
  EXPECT_DOUBLE_EQ(d.eps_multiplier, 1.0);
  EXPECT_FALSE(d.shed);

  governor.RecordInFlight(6);  // pressure 0.6 >= enter_progressive
  d = governor.Assess();
  EXPECT_EQ(d.level, OverloadGovernor::Level::kProgressive);
  EXPECT_GT(d.eps_multiplier, 1.0);
  EXPECT_FALSE(d.shed);

  governor.RecordInFlight(9);  // pressure 0.9 >= enter_coarse
  d = governor.Assess();
  EXPECT_EQ(d.level, OverloadGovernor::Level::kCoarse);
  EXPECT_FALSE(d.shed);

  // A full in-flight table is capped below the shed ceiling — admission
  // control owns that rejection — so the governor browns out but does not
  // shed on this signal alone.
  governor.RecordInFlight(10);  // ratio 1.0, capped to 0.95
  d = governor.Assess();
  EXPECT_EQ(d.level, OverloadGovernor::Level::kCoarse);
  EXPECT_FALSE(d.shed);

  // Queue-wait saturation (a signal admission control cannot see) does
  // push past the ceiling.
  governor.RecordQueueWait(0.6);  // saturation is 0.5s: pressure 1.2
  d = governor.Assess();
  EXPECT_TRUE(d.shed);
  EXPECT_LE(d.eps_multiplier,
            OverloadGovernor::Options().eps_max_multiplier + 1e-12);

  OverloadGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.max_level, OverloadGovernor::Level::kCoarse);
  EXPECT_GE(stats.activations, 2u);
  EXPECT_GE(stats.sheds, 1u);
}

TEST(OverloadGovernorTest, DeEscalatesOneLevelAtATimeAfterTheHold) {
  ManualClock now;
  OverloadGovernor governor(GovernorOptions(&now));

  governor.RecordInFlight(9);
  ASSERT_EQ(governor.Assess().level, OverloadGovernor::Level::kCoarse);

  // Calm down completely. The first calm assessment starts the hold; the
  // level must not move until recover_hold_seconds have elapsed.
  governor.RecordInFlight(0);
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kCoarse);
  now.SetTime(0.4);  // hold is 0.5
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kCoarse);
  now.SetTime(0.6);
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kProgressive);
  // One step only; the next hold starts at the next calm assessment (0.9).
  now.SetTime(0.9);
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kProgressive);
  now.SetTime(1.2);
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kProgressive);
  now.SetTime(1.5);
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kNormal);

  // Transition log: every step is exactly one level, escalations included.
  std::vector<OverloadGovernor::Transition> transitions =
      governor.transitions();
  ASSERT_GE(transitions.size(), 3u);
  for (size_t i = 0; i < transitions.size(); ++i) {
    const int delta = static_cast<int>(transitions[i].to) -
                      static_cast<int>(transitions[i].from);
    if (delta < 0) {
      EXPECT_EQ(delta, -1);  // de-escalation is stepwise
    }
    if (i > 0) {
      EXPECT_EQ(transitions[i].from, transitions[i - 1].to);
      EXPECT_GE(transitions[i].at_seconds, transitions[i - 1].at_seconds);
    }
  }
}

TEST(OverloadGovernorTest, PressureSpikeDuringTheHoldResetsIt) {
  ManualClock now;
  OverloadGovernor governor(GovernorOptions(&now));
  governor.RecordInFlight(9);
  ASSERT_EQ(governor.Assess().level, OverloadGovernor::Level::kCoarse);

  governor.RecordInFlight(0);
  governor.Assess();  // hold starts at t=0
  now.SetTime(0.3);
  governor.RecordInFlight(7);  // 0.7: above coarse's exit threshold (0.65)
  governor.Assess();           // resets the hold
  governor.RecordInFlight(0);
  now.SetTime(0.7);  // a fresh hold starts here, not at the original t=0
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kCoarse);
  now.SetTime(1.0);  // 0.3s into the fresh hold: still not enough
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kCoarse);
  now.SetTime(1.2);
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kProgressive);
}

TEST(OverloadGovernorTest, StaleQueueWaitSignalDecaysInsteadOfSheddingForever) {
  ManualClock now;
  OverloadGovernor::Options options = GovernorOptions(&now);
  options.queue_wait_saturation_seconds = 0.1;
  options.queue_wait_decay_halflife_seconds = 1.0;
  OverloadGovernor governor(options);

  // A burst drives the wait EWMA far past the shed ceiling. Queue-wait
  // samples only arrive when requests are admitted, so once shedding starts
  // the signal gets no new data — without decay this state is absorbing.
  governor.RecordQueueWait(0.4);  // pressure 4.0
  OverloadGovernor::Decision d = governor.Assess();
  EXPECT_TRUE(d.shed);

  now.SetTime(1.0);  // one half-life: pressure 2.0, still shedding
  EXPECT_TRUE(governor.Assess().shed);
  now.SetTime(3.0);  // three half-lives: pressure 0.5, below every threshold
  d = governor.Assess();
  EXPECT_FALSE(d.shed);
  EXPECT_LT(d.pressure, options.enter_progressive);
  EXPECT_NEAR(d.pressure, 0.5, 0.05);
  // The level itself still unwinds hysteretically: coarse until the hold
  // elapses, then one step per hold.
  EXPECT_EQ(d.level, OverloadGovernor::Level::kCoarse);
  now.SetTime(3.6);  // hold (0.5s) elapsed since the calm assessment at t=3.0
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kProgressive);
  now.SetTime(4.0);  // next hold starts here...
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kProgressive);
  now.SetTime(4.6);  // ...and completes: back to the full certified ladder
  EXPECT_EQ(governor.Assess().level, OverloadGovernor::Level::kNormal);
}

TEST(OverloadGovernorTest, MemoryPressureAloneCanTriggerBrownout) {
  ManualClock now;
  OverloadGovernor::Options options = GovernorOptions(&now);
  options.memory_budget_bytes = 1000;
  OverloadGovernor governor(options);

  // The governor reads the global accountant; park a charge on it.
  ScopedMemCharge charge(&MemBudget::Global(), MemSource::kFrameBuffers, 900);
  OverloadGovernor::Decision d = governor.Assess();
  EXPECT_EQ(d.level, OverloadGovernor::Level::kCoarse);
  EXPECT_GE(d.pressure, 0.9);
}

TEST(OverloadGovernorTest, DisabledGovernorNeverActs) {
  OverloadGovernor::Options options;  // enabled defaults to false
  OverloadGovernor governor(options);
  governor.RecordInFlight(1000);
  governor.RecordQueueWait(1000.0);
  OverloadGovernor::Decision d = governor.Assess();
  EXPECT_EQ(d.level, OverloadGovernor::Level::kNormal);
  EXPECT_FALSE(d.shed);
  EXPECT_DOUBLE_EQ(d.eps_multiplier, 1.0);
  EXPECT_EQ(governor.stats().assessments, 0u);
}

// ---------------------------------------------------------------------------
// RenderWatchdog (SweepOnce drives the monitor deterministically; the
// background thread is parked on a long poll interval)
// ---------------------------------------------------------------------------

RenderWatchdog::Options WatchdogOptions() {
  RenderWatchdog::Options options;
  options.enabled = true;
  options.poll_interval_seconds = 30.0;  // unit tests sweep by hand
  options.deadline_multiple = 2.0;
  options.no_budget_kill_seconds = 0.0;
  options.no_progress_seconds = 0.0;
  return options;
}

TEST(RenderWatchdogTest, KillsARenderPastItsDeadlineMultiple) {
  RenderWatchdog watchdog(WatchdogOptions());
  std::shared_ptr<WatchEntry> watch = watchdog.Watch(1, /*budget=*/0.01);
  EXPECT_EQ(watchdog.SweepOnce(), 0);  // within budget: untouched
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(watchdog.SweepOnce(), 1);
  EXPECT_TRUE(watch->WasKilled());
  EXPECT_TRUE(watch->kill.cancelled());
  EXPECT_EQ(watchdog.kills(), 1u);
  // A killed entry is not killed twice.
  EXPECT_EQ(watchdog.SweepOnce(), 0);
  std::vector<StallReport> reports = watchdog.stall_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].request_id, 1u);
  EXPECT_FALSE(reports[0].no_progress);  // overrun criterion
  watchdog.Unwatch(watch);
}

TEST(RenderWatchdogTest, SilentEntryWithoutHeartbeatsIsNotFlaggedStalled) {
  RenderWatchdog::Options options = WatchdogOptions();
  options.no_progress_seconds = 0.005;
  RenderWatchdog watchdog(options);
  // No budget and no heartbeat instrumentation (the coarse-tier shape):
  // the no-progress criterion must not fire before the first beat.
  std::shared_ptr<WatchEntry> watch = watchdog.Watch(2, /*budget=*/-1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(watchdog.SweepOnce(), 0);
  EXPECT_FALSE(watch->WasKilled());
  watchdog.Unwatch(watch);
}

TEST(RenderWatchdogTest, StalledHeartbeatIsKilledAndBeatingOneIsNot) {
  RenderWatchdog::Options options = WatchdogOptions();
  options.no_progress_seconds = 0.02;
  RenderWatchdog watchdog(options);
  std::shared_ptr<WatchEntry> stalled = watchdog.Watch(3, /*budget=*/-1.0);
  std::shared_ptr<WatchEntry> beating = watchdog.Watch(4, /*budget=*/-1.0);
  stalled->heartbeat.fetch_add(1);  // one beat, then silence
  beating->heartbeat.fetch_add(1);
  watchdog.SweepOnce();  // observes both first beats

  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    beating->heartbeat.fetch_add(1);
    watchdog.SweepOnce();
  }
  EXPECT_TRUE(stalled->WasKilled());
  EXPECT_FALSE(beating->WasKilled());
  std::vector<StallReport> reports = watchdog.stall_reports();
  ASSERT_GE(reports.size(), 1u);
  EXPECT_TRUE(reports[0].no_progress);
  watchdog.Unwatch(stalled);
  watchdog.Unwatch(beating);
}

TEST(RenderWatchdogTest, UnwatchedEntriesAreLeftAlone) {
  RenderWatchdog watchdog(WatchdogOptions());
  std::shared_ptr<WatchEntry> watch = watchdog.Watch(5, /*budget=*/0.001);
  watchdog.Unwatch(watch);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(watchdog.SweepOnce(), 0);
  EXPECT_FALSE(watch->WasKilled());
}

TEST(RenderWatchdogTest, StallCallbackFiresOncePerKill) {
  std::atomic<int> stalls{0};
  RenderWatchdog watchdog(WatchdogOptions(),
                          [&stalls](const StallReport&) { ++stalls; });
  std::shared_ptr<WatchEntry> a = watchdog.Watch(6, /*budget=*/0.001);
  std::shared_ptr<WatchEntry> b = watchdog.Watch(7, /*budget=*/0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(watchdog.SweepOnce(), 2);
  EXPECT_EQ(stalls.load(), 2);
  EXPECT_EQ(watchdog.SweepOnce(), 0);
  EXPECT_EQ(stalls.load(), 2);
  watchdog.Unwatch(a);
  watchdog.Unwatch(b);
}

TEST(RenderWatchdogTest, DisabledWatchdogHandsOutInertHandles) {
  RenderWatchdog::Options options;  // enabled defaults to false
  RenderWatchdog watchdog(options);
  std::shared_ptr<WatchEntry> watch = watchdog.Watch(8, /*budget=*/0.0001);
  ASSERT_NE(watch, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(watchdog.SweepOnce(), 0);
  EXPECT_FALSE(watch->WasKilled());
}

// ---------------------------------------------------------------------------
// IntegrityScrubber
// ---------------------------------------------------------------------------

class ScrubberTest : public ::testing::Test {
 protected:
  ScrubberTest()
      : bench_(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian),
        evaluator_(bench_.MakeEvaluator(Method::kQuad)) {}

  IntegrityScrubber::Options BaseOptions() {
    IntegrityScrubber::Options options;
    options.enabled = true;
    options.slice_bytes = 4096;
    options.pixel_samples_per_tick = 0;
    return options;
  }

  // Runs ticks until `done` or the bound; returns the first non-OK status.
  Status TickUntil(IntegrityScrubber* scrubber,
                   const std::function<bool()>& done) {
    Status first_bad = OkStatus();
    for (int i = 0; i < 10000 && !done(); ++i) {
      Status s = scrubber->RunTick();
      if (!s.ok() && first_bad.ok()) first_bad = s;
    }
    return first_bad;
  }

  Workbench bench_;
  KdeEvaluator evaluator_;
};

TEST_F(ScrubberTest, CrcSweepDetectsAnInjectedBitFlip) {
  const std::string path = TempPath("scrub_flip.kdv");
  KdTree tree{GenerateMixture(CrimeSpec(0.002))};
  ASSERT_TRUE(SaveKdTree(tree, path).ok());

  std::string reason_seen;
  IntegrityScrubber::Options options = BaseOptions();
  options.index_path = path;
  IntegrityScrubber scrubber(
      options, [this] { return &evaluator_; },
      [&reason_seen](const std::string& reason) {
        reason_seen = reason;
        return OkStatus();  // "healed" (quarantine + swap in production)
      });

  // First pass establishes the CRC baseline.
  EXPECT_TRUE(
      TickUntil(&scrubber, [&] { return scrubber.stats().crc_passes >= 1; })
          .ok());
  ASSERT_GE(scrubber.stats().crc_passes, 1u);
  ASSERT_EQ(scrubber.stats().mismatches, 0u);

  // Flip one byte in the middle of the file: the sweep CRC diverges AND the
  // checksummed loader rejects the file, confirming rot.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 64);
    const std::streamoff at = size / 2;
    f.seekg(at);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(at);
    f.write(&byte, 1);
  }

  Status bad = TickUntil(
      &scrubber, [&] { return scrubber.stats().mismatches >= 1; });
  IntegrityScrubber::Stats stats = scrubber.stats();
  EXPECT_EQ(stats.mismatches, 1u);
  EXPECT_EQ(stats.recoveries, 1u);  // our callback returned OK
  EXPECT_EQ(bad.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(reason_seen.empty());
  EXPECT_NE(stats.last_verdict.find("fails verification"), std::string::npos)
      << stats.last_verdict;
  std::remove(path.c_str());
}

TEST_F(ScrubberTest, AtomicReplacementRebaselinesInsteadOfAlarming) {
  const std::string path = TempPath("scrub_swap.kdv");
  KdTree small{GenerateMixture(CrimeSpec(0.002))};
  ASSERT_TRUE(SaveKdTree(small, path).ok());

  IntegrityScrubber::Options options = BaseOptions();
  options.index_path = path;
  IntegrityScrubber scrubber(
      options, [this] { return &evaluator_; },
      [](const std::string&) { return OkStatus(); });
  EXPECT_TRUE(
      TickUntil(&scrubber, [&] { return scrubber.stats().crc_passes >= 1; })
          .ok());

  // A checkpoint atomically replaces the file with a different, valid tree.
  KdTree replacement{GenerateMixture(CrimeSpec(0.004))};
  ASSERT_TRUE(SaveKdTree(replacement, path).ok());

  EXPECT_TRUE(
      TickUntil(&scrubber, [&] { return scrubber.stats().rebaselines >= 1; })
          .ok());
  IntegrityScrubber::Stats stats = scrubber.stats();
  EXPECT_GE(stats.rebaselines, 1u);
  EXPECT_EQ(stats.mismatches, 0u);

  // The sweep keeps working against the new baseline.
  const uint64_t passes_before = stats.crc_passes;
  EXPECT_TRUE(TickUntil(&scrubber,
                        [&] {
                          return scrubber.stats().crc_passes >=
                                 passes_before + 2;
                        })
                  .ok());
  EXPECT_EQ(scrubber.stats().mismatches, 0u);
  std::remove(path.c_str());
}

TEST_F(ScrubberTest, PixelOracleAcceptsAHealthyEvaluator) {
  IntegrityScrubber::Options options = BaseOptions();
  options.pixel_samples_per_tick = 4;
  IntegrityScrubber scrubber(
      options, [this] { return &evaluator_; },
      [](const std::string&) { return OkStatus(); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(scrubber.RunTick().ok());
  }
  IntegrityScrubber::Stats stats = scrubber.stats();
  EXPECT_EQ(stats.pixel_checks, 128u);
  EXPECT_EQ(stats.mismatches, 0u);
}

TEST_F(ScrubberTest, DeferGateSkipsTheTick) {
  std::atomic<bool> busy{true};
  IntegrityScrubber::Options options = BaseOptions();
  options.pixel_samples_per_tick = 2;
  options.defer = [&busy] { return busy.load(); };
  IntegrityScrubber scrubber(
      options, [this] { return &evaluator_; },
      [](const std::string&) { return OkStatus(); });
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(scrubber.RunTick().ok());
  IntegrityScrubber::Stats stats = scrubber.stats();
  EXPECT_EQ(stats.deferred, 4u);
  EXPECT_EQ(stats.pixel_checks, 0u);

  busy.store(false);
  EXPECT_TRUE(scrubber.RunTick().ok());
  EXPECT_GT(scrubber.stats().pixel_checks, 0u);
}

TEST_F(ScrubberTest, DisabledScrubberDoesNothing) {
  IntegrityScrubber::Options options = BaseOptions();
  options.enabled = false;
  IntegrityScrubber scrubber(
      options, [this] { return &evaluator_; },
      [](const std::string&) { return OkStatus(); });
  EXPECT_TRUE(scrubber.RunTick().ok());
  EXPECT_EQ(scrubber.stats().ticks, 0u);
  scrubber.Start();  // no-op
  scrubber.Stop();
}

TEST_F(ScrubberTest, CorruptFailpointForcesTheFullRecoveryPath) {
  if (!failpoint::enabled()) {
    GTEST_SKIP() << "requires -DKDV_FAILPOINTS=ON";
  }
  std::atomic<int> callbacks{0};
  IntegrityScrubber::Options options = BaseOptions();
  options.pixel_samples_per_tick = 1;
  IntegrityScrubber scrubber(
      options, [this] { return &evaluator_; },
      [&callbacks](const std::string& reason) {
        EXPECT_NE(reason.find("scrub.corrupt"), std::string::npos);
        ++callbacks;
        return OkStatus();
      });
  ASSERT_TRUE(failpoint::Arm("scrub.corrupt", failpoint::Action::kError,
                             /*delay_ms=*/0, /*max_hits=*/1)
                  .ok());
  Status first = scrubber.RunTick();
  EXPECT_EQ(first.code(), StatusCode::kDataLoss);
  EXPECT_EQ(callbacks.load(), 1);
  EXPECT_EQ(scrubber.stats().mismatches, 1u);
  EXPECT_EQ(scrubber.stats().recoveries, 1u);
  // Single-shot failpoint: the next tick is clean again.
  EXPECT_TRUE(scrubber.RunTick().ok());
  failpoint::Reset();
}

}  // namespace
}  // namespace kdv
