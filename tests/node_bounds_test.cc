// Aggregate-level property tests: for random point clouds and queries, every
// bound implementation must bracket the true node aggregate, and the paper's
// tightness ordering must hold (QUAD inside KARL inside aKDE for Gaussian;
// QUAD inside aKDE for the distance kernels).
#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "bounds/node_bounds.h"
#include "index/node_stats.h"
#include "kernel/kernel.h"
#include "util/random.h"

namespace kdv {
namespace {

struct Cloud {
  PointSet points;
  NodeStats stats;
};

Cloud RandomCloud(Rng* rng, int n, double spread) {
  Cloud cloud;
  double cx = rng->Uniform(-1.0, 1.0);
  double cy = rng->Uniform(-1.0, 1.0);
  for (int i = 0; i < n; ++i) {
    cloud.points.push_back(Point{cx + rng->Uniform(-spread, spread),
                                 cy + rng->Uniform(-spread, spread)});
  }
  cloud.stats = NodeStats::Compute(cloud.points.data(), cloud.points.size());
  return cloud;
}

double ExactAggregate(const KernelParams& params, const PointSet& pts,
                      const Point& q) {
  double sum = 0.0;
  for (const Point& p : pts) {
    sum += params.EvalSquaredDistance(SquaredDistance(q, p));
  }
  return params.weight * sum;
}

// Tolerance proportional to the aggregate magnitude.
double Tol(double value) { return 1e-9 * std::max(1.0, std::abs(value)); }

// Parameterized over (kernel, method) pairs the framework supports.
struct Combo {
  KernelType kernel;
  Method method;
};

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(KernelTypeName(info.param.kernel)) + "_" +
         MethodName(info.param.method);
}

class BoundCorrectnessTest : public ::testing::TestWithParam<Combo> {};

TEST_P(BoundCorrectnessTest, BoundsBracketExactAggregate) {
  const Combo combo = GetParam();
  Rng rng(static_cast<uint64_t>(combo.kernel) * 37 +
          static_cast<uint64_t>(combo.method) + 5);

  for (int trial = 0; trial < 300; ++trial) {
    Cloud cloud = RandomCloud(&rng, 2 + static_cast<int>(rng.UniformInt(40)),
                              rng.Uniform(0.01, 0.8));
    KernelParams params;
    params.type = combo.kernel;
    params.gamma = rng.Uniform(0.2, 8.0);
    params.weight = rng.Uniform(0.1, 2.0);

    std::unique_ptr<NodeBounds> bounds = MakeNodeBounds(combo.method, params);
    ASSERT_NE(bounds, nullptr);

    Point q{rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
    BoundPair b = bounds->Evaluate(cloud.stats, q);
    double exact = ExactAggregate(params, cloud.points, q);

    EXPECT_LE(b.lower, exact + Tol(exact))
        << bounds->name() << "/" << KernelTypeName(combo.kernel)
        << " trial " << trial;
    EXPECT_GE(b.upper, exact - Tol(exact))
        << bounds->name() << "/" << KernelTypeName(combo.kernel)
        << " trial " << trial;
    EXPECT_GE(b.lower, -Tol(exact));
    EXPECT_LE(b.lower, b.upper + Tol(exact));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSupportedCombos, BoundCorrectnessTest,
    ::testing::Values(
        Combo{KernelType::kGaussian, Method::kAkde},
        Combo{KernelType::kGaussian, Method::kKarl},
        Combo{KernelType::kGaussian, Method::kQuad},
        Combo{KernelType::kTriangular, Method::kAkde},
        Combo{KernelType::kTriangular, Method::kQuad},
        Combo{KernelType::kCosine, Method::kAkde},
        Combo{KernelType::kCosine, Method::kQuad},
        Combo{KernelType::kExponential, Method::kAkde},
        Combo{KernelType::kExponential, Method::kQuad},
        Combo{KernelType::kEpanechnikov, Method::kAkde},
        Combo{KernelType::kEpanechnikov, Method::kQuad},
        Combo{KernelType::kQuartic, Method::kAkde},
        Combo{KernelType::kQuartic, Method::kQuad},
        Combo{KernelType::kUniform, Method::kAkde},
        Combo{KernelType::kUniform, Method::kQuad}),
    ComboName);

// ---------------------------------------------------------------------------
// Tightness ordering (the paper's central claim). Clamping is disabled so
// the raw analytic bounds are compared.
// ---------------------------------------------------------------------------

TEST(BoundTightnessTest, GaussianQuadInsideKarlInsideTrivial) {
  Rng rng(42);
  BoundsOptions raw;
  raw.clamp_with_trivial = false;

  for (int trial = 0; trial < 300; ++trial) {
    Cloud cloud = RandomCloud(&rng, 2 + static_cast<int>(rng.UniformInt(40)),
                              rng.Uniform(0.01, 0.8));
    KernelParams params;
    params.type = KernelType::kGaussian;
    params.gamma = rng.Uniform(0.2, 8.0);
    params.weight = 1.0;

    MinMaxDistBounds akde(params, raw);
    KarlLinearBounds karl(params, raw);
    QuadGaussianBounds quad(params, raw);

    Point q{rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
    BoundPair ba = akde.Evaluate(cloud.stats, q);
    BoundPair bk = karl.Evaluate(cloud.stats, q);
    BoundPair bq = quad.Evaluate(cloud.stats, q);

    const double tol = Tol(ba.upper);
    // Upper: F <= QUAD <= KARL (Theorem 1). (KARL vs trivial can go either
    // way pointwise on aggregates, so only the paper-proved chain is
    // asserted.)
    EXPECT_LE(bq.upper, bk.upper + tol) << "trial " << trial;
    // Lower: trivial-free chain QUAD >= KARL (§4.3).
    EXPECT_GE(bq.lower, bk.lower - tol) << "trial " << trial;
    // Gap ordering: QUAD's interval is no wider than KARL's.
    EXPECT_LE(bq.upper - bq.lower, bk.upper - bk.lower + tol);
  }
}

TEST(BoundTightnessTest, DistanceKernelsQuadNoWorseThanTrivialUpper) {
  Rng rng(43);
  BoundsOptions raw;
  raw.clamp_with_trivial = false;

  for (KernelType kernel : {KernelType::kTriangular, KernelType::kCosine,
                            KernelType::kExponential}) {
    for (int trial = 0; trial < 200; ++trial) {
      Cloud cloud = RandomCloud(&rng, 2 + static_cast<int>(rng.UniformInt(40)),
                                rng.Uniform(0.01, 0.8));
      KernelParams params;
      params.type = kernel;
      params.gamma = rng.Uniform(0.2, 4.0);
      params.weight = 1.0;

      MinMaxDistBounds akde(params, raw);
      QuadDistanceKernelBounds quad(params, raw);

      Point q{rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
      BoundPair ba = akde.Evaluate(cloud.stats, q);
      BoundPair bq = quad.Evaluate(cloud.stats, q);

      const double tol = Tol(ba.upper);
      EXPECT_LE(bq.upper, ba.upper + tol)
          << KernelTypeName(kernel) << " trial " << trial;
      // Lemma 6 (triangular) and the analogous remarks: QUAD lower bound is
      // at least the trivial one, after the >= 0 floor both apply.
      EXPECT_GE(std::max(bq.lower, 0.0), std::max(ba.lower, 0.0) - tol)
          << KernelTypeName(kernel) << " trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// Degenerate geometry
// ---------------------------------------------------------------------------

TEST(BoundEdgeCaseTest, SinglePointNodeBoundsAreTight) {
  for (KernelType kernel : {KernelType::kGaussian, KernelType::kTriangular,
                            KernelType::kCosine, KernelType::kExponential}) {
    KernelParams params;
    params.type = kernel;
    params.gamma = 1.5;
    params.weight = 0.5;
    PointSet pts{Point{0.25, -0.5}};
    NodeStats stats = NodeStats::Compute(pts.data(), 1);
    std::unique_ptr<NodeBounds> bounds = MakeNodeBounds(Method::kQuad, params);
    Point q{1.0, 1.0};
    BoundPair b = bounds->Evaluate(stats, q);
    double exact = ExactAggregate(params, pts, q);
    // A single point has a zero-extent MBR: x_min == x_max, bounds exact.
    EXPECT_NEAR(b.lower, exact, 1e-10) << KernelTypeName(kernel);
    EXPECT_NEAR(b.upper, exact, 1e-10) << KernelTypeName(kernel);
  }
}

TEST(BoundEdgeCaseTest, QueryInsideNodeMbr) {
  Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    Cloud cloud = RandomCloud(&rng, 30, 0.5);
    KernelParams params;
    params.type = KernelType::kGaussian;
    params.gamma = 2.0;
    params.weight = 1.0;
    QuadGaussianBounds quad(params, BoundsOptions{});
    // Query at the centroid: x_min = 0.
    Point q = cloud.stats.mbr().Center();
    BoundPair b = quad.Evaluate(cloud.stats, q);
    double exact = ExactAggregate(params, cloud.points, q);
    EXPECT_LE(b.lower, exact + Tol(exact));
    EXPECT_GE(b.upper, exact - Tol(exact));
  }
}

TEST(BoundEdgeCaseTest, FarAwayQueryFiniteSupportGivesExactZero) {
  PointSet pts{Point{0.0, 0.0}, Point{0.1, 0.1}};
  NodeStats stats = NodeStats::Compute(pts.data(), pts.size());
  for (KernelType kernel : {KernelType::kTriangular, KernelType::kCosine,
                            KernelType::kUniform, KernelType::kEpanechnikov,
                            KernelType::kQuartic}) {
    KernelParams params;
    params.type = kernel;
    params.gamma = 1.0;
    params.weight = 1.0;
    std::unique_ptr<NodeBounds> bounds = MakeNodeBounds(Method::kQuad, params);
    BoundPair b = bounds->Evaluate(stats, Point{100.0, 100.0});
    EXPECT_DOUBLE_EQ(b.lower, 0.0) << KernelTypeName(kernel);
    EXPECT_DOUBLE_EQ(b.upper, 0.0) << KernelTypeName(kernel);
  }
}

// ---------------------------------------------------------------------------
// Factory behavior (paper Table 6)
// ---------------------------------------------------------------------------

TEST(BoundFactoryTest, KarlRejectsNonGaussian) {
  KernelParams params;
  params.type = KernelType::kTriangular;
  EXPECT_EQ(MakeNodeBounds(Method::kKarl, params), nullptr);
}

TEST(BoundFactoryTest, ExactAndZorderHaveNoBoundFunction) {
  KernelParams params;
  EXPECT_EQ(MakeNodeBounds(Method::kExact, params), nullptr);
  EXPECT_EQ(MakeNodeBounds(Method::kZorder, params), nullptr);
}

TEST(BoundFactoryTest, TkdcSharesMinMaxBounds) {
  KernelParams params;
  params.type = KernelType::kGaussian;
  auto b = MakeNodeBounds(Method::kTkdc, params);
  ASSERT_NE(b, nullptr);
  EXPECT_STREQ(b->name(), "aKDE");
}

TEST(BoundFactoryTest, QuadCoversAllKernels) {
  for (KernelType kernel :
       {KernelType::kGaussian, KernelType::kTriangular, KernelType::kCosine,
        KernelType::kExponential, KernelType::kEpanechnikov,
        KernelType::kQuartic, KernelType::kUniform}) {
    KernelParams params;
    params.type = kernel;
    EXPECT_NE(MakeNodeBounds(Method::kQuad, params), nullptr)
        << KernelTypeName(kernel);
  }
}

TEST(BoundFactoryTest, MethodNamesAreStable) {
  EXPECT_STREQ(MethodName(Method::kExact), "EXACT");
  EXPECT_STREQ(MethodName(Method::kAkde), "aKDE");
  EXPECT_STREQ(MethodName(Method::kTkdc), "tKDC");
  EXPECT_STREQ(MethodName(Method::kKarl), "KARL");
  EXPECT_STREQ(MethodName(Method::kQuad), "QUAD");
  EXPECT_STREQ(MethodName(Method::kZorder), "Z-order");
}

}  // namespace
}  // namespace kdv
