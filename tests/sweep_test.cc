// Cross-cutting property sweeps: parameterized guarantees over ε, τ
// monotonicity, and determinism of whole pipelines.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "quadkdv.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// ε sweep: the (1±ε) guarantee holds for every requested ε.
// ---------------------------------------------------------------------------

class EpsSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsSweepTest, GuaranteeHoldsAtEveryEps) {
  const double eps = GetParam();
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);

  Rng rng(1);
  for (int i = 0; i < 25; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    double truth = exact.EvaluateExact(q);
    EvalResult r = quad.EvaluateEps(q, eps);
    if (truth > 1e-12) {
      EXPECT_LE(std::abs(r.estimate - truth) / truth, eps + 1e-9)
          << "eps=" << eps;
    }
  }
}

TEST_P(EpsSweepTest, WorkDecreasesWithLooserEps) {
  const double eps = GetParam();
  Workbench bench(GenerateMixture(HomeSpec(0.003)), KernelType::kGaussian);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  Point q = bench.data_bounds().Center();
  uint64_t work_here = quad.EvaluateEps(q, eps).iterations;
  uint64_t work_tighter = quad.EvaluateEps(q, eps / 4.0).iterations;
  EXPECT_LE(work_here, work_tighter);
}

INSTANTIATE_TEST_SUITE_P(EpsValues, EpsSweepTest,
                         ::testing::Values(0.001, 0.01, 0.02, 0.05, 0.1,
                                           0.5));

// ---------------------------------------------------------------------------
// τ monotonicity: raising the threshold can only shrink the hot region.
// ---------------------------------------------------------------------------

TEST(TauSweepPropertyTest, HotAreaIsMonotoneInTau) {
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  PixelGrid grid(32, 24, bench.data_bounds());
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/2);

  size_t prev_hot = grid.num_pixels() + 1;
  for (double tau : TauSweep(stats)) {
    BinaryFrame mask = RenderTauFrame(quad, grid, tau, nullptr);
    size_t hot = 0;
    for (uint8_t v : mask.values) hot += v;
    EXPECT_LE(hot, prev_hot) << "tau=" << tau;
    prev_hot = hot;
  }
}

TEST(TauSweepPropertyTest, HotSetIsNestedNotJustSmaller) {
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  PixelGrid grid(24, 18, bench.data_bounds());
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  MeanStd stats = EstimateDensityStats(quad, grid, /*stride=*/2);

  BinaryFrame lo_mask =
      RenderTauFrame(quad, grid, stats.mean - 0.2 * stats.stddev, nullptr);
  BinaryFrame hi_mask =
      RenderTauFrame(quad, grid, stats.mean + 0.2 * stats.stddev, nullptr);
  for (size_t i = 0; i < lo_mask.values.size(); ++i) {
    if (hi_mask.values[i] != 0) {
      EXPECT_NE(lo_mask.values[i], 0) << "pixel " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: identical inputs give bit-identical outputs.
// ---------------------------------------------------------------------------

TEST(DeterminismTest, FramesAreBitIdenticalAcrossRuns) {
  auto run_once = [] {
    Workbench bench(GenerateMixture(CrimeSpec(0.002)),
                    KernelType::kGaussian);
    PixelGrid grid(24, 18, bench.data_bounds());
    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    return RenderEpsFrame(quad, grid, 0.01, nullptr);
  };
  DensityFrame a = run_once();
  DensityFrame b = run_once();
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i], b.values[i]) << i;
  }
}

TEST(DeterminismTest, ZorderPipelineIsDeterministic) {
  auto run_once = [] {
    Workbench bench(GenerateMixture(HomeSpec(0.002)), KernelType::kGaussian);
    KdeEvaluator z = bench.MakeZorderEvaluator(0.05);
    return z.EvaluateExact(bench.data_bounds().Center());
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Cross-kernel sanity: KDV output scales sanely with gamma.
// ---------------------------------------------------------------------------

TEST(GammaScalingTest, SmallerBandwidthSharpensPeaks) {
  // Larger gamma (smaller bandwidth) concentrates density: the max/mean
  // ratio of the frame grows.
  PointSet points = GenerateMixture(CrimeSpec(0.002));
  double base_gamma =
      MakeScottParams(KernelType::kGaussian, points).gamma;

  double prev_ratio = 0.0;
  for (double scale : {0.5, 2.0, 8.0}) {
    Workbench::Options options;
    options.gamma_override = base_gamma * scale;
    Workbench bench(PointSet(points), KernelType::kGaussian, options);
    PixelGrid grid(24, 18, bench.data_bounds());
    KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
    DensityFrame frame = RenderEpsFrame(quad, grid, 0.01, nullptr);
    MeanStd stats = ComputeMeanStd(frame.values);
    double peak = 0.0;
    for (double v : frame.values) peak = std::max(peak, v);
    double ratio = peak / std::max(stats.mean, 1e-30);
    EXPECT_GT(ratio, prev_ratio) << "gamma scale " << scale;
    prev_ratio = ratio;
  }
}

// ---------------------------------------------------------------------------
// Leaf-size invariance: results do not depend on index granularity.
// ---------------------------------------------------------------------------

class LeafSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LeafSizeTest, TauMaskIndependentOfLeafSize) {
  Workbench::Options options;
  options.leaf_size = GetParam();
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian,
                  options);
  PixelGrid grid(16, 12, bench.data_bounds());
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);
  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);

  DensityFrame truth = RenderExactFrame(exact, grid, nullptr);
  MeanStd stats = ComputeMeanStd(truth.values);
  BinaryFrame mask = RenderTauFrame(quad, grid, stats.mean, nullptr);
  for (size_t i = 0; i < mask.values.size(); ++i) {
    if (std::abs(truth.values[i] - stats.mean) < 1e-12) continue;
    EXPECT_EQ(mask.values[i] != 0, truth.values[i] >= stats.mean);
  }
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, LeafSizeTest,
                         ::testing::Values(1, 4, 16, 64, 256, 4096));

}  // namespace
}  // namespace kdv
