#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "data/datasets.h"

namespace kdv {
namespace {

TEST(MixtureTest, GeneratesRequestedCardinalityAndDim) {
  MixtureSpec spec;
  spec.n = 1234;
  spec.dim = 3;
  PointSet pts = GenerateMixture(spec);
  ASSERT_EQ(pts.size(), 1234u);
  for (const Point& p : pts) EXPECT_EQ(p.dim(), 3);
}

TEST(MixtureTest, DeterministicInSeed) {
  MixtureSpec spec;
  spec.n = 200;
  spec.seed = 77;
  PointSet a = GenerateMixture(spec);
  PointSet b = GenerateMixture(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(MixtureTest, DifferentSeedsDiffer) {
  MixtureSpec spec;
  spec.n = 200;
  spec.seed = 1;
  PointSet a = GenerateMixture(spec);
  spec.seed = 2;
  PointSet b = GenerateMixture(spec);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(MixtureTest, ClusteredDataIsDenserThanUniform) {
  // With zero noise and tight clusters, the bounding box of most points is
  // much smaller than the whole domain: measure the fraction inside a small
  // disc around each cluster seed indirectly via coordinate variance.
  MixtureSpec tight;
  tight.n = 5000;
  tight.num_clusters = 2;
  tight.cluster_stddev_min = tight.cluster_stddev_max = 0.005;
  tight.noise_fraction = 0.0;
  tight.seed = 5;
  PointSet pts = GenerateMixture(tight);
  // All mass sits in two tiny blobs: the set of rounded-to-0.05 cells
  // occupied must be small.
  std::set<std::pair<int, int>> cells;
  for (const Point& p : pts) {
    cells.insert({static_cast<int>(p[0] * 20), static_cast<int>(p[1] * 20)});
  }
  EXPECT_LT(cells.size(), 30u);
}

TEST(PaperSpecsTest, MatchTable5Cardinalities) {
  EXPECT_EQ(ElNinoSpec(1.0).n, 178080u);
  EXPECT_EQ(CrimeSpec(1.0).n, 270688u);
  EXPECT_EQ(HomeSpec(1.0).n, 919438u);
  EXPECT_EQ(HepSpec(1.0).n, 7000000u);
  EXPECT_EQ(PaperDatasetSpecs(1.0).size(), 4u);
}

TEST(PaperSpecsTest, ScalingShrinksCardinality) {
  EXPECT_EQ(HepSpec(0.001).n, 7000u);
  EXPECT_GE(ElNinoSpec(1e-9).n, 100u);  // floor
}

TEST(NormalizeTest, MapsToUnitCube) {
  PointSet pts{Point{-5.0, 10.0}, Point{5.0, 20.0}, Point{0.0, 15.0}};
  NormalizeToUnitCube(&pts);
  EXPECT_DOUBLE_EQ(pts[0][0], 0.0);
  EXPECT_DOUBLE_EQ(pts[1][0], 1.0);
  EXPECT_DOUBLE_EQ(pts[0][1], 0.0);
  EXPECT_DOUBLE_EQ(pts[1][1], 1.0);
  EXPECT_DOUBLE_EQ(pts[2][0], 0.5);
}

TEST(NormalizeTest, DegenerateDimensionMapsToHalf) {
  PointSet pts{Point{1.0, 3.0}, Point{2.0, 3.0}};
  NormalizeToUnitCube(&pts);
  EXPECT_DOUBLE_EQ(pts[0][1], 0.5);
  EXPECT_DOUBLE_EQ(pts[1][1], 0.5);
}

TEST(BoundingBoxTest, TightBox) {
  PointSet pts{Point{1.0, 4.0}, Point{-2.0, 6.0}};
  Rect box = BoundingBox(pts);
  EXPECT_DOUBLE_EQ(box.lo(0), -2.0);
  EXPECT_DOUBLE_EQ(box.hi(1), 6.0);
}

TEST(SampleTest, SampleSizeAndMembership) {
  MixtureSpec spec;
  spec.n = 1000;
  PointSet pts = GenerateMixture(spec);
  PointSet sample = SamplePoints(pts, 100, 3);
  ASSERT_EQ(sample.size(), 100u);
  // Spot-check membership of a few samples.
  for (size_t i = 0; i < 10; ++i) {
    bool found = false;
    for (const Point& p : pts) {
      if (p == sample[i]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(SampleTest, OversizeRequestReturnsAll) {
  PointSet pts{Point{1.0, 2.0}, Point{3.0, 4.0}};
  EXPECT_EQ(SamplePoints(pts, 10, 1).size(), 2u);
}

TEST(CsvPointsTest, SaveAndLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/kdv_points.csv";
  PointSet pts{Point{1.5, 2.5}, Point{-3.0, 0.25}};
  ASSERT_TRUE(SavePointsCsv(path, pts).ok());

  PointSet back;
  ASSERT_TRUE(LoadPointsCsv(path, {}, &back).ok());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], pts[0]);
  EXPECT_EQ(back[1], pts[1]);

  // Column selection: load only the second attribute.
  PointSet col;
  ASSERT_TRUE(LoadPointsCsv(path, {1}, &col).ok());
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col[0].dim(), 1);
  EXPECT_DOUBLE_EQ(col[0][0], 2.5);
  std::remove(path.c_str());
}

TEST(CsvPointsTest, MissingColumnFails) {
  std::string path = ::testing::TempDir() + "/kdv_points2.csv";
  ASSERT_TRUE(SavePointsCsv(path, PointSet{Point{1.0, 2.0}}).ok());
  PointSet out;
  Status status = LoadPointsCsv(path, {5}, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvPointsTest, MissingFileReportsNotFound) {
  PointSet out;
  Status status = LoadPointsCsv("/nonexistent/points.csv", {}, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(CsvPointsTest, AllRowsMalformedIsInvalidArgument) {
  std::string path = ::testing::TempDir() + "/kdv_points3.csv";
  {
    std::ofstream out(path);
    out << "x,y\nfoo,bar\n";
  }
  PointSet out;
  Status status = LoadPointsCsv(path, {}, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kdv
