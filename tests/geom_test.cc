#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "geom/morton.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "util/random.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// Point
// ---------------------------------------------------------------------------

TEST(PointTest, InitializerListConstruction) {
  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dim(), 3);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
}

TEST(PointTest, DimensionConstructorZeroInitializes) {
  Point p(4);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(p[i], 0.0);
}

TEST(PointTest, FromVector) {
  Point p = Point::FromVector({0.5, -2.0});
  EXPECT_EQ(p.dim(), 2);
  EXPECT_DOUBLE_EQ(p[1], -2.0);
}

TEST(PointTest, SquaredNorm) {
  Point p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.SquaredNorm(), 25.0);
}

TEST(PointTest, DotAndDistance) {
  Point a{1.0, 2.0};
  Point b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 16.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1.0, 2.0}), (Point{1.0, 2.0}));
  EXPECT_FALSE((Point{1.0, 2.0}) == (Point{1.0, 3.0}));
  EXPECT_FALSE((Point{1.0}) == (Point{1.0, 0.0}));
}

// ---------------------------------------------------------------------------
// Rect
// ---------------------------------------------------------------------------

TEST(RectTest, ExpandBuildsBoundingBox) {
  Rect r(2);
  r.Expand(Point{1.0, 5.0});
  r.Expand(Point{-2.0, 3.0});
  EXPECT_DOUBLE_EQ(r.lo(0), -2.0);
  EXPECT_DOUBLE_EQ(r.hi(0), 1.0);
  EXPECT_DOUBLE_EQ(r.lo(1), 3.0);
  EXPECT_DOUBLE_EQ(r.hi(1), 5.0);
  EXPECT_FALSE(r.empty());
}

TEST(RectTest, EmptyUntilExpanded) {
  Rect r(2);
  EXPECT_TRUE(r.empty());
}

TEST(RectTest, ContainsAndCenter) {
  Rect r(2);
  r.Expand(Point{0.0, 0.0});
  r.Expand(Point{2.0, 4.0});
  EXPECT_TRUE(r.Contains(Point{1.0, 2.0}));
  EXPECT_FALSE(r.Contains(Point{3.0, 2.0}));
  EXPECT_EQ(r.Center(), (Point{1.0, 2.0}));
  EXPECT_EQ(r.WidestDimension(), 1);
}

TEST(RectTest, MinDistanceZeroInside) {
  Rect r = Rect::FromPoints(
      PointSet{Point{0.0, 0.0}, Point{1.0, 1.0}}.data(), 2, 2);
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{0.5, 0.5}), 0.0);
}

TEST(RectTest, MinMaxDistanceOutside) {
  Rect r(2);
  r.Expand(Point{0.0, 0.0});
  r.Expand(Point{1.0, 1.0});
  Point q{2.0, 0.5};
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(q), 1.0);  // to face x = 1
  // Farthest corner is (0, 1) at distance sqrt(4 + 0.25).
  EXPECT_DOUBLE_EQ(r.MaxSquaredDistance(q), 4.0 + 0.25);
  EXPECT_DOUBLE_EQ(r.MinDistance(q), 1.0);
  EXPECT_DOUBLE_EQ(r.MaxDistance(q), std::sqrt(4.25));
}

// Property: for random boxes and queries, every point inside the box is
// between min and max distance from the query.
TEST(RectTest, MinMaxDistanceBracketAllInteriorPoints) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Rect r(2);
    Point a{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    Point b{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    r.Expand(a);
    r.Expand(b);
    Point q{rng.Uniform(-8, 8), rng.Uniform(-8, 8)};
    double min_sq = r.MinSquaredDistance(q);
    double max_sq = r.MaxSquaredDistance(q);
    for (int i = 0; i < 20; ++i) {
      Point p{rng.Uniform(r.lo(0), r.hi(0)), rng.Uniform(r.lo(1), r.hi(1))};
      double d = SquaredDistance(q, p);
      EXPECT_LE(min_sq, d + 1e-12);
      EXPECT_GE(max_sq, d - 1e-12);
    }
  }
}

TEST(RectTest, RectRectDistancesKnownValues) {
  Rect a(2);
  a.Expand(Point{0.0, 0.0});
  a.Expand(Point{1.0, 1.0});
  Rect b(2);
  b.Expand(Point{3.0, 0.0});
  b.Expand(Point{4.0, 1.0});
  EXPECT_DOUBLE_EQ(a.MinSquaredDistance(b), 4.0);  // gap of 2 along x
  // Farthest corner pair: (0,0)-(4,1) or (0,1)-(4,0): 16 + 1.
  EXPECT_DOUBLE_EQ(a.MaxSquaredDistance(b), 17.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(b.MinSquaredDistance(a), 4.0);
  EXPECT_DOUBLE_EQ(b.MaxSquaredDistance(a), 17.0);
}

TEST(RectTest, OverlappingRectsHaveZeroMinDistance) {
  Rect a(2);
  a.Expand(Point{0.0, 0.0});
  a.Expand(Point{2.0, 2.0});
  Rect b(2);
  b.Expand(Point{1.0, 1.0});
  b.Expand(Point{3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.MinSquaredDistance(b), 0.0);
  EXPECT_GT(a.MaxSquaredDistance(b), 0.0);
}

// Property: rect-rect min/max distances bracket all point-pair distances.
TEST(RectTest, RectRectDistancesBracketAllPointPairs) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    Rect a(2), b(2);
    a.Expand(Point{rng.Uniform(-4, 4), rng.Uniform(-4, 4)});
    a.Expand(Point{rng.Uniform(-4, 4), rng.Uniform(-4, 4)});
    b.Expand(Point{rng.Uniform(-4, 4), rng.Uniform(-4, 4)});
    b.Expand(Point{rng.Uniform(-4, 4), rng.Uniform(-4, 4)});
    double min_sq = a.MinSquaredDistance(b);
    double max_sq = a.MaxSquaredDistance(b);
    EXPECT_LE(min_sq, max_sq);
    for (int i = 0; i < 15; ++i) {
      Point p{rng.Uniform(a.lo(0), a.hi(0)), rng.Uniform(a.lo(1), a.hi(1))};
      Point q{rng.Uniform(b.lo(0), b.hi(0)), rng.Uniform(b.lo(1), b.hi(1))};
      double d = SquaredDistance(p, q);
      EXPECT_LE(min_sq, d + 1e-12);
      EXPECT_GE(max_sq, d - 1e-12);
    }
  }
}

// Consistency: a degenerate rect behaves like a point.
TEST(RectTest, DegenerateRectMatchesPointDistances) {
  Rect a(2);
  a.Expand(Point{1.0, 2.0});  // zero-extent box
  Rect b(2);
  b.Expand(Point{4.0, 5.0});
  b.Expand(Point{6.0, 7.0});
  Point p{1.0, 2.0};
  EXPECT_DOUBLE_EQ(a.MinSquaredDistance(b), b.MinSquaredDistance(p));
  EXPECT_DOUBLE_EQ(a.MaxSquaredDistance(b), b.MaxSquaredDistance(p));
}

// ---------------------------------------------------------------------------
// Morton
// ---------------------------------------------------------------------------

TEST(MortonTest, SpreadBitsInterleavesCorrectly) {
  EXPECT_EQ(MortonSpreadBits(0u), 0ull);
  EXPECT_EQ(MortonSpreadBits(1u), 1ull);
  EXPECT_EQ(MortonSpreadBits(2u), 4ull);      // bit 1 -> bit 2
  EXPECT_EQ(MortonSpreadBits(3u), 5ull);      // bits 0,1 -> 0,2
  EXPECT_EQ(MortonSpreadBits(0xFFFFu), 0x55555555ull);
}

TEST(MortonTest, Encode2DKnownValues) {
  EXPECT_EQ(MortonEncode2D(0, 0), 0ull);
  EXPECT_EQ(MortonEncode2D(1, 0), 1ull);
  EXPECT_EQ(MortonEncode2D(0, 1), 2ull);
  EXPECT_EQ(MortonEncode2D(1, 1), 3ull);
  EXPECT_EQ(MortonEncode2D(2, 2), 12ull);
}

TEST(MortonTest, CodePreservesQuadrantOrder) {
  Rect box(2);
  box.Expand(Point{0.0, 0.0});
  box.Expand(Point{1.0, 1.0});
  // Z-order visits quadrants in the order SW, SE, NW, NE for (x, y) codes.
  uint64_t sw = MortonCodeForPoint(Point{0.1, 0.1}, box);
  uint64_t se = MortonCodeForPoint(Point{0.9, 0.1}, box);
  uint64_t nw = MortonCodeForPoint(Point{0.1, 0.9}, box);
  uint64_t ne = MortonCodeForPoint(Point{0.9, 0.9}, box);
  EXPECT_LT(sw, se);
  EXPECT_LT(se, nw);
  EXPECT_LT(nw, ne);
}

TEST(MortonTest, BoundaryPointsClampToGrid) {
  Rect box(2);
  box.Expand(Point{0.0, 0.0});
  box.Expand(Point{1.0, 1.0});
  // Exactly on the upper boundary must not overflow the grid.
  uint64_t code = MortonCodeForPoint(Point{1.0, 1.0}, box);
  uint64_t below = MortonCodeForPoint(Point{0.999999, 0.999999}, box);
  EXPECT_GE(code, below);
}

TEST(MortonTest, NearbyPointsShareCodePrefixMoreThanFarPoints) {
  Rect box(2);
  box.Expand(Point{0.0, 0.0});
  box.Expand(Point{1.0, 1.0});
  uint64_t a = MortonCodeForPoint(Point{0.2, 0.2}, box);
  uint64_t near = MortonCodeForPoint(Point{0.2001, 0.2001}, box);
  uint64_t far = MortonCodeForPoint(Point{0.9, 0.9}, box);
  auto top_bit = [](uint64_t x) {
    int b = 0;
    while (x) {
      x >>= 1;
      ++b;
    }
    return b;
  };
  EXPECT_LT(top_bit(a ^ near), top_bit(a ^ far));
}

}  // namespace
}  // namespace kdv
