#include "util/failpoint.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/status.h"

namespace kdv {
namespace failpoint {
namespace {

// The control API and hit-side functions are compiled in every build (only
// the KDV_FAILPOINT_* macros compile away), so this suite runs everywhere.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override { Reset(); }
};

TEST_F(FailpointTest, RegistryListsTheQueryPathSites) {
  const std::vector<std::string>& sites = AllSites();
  ASSERT_FALSE(sites.empty());
  auto has = [&](const char* name) {
    for (const std::string& s : sites) {
      if (s == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("refine.step"));
  EXPECT_TRUE(has("eval.eps"));
  EXPECT_TRUE(has("runner.eps"));
  EXPECT_TRUE(has("progressive.render"));
  EXPECT_TRUE(has("viz.render"));
  EXPECT_TRUE(has("serve.render"));
  EXPECT_TRUE(has("serve.coarse"));
}

TEST_F(FailpointTest, ArmRejectsUnknownSite) {
  Status status = Arm("no.such.site", Action::kError);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, ArmRejectsZeroMaxHits) {
  Status status = Arm("eval.eps", Action::kError, 10, 0);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, StatusSiteFiresAndDisarms) {
  ASSERT_TRUE(Arm("runner.eps", Action::kError).ok());
  EXPECT_FALSE(ConsumeStatus("runner.eps").ok());
  EXPECT_EQ(hits("runner.eps"), 1u);

  Disarm("runner.eps");
  EXPECT_TRUE(ConsumeStatus("runner.eps").ok());
  EXPECT_EQ(hits("runner.eps"), 0u);
}

TEST_F(FailpointTest, UnarmedSitesAreTransparent) {
  EXPECT_TRUE(ConsumeStatus("runner.eps").ok());
  double lower = 1.0, upper = 2.0;
  EXPECT_FALSE(CorruptInterval("refine.step", &lower, &upper));
  EXPECT_EQ(lower, 1.0);
  EXPECT_EQ(upper, 2.0);
}

TEST_F(FailpointTest, MaxHitsAutoDisarms) {
  ASSERT_TRUE(Arm("runner.eps", Action::kError, 10, /*max_hits=*/2).ok());
  EXPECT_FALSE(ConsumeStatus("runner.eps").ok());
  EXPECT_FALSE(ConsumeStatus("runner.eps").ok());
  EXPECT_TRUE(ConsumeStatus("runner.eps").ok());  // consumed both slots
  EXPECT_EQ(hits("runner.eps"), 2u);
}

TEST_F(FailpointTest, CorruptIntervalInjectsNaN) {
  ASSERT_TRUE(Arm("refine.step", Action::kNaN).ok());
  double lower = 1.0, upper = 2.0;
  EXPECT_TRUE(CorruptInterval("refine.step", &lower, &upper));
  EXPECT_TRUE(std::isnan(lower));
}

TEST_F(FailpointTest, CorruptIntervalInvertsOnError) {
  ASSERT_TRUE(Arm("refine.step", Action::kError).ok());
  double lower = 5.0, upper = 9.0;
  EXPECT_TRUE(CorruptInterval("refine.step", &lower, &upper));
  EXPECT_LT(upper, lower);
}

TEST_F(FailpointTest, SpecParsesMultipleEntries) {
  ASSERT_TRUE(
      ConfigureFromSpec("refine.step=nan;runner.eps=error;eval.eps=delay(5)")
          .ok());
  double lower = 0.0, upper = 1.0;
  EXPECT_TRUE(CorruptInterval("refine.step", &lower, &upper));
  EXPECT_FALSE(ConsumeStatus("runner.eps").ok());
  EXPECT_TRUE(ConsumeStatus("eval.eps").ok());  // delay returns OK
  EXPECT_EQ(hits("eval.eps"), 1u);
}

TEST_F(FailpointTest, SpecOffDisarmsASite) {
  ASSERT_TRUE(ConfigureFromSpec("runner.eps=error").ok());
  ASSERT_TRUE(ConfigureFromSpec("runner.eps=off").ok());
  EXPECT_TRUE(ConsumeStatus("runner.eps").ok());
}

TEST_F(FailpointTest, SpecRejectsMalformedEntries) {
  EXPECT_EQ(ConfigureFromSpec("garbage").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ConfigureFromSpec("runner.eps=explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ConfigureFromSpec("runner.eps=delay(abc)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ConfigureFromSpec("runner.eps=delay(999999)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ConfigureFromSpec("no.such.site=error").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, MacrosMatchBuildConfiguration) {
  ASSERT_TRUE(Arm("viz.render", Action::kError).ok());
  Status via_macro = KDV_FAILPOINT_STATUS("viz.render");
  if (enabled()) {
    EXPECT_FALSE(via_macro.ok());
    EXPECT_EQ(hits("viz.render"), 1u);
  } else {
    EXPECT_TRUE(via_macro.ok());
    EXPECT_EQ(hits("viz.render"), 0u);
  }
}

}  // namespace
}  // namespace failpoint
}  // namespace kdv
