#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "regress/kernel_regressor.h"
#include "regress/weighted_bounds.h"
#include "regress/weighted_stats.h"
#include "util/random.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// WeightedNodeStats
// ---------------------------------------------------------------------------

TEST(WeightedStatsTest, MatchesBruteForceWeightedSums) {
  Rng rng(1);
  PointSet pts;
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) {
    pts.push_back(Point{rng.Uniform(-2, 2), rng.Uniform(-2, 2)});
    y.push_back(rng.Uniform(0.0, 5.0));
  }
  WeightedNodeStats s = WeightedNodeStats::Compute(pts.data(), y.data(),
                                                   pts.size());
  double y_sum = 0.0;
  for (double v : y) y_sum += v;
  EXPECT_NEAR(s.weight_sum(), y_sum, 1e-10);

  for (int trial = 0; trial < 30; ++trial) {
    Point q{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    double brute_s1 = 0.0, brute_s2 = 0.0;
    for (size_t i = 0; i < pts.size(); ++i) {
      double d2 = SquaredDistance(q, pts[i]);
      brute_s1 += y[i] * d2;
      brute_s2 += y[i] * d2 * d2;
    }
    EXPECT_NEAR(s.WeightedSumSquaredDistances(q), brute_s1,
                1e-9 * std::max(1.0, brute_s1));
    EXPECT_NEAR(s.WeightedSumQuarticDistances(q), brute_s2,
                1e-9 * std::max(1.0, brute_s2));
  }
}

TEST(WeightedStatsTest, UnitWeightsReduceToNodeStats) {
  Rng rng(2);
  PointSet pts;
  std::vector<double> ones;
  for (int i = 0; i < 50; ++i) {
    pts.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    ones.push_back(1.0);
  }
  WeightedNodeStats ws =
      WeightedNodeStats::Compute(pts.data(), ones.data(), pts.size());
  NodeStats s = NodeStats::Compute(pts.data(), pts.size());
  Point q{0.5, 0.5};
  EXPECT_NEAR(ws.weight_sum(), static_cast<double>(s.count()), 1e-12);
  EXPECT_NEAR(ws.WeightedSumSquaredDistances(q), s.SumSquaredDistances(q),
              1e-9);
  EXPECT_NEAR(ws.WeightedSumQuarticDistances(q), s.SumQuarticDistances(q),
              1e-9);
}

TEST(WeightedAugmentationTest, AppliesTreePermutation) {
  Rng rng(3);
  PointSet pts;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    pts.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    y.push_back(static_cast<double>(i));  // target = original index
  }
  KdTree tree{PointSet(pts)};
  WeightedAugmentation aug(tree, y);
  // y in tree order must track the permuted points.
  for (size_t i = 0; i < tree.num_points(); ++i) {
    uint32_t orig = tree.original_index(i);
    EXPECT_EQ(tree.points()[i], pts[orig]);
    EXPECT_DOUBLE_EQ(aug.y_tree_order()[i], y[orig]);
  }
  // Root weighted sum = Σ y.
  double total = 0.0;
  for (double v : y) total += v;
  EXPECT_NEAR(aug.node(tree.root()).weight_sum(), total, 1e-9);
}

// ---------------------------------------------------------------------------
// Weighted bounds: correctness for every method/kernel combination.
// ---------------------------------------------------------------------------

TEST(WeightedBoundsTest, BracketWeightedAggregate) {
  Rng rng(4);
  for (KernelType kernel : {KernelType::kGaussian, KernelType::kTriangular,
                            KernelType::kCosine, KernelType::kExponential}) {
    for (Method method : {Method::kAkde, Method::kKarl, Method::kQuad}) {
      for (int trial = 0; trial < 150; ++trial) {
        PointSet pts;
        std::vector<double> y;
        int n = 2 + static_cast<int>(rng.UniformInt(30));
        double cx = rng.Uniform(-1, 1), cy = rng.Uniform(-1, 1);
        double spread = rng.Uniform(0.01, 0.6);
        for (int i = 0; i < n; ++i) {
          pts.push_back(Point{cx + rng.Uniform(-spread, spread),
                              cy + rng.Uniform(-spread, spread)});
          y.push_back(rng.Uniform(0.0, 3.0));
        }
        NodeStats stats = NodeStats::Compute(pts.data(), pts.size());
        WeightedNodeStats wstats =
            WeightedNodeStats::Compute(pts.data(), y.data(), pts.size());

        KernelParams params;
        params.type = kernel;
        params.gamma = rng.Uniform(0.3, 6.0);
        params.weight = 1.0;

        Point q{rng.Uniform(-2.5, 2.5), rng.Uniform(-2.5, 2.5)};
        BoundPair b = EvaluateWeightedBounds(method, params, stats.mbr(),
                                             wstats, q);
        double exact = 0.0;
        for (size_t i = 0; i < pts.size(); ++i) {
          exact +=
              y[i] * params.EvalSquaredDistance(SquaredDistance(q, pts[i]));
        }
        double tol = 1e-9 * std::max(1.0, exact);
        EXPECT_LE(b.lower, exact + tol)
            << KernelTypeName(kernel) << "/" << MethodName(method);
        EXPECT_GE(b.upper, exact - tol)
            << KernelTypeName(kernel) << "/" << MethodName(method);
        EXPECT_GE(b.lower, -tol);
      }
    }
  }
}

TEST(WeightedBoundsTest, ZeroWeightNodeIsExactZero) {
  PointSet pts{Point{0.0, 0.0}, Point{1.0, 1.0}};
  std::vector<double> y{0.0, 0.0};
  NodeStats stats = NodeStats::Compute(pts.data(), pts.size());
  WeightedNodeStats wstats =
      WeightedNodeStats::Compute(pts.data(), y.data(), pts.size());
  KernelParams params;
  params.type = KernelType::kGaussian;
  BoundPair b =
      EvaluateWeightedBounds(Method::kQuad, params, stats.mbr(), wstats,
                             Point{0.5, 0.5});
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
  EXPECT_DOUBLE_EQ(b.upper, 0.0);
}

// ---------------------------------------------------------------------------
// KernelRegressor end to end
// ---------------------------------------------------------------------------

struct RegressionData {
  PointSet xs;
  std::vector<double> ys;
};

// Smooth non-negative target y = 2 + sin(3x) * cos(2y') over clustered xs.
RegressionData MakeData(int n, uint64_t seed) {
  Rng rng(seed);
  RegressionData data;
  for (int i = 0; i < n; ++i) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    data.xs.push_back(p);
    data.ys.push_back(2.0 + std::sin(3.0 * p[0]) * std::cos(2.0 * p[1]));
  }
  return data;
}

TEST(KernelRegressorTest, MatchesExactWithinEps) {
  RegressionData data = MakeData(3000, 5);
  for (Method method : {Method::kAkde, Method::kKarl, Method::kQuad}) {
    KernelRegressor::Options options;
    options.method = method;
    KernelRegressor reg(PointSet(data.xs), std::vector<double>(data.ys),
                        options);
    Rng rng(6);
    for (int i = 0; i < 25; ++i) {
      Point q{rng.NextDouble(), rng.NextDouble()};
      bool defined = true;
      double exact = reg.EstimateExact(q, &defined);
      ASSERT_TRUE(defined);
      KernelRegressor::Result r = reg.Estimate(q, 0.01);
      EXPECT_TRUE(r.converged) << MethodName(method);
      EXPECT_TRUE(r.defined);
      EXPECT_LE(r.lower, exact * (1 + 1e-9) + 1e-12) << MethodName(method);
      EXPECT_GE(r.upper, exact * (1 - 1e-9) - 1e-12) << MethodName(method);
      EXPECT_NEAR(r.estimate, exact, 0.011 * exact) << MethodName(method);
    }
  }
}

TEST(KernelRegressorTest, ExactMethodIsBruteForce) {
  RegressionData data = MakeData(500, 7);
  KernelRegressor::Options options;
  options.method = Method::kExact;
  KernelRegressor reg(PointSet(data.xs), std::vector<double>(data.ys),
                      options);
  Point q{0.4, 0.6};
  KernelRegressor::Result r = reg.Estimate(q, 0.01);
  EXPECT_NEAR(r.estimate, reg.EstimateExact(q), 1e-12);
  EXPECT_EQ(r.points_scanned, 500u);
}

TEST(KernelRegressorTest, QuadPrunesMoreThanAkde) {
  RegressionData data = MakeData(20000, 8);
  KernelRegressor::Options quad_options;
  quad_options.method = Method::kQuad;
  KernelRegressor quad(PointSet(data.xs), std::vector<double>(data.ys),
                       quad_options);
  KernelRegressor::Options akde_options;
  akde_options.method = Method::kAkde;
  KernelRegressor akde(PointSet(data.xs), std::vector<double>(data.ys),
                       akde_options);

  Rng rng(9);
  uint64_t quad_pts = 0, akde_pts = 0;
  for (int i = 0; i < 20; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    quad_pts += quad.Estimate(q, 0.01).points_scanned;
    akde_pts += akde.Estimate(q, 0.01).points_scanned;
  }
  EXPECT_LT(quad_pts, akde_pts);
}

TEST(KernelRegressorTest, RecoversSmoothFunction) {
  // With dense samples and a smooth target, NW regression approximates the
  // target function at interior points.
  RegressionData data = MakeData(20000, 10);
  KernelRegressor reg(PointSet(data.xs), std::vector<double>(data.ys),
                      KernelRegressor::Options{});
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    Point q{rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
    double truth = 2.0 + std::sin(3.0 * q[0]) * std::cos(2.0 * q[1]);
    EXPECT_NEAR(reg.Estimate(q, 0.01).estimate, truth, 0.2);
  }
}

TEST(KernelRegressorTest, UndefinedOutsideFiniteSupport) {
  RegressionData data = MakeData(300, 12);
  KernelRegressor::Options options;
  options.kernel = KernelType::kTriangular;
  KernelRegressor reg(PointSet(data.xs), std::vector<double>(data.ys),
                      options);
  KernelRegressor::Result r = reg.Estimate(Point{50.0, 50.0}, 0.01);
  EXPECT_FALSE(r.defined);
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
}

TEST(KernelRegressorTest, NonGaussianKernelsAgreeWithExact) {
  RegressionData data = MakeData(2000, 13);
  for (KernelType kernel : {KernelType::kTriangular, KernelType::kCosine,
                            KernelType::kExponential}) {
    KernelRegressor::Options options;
    options.kernel = kernel;
    KernelRegressor reg(PointSet(data.xs), std::vector<double>(data.ys),
                        options);
    Rng rng(14);
    for (int i = 0; i < 15; ++i) {
      Point q{rng.NextDouble(), rng.NextDouble()};
      bool defined = true;
      double exact = reg.EstimateExact(q, &defined);
      if (!defined) continue;
      KernelRegressor::Result r = reg.Estimate(q, 0.01);
      EXPECT_NEAR(r.estimate, exact, 0.011 * std::max(exact, 1e-12))
          << KernelTypeName(kernel);
    }
  }
}

TEST(KernelRegressorTest, ConstantTargetsGiveConstantEstimate) {
  Rng rng(15);
  PointSet xs;
  std::vector<double> ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    ys.push_back(3.5);
  }
  KernelRegressor reg(std::move(xs), std::move(ys),
                      KernelRegressor::Options{});
  for (int i = 0; i < 10; ++i) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    EXPECT_NEAR(reg.Estimate(q, 0.01).estimate, 3.5, 3.5 * 0.011);
  }
}

}  // namespace
}  // namespace kdv
