#include <vector>

#include <gtest/gtest.h>

#include "classify/kde_classifier.h"
#include "data/datasets.h"
#include "util/random.h"

namespace kdv {
namespace {

// Two well-separated blobs.
std::vector<PointSet> TwoBlobs(int n_per_class, uint64_t seed) {
  Rng rng(seed);
  PointSet a, b;
  for (int i = 0; i < n_per_class; ++i) {
    a.push_back(Point{rng.Gaussian(-1.0, 0.3), rng.Gaussian(0.0, 0.3)});
    b.push_back(Point{rng.Gaussian(1.0, 0.3), rng.Gaussian(0.0, 0.3)});
  }
  return {a, b};
}

TEST(KdeClassifierTest, SeparatedBlobsClassifiedByProximity) {
  KdeClassifier::Options options;
  KdeClassifier clf(TwoBlobs(500, 1), options);
  EXPECT_EQ(clf.num_classes(), 2);

  EXPECT_EQ(clf.Classify(Point{-1.0, 0.0}).label, 0);
  EXPECT_EQ(clf.Classify(Point{1.0, 0.0}).label, 1);
  EXPECT_EQ(clf.Classify(Point{-0.8, 0.2}).label, 0);
  EXPECT_EQ(clf.Classify(Point{0.9, -0.1}).label, 1);
}

TEST(KdeClassifierTest, MatchesExactClassifierEverywhere) {
  for (Method method : {Method::kAkde, Method::kKarl, Method::kQuad}) {
    KdeClassifier::Options options;
    options.method = method;
    KdeClassifier clf(TwoBlobs(300, 2), options);

    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
      Point q{rng.Uniform(-2.0, 2.0), rng.Uniform(-1.0, 1.0)};
      EXPECT_EQ(clf.Classify(q).label, clf.ClassifyExact(q))
          << MethodName(method) << " at (" << q[0] << "," << q[1] << ")";
    }
  }
}

TEST(KdeClassifierTest, CertifiesWithoutFullRefinementAwayFromBoundary) {
  KdeClassifier::Options options;
  options.method = Method::kQuad;
  KdeClassifier clf(TwoBlobs(2000, 4), options);

  KdeClassifier::Result r = clf.Classify(Point{-1.0, 0.0});
  EXPECT_TRUE(r.certified);
  // Pruning must beat exhaustive refinement by a wide margin.
  EXPECT_LT(r.points_scanned, 800u);
  ASSERT_EQ(r.lower.size(), 2u);
  EXPECT_GE(r.lower[0], r.upper[1]);  // class-0 lower dominates class-1 upper
}

TEST(KdeClassifierTest, QuadCertifiesCheaperThanAkde) {
  KdeClassifier::Options quad_options;
  quad_options.method = Method::kQuad;
  KdeClassifier quad(TwoBlobs(2000, 5), quad_options);

  KdeClassifier::Options akde_options;
  akde_options.method = Method::kAkde;
  KdeClassifier akde(TwoBlobs(2000, 5), akde_options);

  Rng rng(6);
  uint64_t quad_iters = 0, akde_iters = 0;
  for (int i = 0; i < 50; ++i) {
    Point q{rng.Uniform(-2.0, 2.0), rng.Uniform(-1.0, 1.0)};
    quad_iters += quad.Classify(q).iterations;
    akde_iters += akde.Classify(q).iterations;
  }
  EXPECT_LT(quad_iters, akde_iters);
}

TEST(KdeClassifierTest, MultiClass) {
  Rng rng(7);
  std::vector<PointSet> classes(3);
  const double centers[3][2] = {{-1.0, -1.0}, {1.0, -1.0}, {0.0, 1.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 400; ++i) {
      classes[c].push_back(Point{rng.Gaussian(centers[c][0], 0.25),
                                 rng.Gaussian(centers[c][1], 0.25)});
    }
  }
  KdeClassifier clf(std::move(classes), KdeClassifier::Options{});
  EXPECT_EQ(clf.Classify(Point{-1.0, -1.0}).label, 0);
  EXPECT_EQ(clf.Classify(Point{1.0, -1.0}).label, 1);
  EXPECT_EQ(clf.Classify(Point{0.0, 1.0}).label, 2);

  Rng probe(8);
  for (int i = 0; i < 60; ++i) {
    Point q{probe.Uniform(-2.0, 2.0), probe.Uniform(-2.0, 2.0)};
    EXPECT_EQ(clf.Classify(q).label, clf.ClassifyExact(q));
  }
}

TEST(KdeClassifierTest, SingleClassIsTrivial) {
  PointSet only{Point{0.0, 0.0}, Point{0.1, 0.1}};
  KdeClassifier clf(std::vector<PointSet>{only}, KdeClassifier::Options{});
  KdeClassifier::Result r = clf.Classify(Point{5.0, 5.0});
  EXPECT_EQ(r.label, 0);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(KdeClassifierTest, ImbalancedClassesUseClassConditionalDensities) {
  // Class 0 has 10x the points of class 1, same blob shape. With weights
  // 1/|P_c| the class-conditional densities match, so points on class 1's
  // side still classify as 1.
  Rng rng(9);
  PointSet big, small;
  for (int i = 0; i < 3000; ++i) {
    big.push_back(Point{rng.Gaussian(-1.0, 0.3), rng.Gaussian(0.0, 0.3)});
  }
  for (int i = 0; i < 300; ++i) {
    small.push_back(Point{rng.Gaussian(1.0, 0.3), rng.Gaussian(0.0, 0.3)});
  }
  KdeClassifier clf(std::vector<PointSet>{big, small},
                    KdeClassifier::Options{});
  EXPECT_EQ(clf.Classify(Point{1.0, 0.0}).label, 1);
  EXPECT_EQ(clf.Classify(Point{-1.0, 0.0}).label, 0);
}

TEST(KdeClassifierTest, ExactMethodStillClassifiesCorrectly) {
  KdeClassifier::Options options;
  options.method = Method::kExact;
  KdeClassifier clf(TwoBlobs(200, 10), options);
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    Point q{rng.Uniform(-2.0, 2.0), rng.Uniform(-1.0, 1.0)};
    EXPECT_EQ(clf.Classify(q).label, clf.ClassifyExact(q));
  }
}

TEST(KdeClassifierTest, NonGaussianKernels) {
  for (KernelType kernel : {KernelType::kTriangular, KernelType::kCosine,
                            KernelType::kExponential}) {
    KdeClassifier::Options options;
    options.kernel = kernel;
    KdeClassifier clf(TwoBlobs(300, 12), options);
    Rng rng(13);
    for (int i = 0; i < 30; ++i) {
      Point q{rng.Uniform(-1.8, 1.8), rng.Uniform(-0.8, 0.8)};
      EXPECT_EQ(clf.Classify(q).label, clf.ClassifyExact(q))
          << KernelTypeName(kernel);
    }
  }
}

}  // namespace
}  // namespace kdv
