// Fault-injection harness for the persisted-index format and the ingestion
// validator. The contract under test: no matter how a saved index file is
// truncated or bit-flipped, LoadKdTree returns a descriptive Status error —
// never a crash, never a silently-wrong tree — and degenerate point sets are
// either rejected with a Status or ingested with the degeneracy reported.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/validate.h"
#include "index/serialization.h"

namespace kdv {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Builds a small tree and returns its serialized v2 image plus the section
// layout (offsets mirror the format doc in index/serialization.h).
struct SavedIndex {
  std::string bytes;
  size_t num_points = 0;
  size_t num_nodes = 0;
  int dim = 0;

  // Section boundaries, in file order.
  size_t header_fields_begin = 8;   // after magic + version
  size_t header_crc_begin = 36;     // after dim/num_points/num_nodes/payload
  size_t points_begin = 40;
  size_t points_crc_begin = 0;
  size_t indices_begin = 0;
  size_t indices_crc_begin = 0;
  size_t nodes_begin = 0;
  size_t nodes_crc_begin = 0;
};

SavedIndex BuildSavedIndex() {
  MixtureSpec spec;
  spec.n = 400;
  PointSet pts = GenerateMixture(spec);
  KdTree tree{std::move(pts)};

  std::string path = TempPath("kdv_fault_base.kdv");
  Status saved = SaveKdTree(tree, path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();

  SavedIndex idx;
  idx.bytes = ReadFile(path);
  std::remove(path.c_str());
  idx.num_points = tree.num_points();
  idx.num_nodes = tree.num_nodes();
  idx.dim = tree.dim();
  idx.points_crc_begin =
      idx.points_begin + idx.num_points * idx.dim * sizeof(double);
  idx.indices_begin = idx.points_crc_begin + 4;
  idx.indices_crc_begin = idx.indices_begin + idx.num_points * 4;
  idx.nodes_begin = idx.indices_crc_begin + 4;
  idx.nodes_crc_begin = idx.nodes_begin + idx.num_nodes * 16;
  EXPECT_EQ(idx.nodes_crc_begin + 4, idx.bytes.size());
  return idx;
}

// Loads a mutated image and requires a clean, descriptive error.
void ExpectLoadFails(const std::string& bytes, const std::string& label) {
  std::string path = TempPath("kdv_fault_mutation.kdv");
  WriteFile(path, bytes);
  StatusOr<std::unique_ptr<KdTree>> result = LoadKdTree(path);
  ASSERT_FALSE(result.ok()) << "mutation not detected: " << label;
  EXPECT_FALSE(result.status().message().empty()) << label;
  EXPECT_NE(result.status().code(), StatusCode::kOk) << label;
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, TruncationAtEverySectionBoundaryIsDetected) {
  SavedIndex idx = BuildSavedIndex();
  std::vector<size_t> boundaries = {
      0,
      2,  // inside magic
      4,  // after magic
      6,  // inside version
      idx.header_fields_begin,
      idx.header_crc_begin,
      idx.points_begin,
      idx.points_begin + 1,
      idx.points_begin + (idx.points_crc_begin - idx.points_begin) / 2,
      idx.points_crc_begin,
      idx.points_crc_begin + 2,
      idx.indices_begin,
      idx.indices_begin + (idx.indices_crc_begin - idx.indices_begin) / 2,
      idx.indices_crc_begin,
      idx.nodes_begin,
      idx.nodes_begin + (idx.nodes_crc_begin - idx.nodes_begin) / 2,
      idx.nodes_crc_begin,
      idx.bytes.size() - 1,
  };
  for (size_t len : boundaries) {
    ASSERT_LT(len, idx.bytes.size());
    ExpectLoadFails(idx.bytes.substr(0, len),
                    "truncation to " + std::to_string(len) + " bytes");
  }
}

TEST(FaultInjectionTest, TrailingGarbageIsDetected) {
  SavedIndex idx = BuildSavedIndex();
  ExpectLoadFails(idx.bytes + std::string(16, '\0'), "16 trailing bytes");
  ExpectLoadFails(idx.bytes + "x", "1 trailing byte");
}

TEST(FaultInjectionTest, EveryByteFlipIsDetected) {
  SavedIndex idx = BuildSavedIndex();
  // All 40 header bytes, plus a stride through each payload section and
  // every byte of each section checksum: well over the 64-mutation floor.
  std::vector<size_t> offsets;
  for (size_t i = 0; i < idx.points_begin; ++i) offsets.push_back(i);
  for (size_t i = idx.points_begin; i < idx.points_crc_begin;
       i += (idx.points_crc_begin - idx.points_begin) / 16 + 1) {
    offsets.push_back(i);
  }
  for (size_t i = idx.points_crc_begin; i < idx.indices_begin; ++i) {
    offsets.push_back(i);
  }
  for (size_t i = idx.indices_begin; i < idx.indices_crc_begin;
       i += (idx.indices_crc_begin - idx.indices_begin) / 16 + 1) {
    offsets.push_back(i);
  }
  for (size_t i = idx.indices_crc_begin; i < idx.nodes_begin; ++i) {
    offsets.push_back(i);
  }
  for (size_t i = idx.nodes_begin; i < idx.nodes_crc_begin;
       i += (idx.nodes_crc_begin - idx.nodes_begin) / 16 + 1) {
    offsets.push_back(i);
  }
  for (size_t i = idx.nodes_crc_begin; i < idx.bytes.size(); ++i) {
    offsets.push_back(i);
  }
  ASSERT_GE(offsets.size(), 64u);

  for (size_t offset : offsets) {
    std::string mutated = idx.bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0xFF);
    ExpectLoadFails(mutated, "byte flip at " + std::to_string(offset));
  }
}

TEST(FaultInjectionTest, HeaderCountMutationsNeverOverAllocate) {
  SavedIndex idx = BuildSavedIndex();
  // Write absurd num_points / num_nodes values directly (offsets 12 and 20).
  // Even ignoring the header CRC these must be rejected before allocation;
  // with it they are caught immediately — either way, a clean error.
  for (size_t offset : {size_t{12}, size_t{20}}) {
    std::string mutated = idx.bytes;
    for (int b = 0; b < 8; ++b) mutated[offset + b] = '\xFF';
    ExpectLoadFails(mutated,
                    "absurd count at offset " + std::to_string(offset));
  }
}

TEST(FaultInjectionTest, V1TruncationIsDetected) {
  MixtureSpec spec;
  spec.n = 300;
  KdTree tree{GenerateMixture(spec)};
  std::string path = TempPath("kdv_fault_v1.kdv");
  ASSERT_TRUE(SaveKdTree(tree, path, /*version=*/1).ok());
  std::string bytes = ReadFile(path);
  std::remove(path.c_str());

  const size_t header_end = 28;  // magic + version + dim + counts
  std::vector<size_t> lengths = {0,  3,  7,  12, header_end - 1, header_end,
                                 header_end + 9, bytes.size() / 2,
                                 bytes.size() - 1};
  for (size_t len : lengths) {
    ExpectLoadFails(bytes.substr(0, len),
                    "v1 truncation to " + std::to_string(len) + " bytes");
  }
  // Sanity: the untruncated v1 image still loads.
  WriteFile(path, bytes);
  EXPECT_TRUE(LoadKdTree(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Degenerate ingestion
// ---------------------------------------------------------------------------

TEST(IngestValidationTest, EmptySetIsRejected) {
  PointSet empty;
  IngestReport report;
  Status status = ValidatePointSet(&empty, &report);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(IngestValidationTest, NonFiniteRejectedByDefault) {
  PointSet pts{Point{0.0, 0.0}, Point{std::nan(""), 1.0}, Point{2.0, 2.0}};
  IngestReport report;
  Status status = ValidatePointSet(&pts, &report);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("non-finite"), std::string::npos);
}

TEST(IngestValidationTest, DropPolicyFiltersAndReports) {
  const double inf = std::numeric_limits<double>::infinity();
  PointSet pts{Point{0.0, 0.0}, Point{std::nan(""), 1.0}, Point{2.0, 2.0},
               Point{1.0, inf}, Point{3.0, 4.0}};
  ValidateOptions options;
  options.policy = ValidateOptions::BadPointPolicy::kDrop;
  IngestReport report;
  ASSERT_TRUE(ValidatePointSet(&pts, options, &report).ok());
  EXPECT_EQ(pts.size(), 3u);
  EXPECT_EQ(report.input_points, 5u);
  EXPECT_EQ(report.kept_points, 3u);
  EXPECT_EQ(report.dropped_nonfinite, 2u);
  for (const Point& p : pts) {
    EXPECT_TRUE(std::isfinite(p[0]) && std::isfinite(p[1]));
  }
}

TEST(IngestValidationTest, AllBadUnderDropIsStillAnError) {
  PointSet pts{Point{std::nan(""), 0.0}, Point{0.0, std::nan("")}};
  ValidateOptions options;
  options.policy = ValidateOptions::BadPointPolicy::kDrop;
  EXPECT_FALSE(ValidatePointSet(&pts, options, nullptr).ok());
}

TEST(IngestValidationTest, DimensionMismatchHandledPerPolicy) {
  PointSet pts{Point{0.0, 0.0}, Point{1.0, 2.0, 3.0}};
  IngestReport report;
  EXPECT_FALSE(ValidatePointSet(&pts, &report).ok());

  PointSet pts2{Point{0.0, 0.0}, Point{1.0, 2.0, 3.0}, Point{4.0, 5.0}};
  ValidateOptions options;
  options.policy = ValidateOptions::BadPointPolicy::kDrop;
  ASSERT_TRUE(ValidatePointSet(&pts2, options, &report).ok());
  EXPECT_EQ(pts2.size(), 2u);
  EXPECT_EQ(report.dropped_dim_mismatch, 1u);
}

TEST(IngestValidationTest, SinglePointIsDegenerateButUsable) {
  PointSet pts{Point{1.0, 2.0}};
  IngestReport report;
  ASSERT_TRUE(ValidatePointSet(&pts, &report).ok());
  EXPECT_TRUE(report.degenerate);
  EXPECT_TRUE(report.all_identical);
}

TEST(IngestValidationTest, AllIdenticalPointsFlagged) {
  PointSet pts(50, Point{3.0, 4.0});
  IngestReport report;
  ASSERT_TRUE(ValidatePointSet(&pts, &report).ok());
  EXPECT_TRUE(report.all_identical);
  EXPECT_TRUE(report.degenerate);
  EXPECT_EQ(report.duplicate_points, 49u);
}

TEST(IngestValidationTest, ZeroVarianceDimensionFlagged) {
  PointSet pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Point{static_cast<double>(i), 7.5});
  }
  IngestReport report;
  ASSERT_TRUE(ValidatePointSet(&pts, &report).ok());
  EXPECT_FALSE(report.all_identical);
  EXPECT_TRUE(report.degenerate);
  ASSERT_EQ(report.zero_variance_dims.size(), 1u);
  EXPECT_EQ(report.zero_variance_dims[0], 1);
}

TEST(IngestValidationTest, DuplicateFloodRejectedWhenConfigured) {
  PointSet pts(100, Point{1.0, 1.0});
  pts.push_back(Point{2.0, 2.0});
  ValidateOptions options;
  options.max_duplicate_fraction = 0.5;
  Status status = ValidatePointSet(&pts, options, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(IngestValidationTest, CleanDataPassesUntouched) {
  PointSet pts = GenerateMixture(CrimeSpec(0.001));
  const size_t n = pts.size();
  IngestReport report;
  ASSERT_TRUE(ValidatePointSet(&pts, &report).ok());
  EXPECT_EQ(pts.size(), n);
  EXPECT_FALSE(report.degenerate);
  EXPECT_EQ(report.dropped_nonfinite, 0u);
  EXPECT_FALSE(report.Summary().empty());
}

}  // namespace
}  // namespace kdv
