// Determinism and robustness suite for the intra-frame parallel renderer
// and the SoA/scratch machinery beneath it.
//
// The load-bearing property is bit-identical output: a parallel frame must
// equal the serial frame byte for byte, for every operation (εKDV / τKDV /
// exact), thread count, and tile size — that is what lets the parallel path
// ship certified frames. Beneath it, two refactors carry the same contract
// at smaller scope: the SoA leaf kernel must match the AoS scalar loop
// bitwise, and a Reset() scratch stream must be indistinguishable from a
// freshly constructed one.
//
// Everything here runs clean under ThreadSanitizer; CI's tsan job pulls the
// suite in via `ctest -L concurrency`.
#include "viz/parallel_render.h"

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/leaf_kernel.h"
#include "core/refinement_stream.h"
#include "data/datasets.h"
#include "index/kdtree.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "viz/render.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

PointSet TestDataset(size_t n = 1500, uint64_t seed = 21) {
  MixtureSpec spec;
  spec.n = n;
  spec.num_clusters = 4;
  spec.seed = seed;
  return GenerateMixture(spec);
}

std::unique_ptr<Workbench> MakeBench(
    KernelType kernel = KernelType::kGaussian) {
  StatusOr<std::unique_ptr<Workbench>> bench =
      Workbench::Create(TestDataset(), kernel);
  EXPECT_TRUE(bench.ok()) << bench.status().ToString();
  return *std::move(bench);
}

uint64_t Bits(double v) {
  uint64_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

// Bitwise frame comparison: memcmp, not operator==, so -0.0 vs 0.0 or NaN
// payload differences cannot hide.
::testing::AssertionResult FramesBitIdentical(
    const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (Bits(a[i]) != Bits(b[i])) {
        return ::testing::AssertionFailure()
               << "first divergence at pixel " << i << ": " << a[i] << " vs "
               << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Parallel frame == serial frame, bitwise
// ---------------------------------------------------------------------------

struct ParallelCase {
  int num_threads;
  int tile_rows;
};

std::string CaseName(const ::testing::TestParamInfo<ParallelCase>& info) {
  return "t" + std::to_string(info.param.num_threads) + "_rows" +
         std::to_string(info.param.tile_rows);
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<ParallelCase> {
};

TEST_P(ParallelEquivalenceTest, EpsFrameBitIdenticalToSerial) {
  const ParallelCase param = GetParam();
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  PixelGrid grid(40, 30, bench->data_bounds());

  BatchStats serial_stats;
  DensityFrame serial = RenderEpsFrame(evaluator, grid, 0.05, &serial_stats);

  ThreadPool pool({/*num_threads=*/4, /*max_queue=*/64});
  RenderOptions options;
  options.num_threads = param.num_threads;
  options.tile_rows = param.tile_rows;
  BatchStats stats;
  DensityFrame parallel = RenderEpsFrameParallel(
      evaluator, grid, 0.05, options, &pool, QueryControl(), &stats);

  EXPECT_TRUE(FramesBitIdentical(serial.values, parallel.values));
  EXPECT_TRUE(stats.completed);
  // Per-tile accounting merged in tile order must equal the serial counters.
  EXPECT_EQ(stats.queries, serial_stats.queries);
  EXPECT_EQ(stats.iterations, serial_stats.iterations);
  EXPECT_EQ(stats.points_scanned, serial_stats.points_scanned);
  EXPECT_EQ(stats.numeric_faults, serial_stats.numeric_faults);
}

TEST_P(ParallelEquivalenceTest, TauFrameBitIdenticalToSerial) {
  const ParallelCase param = GetParam();
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  PixelGrid grid(40, 30, bench->data_bounds());
  const double tau = 0.3;

  BatchStats serial_stats;
  BinaryFrame serial = RenderTauFrame(evaluator, grid, tau, &serial_stats);

  ThreadPool pool({/*num_threads=*/4, /*max_queue=*/64});
  RenderOptions options;
  options.num_threads = param.num_threads;
  options.tile_rows = param.tile_rows;
  BatchStats stats;
  BinaryFrame parallel = RenderTauFrameParallel(
      evaluator, grid, tau, options, &pool, QueryControl(), &stats);

  EXPECT_EQ(serial.values, parallel.values);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.queries, serial_stats.queries);
  EXPECT_EQ(stats.iterations, serial_stats.iterations);
  EXPECT_EQ(stats.points_scanned, serial_stats.points_scanned);
}

TEST_P(ParallelEquivalenceTest, ExactFrameBitIdenticalToSerial) {
  const ParallelCase param = GetParam();
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kExact);
  PixelGrid grid(24, 18, bench->data_bounds());

  BatchStats serial_stats;
  DensityFrame serial = RenderExactFrame(evaluator, grid, &serial_stats);

  ThreadPool pool({/*num_threads=*/4, /*max_queue=*/64});
  RenderOptions options;
  options.num_threads = param.num_threads;
  options.tile_rows = param.tile_rows;
  BatchStats stats;
  DensityFrame parallel = RenderExactFrameParallel(
      evaluator, grid, options, &pool, QueryControl(), &stats);

  EXPECT_TRUE(FramesBitIdentical(serial.values, parallel.values));
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.queries, serial_stats.queries);
  EXPECT_EQ(stats.points_scanned, serial_stats.points_scanned);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadAndTileSweep, ParallelEquivalenceTest,
    ::testing::Values(ParallelCase{1, 16},   // serial-in-caller path
                      ParallelCase{2, 16},   // fewer helpers than tiles
                      ParallelCase{4, 5},    // uneven tile split
                      ParallelCase{8, 1},    // one row per tile
                      ParallelCase{8, 64},   // one tile bigger than the frame
                      ParallelCase{0, 16}),  // hardware autodetect
    CaseName);

// A pool with no free capacity sheds every helper; the caller renders the
// whole frame itself and the result is still bit-identical.
TEST(ParallelRenderTest, SaturatedPoolDegradesToCallerOnly) {
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  PixelGrid grid(32, 24, bench->data_bounds());

  BatchStats serial_stats;
  DensityFrame serial = RenderEpsFrame(evaluator, grid, 0.05, &serial_stats);

  // One parked worker plus a full one-slot queue: every TrySubmit from the
  // renderer is rejected with kResourceExhausted.
  ThreadPool pool({/*num_threads=*/1, /*max_queue=*/1});
  std::atomic<bool> release{false};
  auto park = [&release] {
    while (!release.load()) {
      std::this_thread::yield();
    }
  };
  ASSERT_TRUE(pool.TrySubmit(park).ok());
  while (pool.queue_depth() > 0) {
    std::this_thread::yield();  // wait for the worker to pick up the parker
  }
  ASSERT_TRUE(pool.TrySubmit(park).ok());  // fills the single queue slot

  RenderOptions options;
  options.num_threads = 8;
  options.tile_rows = 4;
  BatchStats stats;
  DensityFrame parallel = RenderEpsFrameParallel(
      evaluator, grid, 0.05, options, &pool, QueryControl(), &stats);
  release.store(true);
  pool.Stop();

  EXPECT_TRUE(FramesBitIdentical(serial.values, parallel.values));
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.queries, serial_stats.queries);
}

// ---------------------------------------------------------------------------
// Cancellation / deadline mid-frame
// ---------------------------------------------------------------------------

TEST(ParallelRenderTest, CancelledFrameIsMarkedIncomplete) {
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  PixelGrid grid(40, 30, bench->data_bounds());

  CancelToken cancel;
  cancel.RequestCancel();
  QueryControl control;
  control.cancel = &cancel;

  ThreadPool pool({/*num_threads=*/4, /*max_queue=*/64});
  RenderOptions options;
  options.num_threads = 4;
  options.tile_rows = 4;
  BatchStats stats;
  DensityFrame frame = RenderEpsFrameParallel(evaluator, grid, 0.05, options,
                                              &pool, control, &stats);

  EXPECT_FALSE(stats.completed);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_FALSE(stats.deadline_expired);
  EXPECT_EQ(stats.queries, 0u);
  // The partial frame is still well-formed: right size, only finite pixels.
  ASSERT_EQ(frame.values.size(), grid.num_pixels());
  for (double v : frame.values) EXPECT_TRUE(std::isfinite(v));
}

TEST(ParallelRenderTest, DeadlineMidFrameIsMarkedExpired) {
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  PixelGrid grid(64, 48, bench->data_bounds());

  // A nanosecond budget expires before the first per-pixel poll, whatever
  // the scheduler does; the frame must come back partial and flagged.
  Deadline deadline(1e-9);
  QueryControl control;
  control.deadline = &deadline;

  ThreadPool pool({/*num_threads=*/4, /*max_queue=*/64});
  RenderOptions options;
  options.num_threads = 4;
  options.tile_rows = 4;
  BatchStats stats;
  DensityFrame frame = RenderEpsFrameParallel(evaluator, grid, 0.05, options,
                                              &pool, control, &stats);

  EXPECT_FALSE(stats.completed);
  EXPECT_TRUE(stats.deadline_expired);
  ASSERT_EQ(frame.values.size(), grid.num_pixels());
  for (double v : frame.values) EXPECT_TRUE(std::isfinite(v));
}

// Cancellation racing a running frame: either the frame completed before the
// cancel landed, or it is marked cancelled — never a third state, and never
// a TSAN report.
TEST(ParallelRenderTest, ConcurrentCancellationLeavesConsistentStats) {
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  PixelGrid grid(96, 72, bench->data_bounds());

  CancelToken cancel;
  QueryControl control;
  control.cancel = &cancel;

  ThreadPool pool({/*num_threads=*/4, /*max_queue=*/64});
  RenderOptions options;
  options.num_threads = 4;
  options.tile_rows = 2;

  BatchStats stats;
  DensityFrame frame;
  std::thread renderer([&] {
    frame = RenderEpsFrameParallel(evaluator, grid, 0.01, options, &pool,
                                   control, &stats);
  });
  cancel.RequestCancel();
  renderer.join();

  if (!stats.completed) {
    EXPECT_TRUE(stats.cancelled);
  }
  ASSERT_EQ(frame.values.size(), grid.num_pixels());
  for (double v : frame.values) EXPECT_TRUE(std::isfinite(v));
}

// ---------------------------------------------------------------------------
// Shared-traversal tile refinement
// ---------------------------------------------------------------------------

// --tile-shared=off is the bit-identity contract: the tiled driver with the
// shared pass disabled must reproduce the serial frame byte for byte, for
// every kernel and across thread x tile configurations.
TEST(TileSharedTest, OffPathBitIdenticalToSerialForEveryKernel) {
  const KernelType kernels[] = {KernelType::kGaussian,
                                KernelType::kEpanechnikov,
                                KernelType::kExponential};
  for (KernelType kernel : kernels) {
    auto bench = MakeBench(kernel);
    KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
    PixelGrid grid(40, 30, bench->data_bounds());

    DensityFrame serial = RenderEpsFrame(evaluator, grid, 0.05, nullptr);
    BinaryFrame serial_tau = RenderTauFrame(evaluator, grid, 0.3, nullptr);

    ThreadPool pool({/*num_threads=*/4, /*max_queue=*/64});
    for (const ParallelCase& c :
         {ParallelCase{1, 16}, ParallelCase{4, 5}, ParallelCase{8, 1}}) {
      RenderOptions options;
      options.num_threads = c.num_threads;
      options.tile_rows = c.tile_rows;
      options.tile_shared = false;
      BatchStats stats;
      DensityFrame parallel = RenderEpsFrameParallel(
          evaluator, grid, 0.05, options, &pool, QueryControl(), &stats);
      EXPECT_TRUE(FramesBitIdentical(serial.values, parallel.values))
          << KernelTypeName(kernel) << " t" << c.num_threads;
      EXPECT_EQ(stats.tile_nodes_visited, 0u);
      BinaryFrame parallel_tau = RenderTauFrameParallel(
          evaluator, grid, 0.3, options, &pool, QueryControl(), &stats);
      EXPECT_EQ(serial_tau.values, parallel_tau.values);
    }
  }
}

// Tile-shared frames return different (but still certified) estimates: every
// pixel must satisfy the ε certificate against the exact oracle, and the τ
// mask must match the exact classification. Swept over kernels, thread
// counts and chunk shapes.
TEST(TileSharedTest, OnPathSatisfiesCertificatesEverywhere) {
  const KernelType kernels[] = {KernelType::kGaussian,
                                KernelType::kEpanechnikov,
                                KernelType::kExponential};
  const double eps = 0.05;
  const double tau = 0.3;
  for (KernelType kernel : kernels) {
    auto bench = MakeBench(kernel);
    KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
    PixelGrid grid(40, 30, bench->data_bounds());

    std::vector<double> exact(grid.num_pixels());
    for (int y = 0; y < grid.height(); ++y) {
      for (int x = 0; x < grid.width(); ++x) {
        exact[static_cast<size_t>(y) * grid.width() + x] =
            evaluator.EvaluateExact(grid.PixelCenter(x, y));
      }
    }

    ThreadPool pool({/*num_threads=*/4, /*max_queue=*/64});
    for (const ParallelCase& c :
         {ParallelCase{1, 16}, ParallelCase{4, 8}, ParallelCase{8, 3}}) {
      RenderOptions options;
      options.num_threads = c.num_threads;
      options.tile_rows = c.tile_rows;
      options.tile_shared = true;
      BatchStats stats;
      DensityFrame frame = RenderEpsFrameParallel(
          evaluator, grid, eps, options, &pool, QueryControl(), &stats);
      ASSERT_EQ(frame.values.size(), exact.size());
      for (size_t i = 0; i < exact.size(); ++i) {
        const double slack = 1e-9 * (1.0 + exact[i]);
        ASSERT_LE(std::abs(frame.values[i] - exact[i]),
                  eps * exact[i] + slack)
            << KernelTypeName(kernel) << " t" << c.num_threads << " pixel "
            << i;
      }
      EXPECT_GT(stats.tile_nodes_visited, 0u);

      BinaryFrame mask = RenderTauFrameParallel(
          evaluator, grid, tau, options, &pool, QueryControl(), &stats);
      for (size_t i = 0; i < exact.size(); ++i) {
        const double slack = 1e-9 * (1.0 + exact[i]);
        if (exact[i] > tau + slack) {
          ASSERT_EQ(mask.values[i], 1) << "pixel " << i;
        } else if (exact[i] < tau - slack) {
          ASSERT_EQ(mask.values[i], 0) << "pixel " << i;
        }
      }
    }
  }
}

// A cache hit must substitute the stored frontiers verbatim: same frame
// bits, zero additional region-pass work.
TEST(TileSharedTest, FrontierCacheHitReproducesFrameBitwise) {
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  PixelGrid grid(40, 30, bench->data_bounds());

  FrontierCache cache;
  RenderOptions options;
  options.num_threads = 1;
  options.tile_shared = true;
  options.frontier_cache = &cache;
  options.cache_epoch = 7;

  BatchStats cold_stats;
  DensityFrame cold = RenderEpsFrameParallel(
      evaluator, grid, 0.05, options, nullptr, QueryControl(), &cold_stats);
  EXPECT_EQ(cold_stats.frontier_cache_hits, 0u);
  EXPECT_GT(cold_stats.tile_nodes_visited, 0u);

  BatchStats warm_stats;
  DensityFrame warm = RenderEpsFrameParallel(
      evaluator, grid, 0.05, options, nullptr, QueryControl(), &warm_stats);
  EXPECT_GT(warm_stats.frontier_cache_hits, 0u);
  EXPECT_EQ(warm_stats.tile_nodes_visited, 0u);
  EXPECT_TRUE(FramesBitIdentical(cold.values, warm.values));

  // A different epoch is a different key: the stale frontiers must not be
  // served to a hot-swapped index generation.
  options.cache_epoch = 8;
  BatchStats swap_stats;
  DensityFrame swapped = RenderEpsFrameParallel(
      evaluator, grid, 0.05, options, nullptr, QueryControl(), &swap_stats);
  EXPECT_EQ(swap_stats.frontier_cache_hits, 0u);
  EXPECT_GT(swap_stats.tile_nodes_visited, 0u);
  EXPECT_TRUE(FramesBitIdentical(cold.values, swapped.values));
}

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch
// ---------------------------------------------------------------------------

// Every dispatch level must produce bit-identical sums and frames: the
// level is a throughput knob, never a results knob. Restores the active
// level on scope exit so test order cannot leak a pinned level.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(ActiveSimdLevel()) {}
  ~SimdLevelGuard() { SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

TEST(SimdDispatchTest, AllLevelsBitIdentical) {
  SimdLevelGuard guard;
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  PixelGrid grid(40, 30, bench->data_bounds());

  SetSimdLevel(SimdLevel::kScalar);
  ASSERT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  DensityFrame baseline = RenderEpsFrame(evaluator, grid, 0.05, nullptr);

  const KdTree& tree = evaluator.tree();
  const KdTree::Node& root = tree.node(tree.root());
  Rng rng(11);
  std::vector<Point> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(Point{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)});
  }
  std::vector<double> scalar_sums;
  for (const Point& q : queries) {
    scalar_sums.push_back(
        LeafSumSoA(tree, evaluator.params(), root.begin, root.end, q));
  }

  for (SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
    SetSimdLevel(level);
    if (ActiveSimdLevel() != level) continue;  // not supported by this host
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(Bits(scalar_sums[i]),
                Bits(LeafSumSoA(tree, evaluator.params(), root.begin,
                                root.end, queries[i])))
          << "level " << SimdLevelName(level) << " query " << i;
    }
    DensityFrame frame = RenderEpsFrame(evaluator, grid, 0.05, nullptr);
    EXPECT_TRUE(FramesBitIdentical(baseline.values, frame.values))
        << "level " << SimdLevelName(level);
  }
}

TEST(SimdDispatchTest, SetLevelClampsToHardwareMax) {
  SimdLevelGuard guard;
  SetSimdLevel(SimdLevel::kAvx2);
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(MaxSupportedSimdLevel()));
  SetSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

// ---------------------------------------------------------------------------
// SoA leaf kernel vs AoS scalar loop
// ---------------------------------------------------------------------------

TEST(LeafKernelTest, SoAMatchesAoSBitwiseOnEveryLeaf) {
  const KernelType kernels[] = {
      KernelType::kGaussian, KernelType::kEpanechnikov,
      KernelType::kExponential, KernelType::kQuartic, KernelType::kUniform,
  };
  Rng rng(77);
  for (int dim : {2, 3, 5}) {
    PointSet pts;
    for (int i = 0; i < 700; ++i) {
      Point p(dim);
      for (int d = 0; d < dim; ++d) p[d] = rng.Uniform(-1.0, 1.0);
      pts.push_back(p);
    }
    KdTree tree(std::move(pts), {/*leaf_size=*/37});  // chunk-unaligned leaves
    for (KernelType kernel : kernels) {
      KernelParams params;
      params.type = kernel;
      params.gamma = 2.5;
      params.weight = 1.0 / 700.0;
      for (int qi = 0; qi < 8; ++qi) {
        Point q(dim);
        for (int d = 0; d < dim; ++d) q[d] = rng.Uniform(-1.5, 1.5);
        for (size_t n = 0; n < tree.num_nodes(); ++n) {
          const KdTree::Node& node = tree.node(static_cast<int32_t>(n));
          if (!node.IsLeaf()) continue;
          const double aos = LeafSumAoS(tree, params, node.begin, node.end, q);
          const double soa = LeafSumSoA(tree, params, node.begin, node.end, q);
          ASSERT_EQ(Bits(aos), Bits(soa))
              << "dim=" << dim << " kernel=" << KernelTypeName(kernel)
              << " node=" << n << ": " << aos << " vs " << soa;
        }
        // Whole-tree scan (the EXACT method path) spans many chunks.
        const KdTree::Node& root = tree.node(tree.root());
        ASSERT_EQ(Bits(LeafSumAoS(tree, params, root.begin, root.end, q)),
                  Bits(LeafSumSoA(tree, params, root.begin, root.end, q)));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scratch stream reuse
// ---------------------------------------------------------------------------

TEST(ScratchReuseTest, ResetStreamMatchesFreshEvaluationBitwise) {
  auto bench = MakeBench();
  KdeEvaluator evaluator = bench->MakeEvaluator(Method::kQuad);
  Rng rng(13);

  RefinementStream scratch = evaluator.MakeScratch();
  QueryControl control;
  for (int i = 0; i < 200; ++i) {
    Point q{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};

    EvalResult fresh = evaluator.EvaluateEps(q, 0.05);
    EvalResult reused = evaluator.EvaluateEps(q, 0.05, control, &scratch);
    ASSERT_EQ(Bits(fresh.estimate), Bits(reused.estimate)) << "query " << i;
    ASSERT_EQ(Bits(fresh.lower), Bits(reused.lower));
    ASSERT_EQ(Bits(fresh.upper), Bits(reused.upper));
    ASSERT_EQ(fresh.iterations, reused.iterations);
    ASSERT_EQ(fresh.points_scanned, reused.points_scanned);
    ASSERT_EQ(fresh.converged, reused.converged);

    TauResult tau_fresh = evaluator.EvaluateTau(q, 0.3);
    TauResult tau_reused = evaluator.EvaluateTau(q, 0.3, control, &scratch);
    ASSERT_EQ(tau_fresh.above_threshold, tau_reused.above_threshold);
    ASSERT_EQ(Bits(tau_fresh.lower), Bits(tau_reused.lower));
    ASSERT_EQ(Bits(tau_fresh.upper), Bits(tau_reused.upper));
    ASSERT_EQ(tau_fresh.iterations, tau_reused.iterations);
  }
}

}  // namespace
}  // namespace kdv
