#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/random.h"
#include "util/timer.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

// ---------------------------------------------------------------------------
// Timer / Deadline
// ---------------------------------------------------------------------------

TEST(TimerTest, ElapsedIsMonotonic) {
  Timer timer;
  double t1 = timer.ElapsedSeconds();
  double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(TimerTest, ResetRestartsClock) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.5);
}

TEST(DeadlineTest, NonPositiveBudgetNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 1e20);
}

TEST(DeadlineTest, TinyBudgetExpires) {
  Deadline d(1e-9);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, ParsesSimpleLine) {
  std::vector<double> out;
  ASSERT_TRUE(ParseCsvDoubles("1.5,2,-3e4", &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], -30000.0);
}

TEST(CsvTest, ParsesWithWhitespace) {
  std::vector<double> out;
  ASSERT_TRUE(ParseCsvDoubles(" 1 , 2.25 ,3 \r", &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[1], 2.25);
}

TEST(CsvTest, RejectsNonNumeric) {
  std::vector<double> out;
  EXPECT_FALSE(ParseCsvDoubles("a,b", &out));
  EXPECT_FALSE(ParseCsvDoubles("1,2x", &out));
  EXPECT_FALSE(ParseCsvDoubles("1,,2", &out));
}

TEST(CsvTest, EmptyLineYieldsEmptyVector) {
  std::vector<double> out{1.0};
  ASSERT_TRUE(ParseCsvDoubles("", &out));
  EXPECT_TRUE(out.empty());
}

TEST(CsvTest, RoundTripFile) {
  std::string path = ::testing::TempDir() + "/kdv_csv_roundtrip.csv";
  std::vector<std::vector<double>> rows = {{1.0, 2.0}, {3.25, -4.5}};
  ASSERT_TRUE(WriteCsvFile(path, "x,y", rows));

  std::vector<std::vector<double>> back;
  size_t skipped = 0;
  ASSERT_TRUE(ReadCsvFile(path, &back, &skipped));
  EXPECT_EQ(skipped, 1u);  // header
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[1][0], 3.25);
  EXPECT_DOUBLE_EQ(back[1][1], -4.5);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  std::vector<std::vector<double>> rows;
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path/file.csv", &rows, nullptr));
}

}  // namespace
}  // namespace kdv
