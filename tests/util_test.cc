#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/backoff.h"
#include "util/crc32.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

// ---------------------------------------------------------------------------
// Timer / Deadline
// ---------------------------------------------------------------------------

TEST(TimerTest, ElapsedIsMonotonic) {
  Timer timer;
  double t1 = timer.ElapsedSeconds();
  double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(TimerTest, ResetRestartsClock) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.5);
}

TEST(DeadlineTest, NonPositiveBudgetNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 1e20);
}

TEST(DeadlineTest, TinyBudgetExpires) {
  Deadline d(1e-9);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, ParsesSimpleLine) {
  std::vector<double> out;
  ASSERT_TRUE(ParseCsvDoubles("1.5,2,-3e4", &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], -30000.0);
}

TEST(CsvTest, ParsesWithWhitespace) {
  std::vector<double> out;
  ASSERT_TRUE(ParseCsvDoubles(" 1 , 2.25 ,3 \r", &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[1], 2.25);
}

TEST(CsvTest, RejectsNonNumeric) {
  std::vector<double> out;
  EXPECT_FALSE(ParseCsvDoubles("a,b", &out));
  EXPECT_FALSE(ParseCsvDoubles("1,2x", &out));
  EXPECT_FALSE(ParseCsvDoubles("1,,2", &out));
}

TEST(CsvTest, EmptyLineYieldsEmptyVector) {
  std::vector<double> out{1.0};
  ASSERT_TRUE(ParseCsvDoubles("", &out));
  EXPECT_TRUE(out.empty());
}

TEST(CsvTest, RejectsNonFiniteByDefault) {
  std::vector<double> out;
  EXPECT_FALSE(ParseCsvDoubles("nan,1", &out));
  EXPECT_FALSE(ParseCsvDoubles("1,inf", &out));
  EXPECT_FALSE(ParseCsvDoubles("-inf,2", &out));
  EXPECT_FALSE(ParseCsvDoubles("1,infinity", &out));
  EXPECT_FALSE(ParseCsvDoubles("nan(0123),1", &out));
}

TEST(CsvTest, AllowNonFiniteKnob) {
  std::vector<double> out;
  ASSERT_TRUE(ParseCsvDoubles("nan,inf,-inf,2", &out,
                              /*allow_nonfinite=*/true));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(std::isnan(out[0]));
  EXPECT_TRUE(std::isinf(out[1]));
  EXPECT_TRUE(std::isinf(out[2]));
  EXPECT_DOUBLE_EQ(out[3], 2.0);
}

TEST(CsvTest, RejectsHexFloatsAlways) {
  std::vector<double> out;
  EXPECT_FALSE(ParseCsvDoubles("0x10,1", &out));
  EXPECT_FALSE(ParseCsvDoubles("0X1p3,1", &out, /*allow_nonfinite=*/true));
}

TEST(CsvTest, RoundTripFile) {
  std::string path = ::testing::TempDir() + "/kdv_csv_roundtrip.csv";
  std::vector<std::vector<double>> rows = {{1.0, 2.0}, {3.25, -4.5}};
  ASSERT_TRUE(WriteCsvFile(path, "x,y", rows).ok());

  std::vector<std::vector<double>> back;
  CsvReadStats stats;
  ASSERT_TRUE(ReadCsvFile(path, &back, &stats).ok());
  EXPECT_EQ(stats.skipped_malformed, 1u);  // header
  EXPECT_EQ(stats.skipped_ragged, 0u);
  EXPECT_EQ(stats.rows_kept, 2u);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[1][0], 3.25);
  EXPECT_DOUBLE_EQ(back[1][1], -4.5);
  std::remove(path.c_str());
}

TEST(CsvTest, RaggedRowsAreSkippedNotMixedIn) {
  std::string path = ::testing::TempDir() + "/kdv_csv_ragged.csv";
  {
    std::ofstream out(path);
    out << "1,2\n3,4,5\n6\n7,8\n";
  }
  std::vector<std::vector<double>> rows;
  CsvReadStats stats;
  ASSERT_TRUE(ReadCsvFile(path, &rows, &stats).ok());
  ASSERT_EQ(rows.size(), 2u);  // only the 2-column rows survive
  EXPECT_DOUBLE_EQ(rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(rows[1][1], 8.0);
  EXPECT_EQ(stats.skipped_ragged, 2u);
  EXPECT_EQ(stats.skipped_malformed, 0u);
  std::remove(path.c_str());
}

TEST(CsvTest, NonFiniteRowsCountAsMalformed) {
  std::string path = ::testing::TempDir() + "/kdv_csv_nonfinite.csv";
  {
    std::ofstream out(path);
    out << "1,2\nnan,3\n4,inf\n5,6\n";
  }
  std::vector<std::vector<double>> rows;
  CsvReadStats stats;
  ASSERT_TRUE(ReadCsvFile(path, &rows, &stats).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(stats.skipped_malformed, 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  std::vector<std::vector<double>> rows;
  Status status = ReadCsvFile("/nonexistent/path/file.csv", &rows, nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("/nonexistent/path/file.csv"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = DataLossError("checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "checksum mismatch");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: checksum mismatch");
}

TEST(StatusTest, StatusOrHoldsValueOrError) {
  StatusOr<int> ok_value(42);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 42);

  StatusOr<int> err(InvalidArgumentError("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return NotFoundError("missing"); };
  auto wrapper = [&]() -> Status {
    KDV_RETURN_IF_ERROR(fails());
    return InternalError("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(StatusTest, AssignOrReturnUnwraps) {
  auto produce = []() -> StatusOr<std::string> {
    return std::string("payload");
  };
  auto wrapper = [&]() -> Status {
    KDV_ASSIGN_OR_RETURN(std::string value, produce());
    EXPECT_EQ(value, "payload");
    return OkStatus();
  };
  EXPECT_TRUE(wrapper().ok());
}

TEST(StatusTest, EveryCodeHasADistinctName) {
  const std::pair<StatusCode, const char*> kCodes[] = {
      {StatusCode::kOk, "OK"},
      {StatusCode::kInvalidArgument, "INVALID_ARGUMENT"},
      {StatusCode::kNotFound, "NOT_FOUND"},
      {StatusCode::kDataLoss, "DATA_LOSS"},
      {StatusCode::kFailedPrecondition, "FAILED_PRECONDITION"},
      {StatusCode::kOutOfRange, "OUT_OF_RANGE"},
      {StatusCode::kUnimplemented, "UNIMPLEMENTED"},
      {StatusCode::kInternal, "INTERNAL"},
      {StatusCode::kDeadlineExceeded, "DEADLINE_EXCEEDED"},
      {StatusCode::kCancelled, "CANCELLED"},
      {StatusCode::kResourceExhausted, "RESOURCE_EXHAUSTED"},
      {StatusCode::kUnavailable, "UNAVAILABLE"},
  };
  std::vector<std::string> seen;
  for (const auto& [code, name] : kCodes) {
    EXPECT_STREQ(StatusCodeName(code), name);
    seen.push_back(name);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(StatusTest, ServingErrorConstructors) {
  Status shed = ResourceExhaustedError("queue full");
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.ToString(), "RESOURCE_EXHAUSTED: queue full");

  Status down = UnavailableError("breaker open");
  EXPECT_EQ(down.code(), StatusCode::kUnavailable);
  EXPECT_EQ(down.ToString(), "UNAVAILABLE: breaker open");
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

TEST(BackoffTest, DeterministicForSameSeed) {
  BackoffPolicy policy;
  Backoff a(policy, 7);
  Backoff b(policy, 7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDelayMs(), b.NextDelayMs());
  }
}

TEST(BackoffTest, BaseGrowsGeometricallyWithoutJitter) {
  Backoff backoff({/*initial_ms=*/1.0, /*multiplier=*/3.0, /*max_ms=*/1000.0,
                   /*jitter=*/0.0});
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 1.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 3.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 9.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 27.0);
  EXPECT_EQ(backoff.attempts(), 4);
}

TEST(BackoffTest, DelayIsCappedAtMax) {
  Backoff backoff({/*initial_ms=*/10.0, /*multiplier=*/10.0, /*max_ms=*/50.0,
                   /*jitter=*/0.0});
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 10.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_LE(backoff.NextDelayMs(), 50.0);
  }
}

TEST(BackoffTest, JitterStaysWithinBand) {
  const double jitter = 0.5;
  Backoff backoff({/*initial_ms=*/4.0, /*multiplier=*/2.0, /*max_ms=*/64.0,
                   /*jitter=*/jitter},
                  99);
  for (int attempt = 0; attempt < 32; ++attempt) {
    double base = std::min(64.0, 4.0 * std::pow(2.0, attempt));
    double d = backoff.NextDelayMs();
    EXPECT_GE(d, base * (1.0 - jitter));
    EXPECT_LE(d, base);
  }
}

TEST(BackoffTest, FullJitterIsNeverNegativeAndNeverExceedsCap) {
  // jitter = 1.0 randomizes the entire base away: delays may get arbitrarily
  // close to zero but must never go negative, and must never exceed the cap
  // no matter how far past it the geometric schedule has run.
  const double max_ms = 32.0;
  for (uint64_t seed : {1ull, 42ull, 0x5EEDBACC0FFull}) {
    Backoff backoff({/*initial_ms=*/2.0, /*multiplier=*/4.0, max_ms,
                     /*jitter=*/1.0},
                    seed);
    for (int attempt = 0; attempt < 64; ++attempt) {
      double d = backoff.NextDelayMs();
      EXPECT_GE(d, 0.0) << "seed " << seed << " attempt " << attempt;
      EXPECT_LE(d, max_ms) << "seed " << seed << " attempt " << attempt;
    }
  }
}

TEST(BackoffTest, ZeroInitialDelayStaysAtZeroWithoutJitter) {
  Backoff backoff({/*initial_ms=*/0.0, /*multiplier=*/2.0, /*max_ms=*/10.0,
                   /*jitter=*/0.0});
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 0.0);
  }
}

TEST(BackoffTest, ResetRestartsScheduleButNotRngStream) {
  Backoff backoff({/*initial_ms=*/1.0, /*multiplier=*/2.0, /*max_ms=*/100.0,
                   /*jitter=*/0.5},
                  5);
  double first = backoff.NextDelayMs();
  (void)backoff.NextDelayMs();
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0);
  double after_reset = backoff.NextDelayMs();
  // Same base (schedule restarted)...
  EXPECT_LE(after_reset, 1.0);
  EXPECT_GE(after_reset, 0.5);
  // ...but the RNG stream kept advancing, so lockstep repeats are unlikely.
  EXPECT_NE(first, after_reset);
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectors) {
  // Standard check value for CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
  // zlib/PNG published vectors — the index format promises this exact CRC
  // so external tools can verify persisted files.
  EXPECT_EQ(Crc32("abc", 3), 0x352441C2u);
  const char fox[] = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(Crc32(fox, sizeof(fox) - 1), 0x414FA339u);
  const unsigned char zeros[32] = {};
  EXPECT_EQ(Crc32(zeros, sizeof(zeros)), 0x190A55ADu);
}

TEST(Crc32Test, EmptyChunksDoNotPerturbIncrementalState) {
  const char data[] = "payload";
  uint32_t crc = Crc32Update(0, nullptr, 0);
  EXPECT_EQ(crc, 0u);
  crc = Crc32Update(crc, data, 3);
  const uint32_t mid = crc;
  crc = Crc32Update(crc, data + 3, 0);  // empty chunk mid-stream
  EXPECT_EQ(crc, mid);
  crc = Crc32Update(crc, data + 3, sizeof(data) - 1 - 3);
  EXPECT_EQ(crc, Crc32(data, sizeof(data) - 1));
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  const size_t len = sizeof(data) - 1;
  uint32_t whole = Crc32(data, len);
  for (size_t split = 0; split <= len; ++split) {
    uint32_t crc = Crc32Update(0, data, split);
    crc = Crc32Update(crc, data + split, len - split);
    EXPECT_EQ(crc, whole);
  }
}

TEST(Crc32Test, DetectsEverySingleByteFlip) {
  std::string data = "kd-tree payload bytes";
  const uint32_t reference = Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    EXPECT_NE(Crc32(mutated.data(), mutated.size()), reference);
  }
}

}  // namespace
}  // namespace kdv
