#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"

namespace kdv {
namespace {

Flags Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  Flags flags;
  std::string error;
  EXPECT_TRUE(Flags::Parse(static_cast<int>(args.size()), args.data(), &flags,
                           &error))
      << error;
  return flags;
}

TEST(FlagsTest, KeyValuePairs) {
  Flags f = Parse({"--eps", "0.01", "--out", "x.ppm"});
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 1.0), 0.01);
  EXPECT_EQ(f.GetString("out", ""), "x.ppm");
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = Parse({"--width=640", "--kernel=cosine"});
  EXPECT_EQ(f.GetInt("width", 0), 640);
  EXPECT_EQ(f.GetString("kernel", ""), "cosine");
}

TEST(FlagsTest, BooleanFlagWithoutValue) {
  Flags f = Parse({"--verbose", "--eps", "0.05"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.0), 0.05);
}

TEST(FlagsTest, TrailingFlagIsBoolean) {
  Flags f = Parse({"--fast"});
  EXPECT_TRUE(f.GetBool("fast", false));
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = Parse({"render", "--eps", "0.01", "input.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "render");
  EXPECT_EQ(f.positional()[1], "input.csv");
}

TEST(FlagsTest, NegativeNumberAsValue) {
  Flags f = Parse({"--gamma", "-1.5"});
  EXPECT_DOUBLE_EQ(f.GetDouble("gamma", 0.0), -1.5);
}

TEST(FlagsTest, DefaultsWhenMissingOrMalformed) {
  Flags f = Parse({"--eps", "abc"});
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.25), 0.25);
  EXPECT_EQ(f.GetInt("width", 77), 77);
  EXPECT_FALSE(f.Has("width"));
  EXPECT_TRUE(f.Has("eps"));
}

TEST(FlagsTest, NonFiniteDoubleFallsBackToDefault) {
  // "--eps nan" must not leak a NaN into threshold comparisons downstream.
  Flags f = Parse({"--eps", "nan", "--tau=inf", "--budget", "-inf"});
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.25), 0.25);
  EXPECT_DOUBLE_EQ(f.GetDouble("tau", 1.5), 1.5);
  EXPECT_DOUBLE_EQ(f.GetDouble("budget", 0.5), 0.5);
}

TEST(FlagsTest, BoolParsingVariants) {
  Flags f = Parse({"--a=1", "--b=off", "--c=yes", "--d=banana"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_TRUE(f.GetBool("d", true));  // malformed -> default
}

TEST(FlagsTest, BareDoubleDashFails) {
  const char* args[] = {"prog", "--"};
  Flags flags;
  std::string error;
  EXPECT_FALSE(Flags::Parse(2, args, &flags, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlagsTest, LastOccurrenceWins) {
  Flags f = Parse({"--eps", "0.1", "--eps", "0.2"});
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.0), 0.2);
}

}  // namespace
}  // namespace kdv
