#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "index/kdtree.h"
#include "util/random.h"

namespace kdv {
namespace {

PointSet RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  PointSet pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  return pts;
}

TEST(KdTreeTest, RootCoversAllPoints) {
  PointSet pts = RandomPoints(500, 1);
  KdTree tree(pts);
  const KdTree::Node& root = tree.node(tree.root());
  EXPECT_EQ(root.count(), 500u);
  EXPECT_EQ(root.stats.count(), 500u);
  for (const Point& p : pts) EXPECT_TRUE(root.stats.mbr().Contains(p));
}

TEST(KdTreeTest, TreeIsAPermutationOfInput) {
  PointSet pts = RandomPoints(300, 2);
  KdTree tree(pts);
  auto key = [](const Point& p) { return std::make_pair(p[0], p[1]); };
  std::vector<std::pair<double, double>> a, b;
  for (const Point& p : pts) a.push_back(key(p));
  for (const Point& p : tree.points()) b.push_back(key(p));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(KdTreeTest, LeavesRespectLeafSize) {
  PointSet pts = RandomPoints(1000, 3);
  KdTree::Options options;
  options.leaf_size = 16;
  KdTree tree(std::move(pts), options);
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const KdTree::Node& n = tree.node(static_cast<int32_t>(i));
    if (n.IsLeaf()) {
      EXPECT_LE(n.count(), 16u);
      EXPECT_GE(n.count(), 1u);
    }
  }
}

TEST(KdTreeTest, ChildrenPartitionParent) {
  PointSet pts = RandomPoints(1000, 4);
  KdTree tree(std::move(pts));
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const KdTree::Node& n = tree.node(static_cast<int32_t>(i));
    if (n.IsLeaf()) continue;
    const KdTree::Node& l = tree.node(n.left);
    const KdTree::Node& r = tree.node(n.right);
    EXPECT_EQ(l.begin, n.begin);
    EXPECT_EQ(l.end, r.begin);
    EXPECT_EQ(r.end, n.end);
    EXPECT_EQ(l.count() + r.count(), n.count());
    EXPECT_EQ(l.stats.count() + r.stats.count(), n.stats.count());
  }
}

TEST(KdTreeTest, NodeStatsConsistentWithOwnedSlice) {
  PointSet pts = RandomPoints(400, 5);
  KdTree tree(std::move(pts));
  Rng rng(6);
  Point q{rng.NextDouble(), rng.NextDouble()};
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const KdTree::Node& n = tree.node(static_cast<int32_t>(i));
    double brute = 0.0;
    for (uint32_t j = n.begin; j < n.end; ++j) {
      brute += SquaredDistance(q, tree.points()[j]);
    }
    EXPECT_NEAR(n.stats.SumSquaredDistances(q), brute,
                1e-9 * std::max(1.0, brute));
  }
}

TEST(KdTreeTest, DepthIsLogarithmic) {
  PointSet pts = RandomPoints(4096, 7);
  KdTree::Options options;
  options.leaf_size = 1;
  KdTree tree(std::move(pts), options);
  // Median splits: depth == ceil(log2(4096)) + 1 = 13 for leaf_size 1.
  EXPECT_LE(tree.Depth(), 14);
  EXPECT_GE(tree.Depth(), 12);
}

TEST(KdTreeTest, HandlesDuplicatePoints) {
  PointSet pts(100, Point{0.5, 0.5});
  KdTree::Options options;
  options.leaf_size = 4;
  KdTree tree(std::move(pts), options);
  const KdTree::Node& root = tree.node(tree.root());
  EXPECT_EQ(root.count(), 100u);
  // Every leaf non-empty, all splits valid.
  std::function<size_t(int32_t)> count_leaf_points =
      [&](int32_t id) -> size_t {
    const KdTree::Node& n = tree.node(id);
    if (n.IsLeaf()) {
      EXPECT_GE(n.count(), 1u);
      return n.count();
    }
    return count_leaf_points(n.left) + count_leaf_points(n.right);
  };
  EXPECT_EQ(count_leaf_points(tree.root()), 100u);
}

TEST(KdTreeTest, SinglePointTree) {
  PointSet pts{Point{1.0, 2.0}};
  KdTree tree(std::move(pts));
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.node(tree.root()).IsLeaf());
  EXPECT_EQ(tree.Depth(), 1);
}

TEST(KdTreeTest, ChildMbrsShrink) {
  PointSet pts = GenerateMixture(CrimeSpec(0.01));
  KdTree tree(std::move(pts));
  const KdTree::Node& root = tree.node(tree.root());
  ASSERT_FALSE(root.IsLeaf());
  const Rect& root_mbr = root.stats.mbr();
  const Rect& l = tree.node(root.left).stats.mbr();
  const Rect& r = tree.node(root.right).stats.mbr();
  for (int d = 0; d < 2; ++d) {
    EXPECT_GE(l.lo(d), root_mbr.lo(d));
    EXPECT_LE(l.hi(d), root_mbr.hi(d));
    EXPECT_GE(r.lo(d), root_mbr.lo(d));
    EXPECT_LE(r.hi(d), root_mbr.hi(d));
  }
  // The split dimension should actually divide the extent.
  int split = root_mbr.WidestDimension();
  EXPECT_LE(l.Length(split), root_mbr.Length(split));
  EXPECT_LE(r.Length(split), root_mbr.Length(split));
}

}  // namespace
}  // namespace kdv
