// End-to-end guarantees of the refinement engine: εKDV relative-error
// guarantee, τKDV classification correctness, and the Fig-18 trace
// machinery, for every method × kernel combination.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "bounds/node_bounds.h"
#include "core/evaluator.h"
#include "data/datasets.h"
#include "index/kdtree.h"
#include "index/node_stats.h"
#include "kernel/kernel.h"
#include "util/random.h"

namespace kdv {
namespace {

PointSet TestDataset(size_t n = 2000, uint64_t seed = 9) {
  MixtureSpec spec;
  spec.n = n;
  spec.num_clusters = 5;
  spec.seed = seed;
  return GenerateMixture(spec);
}

PointSet TestQueries(int count, uint64_t seed = 10) {
  Rng rng(seed);
  PointSet qs;
  for (int i = 0; i < count; ++i) {
    qs.push_back(Point{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)});
  }
  return qs;
}

double BruteForce(const PointSet& pts, const KernelParams& params,
                  const Point& q) {
  double sum = 0.0;
  for (const Point& p : pts) {
    sum += params.EvalSquaredDistance(SquaredDistance(q, p));
  }
  return params.weight * sum;
}

struct Combo {
  KernelType kernel;
  Method method;
};

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(KernelTypeName(info.param.kernel)) + "_" +
         MethodName(info.param.method);
}

class EvaluatorComboTest : public ::testing::TestWithParam<Combo> {};

TEST_P(EvaluatorComboTest, EpsGuaranteeHolds) {
  const Combo combo = GetParam();
  PointSet data = TestDataset();
  KernelParams params = MakeScottParams(combo.kernel, data);
  PointSet raw = data;
  KdTree tree(std::move(data));
  std::unique_ptr<NodeBounds> bounds = MakeNodeBounds(combo.method, params);
  ASSERT_NE(bounds, nullptr);
  KdeEvaluator evaluator(&tree, params, bounds.get());

  const double eps = 0.02;
  for (const Point& q : TestQueries(40)) {
    EvalResult r = evaluator.EvaluateEps(q, eps);
    double exact = BruteForce(raw, params, q);
    EXPECT_TRUE(r.converged);
    // Certified interval brackets the truth.
    EXPECT_LE(r.lower, exact * (1.0 + 1e-9) + 1e-12);
    EXPECT_GE(r.upper, exact * (1.0 - 1e-9) - 1e-12);
    // Relative error guarantee.
    if (exact > 1e-12) {
      EXPECT_LE(std::abs(r.estimate - exact) / exact, eps + 1e-9);
    } else {
      EXPECT_LE(r.estimate, 1e-9);
    }
  }
}

TEST_P(EvaluatorComboTest, TauClassificationIsExactlyRight) {
  const Combo combo = GetParam();
  PointSet data = TestDataset(1500, 11);
  KernelParams params = MakeScottParams(combo.kernel, data);
  PointSet raw = data;
  KdTree tree(std::move(data));
  std::unique_ptr<NodeBounds> bounds = MakeNodeBounds(combo.method, params);
  ASSERT_NE(bounds, nullptr);
  KdeEvaluator evaluator(&tree, params, bounds.get());

  // Pick taus spanning the density range.
  PointSet queries = TestQueries(30, 12);
  for (double tau_scale : {0.25, 1.0, 2.0}) {
    for (const Point& q : queries) {
      double exact = BruteForce(raw, params, q);
      double tau = tau_scale * 0.5;  // densities are ~O(1) with weight 1/n
      TauResult r = evaluator.EvaluateTau(q, tau);
      // Skip knife-edge cases where FP noise could flip the comparison.
      if (std::abs(exact - tau) < 1e-9 * std::max(1.0, tau)) continue;
      EXPECT_EQ(r.above_threshold, exact >= tau)
          << "tau=" << tau << " exact=" << exact;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, EvaluatorComboTest,
    ::testing::Values(Combo{KernelType::kGaussian, Method::kAkde},
                      Combo{KernelType::kGaussian, Method::kKarl},
                      Combo{KernelType::kGaussian, Method::kQuad},
                      Combo{KernelType::kTriangular, Method::kAkde},
                      Combo{KernelType::kTriangular, Method::kQuad},
                      Combo{KernelType::kCosine, Method::kQuad},
                      Combo{KernelType::kExponential, Method::kQuad},
                      Combo{KernelType::kEpanechnikov, Method::kQuad},
                      Combo{KernelType::kQuartic, Method::kQuad},
                      Combo{KernelType::kUniform, Method::kQuad}),
    ComboName);

// ---------------------------------------------------------------------------
// Method-specific behavior
// ---------------------------------------------------------------------------

TEST(EvaluatorTest, ExactMethodMatchesBruteForce) {
  PointSet data = TestDataset(800, 13);
  KernelParams params = MakeScottParams(KernelType::kGaussian, data);
  PointSet raw = data;
  KdTree tree(std::move(data));
  KdeEvaluator exact(&tree, params, nullptr);

  for (const Point& q : TestQueries(20, 14)) {
    double brute = BruteForce(raw, params, q);
    EXPECT_NEAR(exact.EvaluateExact(q), brute,
                1e-9 * std::max(1.0, brute));
    EvalResult r = exact.EvaluateEps(q, 0.01);
    EXPECT_NEAR(r.estimate, brute, 1e-9 * std::max(1.0, brute));
    EXPECT_EQ(r.points_scanned, tree.num_points());
  }
}

TEST(EvaluatorTest, TighterEpsNeedsMoreIterations) {
  PointSet data = TestDataset(4000, 15);
  KernelParams params = MakeScottParams(KernelType::kGaussian, data);
  KdTree tree(std::move(data));
  auto bounds = MakeNodeBounds(Method::kQuad, params);
  KdeEvaluator evaluator(&tree, params, bounds.get());

  Point q{0.5, 0.5};
  uint64_t iters_loose = evaluator.EvaluateEps(q, 0.10).iterations;
  uint64_t iters_tight = evaluator.EvaluateEps(q, 0.001).iterations;
  EXPECT_LE(iters_loose, iters_tight);
}

TEST(EvaluatorTest, QuadConvergesInFewerIterationsThanAkde) {
  PointSet data = TestDataset(8000, 16);
  KernelParams params = MakeScottParams(KernelType::kGaussian, data);
  KdTree tree(std::move(data));
  auto akde_bounds = MakeNodeBounds(Method::kAkde, params);
  auto quad_bounds = MakeNodeBounds(Method::kQuad, params);
  KdeEvaluator akde(&tree, params, akde_bounds.get());
  KdeEvaluator quad(&tree, params, quad_bounds.get());

  uint64_t akde_total = 0;
  uint64_t quad_total = 0;
  for (const Point& q : TestQueries(25, 17)) {
    akde_total += akde.EvaluateEps(q, 0.01).iterations;
    quad_total += quad.EvaluateEps(q, 0.01).iterations;
  }
  // The paper's headline: QUAD's tighter bounds prune much earlier.
  EXPECT_LT(quad_total, akde_total);
}

TEST(EvaluatorTest, TraceIsMonotoneAndEndsConverged) {
  PointSet data = TestDataset(4000, 18);
  KernelParams params = MakeScottParams(KernelType::kGaussian, data);
  KdTree tree(std::move(data));
  auto bounds = MakeNodeBounds(Method::kQuad, params);
  KdeEvaluator evaluator(&tree, params, bounds.get());

  std::vector<BoundStep> trace;
  EvalResult r = evaluator.EvaluateEpsTraced(Point{0.5, 0.5}, 0.01, &trace);
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace.front().iteration, 0u);
  EXPECT_EQ(trace.back().iteration, r.iterations);
  // Bounds tighten (weakly) monotonically as refinement proceeds.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].lower, trace[i - 1].lower - 1e-9);
    EXPECT_LE(trace[i].upper, trace[i - 1].upper + 1e-9);
  }
  EXPECT_NEAR(trace.back().lower, r.lower, 1e-12);
  EXPECT_NEAR(trace.back().upper, r.upper, 1e-12);
}

TEST(EvaluatorTest, ZeroEpsFullyRefinesToExact) {
  PointSet data = TestDataset(1000, 19);
  KernelParams params = MakeScottParams(KernelType::kGaussian, data);
  PointSet raw = data;
  KdTree tree(std::move(data));
  auto bounds = MakeNodeBounds(Method::kQuad, params);
  KdeEvaluator evaluator(&tree, params, bounds.get());

  Point q{0.3, 0.6};
  EvalResult r = evaluator.EvaluateEps(q, 0.0);
  double exact = BruteForce(raw, params, q);
  EXPECT_NEAR(r.estimate, exact, 1e-6 * std::max(1.0, exact));
}

// Failure injection: a bound function that arbitrarily (but validly)
// loosens another's bounds. The engine must keep its guarantees under ANY
// correct bound function, however poor.
class LoosenedBounds final : public NodeBounds {
 public:
  LoosenedBounds(const KernelParams& params, const NodeBounds* inner,
                 uint64_t seed)
      : NodeBounds(params, BoundsOptions{}), inner_(inner), rng_(seed) {}

  BoundPair Evaluate(const NodeStats& stats, const Point& q) const override {
    BoundPair b = inner_->Evaluate(stats, q);
    // Randomly widen: shrink the lower bound, inflate the upper bound.
    b.lower *= rng_.NextDouble();
    b.upper *= 1.0 + 2.0 * rng_.NextDouble();
    return b;
  }
  const char* name() const override { return "loosened"; }

 private:
  const NodeBounds* inner_;
  mutable Rng rng_;
};

TEST(EvaluatorTest, EngineCorrectUnderAdversariallyLooseBounds) {
  PointSet data = TestDataset(2000, 21);
  KernelParams params = MakeScottParams(KernelType::kGaussian, data);
  PointSet raw = data;
  KdTree tree(std::move(data));
  auto inner = MakeNodeBounds(Method::kQuad, params);
  LoosenedBounds loose(params, inner.get(), 12345);
  KdeEvaluator evaluator(&tree, params, &loose);

  const double eps = 0.02;
  for (const Point& q : TestQueries(20, 22)) {
    EvalResult r = evaluator.EvaluateEps(q, eps);
    double exact = BruteForce(raw, params, q);
    EXPECT_TRUE(r.converged);
    if (exact > 1e-12) {
      EXPECT_LE(std::abs(r.estimate - exact) / exact, eps + 1e-9);
    }
    TauResult t = evaluator.EvaluateTau(q, 0.5);
    if (std::abs(exact - 0.5) > 1e-9) {
      EXPECT_EQ(t.above_threshold, exact >= 0.5);
    }
  }
}

TEST(EvaluatorTest, FarQueryWithFiniteSupportTerminatesImmediately) {
  PointSet data = TestDataset(4000, 20);
  KernelParams params = MakeScottParams(KernelType::kTriangular, data);
  KdTree tree(std::move(data));
  auto bounds = MakeNodeBounds(Method::kQuad, params);
  KdeEvaluator evaluator(&tree, params, bounds.get());

  // Far outside the data: the root bound is exactly [0, 0].
  EvalResult r = evaluator.EvaluateEps(Point{100.0, 100.0}, 0.01);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace kdv
