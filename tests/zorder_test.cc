#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "index/kdtree.h"
#include "core/evaluator.h"
#include "sampling/zorder.h"

namespace kdv {
namespace {

TEST(ZorderSampleSizeTest, ScalesInverseQuadraticallyWithEps) {
  size_t n = 100000000;
  size_t m1 = ZorderSampleSize(0.02, 0.2, n);
  size_t m2 = ZorderSampleSize(0.04, 0.2, n);
  EXPECT_NEAR(static_cast<double>(m1) / static_cast<double>(m2), 4.0, 0.1);
}

TEST(ZorderSampleSizeTest, RelativeToAbsoluteConversionInflatesSample) {
  size_t n = 100000000;
  EXPECT_GT(ZorderSampleSize(0.01, 0.2, n, 3.0),
            8 * ZorderSampleSize(0.01, 0.2, n, 1.0));
}

TEST(ZorderSampleSizeTest, CappedAtDatasetSize) {
  EXPECT_EQ(ZorderSampleSize(0.0001, 0.2, 500), 500u);
}

TEST(ZorderSampleSizeTest, AtLeastOne) {
  EXPECT_GE(ZorderSampleSize(10.0, 0.9, 100), 1u);
}

TEST(ZorderSampleTest, ExactSizeAndMembership) {
  PointSet pts = GenerateMixture(CrimeSpec(0.005));
  PointSet sample = ZorderSample(pts, 200);
  ASSERT_EQ(sample.size(), 200u);
  for (size_t i = 0; i < 10; ++i) {
    bool found = false;
    for (const Point& p : pts) {
      if (p == sample[i]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(ZorderSampleTest, FullSampleIsIdentity) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  PointSet sample = ZorderSample(pts, pts.size());
  EXPECT_EQ(sample.size(), pts.size());
}

TEST(ZorderSampleTest, Deterministic) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  PointSet a = ZorderSample(pts, 100);
  PointSet b = ZorderSample(pts, 100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ZorderSampleTest, PreservesSpatialCoverage) {
  // Two distant blobs: a systematic Z-order sample must hit both.
  MixtureSpec spec;
  spec.n = 10000;
  spec.num_clusters = 2;
  spec.cluster_stddev_min = spec.cluster_stddev_max = 0.02;
  spec.noise_fraction = 0.0;
  spec.seed = 123;
  PointSet pts = GenerateMixture(spec);
  PointSet sample = ZorderSample(pts, 50);

  Rect box = BoundingBox(pts);
  int left = 0, right = 0;
  double mid = 0.5 * (box.lo(0) + box.hi(0));
  for (const Point& p : sample) {
    (p[0] < mid ? left : right)++;
  }
  int left_full = 0;
  for (const Point& p : pts) {
    if (p[0] < mid) ++left_full;
  }
  // Both sides populated iff the full data populates both sides.
  if (left_full > 500 && left_full < 9500) {
    EXPECT_GT(left, 0);
    EXPECT_GT(right, 0);
  }
}

TEST(ZorderWeightTest, ScalesByInverseSamplingRate) {
  KernelParams params;
  params.weight = 0.5;
  KernelParams scaled = ScaleWeightForSample(params, 1000, 100);
  EXPECT_DOUBLE_EQ(scaled.weight, 5.0);
  EXPECT_DOUBLE_EQ(scaled.gamma, params.gamma);
}

// Statistical quality: the weighted sample aggregate approximates the full
// aggregate at hotspot queries.
TEST(ZorderQualityTest, SampleEstimatesFullDensity) {
  PointSet pts = GenerateMixture(HomeSpec(0.01));
  KernelParams params = MakeScottParams(KernelType::kGaussian, pts);

  PointSet sample = ZorderSample(pts, 2000);
  KernelParams sample_params =
      ScaleWeightForSample(params, pts.size(), sample.size());

  KdTree full_tree{PointSet(pts)};
  KdTree sample_tree(std::move(sample));
  KdeEvaluator full(&full_tree, params, nullptr);
  KdeEvaluator reduced(&sample_tree, sample_params, nullptr);

  // Compare at the densest cluster centers (where relative error is
  // meaningful).
  Rect box = BoundingBox(pts);
  Point center = box.Center();
  double f_full = full.EvaluateExact(center);
  double f_reduced = reduced.EvaluateExact(center);
  ASSERT_GT(f_full, 0.0);
  EXPECT_NEAR(f_reduced / f_full, 1.0, 0.25);
}

}  // namespace
}  // namespace kdv
