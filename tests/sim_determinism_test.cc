// Deterministic simulation suite: the replay contract and its machinery.
//
// Part 1 covers the substrate units — SimClock advance/wait routing,
// SimExecutor's cooperative scheduling (admission parity with ThreadPool,
// virtual-time sleeps, Waker wakeups, seed-identical interleavings), and
// FaultSchedule's spec round-trip plus the greedy shrinker. Part 2 is the
// whole-stack contract: RunSimulation twice with the same seed must produce
// byte-identical event logs (and hashes, and counters), different seeds must
// diverge, and the planted-bug canary proves the invariant checkers and the
// schedule reducer actually catch and minimize a real bookkeeping bug.
// Part 3 asserts the Stop() latency bound the Clock seam exists to provide:
// components with periodic background loops (watchdog, scrubber) must stop
// promptly even mid-sleep, because their waits go through Clock::WaitFor
// with a Waker instead of raw sleeps.
#include "sim/sim_env.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/fault_schedule.h"
#include "sim/sim_clock.h"
#include "sim/sim_executor.h"
#include "serve/scrubber.h"
#include "serve/watchdog.h"
#include "util/clock.h"
#include "util/failpoint.h"
#include "util/status.h"
#include "util/timer.h"

namespace kdv {
namespace {

// ---------------------------------------------------------------------------
// SimClock
// ---------------------------------------------------------------------------

TEST(SimClockTest, AdvanceIsMonotoneAndWaitForAdvancesOnDriverThread) {
  SimClock clock;
  EXPECT_EQ(clock.NowSeconds(), 0.0);
  EXPECT_TRUE(clock.IsSimulated());

  clock.AdvanceTo(2.5);
  EXPECT_EQ(clock.NowSeconds(), 2.5);
  clock.AdvanceTo(1.0);  // never goes backwards
  EXPECT_EQ(clock.NowSeconds(), 2.5);

  // Off a simulated task, WaitFor is a direct virtual-time advance.
  clock.WaitFor(0.5, nullptr);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 3.0);
}

TEST(SimClockTest, WaitForReturnsWithoutAdvanceWhenWakerAlreadySet) {
  SimClock clock;
  Waker waker;
  waker.Set();
  clock.WaitFor(100.0, &waker);
  EXPECT_EQ(clock.NowSeconds(), 0.0);
}

// ---------------------------------------------------------------------------
// SimExecutor
// ---------------------------------------------------------------------------

TEST(SimExecutorTest, AdmissionMatchesThreadPoolContract) {
  SimClock clock;
  SimExecutor ex(&clock, {/*num_workers=*/1, /*max_queue=*/2, /*seed=*/1});
  int ran = 0;
  ASSERT_TRUE(ex.TrySubmit([&ran] { ++ran; }).ok());
  ASSERT_TRUE(ex.TrySubmit([&ran] { ++ran; }).ok());
  Status shed = ex.TrySubmit([&ran] { ++ran; });
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);

  ex.RunUntilIdle();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(ex.tasks_executed(), 2u);

  ex.Stop();
  Status late = ex.TrySubmit([&ran] { ++ran; });
  EXPECT_EQ(late.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ran, 2);
}

TEST(SimExecutorTest, SleepersAdvanceVirtualTimeNotWallTime) {
  SimClock clock;
  SimExecutor ex(&clock, {/*num_workers=*/2, /*max_queue=*/8, /*seed=*/3});
  RealClock real;
  Timer wall(&real);
  ASSERT_TRUE(ex.TrySubmit([&clock] { clock.WaitFor(5.0, nullptr); }).ok());
  ASSERT_TRUE(ex.TrySubmit([&clock] { clock.WaitFor(9.0, nullptr); }).ok());
  ex.RunUntilIdle();
  EXPECT_GE(clock.NowSeconds(), 9.0);
  // 9 virtual seconds must cost nowhere near 9 wall seconds.
  EXPECT_LT(wall.ElapsedSeconds(), 5.0);
  ex.Stop();
}

TEST(SimExecutorTest, WakerCutsASleepShort) {
  SimClock clock;
  SimExecutor ex(&clock, {/*num_workers=*/2, /*max_queue=*/8, /*seed=*/7});
  Waker waker;
  bool sleeper_done = false;
  ASSERT_TRUE(ex.TrySubmit([&clock, &waker, &sleeper_done] {
                  clock.WaitFor(1000.0, &waker);
                  sleeper_done = true;
                }).ok());
  ASSERT_TRUE(ex.TrySubmit([&clock, &waker] {
                  clock.WaitFor(0.5, nullptr);
                  waker.Set();
                }).ok());
  ex.RunUntilIdle();
  EXPECT_TRUE(sleeper_done);
  // The 1000 s sleep was interrupted by the Set(), not slept out.
  EXPECT_LT(clock.NowSeconds(), 100.0);
  ex.Stop();
}

TEST(SimExecutorTest, SameSeedSameInterleaving) {
  auto run = [](uint64_t seed) {
    SimClock clock;
    SimExecutor ex(&clock, {/*num_workers=*/3, /*max_queue=*/16, seed});
    std::vector<int> order;
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(ex.TrySubmit([&clock, &order, i] {
                      order.push_back(i);
                      clock.WaitFor(0.01 * (i % 3), nullptr);
                      order.push_back(10 + i);
                    }).ok());
    }
    ex.RunUntilIdle();
    ex.Stop();
    return order;
  };
  const std::vector<int> a = run(42);
  const std::vector<int> b = run(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 12u);
}

// ---------------------------------------------------------------------------
// FaultSchedule
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, DerivationIsDeterministic) {
  FaultSchedule a = DeriveFaultSchedule(99, 300);
  FaultSchedule b = DeriveFaultSchedule(99, 300);
  EXPECT_EQ(a.Spec(), b.Spec());
  EXPECT_FALSE(a.events.empty());
  FaultSchedule c = DeriveFaultSchedule(100, 300);
  EXPECT_NE(a.Spec(), c.Spec());
}

TEST(FaultScheduleTest, SpecParsesBackToItself) {
  FaultSchedule derived = DeriveFaultSchedule(1234, 400);
  StatusOr<FaultSchedule> parsed = FaultSchedule::Parse(derived.Spec());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Spec(), derived.Spec());
}

TEST(FaultScheduleTest, ParseRejectsUnknownSitesAndGarbage) {
  EXPECT_FALSE(FaultSchedule::Parse("5:no.such.site=error").ok());
  EXPECT_FALSE(FaultSchedule::Parse("not a schedule").ok());
  EXPECT_FALSE(FaultSchedule::Parse("x:io.write=error").ok());
}

TEST(FaultScheduleTest, ShrinkerFindsTheOneGuiltyEvent) {
  StatusOr<FaultSchedule> parsed = FaultSchedule::Parse(
      "5:io.fsync=error;10:io.write=error;20:serve.render=delay(30,2);"
      "30:journal.tail=error");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // "Fails" iff the candidate still contains the io.write event.
  FaultSchedule minimal =
      ShrinkSchedule(*parsed, [](const FaultSchedule& candidate) {
        return std::any_of(candidate.events.begin(), candidate.events.end(),
                           [](const FaultEvent& e) {
                             return e.site == "io.write";
                           });
      });
  ASSERT_EQ(minimal.events.size(), 1u);
  EXPECT_EQ(minimal.events[0].site, "io.write");
}

// ---------------------------------------------------------------------------
// Whole-stack replay contract
// ---------------------------------------------------------------------------

SimOptions SmallRun(uint64_t seed) {
  SimOptions options;
  options.seed = seed;
  options.num_ops = 100;
  options.state_root = ::testing::TempDir();
  return options;
}

TEST(SimReplayTest, SameSeedIsBitIdentical) {
  SimReport first = RunSimulation(SmallRun(11));
  SimReport second = RunSimulation(SmallRun(11));
  EXPECT_FALSE(first.failed) << first.failure;
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.event_hash, second.event_hash);
  EXPECT_EQ(first.submits, second.submits);
  EXPECT_EQ(first.completions, second.completions);
  EXPECT_EQ(first.crashes, second.crashes);
  EXPECT_EQ(first.virtual_seconds, second.virtual_seconds);
  EXPECT_GT(first.completions, 0u);
  // The second replay fingerprint: the registry is Reset() at run start and
  // every obs duration flows through the virtual clock (SimEnv installs it
  // as the process default), so the end-of-run metrics snapshot must be
  // byte-identical — a real-clock read anywhere in the instrumentation
  // shows up here as a differing duration histogram.
  EXPECT_FALSE(first.metrics_text.empty());
  EXPECT_EQ(first.metrics_text, second.metrics_text);
  EXPECT_EQ(first.metrics_crc, second.metrics_crc);
  EXPECT_NE(first.metrics_crc, 0u);
}

TEST(SimReplayTest, DifferentSeedsDiverge) {
  SimReport a = RunSimulation(SmallRun(11));
  SimReport b = RunSimulation(SmallRun(12));
  EXPECT_FALSE(a.failed) << a.failure;
  EXPECT_FALSE(b.failed) << b.failure;
  EXPECT_NE(a.event_hash, b.event_hash);
}

TEST(SimReplayTest, FaultsDisabledStillRunsAndDiffersFromFaulted) {
  SimOptions options = SmallRun(11);
  options.faults_enabled = false;
  SimReport quiet = RunSimulation(options);
  EXPECT_FALSE(quiet.failed) << quiet.failure;
  // Same quiet run replays identically too.
  SimReport quiet2 = RunSimulation(options);
  EXPECT_EQ(quiet.event_hash, quiet2.event_hash);
}

TEST(SimReplayTest, PlantedBugIsCaughtAndMinimized) {
  // The canary: a deliberately corrupted completion ledger must trip the
  // "no lost/double-completed requests" invariant — proof the checkers see
  // real bugs, not just injected faults.
  SimOptions options = SmallRun(5);
  options.num_ops = 150;
  options.plant_bug = true;
  SimReport failing = RunSimulation(options);
  ASSERT_TRUE(failing.failed);
  EXPECT_NE(failing.failure.find("completed twice"), std::string::npos)
      << failing.failure;

  SimReport minimal = MinimizeFailure(options, failing);
  EXPECT_TRUE(minimal.failed);
  EXPECT_LE(minimal.schedule.events.size(), failing.schedule.events.size());
  // The repro line names everything needed to re-run this exact failure.
  const std::string repro = minimal.ReproLine();
  EXPECT_NE(repro.find("--seed 5"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--plant-bug"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--ops 150"), std::string::npos) << repro;
}

// ---------------------------------------------------------------------------
// Stop() latency bounds (the Clock seam's other job)
// ---------------------------------------------------------------------------

// Background loops sleep through Clock::WaitFor with a Waker, so Stop() can
// interrupt a sleep instead of waiting it out. With a 5 s poll interval, a
// prompt stop proves the wait is interruptible; a raw sleep would hold
// Stop() for the full interval and trip the bound (generously set for slow
// CI machines, still far under the interval).
TEST(StopLatencyTest, WatchdogStopsMidSleep) {
  RenderWatchdog::Options options;
  options.enabled = true;
  options.poll_interval_seconds = 5.0;
  RenderWatchdog watchdog(options);
  // First registration spawns the monitor thread, which goes to sleep.
  auto entry = watchdog.Watch(/*request_id=*/1, /*budget_seconds=*/0.0);
  ASSERT_NE(entry, nullptr);
  RealClock real;
  Timer wall(&real);
  watchdog.Stop();
  EXPECT_LT(wall.ElapsedSeconds(), 2.0);
}

TEST(StopLatencyTest, ScrubberStopsMidSleep) {
  IntegrityScrubber::Options options;
  options.enabled = true;
  options.interval_seconds = 5.0;
  options.pixel_samples_per_tick = 0;
  IntegrityScrubber scrubber(
      options, /*evaluator=*/[] { return nullptr; },
      /*on_corruption=*/[](const std::string&) { return OkStatus(); });
  scrubber.Start();
  RealClock real;
  Timer wall(&real);
  scrubber.Stop();
  EXPECT_LT(wall.ElapsedSeconds(), 2.0);
}

TEST(StopLatencyTest, SimExecutorStopDrainsSleepersInstantly) {
  SimClock clock;
  SimExecutor ex(&clock, {/*num_workers=*/2, /*max_queue=*/8, /*seed=*/1});
  ASSERT_TRUE(ex.TrySubmit([&clock] { clock.WaitFor(3600.0, nullptr); }).ok());
  RealClock real;
  Timer wall(&real);
  ex.Stop();  // drains by advancing virtual time, not by waiting
  EXPECT_LT(wall.ElapsedSeconds(), 2.0);
  EXPECT_GE(clock.NowSeconds(), 3600.0);
  EXPECT_EQ(ex.tasks_executed(), 1u);
}

}  // namespace
}  // namespace kdv
