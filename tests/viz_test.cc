#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "viz/color_map.h"
#include "viz/frame.h"
#include "viz/pixel_grid.h"
#include "viz/render.h"
#include "workbench/workbench.h"

namespace kdv {
namespace {

Rect UnitSquare() {
  Rect r(2);
  r.Expand(Point{0.0, 0.0});
  r.Expand(Point{1.0, 1.0});
  return r;
}

// ---------------------------------------------------------------------------
// PixelGrid
// ---------------------------------------------------------------------------

TEST(PixelGridTest, CentersAreInsideDomain) {
  PixelGrid grid(16, 12, UnitSquare());
  EXPECT_EQ(grid.num_pixels(), 16u * 12u);
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      Point c = grid.PixelCenter(x, y);
      EXPECT_GT(c[0], 0.0);
      EXPECT_LT(c[0], 1.0);
      EXPECT_GT(c[1], 0.0);
      EXPECT_LT(c[1], 1.0);
    }
  }
}

TEST(PixelGridTest, TopLeftPixelMapsToTopOfDomain) {
  PixelGrid grid(10, 10, UnitSquare());
  Point top_left = grid.PixelCenter(0, 0);
  Point bottom_left = grid.PixelCenter(0, 9);
  EXPECT_DOUBLE_EQ(top_left[0], 0.05);
  EXPECT_DOUBLE_EQ(top_left[1], 0.95);   // screen y=0 is data-space top
  EXPECT_DOUBLE_EQ(bottom_left[1], 0.05);
}

TEST(PixelGridTest, AllPixelCentersRowMajor) {
  PixelGrid grid(3, 2, UnitSquare());
  PointSet centers = grid.AllPixelCenters();
  ASSERT_EQ(centers.size(), 6u);
  EXPECT_EQ(centers[0], grid.PixelCenter(0, 0));
  EXPECT_EQ(centers[1], grid.PixelCenter(1, 0));
  EXPECT_EQ(centers[3], grid.PixelCenter(0, 1));
  EXPECT_EQ(grid.PixelIndex(1, 1), 4u);
}

// ---------------------------------------------------------------------------
// Frame metrics
// ---------------------------------------------------------------------------

TEST(FrameMetricsTest, AverageRelativeError) {
  std::vector<double> exact = {1.0, 2.0, 4.0};
  std::vector<double> est = {1.1, 1.8, 4.0};
  // Errors: 0.1, 0.1, 0.0 -> mean 0.2/3.
  EXPECT_NEAR(AverageRelativeError(est, exact), 0.2 / 3.0, 1e-12);
}

TEST(FrameMetricsTest, MaxRelativeError) {
  std::vector<double> exact = {1.0, 2.0};
  std::vector<double> est = {1.5, 2.0};
  EXPECT_NEAR(MaxRelativeError(est, exact), 0.5, 1e-12);
}

TEST(FrameMetricsTest, FloorPreventsBlowup) {
  std::vector<double> exact = {0.0};
  std::vector<double> est = {1e-31};
  EXPECT_LT(AverageRelativeError(est, exact, 1e-30), 1.0);
}

TEST(FrameMetricsTest, BinaryMismatchRate) {
  std::vector<uint8_t> a = {0, 1, 1, 0};
  std::vector<uint8_t> b = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(BinaryMismatchRate(a, b), 0.5);
}

TEST(FrameTest, AtAccessorsRowMajor) {
  DensityFrame f(4, 3, 0.0);
  f.at(2, 1) = 7.0;
  EXPECT_DOUBLE_EQ(f.values[1 * 4 + 2], 7.0);
  EXPECT_DOUBLE_EQ(f.at(2, 1), 7.0);
}

// ---------------------------------------------------------------------------
// Color maps and PPM output
// ---------------------------------------------------------------------------

TEST(ColorMapTest, HeatColorEndpointsAndClamping) {
  Rgb cold = HeatColor(0.0);
  Rgb hot = HeatColor(1.0);
  EXPECT_EQ(cold.r, 0);
  EXPECT_GT(cold.b, 100);  // blue end
  EXPECT_EQ(hot.r, 255);   // red end
  EXPECT_EQ(hot.b, 0);
  EXPECT_EQ(HeatColor(-5.0), cold);
  EXPECT_EQ(HeatColor(5.0), hot);
}

TEST(ColorMapTest, HeatColorVariesMonotonicallyInRedChannel) {
  int prev = -1;
  for (double t = 1.0 / 3.0; t <= 1.0; t += 0.01) {
    Rgb c = HeatColor(t);
    EXPECT_GE(c.r, prev);
    prev = c.r;
  }
}

TEST(ImageTest, WritePpmProducesValidHeader) {
  Image img(4, 2);
  img.at(0, 0) = {255, 0, 0};
  std::string path = ::testing::TempDir() + "/kdv_test.ppm";
  ASSERT_TRUE(img.WritePpm(path));

  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  char first[3];
  in.read(first, 3);
  EXPECT_EQ(static_cast<uint8_t>(first[0]), 255);
  EXPECT_EQ(static_cast<uint8_t>(first[1]), 0);
  std::remove(path.c_str());
}

TEST(ColorMapTest, PaletteEndpointsAreDistinctAndClamped) {
  for (Palette p : {Palette::kHeat, Palette::kViridis, Palette::kGrayscale}) {
    Rgb lo = PaletteColor(p, 0.0);
    Rgb hi = PaletteColor(p, 1.0);
    EXPECT_FALSE(lo == hi);
    EXPECT_EQ(PaletteColor(p, -1.0), lo);
    EXPECT_EQ(PaletteColor(p, 2.0), hi);
  }
}

TEST(ColorMapTest, GrayscaleIsMonotone) {
  int prev = -1;
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    Rgb c = PaletteColor(Palette::kGrayscale, t);
    EXPECT_EQ(c.r, c.g);
    EXPECT_EQ(c.g, c.b);
    EXPECT_GE(c.r, prev);
    prev = c.r;
  }
}

TEST(ColorMapTest, ViridisMatchesKnownControlPoints) {
  Rgb start = PaletteColor(Palette::kViridis, 0.0);
  Rgb end = PaletteColor(Palette::kViridis, 1.0);
  // Dark violet start, yellow end.
  EXPECT_GT(start.b, start.g);
  EXPECT_GT(end.r, 200);
  EXPECT_GT(end.g, 200);
  EXPECT_LT(end.b, 80);
}

TEST(ImageTest, WritePgmProducesValidGrayscale) {
  Image img(2, 1);
  img.at(0, 0) = {255, 255, 255};
  img.at(1, 0) = {0, 0, 0};
  std::string path = ::testing::TempDir() + "/kdv_test.pgm";
  ASSERT_TRUE(img.WritePgm(path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 2);
  EXPECT_EQ(h, 1);
  in.get();
  char px[2];
  in.read(px, 2);
  EXPECT_EQ(static_cast<uint8_t>(px[0]), 255);
  EXPECT_EQ(static_cast<uint8_t>(px[1]), 0);
  std::remove(path.c_str());
}

TEST(RenderImageTest, PaletteOverloadProducesDifferentPixels) {
  DensityFrame f(2, 1);
  f.at(0, 0) = 0.0;
  f.at(1, 0) = 1.0;
  Image heat = RenderHeatMap(f, Palette::kHeat);
  Image gray = RenderHeatMap(f, Palette::kGrayscale);
  EXPECT_FALSE(heat.at(1, 0) == gray.at(1, 0));
}

TEST(RenderImageTest, HeatMapNormalizesRange) {
  DensityFrame f(2, 1);
  f.at(0, 0) = 0.0;
  f.at(1, 0) = 10.0;
  Image img = RenderHeatMap(f);
  EXPECT_EQ(img.at(0, 0), HeatColor(0.0));
  EXPECT_EQ(img.at(1, 0), HeatColor(1.0));
}

TEST(RenderImageTest, ConstantFrameRendersUniformly) {
  DensityFrame f(3, 3, 5.0);
  Image img = RenderHeatMap(f);
  EXPECT_EQ(img.at(0, 0), img.at(2, 2));
}

TEST(RenderImageTest, ThresholdMapTwoColors) {
  DensityFrame f(2, 1);
  f.at(0, 0) = 1.0;
  f.at(1, 0) = 3.0;
  Image img = RenderThresholdMap(f, 2.0);
  EXPECT_FALSE(img.at(0, 0) == img.at(1, 0));
  // Above-threshold pixel must be the "hot" (reddish) color.
  EXPECT_GT(img.at(1, 0).r, img.at(1, 0).b);
}

// ---------------------------------------------------------------------------
// Whole-frame rendering consistency
// ---------------------------------------------------------------------------

TEST(RenderFrameTest, EpsFrameMatchesExactFrameWithinEps) {
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  PixelGrid grid(24, 18, bench.data_bounds());

  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);

  DensityFrame exact_frame = RenderExactFrame(exact, grid, nullptr);
  BatchStats stats;
  DensityFrame quad_frame = RenderEpsFrame(quad, grid, 0.01, &stats);

  EXPECT_EQ(stats.queries, grid.num_pixels());
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_LE(MaxRelativeError(quad_frame.values, exact_frame.values, 1e-12),
            0.01 + 1e-6);
}

TEST(RenderFrameTest, TauFrameMatchesExactThresholding) {
  Workbench bench(GenerateMixture(CrimeSpec(0.002)), KernelType::kGaussian);
  PixelGrid grid(20, 15, bench.data_bounds());

  KdeEvaluator exact = bench.MakeEvaluator(Method::kExact);
  KdeEvaluator quad = bench.MakeEvaluator(Method::kQuad);

  DensityFrame exact_frame = RenderExactFrame(exact, grid, nullptr);
  // A tau in the interior of the value range.
  double tau = 0.0;
  for (double v : exact_frame.values) tau = std::max(tau, v);
  tau *= 0.3;

  BinaryFrame tau_frame = RenderTauFrame(quad, grid, tau, nullptr);
  for (size_t i = 0; i < tau_frame.values.size(); ++i) {
    if (std::abs(exact_frame.values[i] - tau) < 1e-12) continue;
    EXPECT_EQ(tau_frame.values[i] != 0, exact_frame.values[i] >= tau)
        << "pixel " << i;
  }
}

}  // namespace
}  // namespace kdv
