#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "kernel/kernel.h"

namespace kdv {
namespace {

constexpr double kPi = 3.14159265358979323846;

const KernelType kAllKernels[] = {
    KernelType::kGaussian,     KernelType::kTriangular,
    KernelType::kCosine,       KernelType::kExponential,
    KernelType::kEpanechnikov, KernelType::kQuartic,
    KernelType::kUniform,
};

TEST(KernelTest, NamesAreUnique) {
  for (KernelType a : kAllKernels) {
    for (KernelType b : kAllKernels) {
      if (a != b) {
        EXPECT_STRNE(KernelTypeName(a), KernelTypeName(b));
      }
    }
  }
}

TEST(KernelTest, ProfileAtZeroIsOne) {
  for (KernelType k : kAllKernels) {
    EXPECT_DOUBLE_EQ(KernelProfile(k, 0.0), 1.0) << KernelTypeName(k);
  }
}

TEST(KernelTest, ProfileIsNonNegativeAndBounded) {
  for (KernelType k : kAllKernels) {
    for (double x = 0.0; x < 10.0; x += 0.01) {
      double v = KernelProfile(k, x);
      EXPECT_GE(v, 0.0) << KernelTypeName(k) << " at x=" << x;
      EXPECT_LE(v, 1.0) << KernelTypeName(k) << " at x=" << x;
    }
  }
}

TEST(KernelTest, ProfileIsMonotoneNonIncreasing) {
  for (KernelType k : kAllKernels) {
    double prev = KernelProfile(k, 0.0);
    for (double x = 0.001; x < 10.0; x += 0.001) {
      double v = KernelProfile(k, x);
      EXPECT_LE(v, prev + 1e-15) << KernelTypeName(k) << " at x=" << x;
      prev = v;
    }
  }
}

TEST(KernelTest, FiniteSupportKernelsVanishPastEdge) {
  for (KernelType k : kAllKernels) {
    if (!HasFiniteSupport(k)) continue;
    double edge = SupportEdge(k);
    // At the edge the profile is (numerically) zero except for the uniform
    // indicator, whose support is the closed interval [0, 1].
    if (k != KernelType::kUniform) {
      EXPECT_NEAR(KernelProfile(k, edge), 0.0, 1e-15) << KernelTypeName(k);
    }
    EXPECT_DOUBLE_EQ(KernelProfile(k, edge + 0.5), 0.0) << KernelTypeName(k);
    EXPECT_DOUBLE_EQ(KernelProfile(k, edge * 1.0001), 0.0)
        << KernelTypeName(k);
  }
}

TEST(KernelTest, GaussianMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kGaussian, 1.3), std::exp(-1.3));
}

TEST(KernelTest, TriangularMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kTriangular, 0.25), 0.75);
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kTriangular, 2.0), 0.0);
}

TEST(KernelTest, CosineMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kCosine, 0.5), std::cos(0.5));
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kCosine, kPi / 2 + 0.01), 0.0);
}

TEST(KernelTest, EpanechnikovAndQuarticMatchClosedForms) {
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kEpanechnikov, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kQuartic, 0.5), 0.75 * 0.75);
}

TEST(KernelTest, UniformIsIndicator) {
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kUniform, 0.999), 1.0);
  EXPECT_DOUBLE_EQ(KernelProfile(KernelType::kUniform, 1.001), 0.0);
}

TEST(KernelTest, ClampedExpNegMatchesExpBelowTheEdge) {
  for (double x : {0.0, 1.0, 50.0, 700.0, 707.9}) {
    EXPECT_DOUBLE_EQ(ClampedExpNeg(x), std::exp(-x)) << x;
  }
}

TEST(KernelTest, ClampedExpNegIsExactlyZeroPastTheEdge) {
  EXPECT_EQ(ClampedExpNeg(kExpUnderflowX), 0.0);
  EXPECT_EQ(ClampedExpNeg(709.0), 0.0);
  EXPECT_EQ(ClampedExpNeg(1e300), 0.0);
  EXPECT_EQ(ClampedExpNeg(std::numeric_limits<double>::infinity()), 0.0);
}

// Known answers at extreme bandwidths (satellite of the resilience work):
// a pathological γ must produce exactly 0 or 1, never NaN/Inf/denormals.
TEST(KernelTest, ExtremeBandwidthsGiveFiniteKnownAnswers) {
  for (KernelType k : {KernelType::kGaussian, KernelType::kExponential}) {
    // x = γ·dist² (or γ·dist) enormous: the kernel has fully decayed.
    EXPECT_EQ(KernelProfile(k, 1e308), 0.0) << KernelTypeName(k);
    EXPECT_EQ(KernelProfile(k, std::numeric_limits<double>::infinity()), 0.0)
        << KernelTypeName(k);
    // γ → 0: every point looks like distance zero.
    EXPECT_DOUBLE_EQ(KernelProfile(k, 0.0), 1.0) << KernelTypeName(k);
    // Results never descend into denormal arithmetic.
    double v = KernelProfile(k, 707.0);
    EXPECT_TRUE(v == 0.0 || v >= std::numeric_limits<double>::min())
        << KernelTypeName(k);
  }
}

TEST(KernelParamsTest, ExtremeGammaNeverProducesNonFinite) {
  for (double gamma : {1e-300, 1e300, 1e308}) {
    for (KernelType k : {KernelType::kGaussian, KernelType::kExponential}) {
      KernelParams p;
      p.type = k;
      p.gamma = gamma;
      for (double sq_dist : {0.0, 1e-12, 1.0, 1e12, 1e300}) {
        double v = p.EvalSquaredDistance(sq_dist);
        EXPECT_TRUE(std::isfinite(v))
            << KernelTypeName(k) << " gamma=" << gamma
            << " sq_dist=" << sq_dist;
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

TEST(KernelParamsTest, XConventionMatchesKernelFamily) {
  KernelParams gaussian{KernelType::kGaussian, 2.0, 1.0};
  // x = gamma * dist^2.
  EXPECT_DOUBLE_EQ(gaussian.XFromSquaredDistance(9.0), 18.0);

  KernelParams triangular{KernelType::kTriangular, 2.0, 1.0};
  // x = gamma * dist.
  EXPECT_DOUBLE_EQ(triangular.XFromSquaredDistance(9.0), 6.0);
}

TEST(KernelParamsTest, EvalSquaredDistanceComposesProfile) {
  KernelParams p{KernelType::kGaussian, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(p.EvalSquaredDistance(4.0), std::exp(-2.0));
}

// ---------------------------------------------------------------------------
// Scott's rule
// ---------------------------------------------------------------------------

TEST(ScottTest, MatchesHandComputation) {
  // 1-d-like data embedded in 2-d with the same stddev in both dims.
  PointSet pts;
  for (int i = 0; i < 100; ++i) {
    double v = static_cast<double>(i);
    pts.push_back(Point{v, v});
  }
  double h = ScottBandwidth(pts);
  // sigma per dim = std of 0..99 ~ 29.0115; h = sigma * 100^(-1/6).
  double sigma = 29.011491975882016;
  EXPECT_NEAR(h, sigma * std::pow(100.0, -1.0 / 6.0), 1e-9);
}

TEST(ScottTest, DegenerateInputsFallBack) {
  PointSet single{Point{1.0, 2.0}};
  EXPECT_GT(ScottBandwidth(single), 0.0);
  PointSet constant(10, Point{3.0, 3.0});
  EXPECT_GT(ScottBandwidth(constant), 0.0);
}

TEST(ScottTest, MakeScottParamsGaussianUsesHalfInverseSquare) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  double h = ScottBandwidth(pts);
  KernelParams p = MakeScottParams(KernelType::kGaussian, pts);
  EXPECT_NEAR(p.gamma, 1.0 / (2.0 * h * h), 1e-12);
  EXPECT_NEAR(p.weight, 1.0 / static_cast<double>(pts.size()), 1e-15);
}

TEST(ScottTest, MakeScottParamsDistanceKernelsUseInverseH) {
  PointSet pts = GenerateMixture(MixtureSpec{});
  double h = ScottBandwidth(pts);
  for (KernelType k : {KernelType::kTriangular, KernelType::kCosine,
                       KernelType::kExponential}) {
    KernelParams p = MakeScottParams(k, pts);
    EXPECT_NEAR(p.gamma, 1.0 / h, 1e-12) << KernelTypeName(k);
  }
}

}  // namespace
}  // namespace kdv
