// Observability layer units: counter/gauge/histogram semantics, quantile
// error bounds, registry handle stability across Reset(), the recent-trace
// ring, and the exporters (pure functions of a snapshot; the JSON form must
// satisfy the strict validator). Concurrency: the hot-path increments are
// relaxed atomics, hammered here so the tsan job watches them.
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/json_writer.h"

namespace kdv {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetOverwritesAndReset) {
  Gauge g;
  g.Set(2.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, CountSumAndQuantileBounds) {
  Histogram h;
  const double values[] = {0.001, 0.002, 0.004, 0.008, 0.5};
  double sum = 0.0;
  for (double v : values) {
    h.Record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  // Quantiles are bucket-upper-bound estimates: never below the true value,
  // within the documented ~1/(2*kSubBuckets) relative error above it.
  const double p100 = h.Quantile(1.0);
  EXPECT_GE(p100, 0.5);
  EXPECT_LE(p100, 0.5 * (1.0 + 1.0 / Histogram::kSubBuckets) + 1e-12);
  const double p0 = h.Quantile(0.0);
  EXPECT_GE(p0, 0.001);
  EXPECT_LE(p0, 0.001 * (1.0 + 1.0 / Histogram::kSubBuckets) + 1e-12);
}

TEST(HistogramTest, NonPositiveAndNonFiniteGoToBucketZero) {
  Histogram h;
  h.Record(0.0);
  h.Record(-1.0);
  h.Record(std::nan(""));
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 4u);
  // The sum must stay finite: only positive finite values contribute.
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramTest, BucketIndexConsistentWithUpperBound) {
  // Every positive finite value lands in a bucket whose inclusive upper
  // bound is >= the value and whose lower edge (the previous bound) is not
  // above it — a value exactly on a boundary belongs to the next bucket.
  for (double v : {1e-9, 3.7e-6, 0.001, 0.0625, 1.0, 1.5, 123.456, 8e9}) {
    const int i = Histogram::BucketIndex(v);
    ASSERT_GT(i, 0) << v;
    ASSERT_LT(i, Histogram::kNumBuckets) << v;
    EXPECT_GE(Histogram::BucketUpperBound(i), v) << v;
    EXPECT_LE(Histogram::BucketUpperBound(i - 1), v) << v;
  }
}

TEST(HistogramTest, ResetZeroesInPlace) {
  Histogram h;
  h.Record(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  h.Record(2.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(RegistryTest, HandlesAreStableAndSurviveReset) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test_ops_total");
  Histogram* h = registry.GetHistogram("test_seconds");
  Gauge* g = registry.GetGauge("test_pressure");
  EXPECT_EQ(registry.GetCounter("test_ops_total"), c);
  EXPECT_EQ(registry.GetHistogram("test_seconds"), h);
  EXPECT_EQ(registry.GetGauge("test_pressure"), g);
  c->Increment(7);
  h->Record(0.25);
  g->Set(0.5);
  registry.Reset();
  // Same pointers, zeroed values: cached call-site handles stay valid.
  EXPECT_EQ(registry.GetCounter("test_ops_total"), c);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  c->Increment();
  EXPECT_EQ(registry.Snapshot().counters.size(), 1u);
}

TEST(RegistryTest, SnapshotIsNameOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("zeta_total")->Increment();
  registry.GetCounter("alpha_total")->Increment();
  registry.GetCounter("mid_total")->Increment();
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha_total");
  EXPECT_EQ(snap.counters[1].first, "mid_total");
  EXPECT_EQ(snap.counters[2].first, "zeta_total");
}

TEST(RegistryTest, TraceRingBoundedOldestDropped) {
  MetricsRegistry registry;
  for (uint64_t i = 1; i <= 100; ++i) {
    TraceSpan span;
    span.request_id = i;
    span.AddStage(TraceStage::kQueueWait, 0.001);
    registry.RecordTrace(span);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_LE(snap.traces.size(), 64u);
  ASSERT_FALSE(snap.traces.empty());
  // Oldest-first ordering, newest span always retained.
  EXPECT_EQ(snap.traces.back().request_id, 100u);
  for (size_t i = 1; i < snap.traces.size(); ++i) {
    EXPECT_EQ(snap.traces[i].request_id,
              snap.traces[i - 1].request_id + 1);
  }
  registry.Reset();
  EXPECT_TRUE(registry.Snapshot().traces.empty());
}

TEST(TraceSpanTest, AddStageAccumulatesIgnoresNonPositive) {
  TraceSpan span;
  span.AddStage(TraceStage::kRefinement, 0.25);
  span.AddStage(TraceStage::kRefinement, 0.25);
  span.AddStage(TraceStage::kRefinement, -1.0);
  span.AddStage(TraceStage::kRefinement, 0.0);
  EXPECT_DOUBLE_EQ(span.stage(TraceStage::kRefinement), 0.5);
  EXPECT_DOUBLE_EQ(span.stage(TraceStage::kCoarse), 0.0);
}

TEST(TraceSpanTest, StageTimerNullSpanIsInert) {
  { StageTimer timer(nullptr, TraceStage::kScrub); }  // must not crash
  TraceSpan span;
  { StageTimer timer(&span, TraceStage::kScrub); }
  // Real clock, near-instant scope: tiny or zero, never negative.
  EXPECT_GE(span.stage(TraceStage::kScrub), 0.0);
}

TEST(TraceStageNameTest, AllStagesNamed) {
  for (int i = 0; i < kNumTraceStages; ++i) {
    const char* name = TraceStageName(static_cast<TraceStage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  EXPECT_STREQ(TraceStageName(TraceStage::kQueueWait), "queue_wait");
}

MetricsSnapshot PopulatedSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("kdv_test_requests_total")->Increment(3);
  registry.GetGauge("kdv_test_pressure")->Set(0.75);
  Histogram* h = registry.GetHistogram("kdv_test_seconds");
  h->Record(0.001);
  h->Record(0.010);
  TraceSpan span;
  span.request_id = 42;
  span.epoch = 7;
  span.has_epoch = true;
  span.tier = "certified";
  span.attempts = 1;
  span.ok = true;
  span.total_seconds = 0.012;
  span.AddStage(TraceStage::kQueueWait, 0.001);
  span.AddStage(TraceStage::kRefinement, 0.010);
  registry.RecordTrace(span);
  return registry.Snapshot();
}

TEST(ExportTest, PrometheusShapeAndPurity) {
  const MetricsSnapshot snap = PopulatedSnapshot();
  const std::string text = ExportPrometheus(snap);
  EXPECT_NE(text.find("# TYPE kdv_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("kdv_test_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE kdv_test_pressure gauge"), std::string::npos);
  EXPECT_NE(text.find("kdv_test_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("kdv_test_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("kdv_trace_stage_seconds{request_id=\"42\""),
            std::string::npos);
  EXPECT_NE(text.find("stage=\"queue_wait\""), std::string::npos);
  // Pure function: same snapshot, same bytes.
  EXPECT_EQ(text, ExportPrometheus(snap));
}

TEST(ExportTest, JsonValidatesAndIsPure) {
  const MetricsSnapshot snap = PopulatedSnapshot();
  const std::string json = ExportJson(snap);
  const Status valid = JsonValidate(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_EQ(json, ExportJson(snap));
  EXPECT_NE(json.find("\"kdv_test_requests_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
}

TEST(ExportTest, JsonEpochNullUntilPublished) {
  MetricsRegistry registry;
  TraceSpan span;
  span.request_id = 1;
  span.has_epoch = false;  // never reached execution
  registry.RecordTrace(span);
  const std::string json = ExportJson(registry.Snapshot());
  EXPECT_TRUE(JsonValidate(json).ok());
  EXPECT_NE(json.find("\"epoch\":null"), std::string::npos);
}

TEST(ExportTest, EmptySnapshotExportsCleanly) {
  const MetricsSnapshot empty;
  EXPECT_TRUE(JsonValidate(ExportJson(empty)).ok());
  EXPECT_EQ(ExportPrometheus(empty), "");
}

TEST(ObsConcurrencyTest, ParallelIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("kdv_conc_total");
  Histogram* h = registry.GetHistogram("kdv_conc_seconds");
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, c, h] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->Increment();
        h->Record(0.001);
        // Concurrent lookups of an existing metric must also be safe.
        ASSERT_EQ(registry.GetCounter("kdv_conc_total"), c);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(h->count(), uint64_t{kThreads} * kOpsPerThread);
  EXPECT_NEAR(h->sum(), kThreads * kOpsPerThread * 0.001, 1e-6);
}

}  // namespace
}  // namespace obs
}  // namespace kdv
