// Dynamic KDV: εKDV / τKDV over a point set that changes over time.
//
// Streaming KDV deployments (live crime feeds, sensor streams — cf. Lampe &
// Hauser in the paper's related work) insert and remove points continuously.
// Rebuilding the kd-tree per update would dominate; instead updates land in
// exact side buffers and the density decomposes as
//     F(q) = F_tree(q) + F_inserted(q) - F_removed(q),
// where the two buffer terms are computed exactly (they are small) and only
// F_tree is refined with bounds. The refinement terminates against the
// *adjusted* totals, so the (1±ε) guarantee holds for the live dataset. When
// a buffer outgrows `rebuild_fraction * n`, the index is rebuilt and the
// buffers fold in.
#ifndef QUADKDV_DYNAMIC_DYNAMIC_KDV_H_
#define QUADKDV_DYNAMIC_DYNAMIC_KDV_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bounds/node_bounds.h"
#include "core/evaluator.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"

namespace kdv {

class DynamicKdv {
 public:
  struct Options {
    Method method = Method::kQuad;
    KernelType kernel = KernelType::kGaussian;
    size_t leaf_size = 32;
    // Rebuild when either buffer exceeds this fraction of the indexed size.
    double rebuild_fraction = 0.25;
    // If >= 0 overrides Scott's rule; otherwise gamma is derived from the
    // initial dataset and re-derived on every rebuild.
    double gamma_override = -1.0;
    BoundsOptions bounds;
  };

  // `initial` must be non-empty.
  DynamicKdv(PointSet initial, const Options& options);

  DynamicKdv(const DynamicKdv&) = delete;
  DynamicKdv& operator=(const DynamicKdv&) = delete;

  // Inserts a point (visible to all subsequent queries).
  void Insert(const Point& p);

  // Removes one occurrence of `p`. The point must be part of the live set
  // (inserted earlier or present initially); removing a non-member is
  // detected at the next rebuild and aborts.
  void Remove(const Point& p);

  // Number of live points (indexed + inserted - removed).
  size_t num_points() const;

  size_t pending_inserts() const { return inserted_.size(); }
  size_t pending_removals() const { return removed_.size(); }

  // (1±ε)-approximate density of the live set.
  EvalResult EvaluateEps(const Point& q, double eps) const;

  // Threshold classification of the live set.
  TauResult EvaluateTau(const Point& q, double tau) const;

  // Exact density of the live set (scan).
  double EvaluateExact(const Point& q) const;

  // Folds the buffers into a fresh index now (also re-derives gamma unless
  // overridden). Called automatically from Insert/Remove past the threshold.
  void Rebuild();

  const KernelParams& params() const { return params_; }

 private:
  // Exact buffer adjustment sum_{inserted} w*K - sum_{removed} w*K.
  double BufferAdjustment(const Point& q) const;

  Options options_;
  std::unique_ptr<KdTree> tree_;
  std::unique_ptr<NodeBounds> bounds_;
  KernelParams params_;
  PointSet inserted_;
  PointSet removed_;
};

}  // namespace kdv

#endif  // QUADKDV_DYNAMIC_DYNAMIC_KDV_H_
