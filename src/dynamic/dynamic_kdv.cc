#include "dynamic/dynamic_kdv.h"

#include <algorithm>
#include <utility>

#include "core/refinement_stream.h"
#include "util/check.h"

namespace kdv {

DynamicKdv::DynamicKdv(PointSet initial, const Options& options)
    : options_(options) {
  KDV_CHECK_MSG(!initial.empty(), "DynamicKdv requires initial data");
  params_ = MakeScottParams(options_.kernel, initial);
  if (options_.gamma_override >= 0.0) params_.gamma = options_.gamma_override;
  // Per-point weight 1: densities are raw kernel sums so that insertions /
  // removals compose additively. (Scott's 1/n weight would change for every
  // update and break additivity; callers can normalize by num_points().)
  params_.weight = 1.0;
  KdTree::Options tree_options;
  tree_options.leaf_size = options_.leaf_size;
  tree_ = std::make_unique<KdTree>(std::move(initial), tree_options);
  bounds_ = MakeNodeBounds(options_.method, params_, options_.bounds);
}

size_t DynamicKdv::num_points() const {
  return tree_->num_points() + inserted_.size() - removed_.size();
}

void DynamicKdv::Insert(const Point& p) {
  // An insert may cancel a pending removal of an equal point.
  for (size_t i = 0; i < removed_.size(); ++i) {
    if (removed_[i] == p) {
      removed_[i] = removed_.back();
      removed_.pop_back();
      return;
    }
  }
  inserted_.push_back(p);
  double threshold =
      options_.rebuild_fraction * static_cast<double>(tree_->num_points());
  if (static_cast<double>(inserted_.size()) > threshold) Rebuild();
}

void DynamicKdv::Remove(const Point& p) {
  // A removal may cancel a pending insert of an equal point.
  for (size_t i = 0; i < inserted_.size(); ++i) {
    if (inserted_[i] == p) {
      inserted_[i] = inserted_.back();
      inserted_.pop_back();
      return;
    }
  }
  removed_.push_back(p);
  KDV_CHECK_MSG(removed_.size() < tree_->num_points(),
                "removed more points than the index holds");
  double threshold =
      options_.rebuild_fraction * static_cast<double>(tree_->num_points());
  if (static_cast<double>(removed_.size()) > threshold) Rebuild();
}

void DynamicKdv::Rebuild() {
  PointSet live;
  live.reserve(num_points());
  // Consume removals by matching against indexed points; every removal must
  // find its point (otherwise the caller removed a non-member).
  std::vector<bool> removed_used(removed_.size(), false);
  for (const Point& p : tree_->points()) {
    bool skip = false;
    for (size_t i = 0; i < removed_.size(); ++i) {
      if (!removed_used[i] && removed_[i] == p) {
        removed_used[i] = true;
        skip = true;
        break;
      }
    }
    if (!skip) live.push_back(p);
  }
  for (bool used : removed_used) {
    KDV_CHECK_MSG(used, "Remove() was called with a point not in the set");
  }
  live.insert(live.end(), inserted_.begin(), inserted_.end());
  KDV_CHECK_MSG(!live.empty(), "dynamic dataset became empty");
  inserted_.clear();
  removed_.clear();

  if (options_.gamma_override < 0.0) {
    params_.gamma = MakeScottParams(options_.kernel, live).gamma;
  }
  KdTree::Options tree_options;
  tree_options.leaf_size = options_.leaf_size;
  tree_ = std::make_unique<KdTree>(std::move(live), tree_options);
  // Bound objects capture params by value; refresh after a gamma change.
  bounds_ = MakeNodeBounds(options_.method, params_, options_.bounds);
}

double DynamicKdv::BufferAdjustment(const Point& q) const {
  double adj = 0.0;
  for (const Point& p : inserted_) {
    adj += params_.EvalSquaredDistance(SquaredDistance(q, p));
  }
  for (const Point& p : removed_) {
    adj -= params_.EvalSquaredDistance(SquaredDistance(q, p));
  }
  return params_.weight * adj;
}

double DynamicKdv::EvaluateExact(const Point& q) const {
  KdeEvaluator exact(tree_.get(), params_, nullptr);
  return exact.EvaluateExact(q) + BufferAdjustment(q);
}

EvalResult DynamicKdv::EvaluateEps(const Point& q, double eps) const {
  KDV_CHECK(eps >= 0.0);
  const double adj = BufferAdjustment(q);
  RefinementStream stream(tree_.get(), params_, bounds_.get(), q);

  // Terminate against the adjusted totals. Removed mass makes the adjusted
  // lower bound potentially negative before refinement; the true density is
  // >= 0, so the floor is sound.
  auto adjusted_lower = [&] { return std::max(stream.lower() + adj, 0.0); };
  auto adjusted_upper = [&] {
    return std::max(stream.upper() + adj, adjusted_lower());
  };
  while (adjusted_upper() > (1.0 + eps) * adjusted_lower() && stream.Step()) {
  }

  EvalResult result;
  result.lower = adjusted_lower();
  result.upper = adjusted_upper();
  result.estimate = 0.5 * (result.lower + result.upper);
  result.iterations = stream.iterations();
  result.points_scanned =
      stream.points_scanned() + inserted_.size() + removed_.size();
  result.converged = result.upper <= (1.0 + eps) * result.lower ||
                     stream.exhausted();
  return result;
}

TauResult DynamicKdv::EvaluateTau(const Point& q, double tau) const {
  const double adj = BufferAdjustment(q);
  RefinementStream stream(tree_.get(), params_, bounds_.get(), q);
  while (std::max(stream.lower() + adj, 0.0) < tau &&
         stream.upper() + adj > tau && stream.Step()) {
  }

  TauResult result;
  result.lower = std::max(stream.lower() + adj, 0.0);
  result.upper = std::max(stream.upper() + adj, result.lower);
  result.iterations = stream.iterations();
  result.points_scanned =
      stream.points_scanned() + inserted_.size() + removed_.size();
  result.above_threshold = result.lower >= tau;
  return result;
}

}  // namespace kdv
