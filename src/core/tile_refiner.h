// Shared-traversal refinement over a pixel tile (one region pass per tile).
//
// Adjacent pixels make nearly identical prune/accept decisions near the top
// of the kd-tree. The TileRefiner runs the §3.2 best-first loop once per
// tile using *region* bounds (bounds/node_bounds.h EvaluateRegion):
// intervals valid for every query point inside the tile's rect. Each popped
// node is either
//   * pruned   — region upper bound is 0: the subtree contributes nothing to
//                any pixel of the tile and disappears entirely;
//   * accepted — its region interval is folded into a per-tile baseline
//                (εKDV: under a tile-wide gap budget that provably preserves
//                the per-pixel certificate; τKDV: only zero-gap intervals);
//   * expanded — replaced by its children's region bounds;
//   * deferred — left to per-pixel refinement (leaves, or once the visit /
//                frontier caps are hit).
// The deferred nodes form the TileFrontier that seeds every pixel's
// RefinementStream (Reset(q, frontier)); when the region totals alone settle
// the termination test, the whole tile is decided with zero per-pixel work.
//
// εKDV budget argument (why exhausted seeded streams stay certified): let
// L* be the tile's final region lower total before acceptance and G the
// accumulated gap of accepted nodes, with G <= α·ε·L* and α <= 1. For any
// pixel q, the exhausted seeded interval is [B_l + e(q), B_u + e(q)] where
// e(q) = Σ_frontier F_n(q) >= L* - B_l, so
//   ub - lb = B_u - B_l = G <= α·ε·L* <= ε·(B_l + e(q)) = ε·lb,
// i.e. ub <= (1+ε)·lb always holds at exhaustion and the midpoint estimate
// satisfies |R - F| <= ε·F. τKDV accepts only zero-gap intervals, so seeded
// streams can still reach the exact remainder and classify every pixel.
#ifndef QUADKDV_CORE_TILE_REFINER_H_
#define QUADKDV_CORE_TILE_REFINER_H_

#include <cstdint>

#include "bounds/node_bounds.h"
#include "core/tile_frontier.h"
#include "geom/rect.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"

namespace kdv {

struct TileRefinerOptions {
  // Cap on region bound evaluations per tile. Deliberately small: a region
  // bound evaluation costs ~3x a point bound evaluation (rect-to-rect
  // distances plus coefficient extremization), and measurements show its
  // marginal value collapses quickly — past ~128 evaluations on a 16x16
  // tile, each additional region evaluation settles so little slack that
  // the per-pixel streams save fewer (cheaper) point evaluations than the
  // region pass spends. Whole-tile decisions that happen at all happen
  // early, well inside this budget.
  uint32_t max_nodes_visited = 128;
  // Cap on undecided nodes carried into the frontier. Frontier size costs
  // pixels nothing up front (seeding is O(1) and nodes enter a stream's
  // heap lazily, in region-gap order), so this is a memory/cache-footprint
  // valve rather than a per-pixel cost knob; with the node budget above it
  // rarely binds.
  uint32_t max_frontier = 192;
  // Fraction α of the ε gap budget the tile pass may spend on accepted
  // nodes; the remainder is head-room for the per-pixel streams. Must be in
  // (0, 1].
  double accept_fraction = 0.5;
};

// Stateless over queries; one instance may be shared by concurrent workers
// (same contract as KdeEvaluator). Non-owning pointers.
class TileRefiner {
 public:
  TileRefiner(const KdTree* tree, const KernelParams& params,
              const NodeBounds* bounds, const TileRefinerOptions& options = {});

  // One region pass for an εKDV tile whose pixel centers all lie inside
  // `query_rect`. eps >= 0.
  TileFrontier BuildEps(const Rect& query_rect, double eps) const;

  // One region pass for a τKDV tile.
  TileFrontier BuildTau(const Rect& query_rect, double tau) const;

  const TileRefinerOptions& options() const { return options_; }

 private:
  TileFrontier Build(const Rect& query_rect, bool eps_mode,
                     double param) const;

  const KdTree* tree_;
  KernelParams params_;
  const NodeBounds* bounds_;
  TileRefinerOptions options_;
};

}  // namespace kdv

#endif  // QUADKDV_CORE_TILE_REFINER_H_
