// Batch drivers: εKDV / τKDV / exact KDV over a set of query points.
//
// Benchmarks and the visualization layers all funnel through these, so
// timing and work accounting are measured uniformly across methods.
#ifndef QUADKDV_CORE_KDV_RUNNER_H_
#define QUADKDV_CORE_KDV_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/evaluator.h"
#include "geom/point.h"
#include "util/timer.h"

namespace kdv {

// Aggregate work/timing statistics of one batch run.
struct BatchStats {
  double seconds = 0.0;
  uint64_t queries = 0;           // queries actually evaluated
  uint64_t iterations = 0;        // total refinement steps
  uint64_t points_scanned = 0;    // total exact point evaluations
  bool completed = true;          // false if a deadline cut the batch short
};

// εKDV over `queries`; out[i] is the (1±eps)-approximate density of
// queries[i]. `stats` may be nullptr.
std::vector<double> RunEpsBatch(const KdeEvaluator& evaluator,
                                const PointSet& queries, double eps,
                                BatchStats* stats);

// τKDV over `queries`; out[i] is 1 iff F_P(queries[i]) >= tau.
std::vector<uint8_t> RunTauBatch(const KdeEvaluator& evaluator,
                                 const PointSet& queries, double tau,
                                 BatchStats* stats);

// Exact KDV (sequential scan per query).
std::vector<double> RunExactBatch(const KdeEvaluator& evaluator,
                                  const PointSet& queries, BatchStats* stats);

// Deadline-aware εKDV in a caller-chosen evaluation order: evaluates
// queries[order[k]] for k = 0,1,... until the deadline expires, writing
// results into (*out)[order[k]]. Entries not reached keep their prior value.
// Returns the number of queries evaluated. Used by the progressive
// framework (§6) and its EXACT/sampling competitors.
size_t RunEpsOrdered(const KdeEvaluator& evaluator, const PointSet& queries,
                     const std::vector<uint32_t>& order, double eps,
                     Deadline* deadline, std::vector<double>* out,
                     BatchStats* stats);

}  // namespace kdv

#endif  // QUADKDV_CORE_KDV_RUNNER_H_
