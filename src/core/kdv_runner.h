// Batch drivers: εKDV / τKDV / exact KDV over a set of query points.
//
// Benchmarks and the visualization layers all funnel through these, so
// timing and work accounting are measured uniformly across methods. Every
// batch accepts an optional QueryControl carrying a per-request Deadline and
// a shared CancelToken; stops are cooperative at per-query granularity (and,
// for the bound-refining batches, at iteration granularity inside a query).
#ifndef QUADKDV_CORE_KDV_RUNNER_H_
#define QUADKDV_CORE_KDV_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/evaluator.h"
#include "geom/point.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/timer.h"

namespace kdv {

// Aggregate work/timing statistics of one batch run.
struct BatchStats {
  double seconds = 0.0;
  uint64_t queries = 0;           // queries actually evaluated
  uint64_t iterations = 0;        // total refinement steps
  uint64_t points_scanned = 0;    // total exact point evaluations
  uint64_t nodes_visited = 0;     // per-pixel node bound evaluations
  bool completed = true;          // false if the batch was cut short
  bool deadline_expired = false;  // cut short by the per-request deadline
  bool cancelled = false;         // cut short by the CancelToken
  uint64_t numeric_faults = 0;    // queries clamped by numerical hardening

  // Shared-traversal (tile-shared) pruning-efficiency counters, populated by
  // the parallel frame renderer when RenderOptions::tile_shared is on.
  uint64_t tile_nodes_visited = 0;   // region bound evaluations (tile passes)
  uint64_t tile_accepted = 0;        // nodes folded into tile baselines
  uint64_t tile_pruned = 0;          // subtrees discarded tile-wide
  uint64_t tiles_decided = 0;        // tiles finished with zero per-pixel work
  uint64_t frontier_cache_hits = 0;  // frames served from a cached frontier
  // Time inside tile region passes, summed across tiles (CPU seconds, not
  // wall time; measured through the clock seam, so 0 under the simulator's
  // virtual clock). Feeds the tile_pass trace stage and obs histograms.
  double tile_seconds = 0.0;
  // Non-OK when an internal fault (e.g. an injected failpoint error) aborted
  // the batch; the partial outputs written so far remain valid.
  Status status = OkStatus();
};

// Adds one query's work accounting (query count, iterations, points
// scanned, numeric faults) to *stats. No-op when stats == nullptr. The
// single place batch drivers — serial and parallel — record per-query work,
// so the two result types can never drift apart in what they count.
void AccumulateQueryStats(BatchStats* stats, const EvalResult& r);
void AccumulateQueryStats(BatchStats* stats, const TauResult& r);

// εKDV over `queries`; out[i] is the (1±eps)-approximate density of
// queries[i]. `stats` may be nullptr. Entries not reached before a stop
// keep 0.0.
std::vector<double> RunEpsBatch(const KdeEvaluator& evaluator,
                                const PointSet& queries, double eps,
                                const QueryControl& control,
                                BatchStats* stats);
std::vector<double> RunEpsBatch(const KdeEvaluator& evaluator,
                                const PointSet& queries, double eps,
                                BatchStats* stats);

// τKDV over `queries`; out[i] is 1 iff F_P(queries[i]) >= tau.
std::vector<uint8_t> RunTauBatch(const KdeEvaluator& evaluator,
                                 const PointSet& queries, double tau,
                                 const QueryControl& control,
                                 BatchStats* stats);
std::vector<uint8_t> RunTauBatch(const KdeEvaluator& evaluator,
                                 const PointSet& queries, double tau,
                                 BatchStats* stats);

// Exact KDV (sequential scan per query). Stops are per-query: one exact
// scan is the smallest unit of interruption for this method.
std::vector<double> RunExactBatch(const KdeEvaluator& evaluator,
                                  const PointSet& queries,
                                  const QueryControl& control,
                                  BatchStats* stats);
std::vector<double> RunExactBatch(const KdeEvaluator& evaluator,
                                  const PointSet& queries, BatchStats* stats);

// Deadline/cancellation-aware εKDV in a caller-chosen evaluation order:
// evaluates queries[order[k]] for k = 0,1,... until a stop condition fires,
// writing results into (*out)[order[k]]. Entries not reached keep their
// prior value. Returns the number of queries evaluated. Used by the
// progressive framework (§6) and its EXACT/sampling competitors.
size_t RunEpsOrdered(const KdeEvaluator& evaluator, const PointSet& queries,
                     const std::vector<uint32_t>& order, double eps,
                     const QueryControl& control, std::vector<double>* out,
                     BatchStats* stats);
// Back-compat shim: deadline-only control.
size_t RunEpsOrdered(const KdeEvaluator& evaluator, const PointSet& queries,
                     const std::vector<uint32_t>& order, double eps,
                     Deadline* deadline, std::vector<double>* out,
                     BatchStats* stats);

}  // namespace kdv

#endif  // QUADKDV_CORE_KDV_RUNNER_H_
