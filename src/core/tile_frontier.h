// Shared refinement frontier of one pixel tile.
//
// A TileFrontier is the output of the TileRefiner's single best-first region
// pass over a tile (core/tile_refiner.h): the kd-tree nodes whose region
// bounds could not decide the whole tile, plus the certified contribution
// interval of every node that *was* decided tile-wide (folded into
// base_lower/base_upper). Each pixel of the tile then seeds its
// RefinementStream from the frontier (Reset(q, frontier)) instead of the
// tree root, so the shared part of the traversal is paid once per tile.
//
// Soundness contract consumed by the stream: for every query q in the tile,
//   base_lower + sum_{n in nodes} F_n(q) <= F_P(q)
//                                        <= base_upper + sum_{n in nodes} F_n(q)
// and each frontier node carries its certified region interval
//   n.lower <= F_n(q) <= n.upper   for every q in the tile,
// so a pixel stream can be primed with ZERO per-pixel bound evaluations:
// the region intervals are valid starting intervals (their sums are
// precomputed in frontier_lower/frontier_upper, making priming O(1)), and
// best-first refinement injects frontier nodes lazily — in descending
// region-gap order — replacing each with this pixel's own bounds only when
// its slack actually blocks termination. The frontier nodes are disjoint
// subtrees covering exactly the points not accounted for by the baseline. A
// frontier with valid == false must be ignored (the pixel falls back to
// root-seeded refinement).
#ifndef QUADKDV_CORE_TILE_FRONTIER_H_
#define QUADKDV_CORE_TILE_FRONTIER_H_

#include <cstdint>
#include <vector>

namespace kdv {

struct TileFrontier {
  // Sum of the certified region bounds of all tile-accepted nodes. The gap
  // base_upper - base_lower is bounded by the acceptance budget (εKDV) or is
  // exactly 0 (τKDV), which is what keeps per-pixel certificates intact even
  // when a seeded stream exhausts without meeting its termination test.
  double base_lower = 0.0;
  double base_upper = 0.0;

  // One undecided subtree root with its certified region interval.
  struct Node {
    int32_t node = -1;
    double lower = 0.0;  // region lower bound on F_node(q), any q in tile
    double upper = 0.0;  // region upper bound
  };

  // Undecided subtree roots, descending region gap (ties: ascending node
  // id). The order is the stream's lazy-injection order: a seeded stream
  // consumes nodes front-to-back, and since a node's per-pixel gap never
  // exceeds its region gap, the next unconsumed entry's region gap is a
  // sound priority for best-first interleaving with the heap. Disjoint from
  // each other and from every accepted/pruned node.
  std::vector<Node> nodes;

  // Precomputed sums over `nodes` of the region interval ends, so seeding a
  // pixel stream is O(1): lb = base_lower + frontier_lower (resp. upper).
  double frontier_lower = 0.0;
  double frontier_upper = 0.0;

  // Whole-tile decisions: when `decided`, every pixel of the tile can be
  // finished with zero per-pixel work.
  bool decided = false;
  double decided_value = 0.0;  // εKDV: certified midpoint estimate
  bool decided_above = false;  // τKDV: region predicate outcome

  // False when the region pass hit a numeric fault (non-finite or genuinely
  // inverted region bounds); consumers must fall back to per-pixel
  // refinement from the root.
  bool valid = false;

  // Region-pass work accounting (merged into BatchStats by the renderer).
  uint64_t nodes_visited = 0;  // region bound evaluations
  uint64_t accepted = 0;       // nodes folded into the baseline
  uint64_t pruned = 0;         // nodes with zero tile-wide contribution
};

}  // namespace kdv

#endif  // QUADKDV_CORE_TILE_FRONTIER_H_
