// Step-wise bound refinement for one query point.
//
// A RefinementStream exposes the §3.2 best-first loop one queue-pop at a
// time, maintaining a certified, monotonically tightening interval
// [lower(), upper()] around F_P(q). εKDV, τKDV, the Fig-18 traces and the
// kernel-density classifier are all thin drivers over this stream.
//
// Reuse: a stream may be constructed unprimed and primed per query with
// Reset(q) — the priority-queue storage is retained across resets, so a tile
// of thousands of pixels performs zero heap allocations after the first few
// queries warm the buffer. A reset stream is indistinguishable from a
// freshly constructed one (the parallel renderer's bit-identical-output
// contract relies on this).
//
// Numerical hardening: every bound update is validated; if the bound math
// ever produces a NaN/Inf total or a genuinely inverted interval (beyond
// floating-point drift), the stream freezes at its last certified finite
// envelope and reports poisoned() instead of propagating the bad values.
// A stream whose very first bounds are already invalid falls back to the
// universal envelope [0, n·w·K(0)], which holds for every kernel.
#ifndef QUADKDV_CORE_REFINEMENT_STREAM_H_
#define QUADKDV_CORE_REFINEMENT_STREAM_H_

#include <cstdint>
#include <vector>

#include "bounds/node_bounds.h"
#include "core/tile_frontier.h"
#include "geom/point.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"

namespace kdv {

class RefinementStream {
 public:
  // Non-owning: tree/bounds must outlive the stream. bounds == nullptr means
  // the EXACT method: the stream starts already exhausted with
  // lower == upper == F_P(q).
  //
  // The unprimed form is the reusable-scratch entry point: the stream is
  // exhausted until Reset(q) primes it for a query.
  RefinementStream(const KdTree* tree, const KernelParams& params,
                   const NodeBounds* bounds);
  RefinementStream(const KdTree* tree, const KernelParams& params,
                   const NodeBounds* bounds, const Point& q);

  // Movable but not copyable: each stream self-accounts its queue storage
  // against MemBudget::Global() (source kRefinementScratch), and the charge
  // must follow exactly one owner. Charged on capacity growth, released on
  // destruction; clear()-style resets keep both capacity and charge.
  RefinementStream(RefinementStream&& other) noexcept;
  RefinementStream& operator=(RefinementStream&& other) noexcept;
  RefinementStream(const RefinementStream&) = delete;
  RefinementStream& operator=(const RefinementStream&) = delete;
  ~RefinementStream();

  // Re-primes the stream for query q, discarding all prior state but keeping
  // the queue's heap storage. Equivalent to constructing a fresh stream.
  void Reset(const Point& q);

  // Seeded variant: primes the stream from a tile frontier instead of the
  // tree root, in O(1) — the running totals start at the frontier baseline
  // plus the precomputed sum of the region intervals, and frontier nodes
  // are injected into the heap lazily (descending region gap) as their
  // slack comes to block termination. The shared part of the traversal
  // (everything the tile pass accepted or pruned) is never re-derived. The
  // frontier must be valid, built for a tile containing q, and must outlive
  // the stream's use of it (until the next Reset); requires
  // bounds != nullptr.
  void Reset(const Point& q, const TileFrontier& frontier);

  // Performs one refinement step (pop the loosest node, replace it by its
  // children's bounds or its exact leaf sum). Returns false if the stream
  // was already exhausted (or poisoned).
  bool Step();

  // Certified bounds: lower() <= F_P(q) <= upper(), weakly monotone in the
  // number of steps (best-so-far envelope; see evaluator.cc for why the raw
  // running totals alone are not monotone). Always finite, even after a
  // numeric fault.
  double lower() const { return best_lb_; }
  double upper() const { return best_ub_; }

  // Interval width; 0 once exhausted (up to FP drift, which is clamped).
  double gap() const { return best_ub_ - best_lb_; }

  bool exhausted() const { return heap_.empty() && seed_next_ >= seed_count_; }
  // True once a bound update produced NaN/Inf or an inverted interval; the
  // envelope is frozen at the last certified values and Step() refuses to
  // refine further.
  bool poisoned() const { return poisoned_; }
  uint64_t iterations() const { return iterations_; }
  uint64_t points_scanned() const { return points_scanned_; }
  // Per-node bound evaluations performed (root/seed priming + expansions):
  // the traversal-work metric the pruning-efficiency counters report.
  uint64_t node_evals() const { return node_evals_; }

 private:
  struct QueueEntry {
    double gap = 0.0;
    int32_t node = -1;
    double lower = 0.0;
    double upper = 0.0;
  };
  struct GapLess {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      return a.gap < b.gap;
    }
  };

  void Push(const QueueEntry& entry);
  QueueEntry Pop();
  // Charges any heap-capacity growth since the last sync to the global
  // memory budget. Capacity never shrinks while the stream lives, so the
  // delta is one-directional until the destructor releases it all.
  void SyncCharge();

  double LeafSum(const KdTree::Node& node) const;
  // Freezes the stream after a numeric fault, discarding pending work.
  void Poison();
  // Certified-for-free fallback [0, n·w·K(0)] used when even the root
  // bounds are invalid.
  void SetUniversalEnvelope();

  const KdTree* tree_;
  KernelParams params_;
  const NodeBounds* bounds_;
  Point q_;

  // Max-heap over gap (std::push_heap/pop_heap — the same ordering a
  // std::priority_queue would maintain, but clearable without freeing its
  // buffer).
  std::vector<QueueEntry> heap_;
  // Lazily injected tile frontier (seeded resets only). The nodes are
  // consumed front-to-back (descending region gap); every node already
  // contributes its region interval to lb_/ub_ from Reset, and injection
  // swaps that interval for this pixel's own bounds with a single Evaluate.
  // Never owned; a root Reset(q) clears it. Empty for root-seeded streams,
  // so their behaviour (and output) is untouched.
  const TileFrontier::Node* seed_nodes_ = nullptr;
  size_t seed_count_ = 0;
  size_t seed_next_ = 0;
  double lb_ = 0.0;       // raw running totals
  double ub_ = 0.0;
  double best_lb_ = 0.0;  // monotone envelope
  double best_ub_ = 0.0;
  bool poisoned_ = false;
  uint64_t iterations_ = 0;
  uint64_t points_scanned_ = 0;
  uint64_t node_evals_ = 0;
  // Bytes of heap_ capacity currently charged to the global MemBudget.
  uint64_t charged_bytes_ = 0;
};

}  // namespace kdv

#endif  // QUADKDV_CORE_REFINEMENT_STREAM_H_
