// Step-wise bound refinement for one query point.
//
// A RefinementStream exposes the §3.2 best-first loop one queue-pop at a
// time, maintaining a certified, monotonically tightening interval
// [lower(), upper()] around F_P(q). εKDV, τKDV, the Fig-18 traces and the
// kernel-density classifier are all thin drivers over this stream.
#ifndef QUADKDV_CORE_REFINEMENT_STREAM_H_
#define QUADKDV_CORE_REFINEMENT_STREAM_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "bounds/node_bounds.h"
#include "geom/point.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"

namespace kdv {

class RefinementStream {
 public:
  // Non-owning: tree/bounds must outlive the stream. bounds == nullptr means
  // the EXACT method: the stream starts already exhausted with
  // lower == upper == F_P(q).
  RefinementStream(const KdTree* tree, const KernelParams& params,
                   const NodeBounds* bounds, const Point& q);

  // Performs one refinement step (pop the loosest node, replace it by its
  // children's bounds or its exact leaf sum). Returns false if the stream
  // was already exhausted.
  bool Step();

  // Certified bounds: lower() <= F_P(q) <= upper(), weakly monotone in the
  // number of steps (best-so-far envelope; see evaluator.cc for why the raw
  // running totals alone are not monotone).
  double lower() const { return best_lb_; }
  double upper() const { return best_ub_; }

  // Interval width; 0 once exhausted (up to FP drift, which is clamped).
  double gap() const { return best_ub_ - best_lb_; }

  bool exhausted() const { return queue_.empty(); }
  uint64_t iterations() const { return iterations_; }
  uint64_t points_scanned() const { return points_scanned_; }

 private:
  struct QueueEntry {
    double gap = 0.0;
    int32_t node = -1;
    double lower = 0.0;
    double upper = 0.0;
  };
  struct GapLess {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      return a.gap < b.gap;
    }
  };

  double LeafSum(const KdTree::Node& node) const;

  const KdTree* tree_;
  KernelParams params_;
  const NodeBounds* bounds_;
  Point q_;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, GapLess> queue_;
  double lb_ = 0.0;       // raw running totals
  double ub_ = 0.0;
  double best_lb_ = 0.0;  // monotone envelope
  double best_ub_ = 0.0;
  uint64_t iterations_ = 0;
  uint64_t points_scanned_ = 0;
};

}  // namespace kdv

#endif  // QUADKDV_CORE_REFINEMENT_STREAM_H_
