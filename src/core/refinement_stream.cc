#include "core/refinement_stream.h"

#include <algorithm>

#include "util/check.h"

namespace kdv {

RefinementStream::RefinementStream(const KdTree* tree,
                                   const KernelParams& params,
                                   const NodeBounds* bounds, const Point& q)
    : tree_(tree), params_(params), bounds_(bounds), q_(q) {
  KDV_CHECK(tree_ != nullptr);
  if (bounds_ == nullptr) {
    // EXACT method: no refinement possible; the "bounds" are the answer.
    double exact = LeafSum(tree_->node(tree_->root()));
    points_scanned_ = tree_->num_points();
    lb_ = ub_ = best_lb_ = best_ub_ = exact;
    return;
  }
  const int32_t root = tree_->root();
  BoundPair root_bounds = bounds_->Evaluate(tree_->node(root).stats, q_);
  lb_ = best_lb_ = root_bounds.lower;
  ub_ = best_ub_ = root_bounds.upper;
  queue_.push({ub_ - lb_, root, lb_, ub_});
}

double RefinementStream::LeafSum(const KdTree::Node& node) const {
  const PointSet& pts = tree_->points();
  double sum = 0.0;
  for (uint32_t i = node.begin; i < node.end; ++i) {
    sum += params_.EvalSquaredDistance(SquaredDistance(q_, pts[i]));
  }
  return params_.weight * sum;
}

bool RefinementStream::Step() {
  if (queue_.empty()) return false;
  QueueEntry top = queue_.top();
  queue_.pop();
  ++iterations_;

  lb_ -= top.lower;
  ub_ -= top.upper;
  const KdTree::Node& node = tree_->node(top.node);
  if (node.IsLeaf()) {
    double exact = LeafSum(node);
    points_scanned_ += node.count();
    lb_ += exact;
    ub_ += exact;
  } else {
    for (int32_t child : {node.left, node.right}) {
      BoundPair child_bounds =
          bounds_->Evaluate(tree_->node(child).stats, q_);
      lb_ += child_bounds.lower;
      ub_ += child_bounds.upper;
      queue_.push({child_bounds.upper - child_bounds.lower, child,
                   child_bounds.lower, child_bounds.upper});
    }
  }

  if (queue_.empty()) {
    // Fully refined: running totals are the exact value (modulo FP drift);
    // they override the envelope.
    best_lb_ = lb_;
    best_ub_ = ub_;
  } else {
    best_lb_ = std::max(best_lb_, lb_);
    best_ub_ = std::min(best_ub_, ub_);
  }
  if (best_ub_ < best_lb_) best_ub_ = best_lb_;
  return true;
}

}  // namespace kdv
