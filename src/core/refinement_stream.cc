#include "core/refinement_stream.h"

#include <algorithm>
#include <cmath>

#include <utility>

#include "core/leaf_kernel.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/mem_budget.h"

namespace kdv {

namespace {

// A certified interval is acceptable when both ends are finite and any
// inversion is attributable to floating-point drift (which the envelope
// clamp absorbs). Larger inversions mean the bound math is broken for this
// query and must not be trusted.
bool IntervalAcceptable(double lower, double upper) {
  if (!std::isfinite(lower) || !std::isfinite(upper)) return false;
  const double drift = 1e-9 * (1.0 + std::abs(lower));
  return upper >= lower - drift;
}

}  // namespace

RefinementStream::RefinementStream(const KdTree* tree,
                                   const KernelParams& params,
                                   const NodeBounds* bounds)
    : tree_(tree), params_(params), bounds_(bounds) {
  KDV_CHECK(tree_ != nullptr);
}

RefinementStream::RefinementStream(const KdTree* tree,
                                   const KernelParams& params,
                                   const NodeBounds* bounds, const Point& q)
    : RefinementStream(tree, params, bounds) {
  Reset(q);
}

RefinementStream::RefinementStream(RefinementStream&& other) noexcept
    : tree_(other.tree_),
      params_(other.params_),
      bounds_(other.bounds_),
      q_(other.q_),
      heap_(std::move(other.heap_)),
      seed_nodes_(other.seed_nodes_),
      seed_count_(other.seed_count_),
      seed_next_(other.seed_next_),
      lb_(other.lb_),
      ub_(other.ub_),
      best_lb_(other.best_lb_),
      best_ub_(other.best_ub_),
      poisoned_(other.poisoned_),
      iterations_(other.iterations_),
      points_scanned_(other.points_scanned_),
      node_evals_(other.node_evals_),
      charged_bytes_(other.charged_bytes_) {
  // The charge follows the heap storage; the moved-from stream owns neither.
  other.charged_bytes_ = 0;
}

RefinementStream& RefinementStream::operator=(
    RefinementStream&& other) noexcept {
  if (this == &other) return *this;
  if (charged_bytes_ > 0) {
    MemBudget::Global().Release(MemSource::kRefinementScratch, charged_bytes_);
  }
  tree_ = other.tree_;
  params_ = other.params_;
  bounds_ = other.bounds_;
  q_ = other.q_;
  heap_ = std::move(other.heap_);
  seed_nodes_ = other.seed_nodes_;
  seed_count_ = other.seed_count_;
  seed_next_ = other.seed_next_;
  lb_ = other.lb_;
  ub_ = other.ub_;
  best_lb_ = other.best_lb_;
  best_ub_ = other.best_ub_;
  poisoned_ = other.poisoned_;
  iterations_ = other.iterations_;
  points_scanned_ = other.points_scanned_;
  node_evals_ = other.node_evals_;
  charged_bytes_ = other.charged_bytes_;
  other.charged_bytes_ = 0;
  return *this;
}

RefinementStream::~RefinementStream() {
  if (charged_bytes_ > 0) {
    MemBudget::Global().Release(MemSource::kRefinementScratch, charged_bytes_);
  }
}

void RefinementStream::SyncCharge() {
  const uint64_t cap = heap_.capacity() * sizeof(QueueEntry);
  if (cap > charged_bytes_) {
    MemBudget::Global().Charge(MemSource::kRefinementScratch,
                               cap - charged_bytes_);
    charged_bytes_ = cap;
  }
}

void RefinementStream::Reset(const Point& q) {
  q_ = q;
  heap_.clear();  // keeps capacity: no per-query reallocation
  seed_nodes_ = nullptr;
  seed_count_ = seed_next_ = 0;
  lb_ = ub_ = best_lb_ = best_ub_ = 0.0;
  poisoned_ = false;
  iterations_ = 0;
  points_scanned_ = 0;
  node_evals_ = 0;

  if (bounds_ == nullptr) {
    // EXACT method: no refinement possible; the "bounds" are the answer.
    double exact = LeafSum(tree_->node(tree_->root()));
    points_scanned_ = tree_->num_points();
    if (!std::isfinite(exact)) {
      SetUniversalEnvelope();
      poisoned_ = true;
      return;
    }
    lb_ = ub_ = best_lb_ = best_ub_ = exact;
    return;
  }
  const int32_t root = tree_->root();
  BoundPair root_bounds = bounds_->Evaluate(tree_->node(root).stats, q_);
  ++node_evals_;
  KDV_FAILPOINT_CORRUPT("refine.step", root_bounds.lower, root_bounds.upper);
  if (!IntervalAcceptable(root_bounds.lower, root_bounds.upper)) {
    SetUniversalEnvelope();
    poisoned_ = true;
    return;
  }
  lb_ = best_lb_ = root_bounds.lower;
  ub_ = best_ub_ = root_bounds.upper;
  Push({ub_ - lb_, root, lb_, ub_});
}

void RefinementStream::Reset(const Point& q, const TileFrontier& frontier) {
  KDV_CHECK(bounds_ != nullptr);
  KDV_CHECK(frontier.valid);
  q_ = q;
  heap_.clear();
  poisoned_ = false;
  iterations_ = 0;
  points_scanned_ = 0;
  node_evals_ = 0;

  // Seed from the tile pass verbatim: the baseline plus each undecided
  // node's region interval is a certified envelope for every q in the tile,
  // and the region sums are precomputed, so priming costs ZERO per-pixel
  // bound evaluations and ZERO heap traffic. Frontier nodes enter the heap
  // lazily (see Step()): only the nodes whose region slack actually blocks
  // termination ever cost an Evaluate or a heap insert.
  seed_nodes_ = frontier.nodes.data();
  seed_count_ = frontier.nodes.size();
  seed_next_ = 0;
  lb_ = frontier.base_lower + frontier.frontier_lower;
  ub_ = frontier.base_upper + frontier.frontier_upper;
  if (!IntervalAcceptable(lb_, ub_)) {
    SetUniversalEnvelope();
    poisoned_ = true;
    return;
  }
  best_lb_ = lb_;
  best_ub_ = ub_;
  if (best_ub_ < best_lb_) best_ub_ = best_lb_;
}

void RefinementStream::Push(const QueueEntry& entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), GapLess());
  SyncCharge();
}

RefinementStream::QueueEntry RefinementStream::Pop() {
  std::pop_heap(heap_.begin(), heap_.end(), GapLess());
  QueueEntry top = heap_.back();
  heap_.pop_back();
  return top;
}

double RefinementStream::LeafSum(const KdTree::Node& node) const {
  return kdv::LeafSum(*tree_, params_, node.begin, node.end, q_);
}

void RefinementStream::Poison() {
  poisoned_ = true;
  heap_.clear();
  seed_next_ = seed_count_;  // pending injections are abandoned too
}

void RefinementStream::SetUniversalEnvelope() {
  // Every kernel profile peaks at x == 0 with K(0) in (0, 1], so
  // 0 <= F_P(q) <= n·w·K(0) holds no matter what the bound math did.
  lb_ = best_lb_ = 0.0;
  ub_ = best_ub_ = static_cast<double>(tree_->num_points()) * params_.weight *
                   KernelProfile(params_.type, 0.0);
  heap_.clear();
  seed_next_ = seed_count_;
}

bool RefinementStream::Step() {
  if (poisoned_) return false;
  const bool have_seed = seed_next_ < seed_count_;
  if (heap_.empty() && !have_seed) return false;
  ++iterations_;

  // Best-first across both sources: the heap's loosest per-pixel entry vs
  // the loosest un-injected frontier node. A node's per-pixel gap never
  // exceeds its region gap and the frontier is sorted by descending region
  // gap, so when the heap top's gap is >= the next region gap, no
  // un-injected node can be the loosest — the ordering is sound without
  // evaluating anything.
  const bool inject =
      have_seed &&
      (heap_.empty() || seed_nodes_[seed_next_].upper -
                                seed_nodes_[seed_next_].lower >
                            heap_.front().gap);
  if (inject) {
    // Injection swaps the node's tile-wide region interval (already in the
    // running totals since Reset) for this pixel's own bounds — one
    // Evaluate, one heap insert. For pixels away from the tile's worst
    // corner this alone closes most of the region slack.
    const TileFrontier::Node& fn = seed_nodes_[seed_next_++];
    BoundPair pixel_bounds = bounds_->Evaluate(tree_->node(fn.node).stats, q_);
    ++node_evals_;
    KDV_FAILPOINT_CORRUPT("refine.step", pixel_bounds.lower,
                          pixel_bounds.upper);
    lb_ += pixel_bounds.lower - fn.lower;
    ub_ += pixel_bounds.upper - fn.upper;
    Push({pixel_bounds.upper - pixel_bounds.lower, fn.node,
          pixel_bounds.lower, pixel_bounds.upper});
  } else {
    QueueEntry top = Pop();
    lb_ -= top.lower;
    ub_ -= top.upper;
    const KdTree::Node& node = tree_->node(top.node);
    if (node.IsLeaf()) {
      double exact = LeafSum(node);
      points_scanned_ += node.count();
      lb_ += exact;
      ub_ += exact;
    } else {
      for (int32_t child : {node.left, node.right}) {
        BoundPair child_bounds =
            bounds_->Evaluate(tree_->node(child).stats, q_);
        ++node_evals_;
        KDV_FAILPOINT_CORRUPT("refine.step", child_bounds.lower,
                              child_bounds.upper);
        lb_ += child_bounds.lower;
        ub_ += child_bounds.upper;
        Push({child_bounds.upper - child_bounds.lower, child,
              child_bounds.lower, child_bounds.upper});
      }
    }
  }

  if (!IntervalAcceptable(lb_, ub_)) {
    // Numeric fault (NaN/Inf totals or a non-drift inversion): keep the last
    // certified envelope rather than letting the bad values reach callers.
    Poison();
    return true;
  }

  if (exhausted()) {
    // Fully refined: running totals are the exact value (modulo FP drift);
    // they override the envelope.
    best_lb_ = lb_;
    best_ub_ = ub_;
  } else {
    best_lb_ = std::max(best_lb_, lb_);
    best_ub_ = std::min(best_ub_, ub_);
  }
  if (best_ub_ < best_lb_) best_ub_ = best_lb_;
  return true;
}

}  // namespace kdv
