#include "core/kdv_runner.h"

#include "util/check.h"

namespace kdv {

namespace {

void Accumulate(BatchStats* stats, const EvalResult& r) {
  if (stats == nullptr) return;
  ++stats->queries;
  stats->iterations += r.iterations;
  stats->points_scanned += r.points_scanned;
}

}  // namespace

std::vector<double> RunEpsBatch(const KdeEvaluator& evaluator,
                                const PointSet& queries, double eps,
                                BatchStats* stats) {
  std::vector<double> out(queries.size(), 0.0);
  Timer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    EvalResult r = evaluator.EvaluateEps(queries[i], eps);
    out[i] = r.estimate;
    Accumulate(stats, r);
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

std::vector<uint8_t> RunTauBatch(const KdeEvaluator& evaluator,
                                 const PointSet& queries, double tau,
                                 BatchStats* stats) {
  std::vector<uint8_t> out(queries.size(), 0);
  Timer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    TauResult r = evaluator.EvaluateTau(queries[i], tau);
    out[i] = r.above_threshold ? 1 : 0;
    if (stats != nullptr) {
      ++stats->queries;
      stats->iterations += r.iterations;
      stats->points_scanned += r.points_scanned;
    }
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

std::vector<double> RunExactBatch(const KdeEvaluator& evaluator,
                                  const PointSet& queries, BatchStats* stats) {
  std::vector<double> out(queries.size(), 0.0);
  Timer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] = evaluator.EvaluateExact(queries[i]);
    if (stats != nullptr) {
      ++stats->queries;
      stats->points_scanned += evaluator.tree().num_points();
    }
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

size_t RunEpsOrdered(const KdeEvaluator& evaluator, const PointSet& queries,
                     const std::vector<uint32_t>& order, double eps,
                     Deadline* deadline, std::vector<double>* out,
                     BatchStats* stats) {
  KDV_CHECK(out != nullptr);
  KDV_CHECK(out->size() == queries.size());
  Timer timer;
  size_t evaluated = 0;
  // The deadline is polled per query: a single εKDV evaluation is the unit
  // of progress in the progressive framework.
  for (uint32_t idx : order) {
    if (deadline != nullptr && deadline->Expired()) {
      if (stats != nullptr) stats->completed = false;
      break;
    }
    KDV_DCHECK(idx < queries.size());
    EvalResult r = evaluator.EvaluateEps(queries[idx], eps);
    (*out)[idx] = r.estimate;
    ++evaluated;
    Accumulate(stats, r);
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return evaluated;
}

}  // namespace kdv
