#include "core/kdv_runner.h"

#include "util/check.h"
#include "util/failpoint.h"

namespace kdv {

void AccumulateQueryStats(BatchStats* stats, const EvalResult& r) {
  if (stats == nullptr) return;
  ++stats->queries;
  stats->iterations += r.iterations;
  stats->points_scanned += r.points_scanned;
  stats->nodes_visited += r.node_evals;
  if (r.numeric_fault) ++stats->numeric_faults;
}

void AccumulateQueryStats(BatchStats* stats, const TauResult& r) {
  if (stats == nullptr) return;
  ++stats->queries;
  stats->iterations += r.iterations;
  stats->points_scanned += r.points_scanned;
  stats->nodes_visited += r.node_evals;
  if (r.numeric_fault) ++stats->numeric_faults;
}

namespace {

// Records why a batch stopped early. `reason` may be kNone when the stop was
// detected inside a query (the control is re-polled by the caller).
void MarkStopped(BatchStats* stats, StopReason reason) {
  if (stats == nullptr) return;
  stats->completed = false;
  if (reason == StopReason::kDeadline) stats->deadline_expired = true;
  if (reason == StopReason::kCancel) stats->cancelled = true;
}

// Handles an injected (failpoint) error at a batch site. Returns true when
// the batch must abort.
bool InjectedFault(const Status& status, BatchStats* stats) {
  if (status.ok()) return false;
  if (stats != nullptr) {
    stats->completed = false;
    stats->status = status;
  }
  return true;
}

}  // namespace

std::vector<double> RunEpsBatch(const KdeEvaluator& evaluator,
                                const PointSet& queries, double eps,
                                const QueryControl& control,
                                BatchStats* stats) {
  std::vector<double> out(queries.size(), 0.0);
  Timer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    StopReason stop = control.CheckStop();
    if (stop != StopReason::kNone) {
      MarkStopped(stats, stop);
      break;
    }
    if (InjectedFault(KDV_FAILPOINT_STATUS("runner.eps"), stats)) break;
    EvalResult r = evaluator.EvaluateEps(queries[i], eps, control);
    out[i] = r.estimate;
    AccumulateQueryStats(stats, r);
    if (r.interrupted) {
      MarkStopped(stats, control.CheckStop());
      break;
    }
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

std::vector<double> RunEpsBatch(const KdeEvaluator& evaluator,
                                const PointSet& queries, double eps,
                                BatchStats* stats) {
  return RunEpsBatch(evaluator, queries, eps, QueryControl(), stats);
}

std::vector<uint8_t> RunTauBatch(const KdeEvaluator& evaluator,
                                 const PointSet& queries, double tau,
                                 const QueryControl& control,
                                 BatchStats* stats) {
  std::vector<uint8_t> out(queries.size(), 0);
  Timer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    StopReason stop = control.CheckStop();
    if (stop != StopReason::kNone) {
      MarkStopped(stats, stop);
      break;
    }
    if (InjectedFault(KDV_FAILPOINT_STATUS("runner.tau"), stats)) break;
    TauResult r = evaluator.EvaluateTau(queries[i], tau, control);
    out[i] = r.above_threshold ? 1 : 0;
    AccumulateQueryStats(stats, r);
    if (r.interrupted) {
      MarkStopped(stats, control.CheckStop());
      break;
    }
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

std::vector<uint8_t> RunTauBatch(const KdeEvaluator& evaluator,
                                 const PointSet& queries, double tau,
                                 BatchStats* stats) {
  return RunTauBatch(evaluator, queries, tau, QueryControl(), stats);
}

std::vector<double> RunExactBatch(const KdeEvaluator& evaluator,
                                  const PointSet& queries,
                                  const QueryControl& control,
                                  BatchStats* stats) {
  std::vector<double> out(queries.size(), 0.0);
  Timer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    StopReason stop = control.CheckStop();
    if (stop != StopReason::kNone) {
      MarkStopped(stats, stop);
      break;
    }
    if (InjectedFault(KDV_FAILPOINT_STATUS("runner.exact"), stats)) break;
    out[i] = evaluator.EvaluateExact(queries[i]);
    if (stats != nullptr) {
      ++stats->queries;
      stats->points_scanned += evaluator.tree().num_points();
    }
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

std::vector<double> RunExactBatch(const KdeEvaluator& evaluator,
                                  const PointSet& queries, BatchStats* stats) {
  return RunExactBatch(evaluator, queries, QueryControl(), stats);
}

size_t RunEpsOrdered(const KdeEvaluator& evaluator, const PointSet& queries,
                     const std::vector<uint32_t>& order, double eps,
                     const QueryControl& control, std::vector<double>* out,
                     BatchStats* stats) {
  KDV_CHECK(out != nullptr);
  KDV_CHECK(out->size() == queries.size());
  Timer timer;
  size_t evaluated = 0;
  // The control is polled per query here, and at iteration granularity
  // inside each εKDV evaluation: a single query is no longer the minimum
  // unit of overrun.
  for (uint32_t idx : order) {
    StopReason stop = control.CheckStop();
    if (stop != StopReason::kNone) {
      MarkStopped(stats, stop);
      break;
    }
    if (InjectedFault(KDV_FAILPOINT_STATUS("runner.eps"), stats)) break;
    KDV_DCHECK(idx < queries.size());
    EvalResult r = evaluator.EvaluateEps(queries[idx], eps, control);
    (*out)[idx] = r.estimate;
    ++evaluated;
    AccumulateQueryStats(stats, r);
    if (r.interrupted) {
      MarkStopped(stats, control.CheckStop());
      break;
    }
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return evaluated;
}

size_t RunEpsOrdered(const KdeEvaluator& evaluator, const PointSet& queries,
                     const std::vector<uint32_t>& order, double eps,
                     Deadline* deadline, std::vector<double>* out,
                     BatchStats* stats) {
  QueryControl control;
  control.deadline = deadline;
  return RunEpsOrdered(evaluator, queries, order, eps, control, out, stats);
}

}  // namespace kdv
