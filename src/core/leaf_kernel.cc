#include "core/leaf_kernel.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace kdv {

namespace {

// Chunk of squared distances computed per pass-1 sweep. Fits comfortably in
// L1 next to the coordinate stream; leaves (default 32 points) take one
// chunk, the EXACT root scan loops.
constexpr uint32_t kChunk = 128;

// Pass 1, 2-d specialization: d2[j] for points [begin, begin + count).
// Element j performs exactly the SquaredDistance operation sequence
// (s = 0; s += dx*dx; s += dy*dy) so the value is bit-identical to the AoS
// scalar path; elements are independent, so the loop auto-vectorizes.
void SquaredDistances2d(const double* xs, const double* ys, double qx,
                        double qy, uint32_t count, double* d2) {
  uint32_t j = 0;
#if defined(__AVX2__)
  // Explicit 4-lane AVX2 pass: vsub/vmul/vadd only (no FMA), the same
  // per-lane operation order as the scalar loop below, so the two agree
  // bitwise. This TU is compiled with -ffp-contract=off, so the scalar loop
  // cannot be fused into FMAs behind our back either.
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  for (; j + 4 <= count; j += 4) {
    __m256d dx = _mm256_sub_pd(vqx, _mm256_loadu_pd(xs + j));
    __m256d dy = _mm256_sub_pd(vqy, _mm256_loadu_pd(ys + j));
    __m256d s = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(d2 + j, s);
  }
#endif
  for (; j < count; ++j) {
    double s = 0.0;
    double dx = qx - xs[j];
    s += dx * dx;
    double dy = qy - ys[j];
    s += dy * dy;
    d2[j] = s;
  }
}

// Pass 1, general d: same accumulation order as SquaredDistance (dimension
// 0 first). Still element-independent and vectorizable per dimension.
void SquaredDistancesNd(const KdTree& tree, const Point& q, uint32_t begin,
                        uint32_t count, double* d2) {
  const int dim = q.dim();
  const double* c0 = tree.coords(0) + begin;
  const double q0 = q[0];
  for (uint32_t j = 0; j < count; ++j) {
    double diff = q0 - c0[j];
    d2[j] = 0.0 + diff * diff;
  }
  for (int d = 1; d < dim; ++d) {
    const double* cd = tree.coords(d) + begin;
    const double qd = q[d];
    for (uint32_t j = 0; j < count; ++j) {
      double diff = qd - cd[j];
      d2[j] += diff * diff;
    }
  }
}

}  // namespace

double LeafSumAoS(const KdTree& tree, const KernelParams& params,
                  uint32_t begin, uint32_t end, const Point& q) {
  const PointSet& pts = tree.points();
  double sum = 0.0;
  for (uint32_t i = begin; i < end; ++i) {
    sum += params.EvalSquaredDistance(SquaredDistance(q, pts[i]));
  }
  return params.weight * sum;
}

double LeafSumSoA(const KdTree& tree, const KernelParams& params,
                  uint32_t begin, uint32_t end, const Point& q) {
  double d2[kChunk];
  double sum = 0.0;
  const bool two_d = q.dim() == 2;
  const double* xs = two_d ? tree.coords(0) : nullptr;
  const double* ys = two_d ? tree.coords(1) : nullptr;
  for (uint32_t i = begin; i < end; i += kChunk) {
    const uint32_t count = end - i < kChunk ? end - i : kChunk;
    if (two_d) {
      SquaredDistances2d(xs + i, ys + i, q[0], q[1], count, d2);
    } else {
      SquaredDistancesNd(tree, q, i, count, d2);
    }
    // Pass 2: fold the kernel profile in point order — the same addition
    // sequence as the AoS loop, so the total is bit-identical.
    for (uint32_t j = 0; j < count; ++j) {
      sum += params.EvalSquaredDistance(d2[j]);
    }
  }
  return params.weight * sum;
}

}  // namespace kdv
