#include "core/leaf_kernel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace kdv {

namespace {

// Chunk of squared distances computed per pass-1 sweep. Fits comfortably in
// L1 next to the coordinate stream; leaves (default 32 points) take one
// chunk, the EXACT root scan loops.
constexpr uint32_t kChunk = 128;

// Pass 1, 2-d specialization, scalar: d2[j] for points [0, count). Element j
// performs exactly the SquaredDistance operation sequence
// (s = 0; s += dx*dx; s += dy*dy) so the value is bit-identical to the AoS
// scalar path; elements are independent, so the loop auto-vectorizes.
void SquaredDistances2dScalar(const double* xs, const double* ys, double qx,
                              double qy, uint32_t count, double* d2) {
  for (uint32_t j = 0; j < count; ++j) {
    double s = 0.0;
    double dx = qx - xs[j];
    s += dx * dx;
    double dy = qy - ys[j];
    s += dy * dy;
    d2[j] = s;
  }
}

#if defined(__x86_64__)

// 2-lane SSE2 pass (part of the x86-64 baseline, so no target attribute):
// sub/mul/add per lane in the scalar operation order, never FMA — the lane
// results are bitwise the scalar results.
void SquaredDistances2dSse2(const double* xs, const double* ys, double qx,
                            double qy, uint32_t count, double* d2) {
  const __m128d vqx = _mm_set1_pd(qx);
  const __m128d vqy = _mm_set1_pd(qy);
  uint32_t j = 0;
  for (; j + 2 <= count; j += 2) {
    __m128d dx = _mm_sub_pd(vqx, _mm_loadu_pd(xs + j));
    __m128d dy = _mm_sub_pd(vqy, _mm_loadu_pd(ys + j));
    __m128d s = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    _mm_storeu_pd(d2 + j, s);
  }
  SquaredDistances2dScalar(xs + j, ys + j, qx, qy, count - j, d2 + j);
}

// 4-lane AVX2 pass, compiled for this one function regardless of the global
// -m flags; only called when the CPU reports AVX2. Same per-lane DAG as the
// scalar loop (this TU also builds with -ffp-contract=off, so the scalar
// loop cannot be fused into FMAs behind our back).
__attribute__((target("avx2"))) void SquaredDistances2dAvx2(
    const double* xs, const double* ys, double qx, double qy, uint32_t count,
    double* d2) {
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  uint32_t j = 0;
  for (; j + 4 <= count; j += 4) {
    __m256d dx = _mm256_sub_pd(vqx, _mm256_loadu_pd(xs + j));
    __m256d dy = _mm256_sub_pd(vqy, _mm256_loadu_pd(ys + j));
    __m256d s = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(d2 + j, s);
  }
  SquaredDistances2dScalar(xs + j, ys + j, qx, qy, count - j, d2 + j);
}

#endif  // defined(__x86_64__)

// Active dispatch level; -1 = not yet initialized (first ActiveSimdLevel()
// call resolves the environment override and CPU detection).
std::atomic<int> g_simd_level{-1};

SimdLevel DetectSimdLevel() {
  const SimdLevel max = MaxSupportedSimdLevel();
  const char* env = std::getenv("KDV_SIMD");
  if (env != nullptr && *env != '\0') {
    SimdLevel want = max;
    if (std::strcmp(env, "scalar") == 0) {
      want = SimdLevel::kScalar;
    } else if (std::strcmp(env, "sse2") == 0) {
      want = SimdLevel::kSse2;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = SimdLevel::kAvx2;
    }
    // Unknown names and requests above hardware support keep the detected
    // maximum: a typo'd override must not silently change results (it can't
    // — levels are bit-identical — but it also shouldn't change speed).
    if (static_cast<int>(want) <= static_cast<int>(max)) return want;
  }
  return max;
}

void SquaredDistances2d(const double* xs, const double* ys, double qx,
                        double qy, uint32_t count, double* d2) {
  switch (ActiveSimdLevel()) {
#if defined(__x86_64__)
    case SimdLevel::kAvx2:
      SquaredDistances2dAvx2(xs, ys, qx, qy, count, d2);
      return;
    case SimdLevel::kSse2:
      SquaredDistances2dSse2(xs, ys, qx, qy, count, d2);
      return;
#endif
    default:
      SquaredDistances2dScalar(xs, ys, qx, qy, count, d2);
      return;
  }
}

// Pass 1, general d: same accumulation order as SquaredDistance (dimension
// 0 first). Still element-independent and vectorizable per dimension.
void SquaredDistancesNd(const KdTree& tree, const Point& q, uint32_t begin,
                        uint32_t count, double* d2) {
  const int dim = q.dim();
  const double* c0 = tree.coords(0) + begin;
  const double q0 = q[0];
  for (uint32_t j = 0; j < count; ++j) {
    double diff = q0 - c0[j];
    d2[j] = 0.0 + diff * diff;
  }
  for (int d = 1; d < dim; ++d) {
    const double* cd = tree.coords(d) + begin;
    const double qd = q[d];
    for (uint32_t j = 0; j < count; ++j) {
      double diff = qd - cd[j];
      d2[j] += diff * diff;
    }
  }
}

}  // namespace

SimdLevel MaxSupportedSimdLevel() {
#if defined(__x86_64__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;  // part of the x86-64 baseline
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  int level = g_simd_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(DetectSimdLevel());
    g_simd_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

void SetSimdLevel(SimdLevel level) {
  const SimdLevel max = MaxSupportedSimdLevel();
  if (static_cast<int>(level) > static_cast<int>(max)) level = max;
  if (static_cast<int>(level) < 0) level = SimdLevel::kScalar;
  g_simd_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

double LeafSumAoS(const KdTree& tree, const KernelParams& params,
                  uint32_t begin, uint32_t end, const Point& q) {
  const PointSet& pts = tree.points();
  double sum = 0.0;
  for (uint32_t i = begin; i < end; ++i) {
    sum += params.EvalSquaredDistance(SquaredDistance(q, pts[i]));
  }
  return params.weight * sum;
}

double LeafSumSoA(const KdTree& tree, const KernelParams& params,
                  uint32_t begin, uint32_t end, const Point& q) {
  double d2[kChunk];
  double sum = 0.0;
  const bool two_d = q.dim() == 2;
  const double* xs = two_d ? tree.coords(0) : nullptr;
  const double* ys = two_d ? tree.coords(1) : nullptr;
  for (uint32_t i = begin; i < end; i += kChunk) {
    const uint32_t count = end - i < kChunk ? end - i : kChunk;
    if (two_d) {
      SquaredDistances2d(xs + i, ys + i, q[0], q[1], count, d2);
    } else {
      SquaredDistancesNd(tree, q, i, count, d2);
    }
    // Pass 2: fold the kernel profile in point order — the same addition
    // sequence as the AoS loop, so the total is bit-identical.
    for (uint32_t j = 0; j < count; ++j) {
      sum += params.EvalSquaredDistance(d2[j]);
    }
  }
  return params.weight * sum;
}

}  // namespace kdv
