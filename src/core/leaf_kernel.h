// Batched leaf summation: the innermost hot loop of every KDV query.
//
// A leaf (or, for the EXACT method, the whole point set) contributes
//   w * sum_i K(x(q, p_i))
// to the running bounds. The classic loop walks the AoS Point array, which
// strides kMaxDim+1 doubles per point — for 2-d data ~8x the cache traffic
// the coordinates need — and folds the squared distance, the profile switch
// and the accumulation into one serial dependency chain the compiler cannot
// vectorize.
//
// LeafSumSoA streams the KdTree's structure-of-arrays coordinate mirror
// (KdTree::coords) in fixed-size chunks: pass 1 computes the squared
// distances of a chunk (independent elements — auto-vectorizable), pass 2
// folds the kernel profile over them in point order. Because the per-element
// operation sequence is exactly the AoS sequence and the final accumulation
// order is unchanged, the result is bit-identical to LeafSumAoS — which is
// what lets the parallel frame renderer promise bitwise-equal output while
// swapping the leaf kernel underneath. This translation unit is compiled
// with -O3 -ffp-contract=off (src/core/CMakeLists.txt) so vectorization is
// on but FP contraction cannot silently diverge the two paths.
//
// SIMD dispatch is a runtime decision, not a build flag: one binary carries
// scalar, SSE2 and AVX2 variants of the 2-d distance pass (the AVX2 one via
// a per-function target attribute) and picks the widest level the CPU
// reports at first use. All variants execute the identical per-element
// operation DAG — sub, mul, add, never FMA — so every level produces
// bit-identical sums; the level is a throughput knob, never a results knob.
// KDV_SIMD={scalar,sse2,avx2} in the environment pins the level (requests
// above hardware support fall back to the detected maximum).
#ifndef QUADKDV_CORE_LEAF_KERNEL_H_
#define QUADKDV_CORE_LEAF_KERNEL_H_

#include <cstdint>

#include "geom/point.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"

namespace kdv {

// Instruction-set level of the leaf distance pass, ordered by width.
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,  // 2-lane __m128d (x86-64 baseline)
  kAvx2 = 2,  // 4-lane __m256d
};

// Widest level this CPU supports (kScalar on non-x86-64 builds).
SimdLevel MaxSupportedSimdLevel();

// The level the leaf kernels currently dispatch to. Initialized on first
// use: the KDV_SIMD environment override if set and supported, else
// MaxSupportedSimdLevel().
SimdLevel ActiveSimdLevel();

// Pins the dispatch level (clamped to MaxSupportedSimdLevel()). Test hook —
// the equality suites sweep levels within one process. Not thread-safe
// against in-flight queries; call between frames.
void SetSimdLevel(SimdLevel level);

// "scalar", "sse2" or "avx2".
const char* SimdLevelName(SimdLevel level);

// Reference implementation: the historical scalar AoS loop
//   sum_i params.weight-less profile(SquaredDistance(q, points()[i]))
// over [begin, end), times params.weight. Kept as the bit-exactness oracle
// for tests and the AoS baseline for bench_frame.
double LeafSumAoS(const KdTree& tree, const KernelParams& params,
                  uint32_t begin, uint32_t end, const Point& q);

// SoA chunked path; bit-identical to LeafSumAoS (see header comment).
double LeafSumSoA(const KdTree& tree, const KernelParams& params,
                  uint32_t begin, uint32_t end, const Point& q);

// The production entry point used by the evaluator and refinement stream.
inline double LeafSum(const KdTree& tree, const KernelParams& params,
                      uint32_t begin, uint32_t end, const Point& q) {
  return LeafSumSoA(tree, params, begin, end, q);
}

}  // namespace kdv

#endif  // QUADKDV_CORE_LEAF_KERNEL_H_
