// Best-first refinement engine for kernel aggregation queries.
//
// This is the shared algorithm of §3.2 (aKDE / tKDC / KARL / QUAD all run
// it): per query point q, a priority queue holds index nodes ordered by
// bound gap UB - LB; running totals (lb, ub) over all live nodes shrink as
// nodes are popped and replaced by their children (or by exact leaf sums),
// and the query stops as soon as the operation's termination test holds:
//   εKDV:  ub <= (1+ε) * lb
//   τKDV:  lb >= τ  or  ub <= τ
//
// Every evaluation accepts an optional QueryControl (deadline +
// cancellation), polled cooperatively every control.check_interval
// refinement iterations, and reports numeric faults (NaN/Inf or inverted
// bound intervals) instead of propagating non-finite values: the returned
// estimate is always finite.
#ifndef QUADKDV_CORE_EVALUATOR_H_
#define QUADKDV_CORE_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "bounds/node_bounds.h"
#include "core/refinement_stream.h"
#include "core/tile_frontier.h"
#include "geom/point.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"
#include "util/cancel.h"

namespace kdv {

// Outcome of one per-pixel evaluation.
struct EvalResult {
  double lower = 0.0;       // certified lower bound on F_P(q), finite
  double upper = 0.0;       // certified upper bound on F_P(q), finite
  double estimate = 0.0;    // returned density value R(q), finite
  uint64_t iterations = 0;  // refinement steps (queue pops)
  uint64_t points_scanned = 0;  // points evaluated exactly in leaves
  uint64_t node_evals = 0;  // per-node bound evaluations (traversal work)
  bool converged = false;   // termination test satisfied (or fully refined)
  bool interrupted = false;  // stopped early by deadline/cancellation
  bool numeric_fault = false;  // bound math misbehaved; interval was clamped
};

// Outcome of one τKDV classification.
struct TauResult {
  bool above_threshold = false;
  double lower = 0.0;
  double upper = 0.0;
  uint64_t iterations = 0;
  uint64_t points_scanned = 0;
  uint64_t node_evals = 0;
  bool interrupted = false;
  bool numeric_fault = false;
};

// One step of a bound-refinement trace (paper Fig. 18).
struct BoundStep {
  uint64_t iteration = 0;
  double lower = 0.0;
  double upper = 0.0;
};

// Per-query evaluator. Holds non-owning pointers: the tree, params and
// bounds must outlive it. `bounds == nullptr` selects the EXACT method
// (sequential scan) for every query.
//
// Thread safety: an evaluator has no mutable state — every Evaluate*/Refine*
// call works on locals — and the KdTree and NodeBounds it points at are
// immutable after construction, so one instance may serve concurrent
// queries from any number of threads (the contract the concurrent
// RenderService is built on). Construction of those dependencies must
// happen-before the sharing, e.g. by creating the evaluator before the
// serving threads start.
class KdeEvaluator {
 public:
  KdeEvaluator(const KdTree* tree, const KernelParams& params,
               const NodeBounds* bounds);

  // εKDV: returns R(q) with |R(q) - F_P(q)| <= ε * F_P(q).
  EvalResult EvaluateEps(const Point& q, double eps) const {
    return RefineEps(q, eps, nullptr, nullptr, nullptr);
  }

  // Deadline/cancellation-aware variant; on a stop, result.interrupted is
  // set and the (wider, still certified) current interval is returned.
  EvalResult EvaluateEps(const Point& q, double eps,
                         const QueryControl& control) const {
    return RefineEps(q, eps, nullptr, &control, nullptr);
  }

  // Zero-allocation variant: refines inside `scratch` (a stream from
  // MakeScratch()), whose queue buffer is reused across queries. Results are
  // bit-identical to the scratch-less overloads — Reset fully re-primes the
  // stream. One scratch serves one thread; it is the per-tile state of the
  // parallel frame renderer (viz/parallel_render.h).
  EvalResult EvaluateEps(const Point& q, double eps,
                         const QueryControl& control,
                         RefinementStream* scratch) const {
    return RefineEps(q, eps, nullptr, &control, scratch, nullptr);
  }

  // Tile-shared variant: the scratch stream is seeded from `frontier`
  // (core/tile_refiner.h) instead of the tree root. The certificate is
  // unchanged: |R(q) - F_P(q)| <= ε·F_P(q) for every q inside the tile the
  // frontier was built for.
  EvalResult EvaluateEpsSeeded(const Point& q, double eps,
                               const TileFrontier& frontier,
                               const QueryControl& control,
                               RefinementStream* scratch) const {
    return RefineEps(q, eps, nullptr, &control, scratch, &frontier);
  }

  // Same, recording (lb, ub) after every refinement step into *trace.
  EvalResult EvaluateEpsTraced(const Point& q, double eps,
                               std::vector<BoundStep>* trace) const {
    return RefineEps(q, eps, trace, nullptr, nullptr);
  }

  // τKDV: decides F_P(q) >= τ.
  TauResult EvaluateTau(const Point& q, double tau) const {
    return RefineTau(q, tau, nullptr, nullptr);
  }
  TauResult EvaluateTau(const Point& q, double tau,
                        const QueryControl& control) const {
    return RefineTau(q, tau, &control, nullptr);
  }
  TauResult EvaluateTau(const Point& q, double tau,
                        const QueryControl& control,
                        RefinementStream* scratch) const {
    return RefineTau(q, tau, &control, scratch, nullptr);
  }
  TauResult EvaluateTauSeeded(const Point& q, double tau,
                              const TileFrontier& frontier,
                              const QueryControl& control,
                              RefinementStream* scratch) const {
    return RefineTau(q, tau, &control, scratch, &frontier);
  }

  // Reusable per-thread refinement scratch for the EvaluateEps/EvaluateTau
  // scratch overloads. Unprimed until its first use.
  RefinementStream MakeScratch() const {
    return RefinementStream(tree_, params_, bounds_);
  }

  // Exact sequential evaluation of F_P(q) over all indexed points.
  double EvaluateExact(const Point& q) const;

  const KdTree& tree() const { return *tree_; }
  const KernelParams& params() const { return params_; }
  const NodeBounds* bounds() const { return bounds_; }

 private:
  EvalResult RefineEps(const Point& q, double eps,
                       std::vector<BoundStep>* trace,
                       const QueryControl* control, RefinementStream* scratch,
                       const TileFrontier* frontier = nullptr) const;
  TauResult RefineTau(const Point& q, double tau, const QueryControl* control,
                      RefinementStream* scratch,
                      const TileFrontier* frontier = nullptr) const;

  const KdTree* tree_;
  KernelParams params_;
  const NodeBounds* bounds_;
};

}  // namespace kdv

#endif  // QUADKDV_CORE_EVALUATOR_H_
