#include "core/evaluator.h"

#include "core/refinement_stream.h"
#include "util/check.h"

namespace kdv {

KdeEvaluator::KdeEvaluator(const KdTree* tree, const KernelParams& params,
                           const NodeBounds* bounds)
    : tree_(tree), params_(params), bounds_(bounds) {
  KDV_CHECK(tree_ != nullptr);
  KDV_CHECK(params_.gamma > 0.0);
  KDV_CHECK(params_.weight > 0.0);
}

double KdeEvaluator::LeafSum(const KdTree::Node& node, const Point& q) const {
  const PointSet& pts = tree_->points();
  double sum = 0.0;
  for (uint32_t i = node.begin; i < node.end; ++i) {
    sum += params_.EvalSquaredDistance(SquaredDistance(q, pts[i]));
  }
  return params_.weight * sum;
}

double KdeEvaluator::EvaluateExact(const Point& q) const {
  return LeafSum(tree_->node(tree_->root()), q);
}

EvalResult KdeEvaluator::RefineEps(const Point& q, double eps,
                                   std::vector<BoundStep>* trace) const {
  KDV_CHECK(eps >= 0.0);
  RefinementStream stream(tree_, params_, bounds_, q);
  if (trace != nullptr) trace->push_back({0, stream.lower(), stream.upper()});

  while (stream.upper() > (1.0 + eps) * stream.lower() && stream.Step()) {
    if (trace != nullptr) {
      trace->push_back({stream.iterations(), stream.lower(), stream.upper()});
    }
  }

  EvalResult result;
  result.lower = stream.lower();
  result.upper = stream.upper();
  result.estimate = 0.5 * (result.lower + result.upper);
  result.iterations = stream.iterations();
  result.points_scanned = stream.points_scanned();
  result.converged =
      result.upper <= (1.0 + eps) * result.lower || stream.exhausted();
  return result;
}

TauResult KdeEvaluator::EvaluateTau(const Point& q, double tau) const {
  RefinementStream stream(tree_, params_, bounds_, q);
  while (stream.lower() < tau && stream.upper() > tau && stream.Step()) {
  }

  TauResult result;
  result.lower = stream.lower();
  result.upper = stream.upper();
  result.iterations = stream.iterations();
  result.points_scanned = stream.points_scanned();
  // lower >= tau certifies "above"; upper <= tau certifies "below". Once
  // exhausted, lower == upper == F_P(q) and the comparison is exact.
  result.above_threshold = result.lower >= tau;
  return result;
}

}  // namespace kdv
