#include "core/evaluator.h"

#include <cmath>
#include <optional>

#include "core/leaf_kernel.h"
#include "core/refinement_stream.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace kdv {

namespace {

// Mirrors the stream-internal acceptance test: finite ends, inversion within
// floating-point drift.
bool IntervalAcceptable(double lower, double upper) {
  if (!std::isfinite(lower) || !std::isfinite(upper)) return false;
  return upper >= lower - 1e-9 * (1.0 + std::abs(lower));
}

// Cooperative stop polling, amortized over check_interval iterations.
class StopPoller {
 public:
  explicit StopPoller(const QueryControl* control)
      : control_(control),
        active_(control != nullptr && control->CanStop()),
        interval_(control != nullptr && control->check_interval > 0
                      ? control->check_interval
                      : 1) {}

  bool ShouldStop() {
    if (!active_) return false;
    if (++since_check_ < interval_) return false;
    since_check_ = 0;
    return control_->CheckStop() != StopReason::kNone;
  }

 private:
  const QueryControl* control_;
  bool active_;
  uint32_t interval_;
  uint32_t since_check_ = 0;
};

}  // namespace

KdeEvaluator::KdeEvaluator(const KdTree* tree, const KernelParams& params,
                           const NodeBounds* bounds)
    : tree_(tree), params_(params), bounds_(bounds) {
  KDV_CHECK(tree_ != nullptr);
  KDV_CHECK(params_.gamma > 0.0);
  KDV_CHECK(params_.weight > 0.0);
}

double KdeEvaluator::EvaluateExact(const Point& q) const {
  const KdTree::Node& root = tree_->node(tree_->root());
  return kdv::LeafSum(*tree_, params_, root.begin, root.end, q);
}

EvalResult KdeEvaluator::RefineEps(const Point& q, double eps,
                                   std::vector<BoundStep>* trace,
                                   const QueryControl* control,
                                   RefinementStream* scratch,
                                   const TileFrontier* frontier) const {
  KDV_CHECK(eps >= 0.0);
  std::optional<RefinementStream> local;
  RefinementStream& stream =
      scratch != nullptr ? *scratch : local.emplace(tree_, params_, bounds_);
  if (frontier != nullptr) {
    stream.Reset(q, *frontier);
  } else {
    stream.Reset(q);
  }
  if (trace != nullptr) trace->push_back({0, stream.lower(), stream.upper()});

  EvalResult result;
  StopPoller poller(control);
  KDV_FAILPOINT_STALL("refine.stall", control);
  while (stream.upper() > (1.0 + eps) * stream.lower()) {
    if (poller.ShouldStop()) {
      result.interrupted = true;
      break;
    }
    if (!stream.Step()) break;
    if (trace != nullptr) {
      trace->push_back({stream.iterations(), stream.lower(), stream.upper()});
    }
  }

  double lower = stream.lower();
  double upper = stream.upper();
  KDV_FAILPOINT_CORRUPT("eval.eps", lower, upper);
  result.numeric_fault = stream.poisoned();
  if (!IntervalAcceptable(lower, upper)) {
    // The interval itself is untrustworthy; fall back to the universal
    // envelope [0, n·w·K(0)] so the caller still gets a finite clamp.
    result.numeric_fault = true;
    lower = 0.0;
    upper = static_cast<double>(tree_->num_points()) * params_.weight *
            KernelProfile(params_.type, 0.0);
  }
  result.lower = lower;
  result.upper = upper;
  result.estimate = 0.5 * (result.lower + result.upper);
  result.iterations = stream.iterations();
  result.points_scanned = stream.points_scanned();
  result.node_evals = stream.node_evals();
  result.converged =
      !result.numeric_fault && !result.interrupted &&
      (result.upper <= (1.0 + eps) * result.lower || stream.exhausted());
  return result;
}

TauResult KdeEvaluator::RefineTau(const Point& q, double tau,
                                  const QueryControl* control,
                                  RefinementStream* scratch,
                                  const TileFrontier* frontier) const {
  std::optional<RefinementStream> local;
  RefinementStream& stream =
      scratch != nullptr ? *scratch : local.emplace(tree_, params_, bounds_);
  if (frontier != nullptr) {
    stream.Reset(q, *frontier);
  } else {
    stream.Reset(q);
  }
  StopPoller poller(control);
  KDV_FAILPOINT_STALL("refine.stall", control);
  TauResult result;
  while (stream.lower() < tau && stream.upper() > tau) {
    if (poller.ShouldStop()) {
      result.interrupted = true;
      break;
    }
    if (!stream.Step()) break;
  }

  double lower = stream.lower();
  double upper = stream.upper();
  KDV_FAILPOINT_CORRUPT("eval.tau", lower, upper);
  result.numeric_fault = stream.poisoned();
  if (!IntervalAcceptable(lower, upper)) {
    result.numeric_fault = true;
    lower = 0.0;
    upper = static_cast<double>(tree_->num_points()) * params_.weight *
            KernelProfile(params_.type, 0.0);
  }
  result.lower = lower;
  result.upper = upper;
  result.iterations = stream.iterations();
  result.points_scanned = stream.points_scanned();
  result.node_evals = stream.node_evals();
  // lower >= tau certifies "above"; upper <= tau certifies "below". Once
  // exhausted, lower == upper == F_P(q) and the comparison is exact. An
  // interrupted or clamped query answers conservatively from its lower
  // bound.
  result.above_threshold = result.lower >= tau;
  return result;
}

}  // namespace kdv
