#include "core/tile_refiner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace kdv {

namespace {

// Per-pass observability. The region pass runs once per tile chunk, not per
// pixel, so three relaxed atomic bumps here are invisible next to the bound
// evaluations the pass performs. Handles resolve once per process.
struct TileObs {
  obs::Counter* passes;
  obs::Counter* nodes;
  obs::Counter* decided;
  obs::Histogram* pass_seconds;
  TileObs() {
    auto& r = obs::MetricsRegistry::Global();
    passes = r.GetCounter("kdv_tile_region_passes_total");
    nodes = r.GetCounter("kdv_tile_region_nodes_total");
    decided = r.GetCounter("kdv_tile_decided_total");
    pass_seconds = r.GetHistogram("kdv_tile_region_pass_seconds");
  }
};

void RecordTilePass(const TileFrontier& out, double seconds) {
  static TileObs& o = *new TileObs();
  o.passes->Increment();
  o.nodes->Increment(out.nodes_visited);
  if (out.valid && out.decided) o.decided->Increment();
  o.pass_seconds->Record(seconds);
}

// Same acceptance test as the refinement stream: finite ends, inversion
// within floating-point drift.
bool IntervalAcceptable(double lower, double upper) {
  if (!std::isfinite(lower) || !std::isfinite(upper)) return false;
  return upper >= lower - 1e-9 * (1.0 + std::abs(lower));
}

struct RegionEntry {
  double gap = 0.0;
  int32_t node = -1;
  double lower = 0.0;
  double upper = 0.0;
};

struct GapLess {
  bool operator()(const RegionEntry& a, const RegionEntry& b) const {
    return a.gap < b.gap;
  }
};

// Phase-2 acceptance order: tightest intervals first, node id as the
// deterministic tie-break.
struct GapThenNode {
  bool operator()(const RegionEntry& a, const RegionEntry& b) const {
    if (a.gap != b.gap) return a.gap < b.gap;
    return a.node < b.node;
  }
};

}  // namespace

TileRefiner::TileRefiner(const KdTree* tree, const KernelParams& params,
                         const NodeBounds* bounds,
                         const TileRefinerOptions& options)
    : tree_(tree), params_(params), bounds_(bounds), options_(options) {
  KDV_CHECK(tree_ != nullptr);
  KDV_CHECK_MSG(bounds_ != nullptr,
                "tile refinement requires a bound function (not EXACT)");
  KDV_CHECK(options_.accept_fraction > 0.0 && options_.accept_fraction <= 1.0);
}

TileFrontier TileRefiner::BuildEps(const Rect& query_rect, double eps) const {
  KDV_CHECK(eps >= 0.0);
  Timer timer;  // CurrentClock: virtual under sim, so metrics replay exactly
  TileFrontier out = Build(query_rect, /*eps_mode=*/true, eps);
  RecordTilePass(out, timer.ElapsedSeconds());
  return out;
}

TileFrontier TileRefiner::BuildTau(const Rect& query_rect, double tau) const {
  Timer timer;
  TileFrontier out = Build(query_rect, /*eps_mode=*/false, tau);
  RecordTilePass(out, timer.ElapsedSeconds());
  return out;
}

TileFrontier TileRefiner::Build(const Rect& query_rect, bool eps_mode,
                                double param) const {
  TileFrontier out;

  // Max-heap over region gap, plus deferred leaves (kept out of the heap so
  // the loop never re-pops them; their intervals stay in the totals).
  std::vector<RegionEntry> heap;
  std::vector<RegionEntry> deferred;

  const int32_t root = tree_->root();
  BoundPair rb = bounds_->EvaluateRegion(tree_->node(root).stats, query_rect);
  ++out.nodes_visited;
  if (!IntervalAcceptable(rb.lower, rb.upper)) return out;  // valid == false
  double total_lower = rb.lower;
  double total_upper = rb.upper;
  heap.push_back({rb.upper - rb.lower, root, rb.lower, rb.upper});

  auto decided = [&]() {
    if (eps_mode) {
      if (total_upper <= (1.0 + param) * total_lower) {
        out.decided = true;
        out.decided_value = 0.5 * (total_lower + total_upper);
        return true;
      }
      return false;
    }
    if (total_lower >= param) {
      out.decided = true;
      out.decided_above = true;
      return true;
    }
    if (total_upper <= param) {
      out.decided = true;
      out.decided_above = false;
      return true;
    }
    return false;
  };

  while (!heap.empty()) {
    if (decided()) {
      out.valid = true;
      return out;
    }
    if (out.nodes_visited >= options_.max_nodes_visited) break;
    if (heap.size() + deferred.size() >= options_.max_frontier) break;

    std::pop_heap(heap.begin(), heap.end(), GapLess());
    RegionEntry top = heap.back();
    heap.pop_back();
    if (top.gap <= 0.0) {
      // Loosest entry is already tight: everything left is an acceptance
      // candidate for phase 2.
      heap.push_back(top);
      break;
    }
    const KdTree::Node& node = tree_->node(top.node);
    if (node.IsLeaf()) {
      deferred.push_back(top);
      continue;
    }
    total_lower -= top.lower;
    total_upper -= top.upper;
    bool fault = false;
    for (int32_t child : {node.left, node.right}) {
      BoundPair cb =
          bounds_->EvaluateRegion(tree_->node(child).stats, query_rect);
      ++out.nodes_visited;
      if (!IntervalAcceptable(cb.lower, cb.upper)) {
        fault = true;
        break;
      }
      if (cb.upper <= 0.0) {
        // The subtree contributes nothing to any pixel of this tile.
        ++out.pruned;
        continue;
      }
      total_lower += cb.lower;
      total_upper += cb.upper;
      heap.push_back({cb.upper - cb.lower, child, cb.lower, cb.upper});
      std::push_heap(heap.begin(), heap.end(), GapLess());
    }
    if (fault || !IntervalAcceptable(total_lower, total_upper)) {
      return out;  // valid == false: pixels fall back to root seeding
    }
  }
  if (decided()) {
    out.valid = true;
    return out;
  }

  // Phase 2: fold tight intervals into the per-tile baseline. Budget for
  // εKDV is α·ε·L* against the *final* lower total (see header proof); τKDV
  // only absorbs exactly-tight (zero gap) intervals so per-pixel streams can
  // still reach the exact remainder.
  deferred.insert(deferred.end(), heap.begin(), heap.end());
  std::sort(deferred.begin(), deferred.end(), GapThenNode());
  const double budget =
      eps_mode ? options_.accept_fraction * param * total_lower : 0.0;
  double accepted_gap = 0.0;
  for (const RegionEntry& e : deferred) {
    if (e.gap <= 0.0 || accepted_gap + e.gap <= budget) {
      out.base_lower += e.lower;
      out.base_upper += e.upper;
      accepted_gap += std::max(e.gap, 0.0);
      ++out.accepted;
    } else {
      out.nodes.push_back({e.node, e.lower, e.upper});
      out.frontier_lower += e.lower;
      out.frontier_upper += e.upper;
    }
  }
  // Descending region gap (ties: node id) — the stream's lazy-injection
  // order; see tile_frontier.h.
  std::sort(out.nodes.begin(), out.nodes.end(),
            [](const TileFrontier::Node& a, const TileFrontier::Node& b) {
              const double ga = a.upper - a.lower;
              const double gb = b.upper - b.lower;
              if (ga != gb) return ga > gb;
              return a.node < b.node;
            });

  if (out.nodes.empty()) {
    // Everything was accepted: the baseline alone answers every pixel.
    out.decided = true;
    if (eps_mode) {
      out.decided_value = 0.5 * (out.base_lower + out.base_upper);
    } else {
      out.decided_above = out.base_lower >= param;
    }
  }
  out.valid = true;
  return out;
}

}  // namespace kdv
