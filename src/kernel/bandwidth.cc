#include "kernel/bandwidth.h"

#include <cmath>

#include "util/check.h"

namespace kdv {

const char* BandwidthRuleName(BandwidthRule rule) {
  switch (rule) {
    case BandwidthRule::kScott:
      return "scott";
    case BandwidthRule::kSilverman:
      return "silverman";
  }
  return "unknown";
}

double SilvermanBandwidth(const PointSet& points) {
  if (points.size() < 2) return 1.0;
  const double d = static_cast<double>(points[0].dim());
  const double n = static_cast<double>(points.size());
  double factor = std::pow(4.0 / (d + 2.0), 1.0 / (d + 4.0));
  // ScottBandwidth already computes sigma * n^(-1/(d+4)).
  double h = factor * ScottBandwidth(points);
  (void)n;
  return h > 0.0 ? h : 1.0;
}

double SelectBandwidth(BandwidthRule rule, const PointSet& points) {
  switch (rule) {
    case BandwidthRule::kScott:
      return ScottBandwidth(points);
    case BandwidthRule::kSilverman:
      return SilvermanBandwidth(points);
  }
  return 1.0;
}

double GammaFromBandwidth(KernelType type, double h) {
  KDV_CHECK(h > 0.0);
  return UsesSquaredDistanceArgument(type) ? 1.0 / (2.0 * h * h) : 1.0 / h;
}

KernelParams MakeParamsWithRule(KernelType type, BandwidthRule rule,
                                const PointSet& points) {
  KernelParams params;
  params.type = type;
  params.gamma = GammaFromBandwidth(type, SelectBandwidth(rule, points));
  params.weight =
      points.empty() ? 1.0 : 1.0 / static_cast<double>(points.size());
  return params;
}

}  // namespace kdv
