// Bandwidth selection rules.
//
// The paper's experiments use Scott's rule; Silverman's rule-of-thumb is the
// other selector shipped by the software the paper targets (Scikit-learn,
// QGIS). Both give h = C(d) * sigma * n^(-1/(d+4)) with different constants.
#ifndef QUADKDV_KERNEL_BANDWIDTH_H_
#define QUADKDV_KERNEL_BANDWIDTH_H_

#include "kernel/kernel.h"

namespace kdv {

enum class BandwidthRule {
  kScott,      // h = sigma * n^(-1/(d+4))
  kSilverman,  // h = sigma * (4/(d+2))^(1/(d+4)) * n^(-1/(d+4))
};

const char* BandwidthRuleName(BandwidthRule rule);

// Silverman's rule-of-thumb bandwidth (falls back like ScottBandwidth on
// degenerate inputs).
double SilvermanBandwidth(const PointSet& points);

// Bandwidth under the given rule.
double SelectBandwidth(BandwidthRule rule, const PointSet& points);

// KernelParams with the selected rule's gamma and weight 1/n; the gamma
// conventions per kernel family match MakeScottParams.
KernelParams MakeParamsWithRule(KernelType type, BandwidthRule rule,
                                const PointSet& points);

// Converts a bandwidth h into the profile-argument scale gamma for the
// kernel family: 1/(2h^2) for the Gaussian (x = gamma*dist^2), 1/h for
// distance-argument kernels (x = gamma*dist).
double GammaFromBandwidth(KernelType type, double h);

}  // namespace kdv

#endif  // QUADKDV_KERNEL_BANDWIDTH_H_
