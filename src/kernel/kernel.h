// Kernel functions for kernel density estimation / visualization.
//
// The paper (Eq. 1 and Table 4) writes every kernel as a profile function of
// a scalar argument x:
//   * Gaussian:     K = exp(-x)            with x = gamma * dist(q,p)^2
//   * Triangular:   K = max(1 - x, 0)      with x = gamma * dist(q,p)
//   * Cosine:       K = cos(x) for x<=pi/2 with x = gamma * dist(q,p)
//                       (0 beyond pi/2)
//   * Exponential:  K = exp(-x)            with x = gamma * dist(q,p)
// We additionally support three polynomial kernels found in the same software
// ecosystems (Scikit-learn / QGIS) whose aggregations admit *exact* O(d) or
// O(d^2) evaluation with the node statistics this library maintains:
//   * Epanechnikov: K = max(1 - x^2, 0)    with x = gamma * dist(q,p)
//   * Quartic:      K = max((1-x^2)^2, 0)  with x = gamma * dist(q,p)
//   * Uniform:      K = 1 for x <= 1       with x = gamma * dist(q,p)
#ifndef QUADKDV_KERNEL_KERNEL_H_
#define QUADKDV_KERNEL_KERNEL_H_

#include <cmath>
#include <string>

#include "geom/point.h"

namespace kdv {

enum class KernelType {
  kGaussian,
  kTriangular,
  kCosine,
  kExponential,
  kEpanechnikov,
  kQuartic,
  kUniform,
};

// Human-readable kernel name ("gaussian", "triangular", ...).
const char* KernelTypeName(KernelType type);

// True for kernels whose profile argument is x = gamma * dist^2 (Gaussian);
// false for kernels with x = gamma * dist (all others).
constexpr bool UsesSquaredDistanceArgument(KernelType type) {
  return type == KernelType::kGaussian;
}

// True for kernels with bounded support (K == 0 once x exceeds the support
// edge). SupportEdge() gives that edge in x-units.
constexpr bool HasFiniteSupport(KernelType type) {
  switch (type) {
    case KernelType::kGaussian:
    case KernelType::kExponential:
      return false;
    default:
      return true;
  }
}

// Support edge in x-units for finite-support kernels: K(x)=0 for x >= edge.
// Infinity for Gaussian/exponential.
double SupportEdge(KernelType type);

// Numeric support edge of exp(-x): beyond this the true value is below the
// smallest normal double. Treating it as exactly 0 avoids denormal-arithmetic
// cascades (orders-of-magnitude slowdowns) and keeps +Inf arguments from
// extreme bandwidths out of NaN-prone downstream expressions.
inline constexpr double kExpUnderflowX = 708.0;

// exp(-x) clamped at the numeric support edge. x may be +Inf; result is
// always finite. Use this instead of std::exp(-x) wherever x = γ·dist or
// γ·dist² can be driven arbitrarily large by the bandwidth.
inline double ClampedExpNeg(double x) {
  return x >= kExpUnderflowX ? 0.0 : std::exp(-x);
}

// Profile value K as a function of the scalar x (see header comment for the
// per-kernel meaning of x). x must be >= 0.
double KernelProfile(KernelType type, double x);

// Kernel parameters of one KDE task: F_P(q) = sum_i weight * K_gamma(q, p_i).
struct KernelParams {
  KernelType type = KernelType::kGaussian;
  double gamma = 1.0;   // bandwidth-derived scale, > 0
  double weight = 1.0;  // per-point weight w, > 0

  // The profile argument x for a squared distance.
  double XFromSquaredDistance(double sq_dist) const {
    return UsesSquaredDistanceArgument(type) ? gamma * sq_dist
                                             : gamma * std::sqrt(sq_dist);
  }

  // Unweighted kernel value for a squared distance between q and p.
  double EvalSquaredDistance(double sq_dist) const {
    return KernelProfile(type, XFromSquaredDistance(sq_dist));
  }
};

// Scott's rule-of-thumb bandwidth for an n-point d-dimensional dataset:
//   h = sigma * n^(-1 / (d + 4))
// where sigma is the average per-dimension standard deviation. Returns a
// conservative positive fallback for degenerate inputs (n < 2 or zero
// variance).
double ScottBandwidth(const PointSet& points);

// Builds KernelParams with Scott's-rule gamma and weight 1/n (so that F_P(q)
// is the average kernel response), following the paper's experimental setup.
// For the Gaussian kernel gamma = 1/(2 h^2); for distance-argument kernels
// gamma = 1/h.
KernelParams MakeScottParams(KernelType type, const PointSet& points);

}  // namespace kdv

#endif  // QUADKDV_KERNEL_KERNEL_H_
