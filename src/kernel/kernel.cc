#include "kernel/kernel.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace kdv {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

const char* KernelTypeName(KernelType type) {
  switch (type) {
    case KernelType::kGaussian:
      return "gaussian";
    case KernelType::kTriangular:
      return "triangular";
    case KernelType::kCosine:
      return "cosine";
    case KernelType::kExponential:
      return "exponential";
    case KernelType::kEpanechnikov:
      return "epanechnikov";
    case KernelType::kQuartic:
      return "quartic";
    case KernelType::kUniform:
      return "uniform";
  }
  return "unknown";
}

double SupportEdge(KernelType type) {
  switch (type) {
    case KernelType::kGaussian:
    case KernelType::kExponential:
      return std::numeric_limits<double>::infinity();
    case KernelType::kTriangular:
      return 1.0;
    case KernelType::kCosine:
      return kPi / 2.0;
    case KernelType::kEpanechnikov:
    case KernelType::kQuartic:
    case KernelType::kUniform:
      return 1.0;
  }
  return std::numeric_limits<double>::infinity();
}

double KernelProfile(KernelType type, double x) {
  KDV_DCHECK(x >= 0.0);
  switch (type) {
    case KernelType::kGaussian:
    case KernelType::kExponential:
      return ClampedExpNeg(x);
    case KernelType::kTriangular:
      return std::max(1.0 - x, 0.0);
    case KernelType::kCosine:
      return x <= kPi / 2.0 ? std::cos(x) : 0.0;
    case KernelType::kEpanechnikov:
      return std::max(1.0 - x * x, 0.0);
    case KernelType::kQuartic: {
      if (x >= 1.0) return 0.0;
      double t = 1.0 - x * x;
      return t * t;
    }
    case KernelType::kUniform:
      return x <= 1.0 ? 1.0 : 0.0;
  }
  return 0.0;
}

double ScottBandwidth(const PointSet& points) {
  const size_t n = points.size();
  if (n < 2) return 1.0;
  const int d = points[0].dim();
  KDV_CHECK(d > 0);

  // Average per-dimension standard deviation.
  double sigma_sum = 0.0;
  for (int j = 0; j < d; ++j) {
    double mean = 0.0;
    for (const Point& p : points) mean += p[j];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (const Point& p : points) {
      double diff = p[j] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(n - 1);
    sigma_sum += std::sqrt(var);
  }
  double sigma = sigma_sum / d;
  if (sigma <= 0.0) return 1.0;

  double h = sigma * std::pow(static_cast<double>(n),
                              -1.0 / (static_cast<double>(d) + 4.0));
  return h > 0.0 ? h : 1.0;
}

KernelParams MakeScottParams(KernelType type, const PointSet& points) {
  KernelParams params;
  params.type = type;
  double h = ScottBandwidth(points);
  if (UsesSquaredDistanceArgument(type)) {
    params.gamma = 1.0 / (2.0 * h * h);
  } else {
    params.gamma = 1.0 / h;
  }
  params.weight =
      points.empty() ? 1.0 : 1.0 / static_cast<double>(points.size());
  return params;
}

}  // namespace kdv
