// Density statistics over the pixel grid: the paper selects τKDV thresholds
// as μ + k·σ where μ, σ are the mean / standard deviation of F_P(q) over all
// pixels q (§7.2).
#ifndef QUADKDV_STATS_DENSITY_STATS_H_
#define QUADKDV_STATS_DENSITY_STATS_H_

#include <vector>

#include "core/evaluator.h"
#include "viz/pixel_grid.h"

namespace kdv {

struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};

// Mean and (population) standard deviation of a value vector.
MeanStd ComputeMeanStd(const std::vector<double>& values);

// Estimates μ, σ of the KDE over the grid by evaluating εKDV (ε = 0.01, a
// negligible perturbation of μ and σ) on a pixel subsample of the given
// stride (stride 1 = every pixel). The paper computes these statistics to
// place the τ sweep; the subsample keeps that setup step cheap.
MeanStd EstimateDensityStats(const KdeEvaluator& evaluator,
                             const PixelGrid& grid, int stride = 4,
                             double eps = 0.01);

// The paper's τ sweep around the density statistics: μ + k·σ for
// k in {-0.3, -0.2, -0.1, 0, 0.1, 0.2, 0.3}, floored at a small positive
// value (a non-positive threshold makes τKDV trivially all-above).
std::vector<double> TauSweep(const MeanStd& stats);

}  // namespace kdv

#endif  // QUADKDV_STATS_DENSITY_STATS_H_
