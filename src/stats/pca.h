// Principal component analysis for the dimensionality sweep (paper §7.7):
// the paper varies dataset dimensionality from 2 to 10 via PCA projection
// before running the general KDE throughput experiment.
#ifndef QUADKDV_STATS_PCA_H_
#define QUADKDV_STATS_PCA_H_

#include <vector>

#include "geom/point.h"

namespace kdv {

// Symmetric d x d matrix stored row-major.
struct SymMatrix {
  int dim = 0;
  std::vector<double> m;  // dim * dim entries

  double at(int i, int j) const { return m[static_cast<size_t>(i) * dim + j]; }
  double& at(int i, int j) { return m[static_cast<size_t>(i) * dim + j]; }
};

// Sample covariance matrix of a point set (n >= 2).
SymMatrix Covariance(const PointSet& points);

// Eigen decomposition of a symmetric matrix via the cyclic Jacobi method.
// On return, eigenvalues are sorted descending and eigenvectors[k] is the
// unit eigenvector (length dim) for eigenvalues[k].
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
};
EigenDecomposition JacobiEigenSymmetric(const SymMatrix& a,
                                        int max_sweeps = 64);

// Projects the (mean-centered) points onto the top `k` principal
// components. k must satisfy 1 <= k <= dim.
PointSet PcaProject(const PointSet& points, int k);

}  // namespace kdv

#endif  // QUADKDV_STATS_PCA_H_
