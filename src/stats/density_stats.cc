#include "stats/density_stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kdv {

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  KDV_CHECK(!values.empty());
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) {
    double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(values.size());
  return {mean, std::sqrt(var)};
}

MeanStd EstimateDensityStats(const KdeEvaluator& evaluator,
                             const PixelGrid& grid, int stride, double eps) {
  KDV_CHECK(stride >= 1);
  std::vector<double> values;
  values.reserve(grid.num_pixels() / (static_cast<size_t>(stride) * stride) +
                 1);
  for (int py = 0; py < grid.height(); py += stride) {
    for (int px = 0; px < grid.width(); px += stride) {
      values.push_back(
          evaluator.EvaluateEps(grid.PixelCenter(px, py), eps).estimate);
    }
  }
  return ComputeMeanStd(values);
}

std::vector<double> TauSweep(const MeanStd& stats) {
  std::vector<double> taus;
  for (double k = -0.3; k <= 0.3 + 1e-9; k += 0.1) {
    double tau = stats.mean + k * stats.stddev;
    taus.push_back(std::max(tau, 1e-12));
  }
  return taus;
}

}  // namespace kdv
