#include "stats/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace kdv {

SymMatrix Covariance(const PointSet& points) {
  KDV_CHECK(points.size() >= 2);
  const int d = points[0].dim();
  const double n = static_cast<double>(points.size());

  std::vector<double> mean(d, 0.0);
  for (const Point& p : points) {
    for (int i = 0; i < d; ++i) mean[i] += p[i];
  }
  for (int i = 0; i < d; ++i) mean[i] /= n;

  SymMatrix cov;
  cov.dim = d;
  cov.m.assign(static_cast<size_t>(d) * d, 0.0);
  for (const Point& p : points) {
    for (int i = 0; i < d; ++i) {
      double di = p[i] - mean[i];
      for (int j = i; j < d; ++j) {
        cov.at(i, j) += di * (p[j] - mean[j]);
      }
    }
  }
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      double v = cov.at(i, j) / (n - 1.0);
      cov.at(i, j) = v;
      cov.at(j, i) = v;
    }
  }
  return cov;
}

EigenDecomposition JacobiEigenSymmetric(const SymMatrix& input,
                                        int max_sweeps) {
  const int d = input.dim;
  KDV_CHECK(d >= 1);
  SymMatrix a = input;

  // v starts as identity and accumulates rotations; column k is the
  // eigenvector of eigenvalue a(k, k) on convergence.
  std::vector<double> v(static_cast<size_t>(d) * d, 0.0);
  for (int i = 0; i < d; ++i) v[static_cast<size_t>(i) * d + i] = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < d; ++p) {
      for (int q = p + 1; q < d; ++q) off += a.at(p, q) * a.at(p, q);
    }
    if (off < 1e-24) break;

    for (int p = 0; p < d; ++p) {
      for (int q = p + 1; q < d; ++q) {
        double apq = a.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double theta = (a.at(q, q) - a.at(p, p)) / (2.0 * apq);
        double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (int k = 0; k < d; ++k) {
          double akp = a.at(k, p);
          double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < d; ++k) {
          double apk = a.at(p, k);
          double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < d; ++k) {
          double vkp = v[static_cast<size_t>(k) * d + p];
          double vkq = v[static_cast<size_t>(k) * d + q];
          v[static_cast<size_t>(k) * d + p] = c * vkp - s * vkq;
          v[static_cast<size_t>(k) * d + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<int> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](int x, int y) { return a.at(x, x) > a.at(y, y); });

  EigenDecomposition out;
  out.eigenvalues.resize(d);
  out.eigenvectors.resize(d);
  for (int k = 0; k < d; ++k) {
    int col = order[k];
    out.eigenvalues[k] = a.at(col, col);
    out.eigenvectors[k].resize(d);
    for (int i = 0; i < d; ++i) {
      out.eigenvectors[k][i] = v[static_cast<size_t>(i) * d + col];
    }
  }
  return out;
}

PointSet PcaProject(const PointSet& points, int k) {
  KDV_CHECK(!points.empty());
  const int d = points[0].dim();
  KDV_CHECK(k >= 1 && k <= d);

  std::vector<double> mean(d, 0.0);
  for (const Point& p : points) {
    for (int i = 0; i < d; ++i) mean[i] += p[i];
  }
  for (int i = 0; i < d; ++i) mean[i] /= static_cast<double>(points.size());

  EigenDecomposition eig = JacobiEigenSymmetric(Covariance(points));

  PointSet projected;
  projected.reserve(points.size());
  for (const Point& p : points) {
    Point out(k);
    for (int c = 0; c < k; ++c) {
      double dot = 0.0;
      for (int i = 0; i < d; ++i) {
        dot += (p[i] - mean[i]) * eig.eigenvectors[c][i];
      }
      out[c] = dot;
    }
    projected.push_back(out);
  }
  return projected;
}

}  // namespace kdv
