#include "data/validate.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace kdv {

namespace {

bool IsFinitePoint(const Point& p) {
  for (int j = 0; j < p.dim(); ++j) {
    if (!std::isfinite(p[j])) return false;
  }
  return true;
}

// Lexicographic coordinate order; used only to group exact duplicates.
bool LexLess(const Point& a, const Point& b) {
  for (int j = 0; j < a.dim(); ++j) {
    if (a[j] != b[j]) return a[j] < b[j];
  }
  return false;
}

}  // namespace

std::string IngestReport::Summary() const {
  std::ostringstream oss;
  oss << "ingested " << kept_points << "/" << input_points << " points";
  if (dropped_nonfinite > 0) {
    oss << ", dropped " << dropped_nonfinite << " non-finite";
  }
  if (dropped_dim_mismatch > 0) {
    oss << ", dropped " << dropped_dim_mismatch << " dim-mismatched";
  }
  if (duplicate_points > 0) oss << ", " << duplicate_points << " duplicates";
  if (all_identical) {
    oss << ", all points identical";
  } else if (!zero_variance_dims.empty()) {
    oss << ", " << zero_variance_dims.size() << " zero-variance dimension(s)";
  }
  if (degenerate) oss << " [degenerate geometry]";
  return oss.str();
}

Status ValidatePointSet(PointSet* points, const ValidateOptions& options,
                        IngestReport* report) {
  IngestReport local;
  local.input_points = points->size();
  if (points->empty()) {
    return InvalidArgumentError("dataset is empty");
  }

  const bool drop =
      options.policy == ValidateOptions::BadPointPolicy::kDrop;
  const int dim = (*points)[0].dim();
  if (dim < 1) {
    return InvalidArgumentError("points must have dimension >= 1");
  }

  size_t write = 0;
  for (size_t i = 0; i < points->size(); ++i) {
    const Point& p = (*points)[i];
    if (p.dim() != dim) {
      if (!drop) {
        std::ostringstream oss;
        oss << "point " << i << " has dimension " << p.dim()
            << ", expected " << dim;
        return InvalidArgumentError(oss.str());
      }
      ++local.dropped_dim_mismatch;
      continue;
    }
    if (!IsFinitePoint(p)) {
      if (!drop) {
        std::ostringstream oss;
        oss << "point " << i << " has a non-finite (NaN/Inf) coordinate";
        return InvalidArgumentError(oss.str());
      }
      ++local.dropped_nonfinite;
      continue;
    }
    (*points)[write++] = p;
  }
  points->resize(write);
  local.kept_points = write;
  if (write == 0) {
    return InvalidArgumentError(
        "dataset has no usable points after dropping non-finite rows");
  }

  // Duplicate census over a sorted index permutation (the point order the
  // caller hands to the kd-tree builder is preserved).
  std::vector<uint32_t> order(points->size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return LexLess((*points)[a], (*points)[b]);
  });
  for (size_t i = 1; i < order.size(); ++i) {
    if ((*points)[order[i]] == (*points)[order[i - 1]]) {
      ++local.duplicate_points;
    }
  }
  if (options.max_duplicate_fraction < 1.0 && points->size() > 1) {
    double fraction = static_cast<double>(local.duplicate_points) /
                      static_cast<double>(points->size());
    if (fraction > options.max_duplicate_fraction && !drop) {
      std::ostringstream oss;
      oss << "duplicate fraction " << fraction << " exceeds maximum "
          << options.max_duplicate_fraction;
      return InvalidArgumentError(oss.str());
    }
  }

  // Geometry census: per-dimension extent.
  for (int j = 0; j < dim; ++j) {
    double lo = (*points)[0][j], hi = lo;
    for (const Point& p : *points) {
      lo = std::min(lo, p[j]);
      hi = std::max(hi, p[j]);
    }
    if (lo == hi) local.zero_variance_dims.push_back(j);
  }
  local.all_identical =
      static_cast<int>(local.zero_variance_dims.size()) == dim;
  local.degenerate = points->size() < 2 || local.all_identical ||
                     !local.zero_variance_dims.empty();

  if (report != nullptr) *report = local;
  return OkStatus();
}

}  // namespace kdv
