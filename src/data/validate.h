// Ingestion validation: the gate between untrusted point data (CSV files,
// live feeds) and the index/evaluator layers, which assume finite
// coordinates and uniform dimensionality.
//
// A single NaN coordinate poisons every kd-tree node aggregate above it and
// turns whole density frames into NaN; all-identical points drive Scott's
// rule toward a zero bandwidth. ValidatePointSet catches both classes up
// front and reports what it saw in a structured IngestReport, so callers can
// degrade gracefully (flat frame, fallback bandwidth) instead of rendering
// garbage.
#ifndef QUADKDV_DATA_VALIDATE_H_
#define QUADKDV_DATA_VALIDATE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "geom/point.h"
#include "util/status.h"

namespace kdv {

struct ValidateOptions {
  enum class BadPointPolicy {
    kReject,  // any bad point fails the whole ingestion (default)
    kDrop,    // bad points are removed and counted in the report
  };
  // Applies to non-finite coordinates and dimensionality mismatches.
  BadPointPolicy policy = BadPointPolicy::kReject;
  // When > 0 and the fraction of exactly-duplicated points exceeds this,
  // the report flags the set as duplicate-heavy (kReject makes it an error:
  // duplicate floods usually mean a joined/exploded ingestion bug upstream).
  double max_duplicate_fraction = 1.0;
};

// What ingestion saw. `kept` is the post-validation cardinality; the
// degenerate_* flags describe geometry that downstream bandwidth selection
// must special-case (Scott's rule falls back to h = 1).
struct IngestReport {
  size_t input_points = 0;
  size_t kept_points = 0;
  size_t dropped_nonfinite = 0;
  size_t dropped_dim_mismatch = 0;
  size_t duplicate_points = 0;  // members of duplicate groups beyond the first

  std::vector<int> zero_variance_dims;  // dimensions with zero extent
  bool all_identical = false;           // every kept point equal
  // True when the kept geometry cannot support a data-driven bandwidth:
  // fewer than two points, all points identical, or at least one
  // zero-variance dimension.
  bool degenerate = false;

  // One-line human-readable summary for logs/CLIs.
  std::string Summary() const;
};

// Validates (and under kDrop, filters) `points` in place. Returns:
//   * InvalidArgument if the set is empty (before or after dropping),
//   * InvalidArgument under kReject if any point is non-finite, has a
//     mismatched dimensionality, or the duplicate fraction exceeds the
//     configured maximum,
//   * OK otherwise — including degenerate-but-usable geometry, which is
//     reported via `report` (may be nullptr) rather than rejected.
Status ValidatePointSet(PointSet* points, const ValidateOptions& options,
                        IngestReport* report);

inline Status ValidatePointSet(PointSet* points, IngestReport* report) {
  return ValidatePointSet(points, ValidateOptions(), report);
}

}  // namespace kdv

#endif  // QUADKDV_DATA_VALIDATE_H_
