#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/csv.h"
#include "util/random.h"

namespace kdv {

PointSet GenerateMixture(const MixtureSpec& spec) {
  KDV_CHECK(spec.dim >= 1 && spec.dim <= kMaxDim);
  KDV_CHECK(spec.num_clusters >= 1);
  KDV_CHECK(spec.noise_fraction >= 0.0 && spec.noise_fraction <= 1.0);
  Rng rng(spec.seed);

  // Cluster parameters: center in [0.1, 0.9]^d so most mass stays inside the
  // unit domain; stddev log-uniform in the configured range; weights Zipf-ish
  // so a few hotspots dominate, as in real crime/traffic data.
  struct Cluster {
    Point center;
    double stddev;
    double cum_weight;
  };
  std::vector<Cluster> clusters(spec.num_clusters);
  double total_weight = 0.0;
  for (int c = 0; c < spec.num_clusters; ++c) {
    Cluster& cl = clusters[c];
    cl.center = Point(spec.dim);
    for (int j = 0; j < spec.dim; ++j) cl.center[j] = rng.Uniform(0.1, 0.9);
    double log_lo = std::log(spec.cluster_stddev_min);
    double log_hi = std::log(spec.cluster_stddev_max);
    cl.stddev = std::exp(rng.Uniform(log_lo, log_hi));
    total_weight += 1.0 / (1.0 + c);  // Zipf weight 1/(c+1)
    cl.cum_weight = total_weight;
  }

  PointSet points;
  points.reserve(spec.n);
  for (size_t i = 0; i < spec.n; ++i) {
    Point p(spec.dim);
    if (rng.NextDouble() < spec.noise_fraction) {
      for (int j = 0; j < spec.dim; ++j) p[j] = rng.NextDouble();
    } else {
      double r = rng.Uniform(0.0, total_weight);
      size_t c = 0;
      while (c + 1 < clusters.size() && clusters[c].cum_weight < r) ++c;
      const Cluster& cl = clusters[c];
      for (int j = 0; j < spec.dim; ++j) {
        p[j] = rng.Gaussian(cl.center[j], cl.stddev);
      }
    }
    points.push_back(p);
  }
  return points;
}

namespace {

size_t Scaled(size_t n, double scale) {
  KDV_CHECK(scale > 0.0 && scale <= 1.0);
  size_t m = static_cast<size_t>(static_cast<double>(n) * scale);
  return std::max<size_t>(m, 100);
}

}  // namespace

MixtureSpec ElNinoSpec(double scale) {
  MixtureSpec spec;
  spec.name = "el_nino";
  spec.n = Scaled(178080, scale);
  spec.dim = 2;
  spec.num_clusters = 6;  // smooth, wide oceanographic structure
  spec.cluster_stddev_min = 0.05;
  spec.cluster_stddev_max = 0.15;
  spec.noise_fraction = 0.15;
  spec.seed = 1001;
  return spec;
}

MixtureSpec CrimeSpec(double scale) {
  MixtureSpec spec;
  spec.name = "crime";
  spec.n = Scaled(270688, scale);
  spec.dim = 2;
  spec.num_clusters = 40;  // many tight urban hotspots
  spec.cluster_stddev_min = 0.005;
  spec.cluster_stddev_max = 0.03;
  spec.noise_fraction = 0.1;
  spec.seed = 1002;
  return spec;
}

MixtureSpec HomeSpec(double scale) {
  MixtureSpec spec;
  spec.name = "home";
  spec.n = Scaled(919438, scale);
  spec.dim = 2;
  spec.num_clusters = 8;  // dominant operating-point blob + excursions
  spec.cluster_stddev_min = 0.01;
  spec.cluster_stddev_max = 0.08;
  spec.noise_fraction = 0.05;
  spec.seed = 1003;
  return spec;
}

MixtureSpec HepSpec(double scale) {
  MixtureSpec spec;
  spec.name = "hep";
  spec.n = Scaled(7000000, scale);
  spec.dim = 2;
  spec.num_clusters = 15;
  spec.cluster_stddev_min = 0.02;
  spec.cluster_stddev_max = 0.07;
  spec.noise_fraction = 0.2;
  spec.seed = 1004;
  return spec;
}

std::vector<MixtureSpec> PaperDatasetSpecs(double scale) {
  return {ElNinoSpec(scale), CrimeSpec(scale), HomeSpec(scale),
          HepSpec(scale)};
}

void NormalizeToUnitCube(PointSet* points) {
  if (points->empty()) return;
  Rect box = BoundingBox(*points);
  const int d = box.dim();
  for (Point& p : *points) {
    for (int j = 0; j < d; ++j) {
      double len = box.Length(j);
      p[j] = len > 0.0 ? (p[j] - box.lo(j)) / len : 0.5;
    }
  }
}

Rect BoundingBox(const PointSet& points) {
  KDV_CHECK(!points.empty());
  Rect box(points[0].dim());
  for (const Point& p : points) box.Expand(p);
  return box;
}

PointSet SamplePoints(const PointSet& points, size_t m, uint64_t seed) {
  if (m >= points.size()) return points;
  std::vector<size_t> idx(points.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng rng(seed);
  for (size_t i = 0; i < m; ++i) {
    size_t j = i + rng.UniformInt(idx.size() - i);
    std::swap(idx[i], idx[j]);
  }
  PointSet out;
  out.reserve(m);
  for (size_t i = 0; i < m; ++i) out.push_back(points[idx[i]]);
  return out;
}

Status LoadPointsCsv(const std::string& path,
                     const std::vector<int>& attributes, PointSet* points,
                     CsvReadStats* stats_out) {
  points->clear();
  std::vector<std::vector<double>> rows;
  CsvReadStats stats;
  KDV_RETURN_IF_ERROR(ReadCsvFile(path, &rows, &stats));
  if (stats_out != nullptr) *stats_out = stats;
  if (rows.empty()) {
    return InvalidArgumentError(path + " contains no parseable numeric rows (" +
                                std::to_string(stats.skipped()) +
                                " rows skipped)");
  }
  for (const auto& row : rows) {
    std::vector<double> coords;
    if (attributes.empty()) {
      coords = row;
    } else {
      coords.reserve(attributes.size());
      for (int a : attributes) {
        if (a < 0 || a >= static_cast<int>(row.size())) {
          return InvalidArgumentError(
              "attribute column " + std::to_string(a) + " out of range for " +
              std::to_string(row.size()) + "-column CSV " + path);
        }
        coords.push_back(row[a]);
      }
    }
    if (static_cast<int>(coords.size()) > kMaxDim) {
      return InvalidArgumentError(
          path + " has " + std::to_string(coords.size()) +
          " columns, more than the supported maximum of " +
          std::to_string(kMaxDim));
    }
    points->push_back(Point::FromVector(coords));
  }
  return OkStatus();
}

Status SavePointsCsv(const std::string& path, const PointSet& points) {
  std::vector<std::vector<double>> rows;
  rows.reserve(points.size());
  for (const Point& p : points) {
    std::vector<double> row(p.dim());
    for (int j = 0; j < p.dim(); ++j) row[j] = p[j];
    rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, "", rows);
}

}  // namespace kdv
