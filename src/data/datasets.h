// Dataset synthesis and loading.
//
// The paper evaluates on four real datasets (UCI El-nino / home / hep and the
// Atlanta crime feed, Table 5). Those files are not redistributable /
// available offline, so this module synthesises Gaussian-mixture datasets
// with the same cardinality, dimensionality and hotspot structure. The KDV
// algorithms are data-oblivious; what drives the relative performance of the
// bound functions is the clusteredness of the point set, which the mixtures
// reproduce. See DESIGN.md "Substitutions".
#ifndef QUADKDV_DATA_DATASETS_H_
#define QUADKDV_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "util/csv.h"
#include "util/status.h"

namespace kdv {

// Parameters of a synthetic Gaussian-mixture dataset. Points are drawn from
// `num_clusters` isotropic Gaussians with random centers inside the unit
// square (cube), mixed with a `noise_fraction` of uniform background points.
struct MixtureSpec {
  std::string name = "synthetic";
  size_t n = 10000;
  int dim = 2;
  int num_clusters = 10;
  double cluster_stddev_min = 0.01;  // relative to the unit domain
  double cluster_stddev_max = 0.05;
  double noise_fraction = 0.1;  // in [0, 1]
  uint64_t seed = 42;
};

// Draws a dataset according to `spec`. Deterministic in spec.seed.
PointSet GenerateMixture(const MixtureSpec& spec);

// The paper's four evaluation datasets (Table 5), as mixture analogues.
// `scale` in (0, 1] shrinks cardinality proportionally (a scale of 0.01 turns
// the 7M-point hep analogue into 70k points) so experiments finish on small
// machines; shapes of the performance curves are preserved.
//
//   el_nino: 178,080 pts, smooth oceanographic field -> few wide clusters
//   crime:   270,688 pts, urban point pattern        -> many tight hotspots
//   home:    919,438 pts, sensor readings            -> dominant dense blob
//   hep:     7,000,000 pts, physics events           -> mid-size clusters
MixtureSpec ElNinoSpec(double scale = 1.0);
MixtureSpec CrimeSpec(double scale = 1.0);
MixtureSpec HomeSpec(double scale = 1.0);
MixtureSpec HepSpec(double scale = 1.0);

// All four paper datasets in Table 5 order.
std::vector<MixtureSpec> PaperDatasetSpecs(double scale = 1.0);

// Rescales every coordinate affinely so the bounding box becomes
// [0,1]^dim. Degenerate dimensions (zero extent) map to 0.5.
void NormalizeToUnitCube(PointSet* points);

// Bounding box of a point set. Points must be non-empty and share dim.
Rect BoundingBox(const PointSet& points);

// Uniform random subsample without replacement (Fisher–Yates prefix);
// `m >= points.size()` returns a copy. Deterministic in seed.
PointSet SamplePoints(const PointSet& points, size_t m, uint64_t seed);

// Loads points from a numeric CSV, keeping the given attribute columns
// (empty `attributes` keeps all columns). Returns NotFound if the file
// cannot be read and InvalidArgument if the selected columns are
// missing/too many or no row parses. Non-finite and ragged rows are
// rejected at the CSV layer (see util/csv.h); `stats` (optional) reports
// how many rows were skipped that way so callers can warn instead of
// silently thinning the data.
Status LoadPointsCsv(const std::string& path,
                     const std::vector<int>& attributes, PointSet* points,
                     CsvReadStats* stats = nullptr);

// Writes points as CSV. Returns a non-OK Status on I/O failure.
Status SavePointsCsv(const std::string& path, const PointSet& points);

}  // namespace kdv

#endif  // QUADKDV_DATA_DATASETS_H_
