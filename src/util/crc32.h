// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for persisted-state
// integrity checks. This is the same CRC used by zlib/PNG/gzip, so externally
// produced index files can be checked with standard tools.
#ifndef QUADKDV_UTIL_CRC32_H_
#define QUADKDV_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace kdv {

// CRC-32 of `len` bytes at `data`. Crc32(nullptr, 0) == 0.
uint32_t Crc32(const void* data, size_t len);

// Incremental form: feed successive chunks, starting from `crc` of the
// previous prefix (0 for an empty prefix). Equivalent to one-shot Crc32 over
// the concatenation.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

}  // namespace kdv

#endif  // QUADKDV_UTIL_CRC32_H_
