// Unified clock abstraction: one time seam for the whole serving stack.
//
// Before this header existed, "what time is it" reached the serve layer
// through three unrelated seams — `CircuitBreaker::ClockFn`, the raw
// steady_clock inside `util/Timer`, and per-component `std::function`
// clocks on the governor/watchdog/scrubber — each with its own
// null-means-steady-clock fallback. Deterministic simulation (src/sim/)
// needs every one of those reads to come from a single virtual clock, so
// they are unified here:
//
//   * `Clock` is the interface: `NowSeconds()` (monotonic seconds) plus the
//     waitable primitives `WaitFor()` / `SleepUntil()`.
//   * `RealClock` reads std::chrono::steady_clock; waits park the calling
//     thread (interruptibly, via a `Waker`).
//   * `ManualClock` is the unit-test clock: tests advance it explicitly.
//   * `SimClock` (src/sim/sim_clock.h) is the simulation's virtual clock:
//     a wait from a simulated task is a cooperative yield to the scheduler,
//     and time advances only when every task is blocked.
//
// `CurrentClock()` is the process-wide default used by `Timer`/`Deadline`
// and every component whose injected clock is null. The simulator installs
// its SimClock there (`ScopedClockOverride`) so even code that never heard
// of dependency injection — deadline math deep in the refinement loops,
// failpoint delays — runs on virtual time. Outside the simulator the
// default is a process-lifetime RealClock.
//
// Thread safety: all Clock implementations here are safe to share across
// threads. A Waker may be Set() from any thread, once; further Sets are
// no-ops.
#ifndef QUADKDV_UTIL_CLOCK_H_
#define QUADKDV_UTIL_CLOCK_H_

#include <condition_variable>
#include <functional>
#include <mutex>

namespace kdv {

// One-shot wake-up latch for interruptible waits. A sleeper passes a Waker
// to Clock::WaitFor; anyone who wants the sleeper up early calls Set().
// Once set, every current and future wait on it returns immediately —
// exactly the semantics a stop flag needs (Stop() is terminal).
class Waker {
 public:
  Waker() = default;
  Waker(const Waker&) = delete;
  Waker& operator=(const Waker&) = delete;

  // Wakes all current and future waiters. Idempotent; callable from any
  // thread. The notify hook (if any) runs outside the internal lock.
  void Set();

  bool is_set() const;

  // Parks the calling thread until Set() or `seconds` elapse (real time).
  // Returns is_set(). RealClock::WaitFor delegates here.
  bool BlockFor(double seconds);

  // Simulation integration: `hook` is invoked exactly once, on the first
  // Set() after installation (or never). The simulator uses it to move a
  // parked virtual task back to the runnable set. Passing nullptr clears
  // an un-fired hook.
  void SetNotifyHook(std::function<void()> hook);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
  std::function<void()> hook_;
};

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic seconds. The epoch is arbitrary (process start for RealClock,
  // simulation start for SimClock); only differences are meaningful.
  virtual double NowSeconds() const = 0;

  // Waits up to `seconds` (<= 0: still a scheduling point, but no delay).
  // If `waker` is non-null the wait ends early when it is set; if it is
  // already set the call returns immediately.
  virtual void WaitFor(double seconds, Waker* waker = nullptr) = 0;

  // Waits until NowSeconds() >= deadline_seconds (same early-out contract).
  void SleepUntil(double deadline_seconds, Waker* waker = nullptr) {
    WaitFor(deadline_seconds - NowSeconds(), waker);
  }

  // True for clocks whose time is simulated (SimClock). Lets diagnostics
  // annotate whether a timestamp is wall time.
  virtual bool IsSimulated() const { return false; }
};

// std::chrono::steady_clock, with the epoch pinned at first use so
// NowSeconds() stays small and double-precision-friendly for
// process-lifetime runs.
class RealClock : public Clock {
 public:
  double NowSeconds() const override;
  void WaitFor(double seconds, Waker* waker = nullptr) override;
};

// Test clock: time moves only when the test says so. NowSeconds is
// thread-safe, so it can back a CircuitBreaker exercised from worker
// threads while the test thread advances it.
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_seconds = 0.0) : now_(start_seconds) {}

  double NowSeconds() const override;
  // WaitFor on a manual clock advances it (a sleeper IS the clock's only
  // driver in a single-threaded test); a set waker suppresses the advance.
  void WaitFor(double seconds, Waker* waker = nullptr) override;

  void Advance(double seconds);
  void SetTime(double seconds);

 private:
  mutable std::mutex mu_;
  double now_ = 0.0;
};

// Process-wide default clock. Never null: defaults to a process-lifetime
// RealClock. Everything without an explicitly injected clock — Timer,
// Deadline, failpoint delays, the components' null-clock fallbacks — reads
// through this.
Clock* CurrentClock();

// Installs `clock` as the process default and returns the previous one.
// Passing nullptr restores the RealClock. Intended for the simulator (and
// tests); swapping clocks while unrelated threads are timing things is the
// caller's hazard to manage.
Clock* SetCurrentClock(Clock* clock);

// RAII for SetCurrentClock.
class ScopedClockOverride {
 public:
  explicit ScopedClockOverride(Clock* clock)
      : previous_(SetCurrentClock(clock)) {}
  ~ScopedClockOverride() { SetCurrentClock(previous_); }

  ScopedClockOverride(const ScopedClockOverride&) = delete;
  ScopedClockOverride& operator=(const ScopedClockOverride&) = delete;

 private:
  Clock* previous_;
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_CLOCK_H_
