#include "util/thread_pool.h"

#include <utility>

#include "util/mem_budget.h"

namespace kdv {

namespace {
// Nominal accounting weight of one queued task (closure + queue slot): the
// governor's memory signal should see a saturated queue as real usage even
// though the closures themselves are small.
constexpr uint64_t kTaskChargeBytes = 256;
}  // namespace

ThreadPool::ThreadPool(Options options)
    : max_queue_(options.max_queue) {
  int n = options.num_threads < 1 ? 1 : options.num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  KDV_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return UnavailableError("thread pool is stopped");
    }
    if (queue_.size() >= max_queue_) {
      return ResourceExhaustedError("thread pool queue is full (" +
                                    std::to_string(max_queue_) + " tasks)");
    }
    queue_.push_back(std::move(task));
    MemBudget::Global().Charge(MemSource::kTaskQueue, kTaskChargeBytes);
  }
  work_cv_.notify_one();
  return OkStatus();
}

void ThreadPool::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
    // Drain: admitted tasks still run; wait until nothing is queued or
    // executing before joining, so workers exit their loop naturally.
    drain_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  }
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) return;
  joined_ = true;
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      MemBudget::Global().Release(MemSource::kTaskQueue, kTaskChargeBytes);
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++executed_;
      --running_;
      if (stopping_ && queue_.empty() && running_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

}  // namespace kdv
