#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/failpoint.h"

namespace kdv {

namespace {

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + " failed: " + std::strerror(errno);
}

// Writes all of [data, data+len) to fd, retrying partial writes. Under the
// io.write failpoint only the first half lands before the failure — the
// on-disk state a crash mid-write (or ENOSPC) leaves behind.
Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  Status injected = KDV_FAILPOINT_STATUS("io.write");
  if (!injected.ok()) {
    size_t half = len / 2;
    while (half > 0) {
      ssize_t n = ::write(fd, data, half);
      if (n <= 0) break;
      data += n;
      half -= static_cast<size_t>(n);
    }
    return DataLossError("short write to " + path +
                         " (injected io.write fault)");
  }
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return DataLossError(Errno("write to", path));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return OkStatus();
}

Status FsyncFd(int fd, const std::string& path) {
  Status injected = KDV_FAILPOINT_STATUS("io.fsync");
  if (!injected.ok()) {
    return DataLossError("fsync of " + path + " failed (injected io.fsync "
                         "fault)");
  }
  if (::fsync(fd) != 0) return DataLossError(Errno("fsync of", path));
  return OkStatus();
}

Status RenameFile(const std::string& from, const std::string& to) {
  Status injected = KDV_FAILPOINT_STATUS("io.rename");
  if (!injected.ok()) {
    return DataLossError("rename " + from + " -> " + to +
                         " failed (injected io.rename fault)");
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return DataLossError(Errno("rename of", from));
  }
  return OkStatus();
}

std::string ParentDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::string TempPathFor(const std::string& path) { return path + ".kdvtmp"; }

Status FsyncParentDir(const std::string& path) {
  const std::string dir = ParentDirOf(path);
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    // Some filesystems refuse O_RDONLY directory fds; the rename itself
    // already happened, so degrade to best-effort rather than failing the
    // caller's committed write.
    return OkStatus();
  }
  Status status = FsyncFd(fd, dir);
  ::close(fd);
  return status;
}

Status AtomicPublish(const std::string& temp_path,
                     const std::string& final_path) {
  int fd = ::open(temp_path.c_str(), O_RDONLY);
  if (fd < 0) return NotFoundError(Errno("open of", temp_path));
  Status status = FsyncFd(fd, temp_path);
  ::close(fd);
  if (!status.ok()) return status;
  KDV_RETURN_IF_ERROR(RenameFile(temp_path, final_path));
  return FsyncParentDir(final_path);
}

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t len) {
  const std::string temp = TempPathFor(path);
  // O_TRUNC reclaims any stale temp a crashed writer left behind.
  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return NotFoundError(Errno("open of", temp));

  Status status = WriteAll(fd, static_cast<const char*>(data), len, temp);
  if (status.ok()) status = FsyncFd(fd, temp);
  if (::close(fd) != 0 && status.ok()) {
    status = DataLossError(Errno("close of", temp));
  }
  // On failure the torn temp is left on disk deliberately: that is exactly
  // the state a crash would leave, and what recovery must cope with. The
  // target `path` has not been touched.
  if (!status.ok()) return status;

  KDV_RETURN_IF_ERROR(RenameFile(temp, path));
  return FsyncParentDir(path);
}

Status AtomicWriteFile(const std::string& path, const std::string& data) {
  return AtomicWriteFile(path, data.data(), data.size());
}

}  // namespace kdv
