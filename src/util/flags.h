// Minimal command-line flag parsing for the CLI tools:
// `--key value` and `--key=value` pairs plus positional arguments.
#ifndef QUADKDV_UTIL_FLAGS_H_
#define QUADKDV_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace kdv {

class Flags {
 public:
  // Parses argv[1..argc). Returns false (and fills *error) on a malformed
  // argument (e.g. trailing `--key` with no value).
  static bool Parse(int argc, const char* const* argv, Flags* out,
                    std::string* error);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  int GetInt(const std::string& key, int default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_FLAGS_H_
