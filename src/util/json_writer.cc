#include "util/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace kdv {

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v, int precision) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

void JsonWriter::BeforeValue() {
  if (!stack_.empty() && stack_.back() == 'v') {
    // Key was just written; this value completes the pair.
    stack_.back() = 'o';
    return;
  }
  KDV_CHECK(stack_.empty() ? !value_written_ : stack_.back() == 'a');
  if (need_comma_) out_ += ',';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back('o');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  KDV_CHECK(!stack_.empty() && stack_.back() == 'o');
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  if (stack_.empty()) value_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back('a');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  KDV_CHECK(!stack_.empty() && stack_.back() == 'a');
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  if (stack_.empty()) value_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  KDV_CHECK(!stack_.empty() && stack_.back() == 'o');
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += JsonEscaped(key);
  out_ += "\":";
  stack_.back() = 'v';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view s) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscaped(s);
  out_ += '"';
  need_comma_ = true;
  if (stack_.empty()) value_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const char* s) {
  return Value(std::string_view(s));
}

JsonWriter& JsonWriter::Value(const std::string& s) {
  return Value(std::string_view(s));
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  need_comma_ = true;
  if (stack_.empty()) value_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::Number(double v, int precision) {
  return Raw(JsonNumber(v, precision));
}

JsonWriter& JsonWriter::Value(double v) { return Raw(JsonNumber(v)); }

JsonWriter& JsonWriter::Value(uint64_t v) { return Raw(std::to_string(v)); }

JsonWriter& JsonWriter::Value(int64_t v) { return Raw(std::to_string(v)); }

JsonWriter& JsonWriter::Value(uint32_t v) {
  return Value(static_cast<uint64_t>(v));
}

JsonWriter& JsonWriter::Value(int v) {
  return Value(static_cast<int64_t>(v));
}

JsonWriter& JsonWriter::Value(bool v) { return Raw(v ? "true" : "false"); }

JsonWriter& JsonWriter::Null() { return Raw("null"); }

std::string JsonWriter::Take() {
  KDV_CHECK(stack_.empty() && value_written_);
  std::string out = std::move(out_);
  out_.clear();
  value_written_ = false;
  need_comma_ = false;
  return out;
}

// ---------------------------------------------------------------------------
// JsonValidate: strict recursive-descent validation.
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 96;

struct JsonParser {
  std::string_view in;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& why) {
    error = why + " at byte " + std::to_string(pos);
    return false;
  }
  bool AtEnd() const { return pos >= in.size(); }
  char Peek() const { return in[pos]; }
  void SkipWs() {
    while (!AtEnd() && (in[pos] == ' ' || in[pos] == '\t' ||
                        in[pos] == '\n' || in[pos] == '\r')) {
      ++pos;
    }
  }
  bool Literal(std::string_view word) {
    if (in.substr(pos, word.size()) != word) return Fail("invalid literal");
    pos += word.size();
    return true;
  }

  bool String() {
    ++pos;  // opening quote
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(in[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character");
      if (c == '\\') {
        ++pos;
        if (AtEnd()) return Fail("dangling escape");
        const char e = in[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(in[pos]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape");
        }
      }
      ++pos;
    }
  }

  bool Digits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(in[pos]))) {
      return Fail("expected digit");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(in[pos]))) {
      ++pos;
    }
    return true;
  }

  bool NumberTok() {
    if (Peek() == '-') ++pos;
    if (AtEnd()) return Fail("truncated number");
    if (Peek() == '0') {
      ++pos;  // no leading zeros
    } else if (!Digits()) {
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos;
      if (!Digits()) return false;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
      if (!Digits()) return false;
    }
    return true;
  }

  bool ValueTok(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (AtEnd()) return Fail("expected value");
    const char c = Peek();
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return NumberTok();
    }
    return Fail("unexpected character");
  }

  bool Object(int depth) {
    ++pos;  // '{'
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      if (!String()) return false;
      SkipWs();
      if (AtEnd() || Peek() != ':') return Fail("expected ':'");
      ++pos;
      if (!ValueTok(depth + 1)) return false;
      SkipWs();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      if (Peek() == '}') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array(int depth) {
    ++pos;  // '['
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!ValueTok(depth + 1)) return false;
      SkipWs();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      if (Peek() == ']') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

Status JsonValidate(std::string_view json) {
  JsonParser p{json, 0, ""};
  if (!p.ValueTok(0)) return InvalidArgumentError("json: " + p.error);
  p.SkipWs();
  if (!p.AtEnd()) {
    return InvalidArgumentError("json: trailing garbage at byte " +
                                std::to_string(p.pos));
  }
  return OkStatus();
}

}  // namespace kdv
