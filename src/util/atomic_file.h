// Crash-consistent file writes: write-temp → fsync → rename → fsync(dir).
//
// Every serializer that persists state callers may reload after a crash
// (the checksummed kd-tree index, the recovery manifest, bench JSON
// reports) must go through these helpers. The contract they provide:
//
//   * A successful AtomicWriteFile leaves exactly the new bytes at `path`,
//     durable past a power cut (data fsynced before the rename, directory
//     entry fsynced after).
//   * A failed or interrupted write leaves the previous contents of `path`
//     untouched. The only possible residue is a stale "<path>.kdvtmp" file,
//     which the next write to the same path reclaims and which recovery
//     treats as disposable.
//
// There is deliberately no streaming writer: state files here are staged in
// memory anyway (sections must be CRC'd before anything hits the disk), and
// a one-shot write keeps the failure matrix small. The append-only update
// journal (index/journal.h) has different durability needs and manages its
// own fds.
//
// Failpoint sites (chaos tests; compiled out of production builds):
//   io.write   — short write: half the payload lands, then the write fails
//   io.fsync   — data written but the fsync reports failure
//   io.rename  — temp file complete and synced, rename never happens
#ifndef QUADKDV_UTIL_ATOMIC_FILE_H_
#define QUADKDV_UTIL_ATOMIC_FILE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace kdv {

// Atomically replaces `path` with `len` bytes of `data`. On any error the
// previous contents of `path` are intact.
Status AtomicWriteFile(const std::string& path, const void* data, size_t len);
Status AtomicWriteFile(const std::string& path, const std::string& data);

// Publishes an already-written temp file over `final_path`: fsync the temp,
// rename it, fsync the directory. The temp must live in the same directory
// (rename must not cross filesystems). Used by writers that stream to a
// temp FILE* (the bench JSON reports) instead of staging in memory.
Status AtomicPublish(const std::string& temp_path,
                     const std::string& final_path);

// fsyncs the directory containing `path`, making a completed rename/unlink
// of `path` durable. Best effort on filesystems that refuse directory fds.
Status FsyncParentDir(const std::string& path);

// The sibling temp name AtomicWriteFile stages into: "<path>.kdvtmp".
std::string TempPathFor(const std::string& path);

}  // namespace kdv

#endif  // QUADKDV_UTIL_ATOMIC_FILE_H_
