// Build identification for recovery reports, bench JSON, and bug reports.
//
// A recovery report or a serve-sim trace is only actionable if it names the
// binary that produced it: the git revision, the optimization level, and
// whether chaos sites (KDV_FAILPOINTS) were compiled in. The values are
// baked in at configure time by src/util/CMakeLists.txt; an out-of-git
// build stamps "unknown". The leaf-kernel SIMD level is a runtime property
// (core/leaf_kernel.h), reported separately by the bench/CLI JSON.
#ifndef QUADKDV_UTIL_BUILD_INFO_H_
#define QUADKDV_UTIL_BUILD_INFO_H_

#include <string>

namespace kdv {

struct BuildInfo {
  const char* git_hash;    // short revision, or "unknown"
  const char* build_type;  // CMAKE_BUILD_TYPE, e.g. "Release"
  const char* sanitizer;   // KDV_SANITIZE preset: "OFF", "address", "thread"
  bool failpoints;         // -DKDV_FAILPOINTS=ON
};

const BuildInfo& GetBuildInfo();

// One-line stamp:
//   "quadkdv <hash> (<build_type>, sanitize=<s>, failpoints=on|off)"
std::string BuildStamp();

}  // namespace kdv

#endif  // QUADKDV_UTIL_BUILD_INFO_H_
