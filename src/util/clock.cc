#include "util/clock.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace kdv {

void Waker::Set() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (set_) return;
    set_ = true;
    hook = std::move(hook_);
    hook_ = nullptr;
  }
  cv_.notify_all();
  if (hook) hook();
}

bool Waker::is_set() const {
  std::lock_guard<std::mutex> lock(mu_);
  return set_;
}

bool Waker::BlockFor(double seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  if (set_ || seconds <= 0.0) return set_;
  cv_.wait_for(lock, std::chrono::duration<double>(seconds),
               [this] { return set_; });
  return set_;
}

void Waker::SetNotifyHook(std::function<void()> hook) {
  bool already_set;
  {
    std::lock_guard<std::mutex> lock(mu_);
    already_set = set_;
    hook_ = already_set ? nullptr : std::move(hook);
  }
  // Installed after the fact: honor the fire-once contract immediately.
  if (already_set && hook) hook();
}

namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

double RealClock::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessEpoch())
      .count();
}

void RealClock::WaitFor(double seconds, Waker* waker) {
  if (waker != nullptr) {
    waker->BlockFor(seconds);
    return;
  }
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

double ManualClock::NowSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void ManualClock::WaitFor(double seconds, Waker* waker) {
  if (waker != nullptr && waker->is_set()) return;
  if (seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  now_ += seconds;
}

void ManualClock::Advance(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (seconds > 0.0) now_ += seconds;
}

void ManualClock::SetTime(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (seconds > now_) now_ = seconds;
}

namespace {

RealClock& DefaultClock() {
  static RealClock clock;
  return clock;
}

std::atomic<Clock*>& CurrentClockSlot() {
  static std::atomic<Clock*> slot{nullptr};
  return slot;
}

}  // namespace

Clock* CurrentClock() {
  Clock* clock = CurrentClockSlot().load(std::memory_order_acquire);
  return clock != nullptr ? clock : &DefaultClock();
}

Clock* SetCurrentClock(Clock* clock) {
  Clock* previous =
      CurrentClockSlot().exchange(clock, std::memory_order_acq_rel);
  return previous != nullptr ? previous : nullptr;
}

}  // namespace kdv
