// Lightweight runtime-check macros used across the library.
//
// The library does not use C++ exceptions (Google style); unrecoverable
// programming errors abort with a diagnostic instead. Recoverable conditions
// are reported through return values (std::optional / bool / Status-like
// structs) at API boundaries.
#ifndef QUADKDV_UTIL_CHECK_H_
#define QUADKDV_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace kdv {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "KDV_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace internal_check
}  // namespace kdv

// Aborts the process when `expr` evaluates to false. Always on (release
// builds included): these guard data-structure invariants whose violation
// would silently corrupt visualization output.
#define KDV_CHECK(expr)                                                    \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::kdv::internal_check::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                      \
  } while (0)

#define KDV_CHECK_MSG(expr, msg)                                           \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::kdv::internal_check::CheckFailed(__FILE__, __LINE__, #expr, msg);  \
    }                                                                      \
  } while (0)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define KDV_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define KDV_DCHECK(expr) KDV_CHECK(expr)
#endif

#endif  // QUADKDV_UTIL_CHECK_H_
