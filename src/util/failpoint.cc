#include "util/failpoint.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <thread>

#include "util/clock.h"

namespace kdv {
namespace failpoint {

namespace {

struct Spec {
  Action action = Action::kOff;
  int delay_ms = 0;
  int hits_remaining = -1;  // < 0: unlimited
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Spec> specs;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

// Fast-path gate: number of currently armed sites. A relaxed load keeps the
// per-hit cost negligible when nothing is armed.
std::atomic<int> g_armed_count{0};

bool KnownSite(const std::string& site) {
  for (const std::string& s : AllSites()) {
    if (s == site) return true;
  }
  return false;
}

// Returns the action to apply for this hit (consuming one max_hits slot),
// or kOff. `delay_ms` receives the configured delay.
Action ConsumeHit(const char* site, int* delay_ms) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return Action::kOff;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.specs.find(site);
  if (it == reg.specs.end() || it->second.action == Action::kOff) {
    return Action::kOff;
  }
  Spec& spec = it->second;
  ++spec.hits;
  *delay_ms = spec.delay_ms;
  Action action = spec.action;
  if (spec.hits_remaining > 0 && --spec.hits_remaining == 0) {
    spec.action = Action::kOff;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return action;
}

// Injected delays go through the clock seam: under the simulator they spend
// virtual time (and are cooperative yield points), so a delay(MS) failpoint
// interacts with watchdogs and deadlines deterministically.
void SleepMs(int ms) {
  if (ms > 0) CurrentClock()->WaitFor(ms / 1000.0);
}

}  // namespace

const std::vector<std::string>& AllSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "refine.step",         // RefinementStream::Step child-bound math
      "eval.eps",            // KdeEvaluator::RefineEps result interval
      "eval.tau",            // KdeEvaluator::EvaluateTau result interval
      "runner.eps",          // RunEpsBatch / RunEpsOrdered per-query
      "runner.tau",          // RunTauBatch per-query
      "runner.exact",        // RunExactBatch per-query
      "progressive.render",  // RenderProgressive entry
      "progressive.op",      // RenderProgressive per-region-op
      "viz.render",          // whole-frame render entry (eps/tau/exact)
      "serve.render",        // ResilientRenderer::Render entry
      "serve.coarse",        // ResilientRenderer coarse (GridKde) stage
      "io.write",            // atomic/journal writes: short write, then fail
      "io.fsync",            // data written, fsync reports failure
      "io.rename",           // temp complete+synced, rename never happens
      "journal.tail",        // journal append leaves a torn half-record
      "refine.stall",        // wedge a refinement query (ignores deadline)
      "scrub.corrupt",       // integrity scrubber sees a forced mismatch
  };
  return *sites;
}

bool enabled() {
#ifdef KDV_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

Status Arm(const std::string& site, Action action, int delay_ms,
           int max_hits) {
  if (!KnownSite(site)) {
    return InvalidArgumentError("unknown failpoint site '" + site + "'");
  }
  if (max_hits == 0) {
    return InvalidArgumentError("failpoint max_hits must be nonzero");
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  Spec& spec = reg.specs[site];
  if (spec.action == Action::kOff && action != Action::kOff) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  } else if (spec.action != Action::kOff && action == Action::kOff) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  spec.action = action;
  spec.delay_ms = delay_ms;
  spec.hits_remaining = max_hits;
  spec.hits = 0;
  return OkStatus();
}

void Disarm(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.specs.find(site);
  if (it == reg.specs.end()) return;
  if (it->second.action != Action::kOff) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  reg.specs.erase(it);
}

void Reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& [site, spec] : reg.specs) {
    if (spec.action != Action::kOff) {
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  reg.specs.clear();
}

uint64_t hits(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.specs.find(site);
  return it == reg.specs.end() ? 0 : it->second.hits;
}

Status ConfigureFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("failpoint spec entry '" + entry +
                                  "' is not site=action");
    }
    std::string site = entry.substr(0, eq);
    std::string action_str = entry.substr(eq + 1);

    Action action;
    int delay_ms = 10;
    if (action_str == "error") {
      action = Action::kError;
    } else if (action_str == "nan") {
      action = Action::kNaN;
    } else if (action_str == "off") {
      action = Action::kOff;
    } else if (action_str.rfind("delay(", 0) == 0 &&
               action_str.back() == ')') {
      action = Action::kDelay;
      std::string ms = action_str.substr(6, action_str.size() - 7);
      char* parse_end = nullptr;
      long value = std::strtol(ms.c_str(), &parse_end, 10);
      if (ms.empty() || *parse_end != '\0' || value < 0 || value > 60000) {
        return InvalidArgumentError("bad failpoint delay '" + action_str +
                                    "' (want delay(MS), MS in [0, 60000])");
      }
      delay_ms = static_cast<int>(value);
    } else {
      return InvalidArgumentError("unknown failpoint action '" + action_str +
                                  "' (want error|nan|delay(MS)|off)");
    }
    KDV_RETURN_IF_ERROR(Arm(site, action, delay_ms));
  }
  return OkStatus();
}

void ConfigureFromEnv() {
  const char* env = std::getenv("KDV_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  Status status = ConfigureFromSpec(env);
  if (!status.ok()) {
    std::fprintf(stderr, "KDV_FAILPOINTS ignored entry: %s\n",
                 status.ToString().c_str());
  }
}

void MaybeDelay(const char* site) {
  int delay_ms = 0;
  if (ConsumeHit(site, &delay_ms) == Action::kDelay) SleepMs(delay_ms);
}

Status ConsumeStatus(const char* site) {
  int delay_ms = 0;
  switch (ConsumeHit(site, &delay_ms)) {
    case Action::kError:
      return InternalError(std::string("injected fault at failpoint '") +
                           site + "'");
    case Action::kDelay:
      SleepMs(delay_ms);
      return OkStatus();
    default:
      return OkStatus();
  }
}

void StallWhileArmed(const char* site, const QueryControl* control) {
  int delay_ms = 0;
  if (ConsumeHit(site, &delay_ms) != Action::kDelay) return;
  const auto wake = [control]() {
    if (control == nullptr) return false;
    if (control->cancel != nullptr && control->cancel->cancelled()) {
      return true;
    }
    return control->force_cancel != nullptr &&
           control->force_cancel->cancelled();
  };
  // The deadline is intentionally never consulted here: the site models a
  // query wedged where the deadline poll is unreachable, which is exactly
  // the gap the watchdog's force-cancel exists to cover.
  for (int slept = 0; slept < delay_ms; ++slept) {
    if (wake()) return;
    SleepMs(1);
  }
}

bool CorruptInterval(const char* site, double* lower, double* upper) {
  int delay_ms = 0;
  switch (ConsumeHit(site, &delay_ms)) {
    case Action::kNaN:
      *lower = std::numeric_limits<double>::quiet_NaN();
      return true;
    case Action::kError:
      // Inverted certified interval: upper strictly below lower.
      *upper = *lower - 1.0 - std::abs(*lower);
      return true;
    case Action::kDelay:
      SleepMs(delay_ms);
      return false;
    default:
      return false;
  }
}

}  // namespace failpoint
}  // namespace kdv
