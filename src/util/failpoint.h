// Failpoint framework: named fault-injection sites for chaos testing.
//
// A failpoint is a named site in the query path or the persistence path
// (atomic writes, journal appends — the io.* / journal.* sites) where a
// test (or the KDV_FAILPOINTS environment variable) can inject one of three
// fault kinds:
//
//   * error   — a clean kdv::Status error (Status-channel sites), or an
//               inverted [lb, ub] interval (numeric sites)
//   * nan     — a NaN bound/density value (numeric sites)
//   * delay   — artificial latency, to force deadline expiry mid-render
//
// Sites are compiled in only under -DKDV_FAILPOINTS=ON (which defines
// KDV_FAILPOINTS_ENABLED); in a normal build every KDV_FAILPOINT_* macro
// expands to a no-op/OkStatus() constant, so production hot paths pay
// nothing. The control API (Arm / Reset / AllSites / ...) is always
// compiled so tests build in both configurations; `kdv::failpoint::enabled()`
// reports whether hits can actually fire.
//
// Env spec (parsed by ConfigureFromEnv at first use, or explicitly):
//   KDV_FAILPOINTS="refine.step=nan;runner.eps=delay(20);viz.render=error"
//
// Hot-path cost when compiled in but nothing armed: one relaxed atomic load.
#ifndef QUADKDV_UTIL_FAILPOINT_H_
#define QUADKDV_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/cancel.h"
#include "util/status.h"

namespace kdv {
namespace failpoint {

enum class Action {
  kOff,    // site is not armed
  kError,  // inject a Status error / inverted interval
  kNaN,    // inject a NaN value
  kDelay,  // inject artificial latency
};

// The canonical registry of injection sites. Arm() accepts only these names;
// the chaos suite sweeps this list, so adding a site here guarantees it is
// exercised.
const std::vector<std::string>& AllSites();

// True when fault-injection sites are compiled in (KDV_FAILPOINTS=ON).
bool enabled();

// Arms `site` with `action`. `delay_ms` applies to kDelay. `max_hits` limits
// how many times the site fires before auto-disarming (< 0: unlimited).
// Returns InvalidArgument for an unknown site name.
Status Arm(const std::string& site, Action action, int delay_ms = 10,
           int max_hits = -1);

// Disarms one site / all sites and clears hit counters.
void Disarm(const std::string& site);
void Reset();

// Number of times `site` has fired since the last Reset/Disarm.
uint64_t hits(const std::string& site);

// Parses an "a=error;b=nan;c=delay(50)" spec and arms the named sites.
// Returns InvalidArgument (arming nothing further) on a malformed entry or
// unknown site.
Status ConfigureFromSpec(const std::string& spec);

// Applies the KDV_FAILPOINTS environment variable, if set. Parse errors are
// reported to stderr (chaos config must never crash the host process).
void ConfigureFromEnv();

// --- Hit-side functions (called through the macros below) -----------------

// Sleeps if `site` is armed with kDelay. Any armed action counts a hit.
void MaybeDelay(const char* site);

// kError -> non-OK InternalError naming the site; kDelay sleeps first and
// returns OK; otherwise OK.
Status ConsumeStatus(const char* site);

// Numeric-site injection: kNaN sets *lower to NaN; kError inverts the
// interval (upper := lower - 1 - |lower|); kDelay sleeps. Returns true if a
// value was corrupted.
bool CorruptInterval(const char* site, double* lower, double* upper);

// Wedge injection for the render watchdog ("refine.stall"): when `site` is
// armed with kDelay, blocks for the configured delay in ~1ms ticks while
// deliberately IGNORING the client deadline — modeling a refinement loop
// stuck somewhere the deadline is never polled — but waking promptly when
// the request's cancel token or the watchdog's force-cancel token fires.
// Other actions (error/nan) count a hit and do nothing.
void StallWhileArmed(const char* site, const QueryControl* control);

}  // namespace failpoint
}  // namespace kdv

// Hit macros: zero-cost unless KDV_FAILPOINTS_ENABLED.
#ifdef KDV_FAILPOINTS_ENABLED
#define KDV_FAILPOINT_HIT(site) ::kdv::failpoint::MaybeDelay(site)
#define KDV_FAILPOINT_STATUS(site) ::kdv::failpoint::ConsumeStatus(site)
#define KDV_FAILPOINT_CORRUPT(site, lower, upper) \
  ::kdv::failpoint::CorruptInterval(site, &(lower), &(upper))
#define KDV_FAILPOINT_STALL(site, control) \
  ::kdv::failpoint::StallWhileArmed(site, control)
#else
#define KDV_FAILPOINT_HIT(site) ((void)0)
#define KDV_FAILPOINT_STATUS(site) ::kdv::OkStatus()
#define KDV_FAILPOINT_CORRUPT(site, lower, upper) ((void)0)
#define KDV_FAILPOINT_STALL(site, control) ((void)0)
#endif

#endif  // QUADKDV_UTIL_FAILPOINT_H_
