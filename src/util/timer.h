// Timing utilities: a stopwatch and an anytime deadline.
//
// Both read through the clock seam (util/clock.h): the backing Clock is
// captured from CurrentClock() at construction, so a Timer or Deadline
// created while the simulator's virtual clock is installed measures virtual
// time — which is how deadline math deep inside the refinement loops runs
// deterministically under simulation without any plumbing changes.
#ifndef QUADKDV_UTIL_TIMER_H_
#define QUADKDV_UTIL_TIMER_H_

#include "util/clock.h"

namespace kdv {

// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : clock_(CurrentClock()), start_(clock_->NowSeconds()) {}
  explicit Timer(const Clock* clock)
      : clock_(clock != nullptr ? clock : CurrentClock()),
        start_(clock_->NowSeconds()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = clock_->NowSeconds(); }

  // Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const { return clock_->NowSeconds() - start_; }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  const Clock* clock_;
  double start_;
};

// A deadline for anytime algorithms (progressive visualization). A
// non-positive budget means "no deadline".
class Deadline {
 public:
  // Budget in seconds from now; <= 0 means never expires.
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}
  Deadline(double budget_seconds, const Clock* clock)
      : timer_(clock), budget_(budget_seconds) {}

  bool Expired() const {
    return budget_ > 0.0 && timer_.ElapsedSeconds() >= budget_;
  }

  double RemainingSeconds() const {
    if (budget_ <= 0.0) return 1e30;
    double rem = budget_ - timer_.ElapsedSeconds();
    return rem > 0.0 ? rem : 0.0;
  }

  double budget_seconds() const { return budget_; }

 private:
  Timer timer_;
  double budget_;
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_TIMER_H_
