// Wall-clock timing utilities: a stopwatch and an anytime deadline.
#ifndef QUADKDV_UTIL_TIMER_H_
#define QUADKDV_UTIL_TIMER_H_

#include <chrono>

namespace kdv {

// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// A deadline for anytime algorithms (progressive visualization). A
// non-positive budget means "no deadline".
class Deadline {
 public:
  // Budget in seconds from now; <= 0 means never expires.
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool Expired() const {
    return budget_ > 0.0 && timer_.ElapsedSeconds() >= budget_;
  }

  double RemainingSeconds() const {
    if (budget_ <= 0.0) return 1e30;
    double rem = budget_ - timer_.ElapsedSeconds();
    return rem > 0.0 ? rem : 0.0;
  }

  double budget_seconds() const { return budget_; }

 private:
  Timer timer_;
  double budget_;
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_TIMER_H_
