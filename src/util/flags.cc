#include "util/flags.h"

#include <cmath>
#include <cstdlib>

namespace kdv {

bool Flags::Parse(int argc, const char* const* argv, Flags* out,
                  std::string* error) {
  out->values_.clear();
  out->positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out->positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      if (error != nullptr) *error = "bare '--' is not a valid flag";
      return false;
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      out->values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--flag value`; a flag followed by another flag (or end of line) is
    // treated as boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      out->values_[body] = argv[i + 1];
      ++i;
    } else {
      out->values_[body] = "true";
    }
  }
  return true;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  // Malformed and non-finite values ("nan", "inf") fall back to the default;
  // a NaN threshold or epsilon would silently disable every comparison
  // downstream.
  if (end == it->second.c_str() || *end != '\0' || !std::isfinite(v)) {
    return default_value;
  }
  return v;
}

int Flags::GetInt(const std::string& key, int default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  return (end == it->second.c_str() || *end != '\0')
             ? default_value
             : static_cast<int>(v);
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return default_value;
}

}  // namespace kdv
