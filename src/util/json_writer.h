// One JSON emitter for every tool/bench/exporter in the tree.
//
// The hand-rolled printf JSON the tools used to emit had two standing bugs:
// string fields (`"out":"%s"`) were not escaped, so a path with a quote or
// backslash produced invalid JSON, and `%g` prints non-finite doubles as
// bare `nan`/`inf` tokens, which no strict parser accepts. Every emitter —
// kdvtool's --json blocks, both benches, and the obs metrics exporter —
// routes through this writer instead, so those bug classes are structurally
// gone rather than fixed site by site.
//
// Contract:
//   * Strings are escaped per RFC 8259 (quote, backslash, control chars).
//   * Non-finite doubles are scrubbed to `null` — a missing measurement is
//     representable, a bare `nan` token is not.
//   * The writer inserts commas and validates nesting; Take() checks the
//     document closed everything it opened.
//
// JsonValidate() is the matching strict parser, used by tests (and by CI via
// python's json module as a second, independent implementation) to ensure
// every artifact the tools emit actually parses.
#ifndef QUADKDV_UTIL_JSON_WRITER_H_
#define QUADKDV_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace kdv {

// Returns `s` escaped for inclusion inside a JSON string literal (the
// surrounding quotes are not added).
std::string JsonEscaped(std::string_view s);

// Formats a double as a JSON number with `precision` significant digits
// (%.*g); non-finite values become "null". 17 digits round-trips exactly.
std::string JsonNumber(double v, int precision = 17);

// Streaming JSON document builder with automatic commas and nesting checks.
// Usage:
//   JsonWriter w;
//   w.BeginObject().Key("eps").Value(0.05).Key("out").Value(path);
//   w.Key("tiles").BeginArray().Value(1).Value(2).EndArray();
//   w.EndObject();
//   std::string doc = w.Take();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object key; must be followed by exactly one value (or container).
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view s);
  JsonWriter& Value(const char* s);
  JsonWriter& Value(const std::string& s);
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint32_t v);
  JsonWriter& Value(int v);
  JsonWriter& Value(bool v);
  JsonWriter& Null();
  // Double with explicit precision (%.*g, non-finite -> null).
  JsonWriter& Number(double v, int precision);
  // Splices pre-rendered JSON (caller guarantees validity — e.g. a nested
  // block built by another JsonWriter).
  JsonWriter& Raw(std::string_view json);

  // The document so far (primarily for tests; prefer Take()).
  const std::string& str() const { return out_; }

  // Returns the finished document. KDV_CHECKs that every container was
  // closed and at least one value was written.
  std::string Take();

 private:
  void BeforeValue();

  std::string out_;
  // Nesting stack: 'o' = object expecting key, 'v' = object expecting value,
  // 'a' = array.
  std::vector<char> stack_;
  bool value_written_ = false;  // top-level value emitted
  bool need_comma_ = false;
};

// Strict RFC 8259 parser (validation only — no DOM). Returns OK iff `json`
// is exactly one valid JSON value with nothing but whitespace around it.
// Rejects trailing commas, bare nan/inf, unescaped control characters, and
// nesting deeper than an internal bound. Tests run every emitted artifact
// through this; CI cross-checks with python's json module.
Status JsonValidate(std::string_view json);

}  // namespace kdv

#endif  // QUADKDV_UTIL_JSON_WRITER_H_
