// Fixed-size worker pool with a bounded FIFO queue and graceful drain.
//
// This is the execution substrate of the concurrent render service
// (serve/render_service.h): a fixed number of workers pull tasks off a
// bounded queue, and admission is explicit — TrySubmit never blocks and
// never queues unboundedly. When the queue is full the caller gets
// kResourceExhausted and decides what to shed; after Stop() it gets
// kUnavailable. Production overload policy (reject early, finish what was
// admitted) lives here rather than in each caller.
//
// Lifecycle:
//   * TrySubmit enqueues or rejects; it never runs the task inline.
//   * Stop() rejects all further submits, runs every already-admitted task
//     to completion, then joins the workers. Idempotent, safe to call
//     concurrently with submitters, and never deadlocks (workers are joined
//     only after the queue has drained; Stop must not be called from a
//     pooled task).
//   * The destructor calls Stop().
//
// Thread safety: all public members may be called from any thread.
#ifndef QUADKDV_UTIL_THREAD_POOL_H_
#define QUADKDV_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace kdv {

// Task-submission surface shared by ThreadPool (real threads) and the
// simulator's SimExecutor (cooperatively scheduled virtual tasks, see
// src/sim/sim_executor.h). Everything above the substrate — the render
// service, the parallel frame renderers — programs against this interface,
// which is what lets the whole serve pipeline run deterministically under
// simulation without code changes.
//
// Contract (identical for every implementation):
//   * TrySubmit enqueues or rejects — kResourceExhausted when the queue is
//     full, kUnavailable after Stop(); it never runs the task inline. An
//     admitted task runs exactly once, even across Stop().
//   * Stop() rejects further submits, runs every admitted task to
//     completion, and is idempotent. Must not be called from a pooled task.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Status TrySubmit(std::function<void()> task) = 0;
  virtual void Stop() = 0;

  // Worker-slot count (degree of parallelism admitted tasks may assume).
  virtual int num_threads() const = 0;
  // Tasks currently waiting in the queue (excludes running ones).
  virtual size_t queue_depth() const = 0;
  // Tasks completed since construction.
  virtual uint64_t tasks_executed() const = 0;
};

class ThreadPool : public Executor {
 public:
  struct Options {
    int num_threads = 4;    // clamped to >= 1
    size_t max_queue = 64;  // tasks waiting beyond the running ones
  };

  explicit ThreadPool(Options options);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution, or rejects it:
  //   kResourceExhausted — the queue already holds max_queue tasks
  //   kUnavailable       — Stop() has been called
  // An admitted task is guaranteed to run exactly once, even across Stop().
  Status TrySubmit(std::function<void()> task) override;

  // Graceful drain: rejects new submits, finishes every admitted task
  // (queued and in-flight), joins the workers. Idempotent.
  void Stop() override;

  int num_threads() const override {
    return static_cast<int>(workers_.size());
  }

  // Tasks currently waiting in the queue (excludes running ones).
  size_t queue_depth() const override;

  // Tasks completed since construction.
  uint64_t tasks_executed() const override;

 private:
  void WorkerLoop();

  const size_t max_queue_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / stop
  std::condition_variable drain_cv_;  // Stop() waits for in-flight tasks
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  int running_ = 0;  // tasks currently executing on workers
  uint64_t executed_ = 0;

  std::vector<std::thread> workers_;

  std::mutex join_mu_;  // serializes the join phase of concurrent Stop()s
  bool joined_ = false;
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_THREAD_POOL_H_
