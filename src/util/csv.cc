#include "util/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace kdv {

bool ParseCsvDoubles(const std::string& line, std::vector<double>* out) {
  out->clear();
  if (line.empty()) return true;
  size_t start = 0;
  while (start <= line.size()) {
    size_t comma = line.find(',', start);
    size_t end = (comma == std::string::npos) ? line.size() : comma;
    std::string field = line.substr(start, end - start);
    // Trim whitespace and trailing CR.
    size_t b = field.find_first_not_of(" \t\r\n");
    size_t e = field.find_last_not_of(" \t\r\n");
    if (b == std::string::npos) return false;  // empty field
    field = field.substr(b, e - b + 1);
    char* parse_end = nullptr;
    double v = std::strtod(field.c_str(), &parse_end);
    if (parse_end == field.c_str() || *parse_end != '\0') return false;
    out->push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

bool ReadCsvFile(const std::string& path,
                 std::vector<std::vector<double>>* rows, size_t* skipped) {
  rows->clear();
  if (skipped != nullptr) *skipped = 0;
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::string line;
  std::vector<double> fields;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    if (!ParseCsvDoubles(line, &fields)) {
      if (skipped != nullptr) ++(*skipped);  // header or malformed row
      continue;
    }
    rows->push_back(fields);
  }
  return true;
}

bool WriteCsvFile(const std::string& path, const std::string& header,
                  const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  if (!header.empty()) out << header << "\n";
  std::ostringstream oss;
  oss.precision(17);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << ',';
      oss << row[i];
    }
    oss << '\n';
  }
  out << oss.str();
  return out.good();
}

}  // namespace kdv
