#include "util/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"

namespace kdv {

bool ParseCsvDoubles(const std::string& line, std::vector<double>* out,
                     bool allow_nonfinite) {
  out->clear();
  if (line.empty()) return true;
  size_t start = 0;
  while (start <= line.size()) {
    size_t comma = line.find(',', start);
    size_t end = (comma == std::string::npos) ? line.size() : comma;
    std::string field = line.substr(start, end - start);
    // Trim whitespace and trailing CR.
    size_t b = field.find_first_not_of(" \t\r\n");
    size_t e = field.find_last_not_of(" \t\r\n");
    if (b == std::string::npos) return false;  // empty field
    field = field.substr(b, e - b + 1);
    // strtod accepts hex floats ("0x1p3"); a CSV column that contains them
    // is not numeric data, so reject before parsing.
    if (field.find('x') != std::string::npos ||
        field.find('X') != std::string::npos) {
      return false;
    }
    char* parse_end = nullptr;
    double v = std::strtod(field.c_str(), &parse_end);
    if (parse_end == field.c_str() || *parse_end != '\0') return false;
    if (!allow_nonfinite && !std::isfinite(v)) return false;
    out->push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

Status ReadCsvFile(const std::string& path,
                   std::vector<std::vector<double>>* rows,
                   CsvReadStats* stats) {
  rows->clear();
  CsvReadStats local;
  std::ifstream in(path);
  if (!in.is_open()) {
    return NotFoundError("cannot open CSV file " + path);
  }
  std::string line;
  std::vector<double> fields;
  size_t expected_columns = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    if (!ParseCsvDoubles(line, &fields)) {
      ++local.skipped_malformed;  // header or malformed row
      continue;
    }
    if (expected_columns == 0) {
      expected_columns = fields.size();
    } else if (fields.size() != expected_columns) {
      ++local.skipped_ragged;  // ragged row; never silently mixed in
      continue;
    }
    rows->push_back(fields);
    ++local.rows_kept;
  }
  if (stats != nullptr) *stats = local;
  return OkStatus();
}

Status WriteCsvFile(const std::string& path, const std::string& header,
                    const std::vector<std::vector<double>>& rows) {
  // Staged in memory and published atomically so an interrupted export
  // never truncates a previous good file (util/atomic_file.h).
  std::ostringstream oss;
  oss.precision(17);
  if (!header.empty()) oss << header << "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << ',';
      oss << row[i];
    }
    oss << '\n';
  }
  return AtomicWriteFile(path, oss.str());
}

}  // namespace kdv
