// Minimal CSV reading/writing for numeric point data.
#ifndef QUADKDV_UTIL_CSV_H_
#define QUADKDV_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kdv {

// Parses one CSV line of doubles ("1.5,2,-3e4"). Returns false on any
// non-numeric field. Empty lines yield an empty vector and return true.
// NaN/Inf fields are rejected unless `allow_nonfinite` is set; hex-float
// syntax ("0x1p3") is always rejected — both are strtod extensions that
// silently poison downstream aggregates when they leak in from a header or
// a sensor glitch.
bool ParseCsvDoubles(const std::string& line, std::vector<double>* out,
                     bool allow_nonfinite = false);

// Per-file ingestion accounting for ReadCsvFile.
struct CsvReadStats {
  size_t rows_kept = 0;
  size_t skipped_malformed = 0;  // non-numeric / non-finite fields (headers)
  size_t skipped_ragged = 0;     // column count differs from first data row

  size_t skipped() const { return skipped_malformed + skipped_ragged; }
};

// Reads a whole numeric CSV file. Rows with parse errors are skipped, and
// rows whose column count differs from the first accepted row are skipped as
// ragged, never silently mixed in; both are counted in *stats (may be
// nullptr). Returns NotFound if the file cannot be opened.
Status ReadCsvFile(const std::string& path,
                   std::vector<std::vector<double>>* rows,
                   CsvReadStats* stats);

// Writes rows of doubles as CSV with the given header (header may be empty).
// Returns a non-OK Status if the file cannot be opened or the write fails.
Status WriteCsvFile(const std::string& path, const std::string& header,
                    const std::vector<std::vector<double>>& rows);

}  // namespace kdv

#endif  // QUADKDV_UTIL_CSV_H_
