// Minimal CSV reading/writing for numeric point data.
#ifndef QUADKDV_UTIL_CSV_H_
#define QUADKDV_UTIL_CSV_H_

#include <string>
#include <vector>

namespace kdv {

// Parses one CSV line of doubles ("1.5,2,-3e4"). Returns false on any
// non-numeric field. Empty lines yield an empty vector and return true.
bool ParseCsvDoubles(const std::string& line, std::vector<double>* out);

// Reads a whole numeric CSV file; rows with parse errors are skipped and
// counted in *skipped (may be nullptr). Returns false if the file cannot be
// opened.
bool ReadCsvFile(const std::string& path,
                 std::vector<std::vector<double>>* rows, size_t* skipped);

// Writes rows of doubles as CSV with the given header (header may be empty).
// Returns false if the file cannot be opened.
bool WriteCsvFile(const std::string& path, const std::string& header,
                  const std::vector<std::vector<double>>& rows);

}  // namespace kdv

#endif  // QUADKDV_UTIL_CSV_H_
