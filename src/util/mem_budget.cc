#include "util/mem_budget.h"

namespace kdv {

const char* MemSourceName(MemSource source) {
  switch (source) {
    case MemSource::kRefinementScratch:
      return "refinement_scratch";
    case MemSource::kFrameBuffers:
      return "frame_buffers";
    case MemSource::kTaskQueue:
      return "task_queue";
  }
  return "unknown";
}

MemBudget& MemBudget::Global() {
  static MemBudget* budget = new MemBudget();  // never destroyed: charges
  return *budget;                              // may outlive static dtors
}

void MemBudget::Charge(MemSource source, uint64_t bytes) {
  if (bytes == 0) return;
  per_source_[static_cast<int>(source)].fetch_add(bytes,
                                                  std::memory_order_relaxed);
  const uint64_t now =
      total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemBudget::Release(MemSource source, uint64_t bytes) {
  if (bytes == 0) return;
  // Clamp underflow instead of wrapping: a mismatched release must not turn
  // the total into ~2^64 and pin the governor at maximum pressure forever.
  std::atomic<uint64_t>& src = per_source_[static_cast<int>(source)];
  uint64_t cur = src.load(std::memory_order_relaxed);
  uint64_t take;
  do {
    take = cur < bytes ? cur : bytes;
  } while (!src.compare_exchange_weak(cur, cur - take,
                                      std::memory_order_relaxed));
  cur = total_.load(std::memory_order_relaxed);
  uint64_t dec;
  do {
    dec = cur < take ? cur : take;
  } while (!total_.compare_exchange_weak(cur, cur - dec,
                                         std::memory_order_relaxed));
}

uint64_t MemBudget::used_bytes() const {
  return total_.load(std::memory_order_relaxed);
}

uint64_t MemBudget::used_bytes(MemSource source) const {
  return per_source_[static_cast<int>(source)].load(std::memory_order_relaxed);
}

uint64_t MemBudget::peak_bytes() const {
  return peak_.load(std::memory_order_relaxed);
}

void MemBudget::ResetPeak() {
  peak_.store(total_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

}  // namespace kdv
