// Jittered exponential backoff for retrying transient faults.
//
// Classic decorrelated-ish scheme: attempt k's base delay is
// initial * multiplier^k capped at max, and the actual delay is drawn
// uniformly from [base * (1 - jitter), base] so a fleet of retrying
// clients does not thunder back in lockstep. The RNG is the library's
// deterministic xoshiro generator and the seed is injectable, so tests
// can assert exact delay sequences; sleeping is the caller's job (the
// render service injects a sleep function for the same reason).
#ifndef QUADKDV_UTIL_BACKOFF_H_
#define QUADKDV_UTIL_BACKOFF_H_

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace kdv {

struct BackoffPolicy {
  double initial_ms = 2.0;   // base delay of the first retry
  double multiplier = 2.0;   // geometric growth per attempt
  double max_ms = 250.0;     // cap on the base delay
  double jitter = 0.5;       // fraction of the base randomized away, [0, 1]
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy, uint64_t seed = 0x5EEDBACC0FFull)
      : policy_(policy), rng_(seed) {
    KDV_CHECK(policy.initial_ms >= 0.0);
    KDV_CHECK(policy.multiplier >= 1.0);
    KDV_CHECK(policy.max_ms >= policy.initial_ms);
    KDV_CHECK(policy.jitter >= 0.0 && policy.jitter <= 1.0);
  }

  // Delay to sleep before the next retry, advancing the attempt counter.
  double NextDelayMs() {
    double base = policy_.initial_ms;
    for (int i = 0; i < attempts_; ++i) {
      base *= policy_.multiplier;
      if (base >= policy_.max_ms) break;
    }
    base = std::min(base, policy_.max_ms);
    ++attempts_;
    if (policy_.jitter == 0.0) return base;
    return base * (1.0 - policy_.jitter * rng_.NextDouble());
  }

  // Retries requested so far (== number of NextDelayMs calls).
  int attempts() const { return attempts_; }

  // Restarts the schedule (the RNG stream keeps advancing).
  void Reset() { attempts_ = 0; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  int attempts_ = 0;
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_BACKOFF_H_
