// Cooperative cancellation & per-request control for the query path.
//
// A CancelToken is a copyable handle onto a shared cancellation flag: the
// serving side hands copies to in-flight requests and flips the flag to stop
// them; workers poll cancelled() at safe points. A QueryControl bundles the
// token with an optional per-request Deadline and the polling granularity,
// and is threaded by const reference through the batch runners, the
// progressive renderer, and the refinement loop itself, so a single render
// request can be stopped with iteration-level latency.
#ifndef QUADKDV_UTIL_CANCEL_H_
#define QUADKDV_UTIL_CANCEL_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/timer.h"

namespace kdv {

// Shared cancellation flag. Copies observe (and trigger) the same request.
// Thread-safe; cancellation is sticky (no un-cancel).
//
// Memory ordering: RequestCancel is a release store and cancelled() an
// acquire load, so everything the cancelling thread wrote before flipping
// the flag (e.g. the reason it gave up) is visible to a worker that
// observes the cancellation. Relaxed would suffice for the flag alone but
// makes that publish/observe pattern a data race in waiting callers.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() const { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Why a cooperative loop stopped early.
enum class StopReason {
  kNone,      // keep going
  kDeadline,  // the per-request deadline expired
  kCancel,    // the request was cancelled
};

// Per-request stop conditions, threaded through the evaluate→render
// pipeline. Both pointers are non-owning and may be null (no deadline /
// not cancellable); a default QueryControl never stops anything.
struct QueryControl {
  const Deadline* deadline = nullptr;
  const CancelToken* cancel = nullptr;
  // Second kill switch, owned by the render watchdog rather than the
  // client. Kept separate from `cancel` so a client token and a watchdog
  // token can coexist on one request without either side aliasing the
  // other's flag; both stop the query as kCancel.
  const CancelToken* force_cancel = nullptr;
  // Liveness counter for the watchdog: bumped (relaxed) on every poll, so
  // an external monitor can distinguish "slow but refining" from "wedged".
  // Non-owning; may be null.
  std::atomic<uint64_t>* heartbeat = nullptr;
  // Refinement iterations between CheckStop() polls inside one query.
  // Cancellation is checked on every poll; the steady_clock read for the
  // deadline is the cost being amortized.
  uint32_t check_interval = 32;

  // Cancellation wins over deadline expiry when both hold: an explicitly
  // abandoned request should not be reported as merely slow.
  StopReason CheckStop() const {
    if (heartbeat != nullptr) {
      heartbeat->fetch_add(1, std::memory_order_relaxed);
    }
    if (cancel != nullptr && cancel->cancelled()) return StopReason::kCancel;
    if (force_cancel != nullptr && force_cancel->cancelled()) {
      return StopReason::kCancel;
    }
    if (deadline != nullptr && deadline->Expired()) {
      return StopReason::kDeadline;
    }
    return StopReason::kNone;
  }

  bool CanStop() const {
    return deadline != nullptr || cancel != nullptr ||
           force_cancel != nullptr || heartbeat != nullptr;
  }
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_CANCEL_H_
