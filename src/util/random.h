// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (dataset synthesis, sampling
// baselines, property tests) draw from this xoshiro256** generator so that
// every experiment is bit-reproducible across runs and platforms.
#ifndef QUADKDV_UTIL_RANDOM_H_
#define QUADKDV_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace kdv {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
// implementation), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the single word seed.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) { return NextUint64() % n; }

  // Standard normal via Box–Muller (no cached spare: keeps state minimal and
  // the stream position easy to reason about in tests).
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_RANDOM_H_
