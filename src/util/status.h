// Error propagation without exceptions (Google style).
//
// Every recoverable failure at an API boundary (file I/O, parsing, index
// deserialization, dataset ingestion) is reported as a kdv::Status carrying a
// machine-readable code and a human-readable message; functions that produce
// a value on success return kdv::StatusOr<T>. Unrecoverable programming
// errors keep using KDV_CHECK (util/check.h) and abort.
//
// Conventions:
//   * A function that can fail for reasons the caller can act on returns
//     Status / StatusOr<T>, never bool/nullptr.
//   * Status messages are complete sentences' worth of context without a
//     trailing period: "cannot open /x/y.csv", "points section checksum
//     mismatch (stored 0x1234, computed 0x5678)".
//   * KDV_RETURN_IF_ERROR / KDV_ASSIGN_OR_RETURN keep call sites linear.
#ifndef QUADKDV_UTIL_STATUS_H_
#define QUADKDV_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace kdv {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,     // caller passed bad data (malformed CSV, bad column)
  kNotFound,            // missing file / resource
  kDataLoss,            // corrupt or truncated persisted state
  kFailedPrecondition,  // operation not valid in the current state
  kOutOfRange,          // value outside the representable/allowed range
  kUnimplemented,       // recognized but unsupported (e.g. future version)
  kInternal,            // invariant violation that was caught, not proven
  kDeadlineExceeded,    // the request's time budget expired before completion
  kCancelled,           // the caller cancelled the request
  kResourceExhausted,   // admission control rejected the request (shed load)
  kUnavailable,         // the serving path is temporarily down (breaker open)
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    KDV_DCHECK(code != StatusCode::kOk);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: header checksum mismatch" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

// Holds either a value of type T or a non-OK Status explaining why there is
// no value. Accessing value() on an error aborts (programming error).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from a non-OK Status (so `return DataLossError(...)` works).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    KDV_CHECK_MSG(!status_.ok(),
                  "StatusOr constructed from OK status without a value");
  }
  // Implicit from a value (so `return tree;` works).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    KDV_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    KDV_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    KDV_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace kdv

// Propagates a non-OK Status to the caller; evaluates `expr` exactly once.
#define KDV_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::kdv::Status kdv_status_macro_tmp = (expr);         \
    if (!kdv_status_macro_tmp.ok()) {                    \
      return kdv_status_macro_tmp;                       \
    }                                                    \
  } while (0)

// Assigns the value of a StatusOr expression to `lhs` (which may be a
// declaration) or propagates its error status to the caller.
#define KDV_ASSIGN_OR_RETURN(lhs, expr) \
  KDV_ASSIGN_OR_RETURN_IMPL_(           \
      KDV_STATUS_MACRO_CONCAT_(kdv_statusor_, __LINE__), lhs, expr)

#define KDV_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = *std::move(tmp)

#define KDV_STATUS_MACRO_CONCAT_INNER_(a, b) a##b
#define KDV_STATUS_MACRO_CONCAT_(a, b) KDV_STATUS_MACRO_CONCAT_INNER_(a, b)

#endif  // QUADKDV_UTIL_STATUS_H_
