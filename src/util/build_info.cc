#include "util/build_info.h"

#ifndef KDV_GIT_HASH
#define KDV_GIT_HASH "unknown"
#endif
#ifndef KDV_BUILD_TYPE
#define KDV_BUILD_TYPE "unknown"
#endif
#ifndef KDV_SANITIZE_PRESET
#define KDV_SANITIZE_PRESET "OFF"
#endif
#ifndef KDV_OPT_FAILPOINTS
#define KDV_OPT_FAILPOINTS 0
#endif

namespace kdv {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {
      KDV_GIT_HASH, KDV_BUILD_TYPE, KDV_SANITIZE_PRESET,
      KDV_OPT_FAILPOINTS != 0,
  };
  return info;
}

std::string BuildStamp() {
  const BuildInfo& info = GetBuildInfo();
  std::string stamp = "quadkdv ";
  stamp += info.git_hash;
  stamp += " (";
  stamp += info.build_type;
  stamp += ", sanitize=";
  stamp += info.sanitizer;
  stamp += ", failpoints=";
  stamp += info.failpoints ? "on" : "off";
  stamp += ")";
  return stamp;
}

}  // namespace kdv
