// Global memory-budget accountant for the serving path.
//
// The serve layer's overload governor needs a cheap, always-on estimate of
// how much transient memory the render pipeline is holding: refinement
// scratch heaps, per-request frame buffers, and queued task slots. Rather
// than wrapping an allocator, the owners of those buffers charge and
// release bytes against a process-wide MemBudget. The counters are relaxed
// atomics — the governor consumes a smoothed pressure signal, not an exact
// ledger, so a momentarily stale read is fine — but charges and releases
// are required to balance exactly, which the unit tests assert.
//
// All methods are thread-safe. Charging is unconditional (this is an
// accountant, not an allocator gate): callers never fail an allocation
// here; the governor reads used_bytes() against its configured budget and
// browns out / sheds at the admission boundary instead.
#ifndef QUADKDV_UTIL_MEM_BUDGET_H_
#define QUADKDV_UTIL_MEM_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace kdv {

// What a charge is for. Per-source subtotals make the serve-sim JSON and
// stall reports explain *where* the memory went, not just how much.
enum class MemSource : int {
  kRefinementScratch = 0,  // RefinementStream heap storage
  kFrameBuffers = 1,       // DensityFrame pixel buffers held by requests
  kTaskQueue = 2,          // queued/in-flight task bookkeeping
};
inline constexpr int kNumMemSources = 3;

const char* MemSourceName(MemSource source);

class MemBudget {
 public:
  MemBudget() = default;
  MemBudget(const MemBudget&) = delete;
  MemBudget& operator=(const MemBudget&) = delete;

  // The process-wide accountant everything charges by default. Tests may
  // construct private instances.
  static MemBudget& Global();

  void Charge(MemSource source, uint64_t bytes);
  // Releasing more than was charged clamps to zero (and is a bug in the
  // caller); the clamp keeps a one-sided accounting error from wedging the
  // governor at permanently negative-as-huge-unsigned pressure.
  void Release(MemSource source, uint64_t bytes);

  uint64_t used_bytes() const;
  uint64_t used_bytes(MemSource source) const;
  // High-water mark of total used bytes since construction (or ResetPeak).
  // Maintained with a CAS loop on Charge; monotone between resets.
  uint64_t peak_bytes() const;
  void ResetPeak();

 private:
  std::atomic<uint64_t> per_source_[kNumMemSources] = {};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> peak_{0};
};

// RAII charge against a budget: charges `bytes` on construction, releases
// on destruction. Movable so owners (e.g. a render outcome in flight) can
// hand the charge along with the buffer it accounts for.
class ScopedMemCharge {
 public:
  ScopedMemCharge() = default;
  ScopedMemCharge(MemBudget* budget, MemSource source, uint64_t bytes)
      : budget_(budget), source_(source), bytes_(bytes) {
    if (budget_ != nullptr && bytes_ > 0) budget_->Charge(source_, bytes_);
  }
  ScopedMemCharge(ScopedMemCharge&& other) noexcept
      : budget_(other.budget_), source_(other.source_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedMemCharge& operator=(ScopedMemCharge&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      budget_ = other.budget_;
      source_ = other.source_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;
  ~ScopedMemCharge() { ReleaseNow(); }

  uint64_t bytes() const { return bytes_; }

 private:
  void ReleaseNow() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(source_, bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  MemBudget* budget_ = nullptr;
  MemSource source_ = MemSource::kRefinementScratch;
  uint64_t bytes_ = 0;
};

}  // namespace kdv

#endif  // QUADKDV_UTIL_MEM_BUDGET_H_
