#include "sampling/zorder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "data/datasets.h"
#include "geom/morton.h"
#include "util/check.h"

namespace kdv {

size_t ZorderSampleSize(double eps, double delta, size_t n,
                        double rel_to_abs) {
  KDV_CHECK(eps > 0.0);
  KDV_CHECK(delta > 0.0 && delta < 1.0);
  KDV_CHECK(rel_to_abs > 0.0);
  const double eps_abs = eps / rel_to_abs;
  double m = std::log(1.0 / delta) / (eps_abs * eps_abs);
  if (m < 1.0) m = 1.0;
  return std::min(n, static_cast<size_t>(std::ceil(m)));
}

PointSet ZorderSample(const PointSet& points, size_t m) {
  KDV_CHECK(!points.empty());
  KDV_CHECK(points[0].dim() >= 2);
  m = std::clamp<size_t>(m, 1, points.size());
  if (m == points.size()) return points;

  Rect box = BoundingBox(points);
  std::vector<std::pair<uint64_t, uint32_t>> keyed(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    keyed[i] = {MortonCodeForPoint(points[i], box), static_cast<uint32_t>(i)};
  }
  std::sort(keyed.begin(), keyed.end());

  // Systematic sampling along the curve: one representative per stratum of
  // n/m consecutive curve positions.
  PointSet sample;
  sample.reserve(m);
  const double stride = static_cast<double>(points.size()) / m;
  for (size_t i = 0; i < m; ++i) {
    size_t pos = static_cast<size_t>(i * stride + stride / 2.0);
    pos = std::min(pos, points.size() - 1);
    sample.push_back(points[keyed[pos].second]);
  }
  return sample;
}

KernelParams ScaleWeightForSample(const KernelParams& params,
                                  size_t original_n, size_t sample_m) {
  KDV_CHECK(sample_m > 0);
  KernelParams scaled = params;
  scaled.weight = params.weight * static_cast<double>(original_n) /
                  static_cast<double>(sample_m);
  return scaled;
}

}  // namespace kdv
