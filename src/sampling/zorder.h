// Z-order (coreset) sampling baseline for εKDV (Zheng et al., SIGMOD'13).
//
// The dataset is sorted along the Z-order space-filling curve and sampled at
// m equally spaced curve positions; each sample point's weight is scaled by
// n/m. This preserves spatial density structure and yields a probabilistic
// (ε, δ) guarantee; the color map is then produced by *exact* KDV on the
// reduced set, which is precisely why the method stays slow for small ε
// (paper §7.2).
#ifndef QUADKDV_SAMPLING_ZORDER_H_
#define QUADKDV_SAMPLING_ZORDER_H_

#include <cstddef>

#include "geom/point.h"
#include "kernel/kernel.h"

namespace kdv {

// Sample size for a relative error ε with failure probability δ, following
// the coreset bound m = Θ(ε_abs^-2 · log(1/δ)). The paper's experiments use
// δ = 0.2. The bound's ε_abs is an *absolute* error on the normalized KDE;
// meeting a *relative* ε at moderately dense pixels requires
// ε_abs ≈ ε / rel_to_abs — this conversion is why Z-order stays slow for
// small ε in the paper's Fig. 14/22/27. Capped at n.
size_t ZorderSampleSize(double eps, double delta, size_t n,
                        double rel_to_abs = 3.0);

// Systematic Z-order sample of m points (2-d; extra dimensions ride along).
// Deterministic. m is clamped to [1, points.size()].
PointSet ZorderSample(const PointSet& points, size_t m);

// Rescales the per-point weight so the sampled aggregate estimates the full
// aggregate: w' = w * n / m.
KernelParams ScaleWeightForSample(const KernelParams& params,
                                  size_t original_n, size_t sample_m);

}  // namespace kdv

#endif  // QUADKDV_SAMPLING_ZORDER_H_
