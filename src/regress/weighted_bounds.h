// Bounds on the weighted kernel aggregation N(q) = Σ y_i K(q, p_i), y_i >= 0.
//
// Mirrors bounds/node_bounds.h with n → Y = Σ y_i and the S1/S2 aggregates
// replaced by their y-weighted versions. Used by the Nadaraya–Watson
// regressor's numerator; the denominator uses the ordinary NodeBounds.
#ifndef QUADKDV_REGRESS_WEIGHTED_BOUNDS_H_
#define QUADKDV_REGRESS_WEIGHTED_BOUNDS_H_

#include "bounds/node_bounds.h"
#include "geom/rect.h"
#include "kernel/kernel.h"
#include "regress/weighted_stats.h"

namespace kdv {

// Evaluates bounds on N(q) over one node with MBR `mbr` and weighted
// aggregates `wstats`, using the given method's bound family. The
// KernelParams' `weight` multiplies the result (usually 1). Supported:
// kAkde/kTkdc (trivial), kKarl (Gaussian only), kQuad (all Table-4 kernels;
// polynomial kernels fall back to trivial bounds). Unsupported combinations
// fall back to the trivial bounds, which are always valid.
BoundPair EvaluateWeightedBounds(Method method, const KernelParams& params,
                                 const Rect& mbr,
                                 const WeightedNodeStats& wstats,
                                 const Point& q,
                                 const BoundsOptions& options = {});

}  // namespace kdv

#endif  // QUADKDV_REGRESS_WEIGHTED_BOUNDS_H_
