#include "regress/weighted_bounds.h"

#include <algorithm>
#include <cmath>

#include "bounds/profile.h"
#include "util/check.h"

namespace kdv {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kDegenerateInterval = 1e-12;

BoundPair WeightedTrivial(const KernelParams& params, double weight_sum,
                          const XInterval& xi) {
  BoundPair b;
  b.lower = weight_sum * params.weight * KernelProfile(params.type, xi.x_max);
  b.upper = weight_sum * params.weight * KernelProfile(params.type, xi.x_min);
  return b;
}

BoundPair Finalize(BoundPair analytic, const KernelParams& params,
                   double weight_sum, const XInterval& xi,
                   const BoundsOptions& options) {
  if (options.clamp_with_trivial) {
    BoundPair trivial = WeightedTrivial(params, weight_sum, xi);
    analytic.lower = std::max(analytic.lower, trivial.lower);
    analytic.upper = std::min(analytic.upper, trivial.upper);
  }
  analytic.lower = std::max(analytic.lower, 0.0);
  if (analytic.upper < analytic.lower) analytic.upper = analytic.lower;
  return analytic;
}

BoundPair GaussianKarl(const KernelParams& params, const XInterval& xi,
                       const WeightedNodeStats& wstats, const Point& q) {
  const double y = wstats.weight_sum();
  const double s1 = wstats.WeightedSumSquaredDistances(q);
  const double sum_x = params.gamma * s1;  // Σ y_i x_i
  const double w = params.weight;

  BoundPair b;
  LinearCoeffs upper = ExpChordUpper(xi.x_min, xi.x_max);
  b.upper = w * (upper.m * sum_x + upper.k * y);
  double t = GaussianTangentPoint(params.gamma, s1, y, xi.x_min, xi.x_max);
  LinearCoeffs lower = ExpTangentLower(t);
  b.lower = w * (lower.m * sum_x + lower.k * y);
  return b;
}

BoundPair GaussianQuad(const KernelParams& params, const XInterval& xi,
                       const WeightedNodeStats& wstats, const Point& q) {
  const double y = wstats.weight_sum();
  const double s1 = wstats.WeightedSumSquaredDistances(q);
  const double s2 = wstats.WeightedSumQuarticDistances(q);
  const double sum_x = params.gamma * s1;
  const double sum_x_sq = params.gamma * params.gamma * s2;
  const double w = params.weight;

  BoundPair b;
  QuadraticCoeffs upper = ExpQuadUpper(xi.x_min, xi.x_max);
  b.upper = w * (upper.a * sum_x_sq + upper.b * sum_x + upper.c * y);

  double t = GaussianTangentPoint(params.gamma, s1, y, xi.x_min, xi.x_max);
  if (xi.x_max - t < kDegenerateInterval) {
    LinearCoeffs lower = ExpTangentLower(t);
    b.lower = w * (lower.m * sum_x + lower.k * y);
  } else {
    QuadraticCoeffs lower = ExpQuadLower(t, xi.x_max);
    b.lower = w * (lower.a * sum_x_sq + lower.b * sum_x + lower.c * y);
  }
  return b;
}

BoundPair DistanceQuad(const KernelParams& params, const XInterval& xi,
                       const WeightedNodeStats& wstats, const Point& q) {
  const double y = wstats.weight_sum();
  // Σ y_i x_i^2 = gamma^2 * weighted S1.
  const double sum_x_sq =
      params.gamma * params.gamma * wstats.WeightedSumSquaredDistances(q);
  const double w = params.weight;
  BoundPair b;

  switch (params.type) {
    case KernelType::kTriangular: {
      if (xi.x_min >= 1.0) return BoundPair{0.0, 0.0};
      QuadraticCoeffs upper = TriangularQuadUpper(xi.x_min, xi.x_max);
      b.upper = w * (upper.a * sum_x_sq + upper.c * y);
      // Weighted Theorem 2 closed form: N >= w (Y - sqrt(Y * Σ y x^2)).
      b.lower = w * (y - std::sqrt(y * sum_x_sq));
      return b;
    }
    case KernelType::kCosine: {
      const double half_pi = kPi / 2.0;
      if (xi.x_min >= half_pi) return BoundPair{0.0, 0.0};
      if (xi.x_max <= half_pi) {
        QuadraticCoeffs upper = CosineQuadUpper(xi.x_min, xi.x_max);
        b.upper = w * (upper.a * sum_x_sq + upper.c * y);
      } else {
        b.upper = w * y * std::cos(xi.x_min);
      }
      QuadraticCoeffs lower = CosineQuadLower(std::min(xi.x_max, half_pi));
      b.lower = w * (lower.a * sum_x_sq + lower.c * y);
      return b;
    }
    case KernelType::kExponential: {
      QuadraticCoeffs upper = ExponentialQuadUpper(xi.x_min, xi.x_max);
      b.upper = w * (upper.a * sum_x_sq + upper.c * y);
      double t = ExponentialTangentPoint(
          params.gamma, sum_x_sq / (params.gamma * params.gamma), y,
          xi.x_min, xi.x_max);
      if (t <= kDegenerateInterval) return WeightedTrivial(params, y, xi);
      QuadraticCoeffs lower = ExponentialQuadLower(t);
      b.lower = w * (lower.a * sum_x_sq + lower.c * y);
      return b;
    }
    default:
      return WeightedTrivial(params, y, xi);
  }
}

}  // namespace

BoundPair EvaluateWeightedBounds(Method method, const KernelParams& params,
                                 const Rect& mbr,
                                 const WeightedNodeStats& wstats,
                                 const Point& q,
                                 const BoundsOptions& options) {
  XInterval xi = ProfileInterval(params, mbr, q);
  const double y = wstats.weight_sum();
  if (y <= 0.0) return BoundPair{0.0, 0.0};

  if (xi.x_max - xi.x_min < kDegenerateInterval) {
    return Finalize(WeightedTrivial(params, y, xi), params, y, xi, options);
  }

  BoundPair analytic;
  switch (method) {
    case Method::kKarl:
      if (params.type != KernelType::kGaussian) {
        analytic = WeightedTrivial(params, y, xi);
      } else {
        analytic = GaussianKarl(params, xi, wstats, q);
      }
      break;
    case Method::kQuad:
      if (params.type == KernelType::kGaussian) {
        analytic = GaussianQuad(params, xi, wstats, q);
      } else {
        analytic = DistanceQuad(params, xi, wstats, q);
      }
      break;
    default:
      analytic = WeightedTrivial(params, y, xi);
      break;
  }
  return Finalize(analytic, params, y, xi, options);
}

}  // namespace kdv
