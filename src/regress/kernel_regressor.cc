#include "regress/kernel_regressor.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "regress/weighted_bounds.h"
#include "util/check.h"

namespace kdv {

namespace {

// Node entry carrying bounds for both aggregations.
struct QueueEntry {
  double priority = 0.0;
  int32_t node = -1;
  BoundPair numer;
  BoundPair denom;
};

struct PriorityLess {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    return a.priority < b.priority;
  }
};

}  // namespace

KernelRegressor::KernelRegressor(PointSet xs, std::vector<double> ys,
                                 const Options& options)
    : options_(options) {
  KDV_CHECK_MSG(!xs.empty(), "KernelRegressor requires data");
  KDV_CHECK_MSG(xs.size() == ys.size(), "one target per sample required");

  params_ = MakeScottParams(options_.kernel, xs);
  params_.weight = 1.0;  // N and D are raw sums; the ratio cancels weights
  if (options_.gamma_override >= 0.0) params_.gamma = options_.gamma_override;

  KdTree::Options tree_options;
  tree_options.leaf_size = options_.leaf_size;
  tree_ = std::make_unique<KdTree>(std::move(xs), tree_options);
  weights_ = std::make_unique<WeightedAugmentation>(*tree_, ys);
  denom_bounds_ = MakeNodeBounds(
      options_.method == Method::kExact ? Method::kExact : options_.method,
      params_, options_.bounds);
}

double KernelRegressor::EstimateExact(const Point& q, bool* defined) const {
  const PointSet& pts = tree_->points();
  const std::vector<double>& y = weights_->y_tree_order();
  double numer = 0.0;
  double denom = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    double k = params_.EvalSquaredDistance(SquaredDistance(q, pts[i]));
    numer += y[i] * k;
    denom += k;
  }
  if (defined != nullptr) *defined = denom > 0.0;
  return denom > 0.0 ? numer / denom : 0.0;
}

KernelRegressor::Result KernelRegressor::Estimate(const Point& q,
                                                  double eps) const {
  KDV_CHECK(eps >= 0.0);
  Result result;

  if (options_.method == Method::kExact || denom_bounds_ == nullptr) {
    bool defined = true;
    result.estimate = EstimateExact(q, &defined);
    result.lower = result.upper = result.estimate;
    result.defined = defined;
    result.converged = true;
    result.points_scanned = tree_->num_points();
    return result;
  }

  const std::vector<double>& y = weights_->y_tree_order();
  const PointSet& pts = tree_->points();

  auto node_bounds = [&](int32_t id) {
    QueueEntry e;
    e.node = id;
    const KdTree::Node& node = tree_->node(id);
    e.numer = EvaluateWeightedBounds(options_.method, params_,
                                     node.stats.mbr(), weights_->node(id), q,
                                     options_.bounds);
    e.denom = denom_bounds_->Evaluate(node.stats, q);
    // Numerator and denominator gaps are commensurable after scaling the
    // denominator gap by the node's mean target value.
    double mean_y = weights_->node(id).weight_sum() /
                    static_cast<double>(node.stats.count());
    e.priority = (e.numer.upper - e.numer.lower) +
                 mean_y * (e.denom.upper - e.denom.lower);
    return e;
  };

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, PriorityLess>
      queue;
  QueueEntry root = node_bounds(tree_->root());
  double lb_n = root.numer.lower, ub_n = root.numer.upper;
  double lb_d = root.denom.lower, ub_d = root.denom.upper;
  queue.push(root);

  auto ratio_bounds = [&]() {
    double lo = ub_d > 0.0 ? lb_n / ub_d : 0.0;
    double hi = lb_d > 0.0 ? ub_n / lb_d
                           : (ub_n > 0.0 ? std::numeric_limits<double>::max()
                                         : 0.0);
    return std::make_pair(lo, std::max(hi, lo));
  };

  while (!queue.empty()) {
    auto [lo, hi] = ratio_bounds();
    if (ub_d <= 0.0) break;              // no kernel mass anywhere
    if (hi <= (1.0 + eps) * lo) break;   // certified
    QueueEntry top = queue.top();
    queue.pop();
    ++result.iterations;

    lb_n -= top.numer.lower;
    ub_n -= top.numer.upper;
    lb_d -= top.denom.lower;
    ub_d -= top.denom.upper;
    const KdTree::Node& node = tree_->node(top.node);
    if (node.IsLeaf()) {
      double exact_n = 0.0, exact_d = 0.0;
      for (uint32_t i = node.begin; i < node.end; ++i) {
        double k = params_.EvalSquaredDistance(SquaredDistance(q, pts[i]));
        exact_n += y[i] * k;
        exact_d += k;
      }
      result.points_scanned += node.count();
      lb_n += exact_n;
      ub_n += exact_n;
      lb_d += exact_d;
      ub_d += exact_d;
    } else {
      for (int32_t child : {node.left, node.right}) {
        QueueEntry e = node_bounds(child);
        lb_n += e.numer.lower;
        ub_n += e.numer.upper;
        lb_d += e.denom.lower;
        ub_d += e.denom.upper;
        queue.push(e);
      }
    }
  }

  if (ub_n < lb_n) ub_n = lb_n;
  if (ub_d < lb_d) ub_d = lb_d;
  auto [lo, hi] = ratio_bounds();
  result.defined = ub_d > 0.0;
  result.lower = lo;
  result.upper = hi;
  result.estimate = result.defined ? 0.5 * (lo + hi) : 0.0;
  result.converged =
      !result.defined || hi <= (1.0 + eps) * lo || queue.empty();
  return result;
}

}  // namespace kdv
