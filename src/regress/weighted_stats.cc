#include "regress/weighted_stats.h"

#include <algorithm>

#include "util/check.h"

namespace kdv {

WeightedNodeStats WeightedNodeStats::Compute(const Point* points,
                                             const double* y, size_t count) {
  KDV_CHECK(count > 0);
  const int d = points[0].dim();

  WeightedNodeStats s;
  s.dim_ = d;
  s.weighted_sum_ = Point(d);
  s.weighted_sq_norm_p_ = Point(d);
  s.outer_.assign(static_cast<size_t>(d) * d, 0.0);

  for (size_t i = 0; i < count; ++i) {
    const Point& p = points[i];
    const double w = y[i];
    KDV_DCHECK(w >= 0.0);
    double sq = p.SquaredNorm();
    s.weight_sum_ += w;
    s.weighted_sq_norm_ += w * sq;
    s.weighted_quartic_ += w * sq * sq;
    for (int a = 0; a < d; ++a) {
      s.weighted_sum_[a] += w * p[a];
      s.weighted_sq_norm_p_[a] += w * sq * p[a];
      for (int b = 0; b < d; ++b) {
        s.outer_[static_cast<size_t>(a) * d + b] += w * p[a] * p[b];
      }
    }
  }
  return s;
}

double WeightedNodeStats::WeightedSumSquaredDistances(const Point& q) const {
  KDV_DCHECK(q.dim() == dim_);
  double s1 = weight_sum_ * q.SquaredNorm() - 2.0 * Dot(q, weighted_sum_) +
              weighted_sq_norm_;
  return std::max(s1, 0.0);
}

double WeightedNodeStats::WeightedSumQuarticDistances(const Point& q) const {
  KDV_DCHECK(q.dim() == dim_);
  const double q_sq = q.SquaredNorm();
  const double q_dot_a = Dot(q, weighted_sum_);
  const double q_dot_v = Dot(q, weighted_sq_norm_p_);

  double qcq = 0.0;
  const int d = dim_;
  for (int a = 0; a < d; ++a) {
    double row = 0.0;
    const double* c_row = outer_.data() + static_cast<size_t>(a) * d;
    for (int b = 0; b < d; ++b) row += c_row[b] * q[b];
    qcq += q[a] * row;
  }

  double s2 = weight_sum_ * q_sq * q_sq - 4.0 * q_sq * q_dot_a -
              4.0 * q_dot_v + 2.0 * q_sq * weighted_sq_norm_ +
              weighted_quartic_ + 4.0 * qcq;
  return std::max(s2, 0.0);
}

WeightedAugmentation::WeightedAugmentation(
    const KdTree& tree, const std::vector<double>& y_original) {
  KDV_CHECK_MSG(y_original.size() == tree.num_points(),
                "one target per point required");
  y_.resize(y_original.size());
  for (size_t i = 0; i < y_.size(); ++i) {
    double v = y_original[tree.original_index(i)];
    KDV_CHECK_MSG(v >= 0.0, "regression targets must be non-negative");
    y_[i] = v;
  }
  stats_.resize(tree.num_nodes());
  for (size_t id = 0; id < tree.num_nodes(); ++id) {
    const KdTree::Node& node = tree.node(static_cast<int32_t>(id));
    stats_[id] = WeightedNodeStats::Compute(
        tree.points().data() + node.begin, y_.data() + node.begin,
        node.count());
  }
}

}  // namespace kdv
