// Weighted per-node aggregates: the y-weighted analogue of NodeStats.
//
// Kernel regression (Nadaraya–Watson) needs bounds on the weighted
// aggregation N(q) = Σ y_i K(q, p_i) with non-negative targets y_i. Every
// identity used by the unweighted bounds carries over with n → Y = Σ y_i:
//   Σ y_i dist(q,p_i)^2 = Y·||q||^2 - 2 q·(Σ y_i p_i) + Σ y_i ||p_i||^2
//   Σ y_i dist(q,p_i)^4 = ... (see NodeStats; every sum gains a y_i factor)
// so the same profile coefficients (bounds/profile.h) aggregate in O(d) /
// O(d^2) per node.
#ifndef QUADKDV_REGRESS_WEIGHTED_STATS_H_
#define QUADKDV_REGRESS_WEIGHTED_STATS_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "index/kdtree.h"

namespace kdv {

class WeightedNodeStats {
 public:
  WeightedNodeStats() = default;

  // Aggregates of points[i] with weights y[i], for i in [0, count).
  // Weights must be non-negative.
  static WeightedNodeStats Compute(const Point* points, const double* y,
                                   size_t count);

  double weight_sum() const { return weight_sum_; }  // Y

  // Σ y_i dist(q, p_i)^2 in O(d).
  double WeightedSumSquaredDistances(const Point& q) const;

  // Σ y_i dist(q, p_i)^4 in O(d^2).
  double WeightedSumQuarticDistances(const Point& q) const;

 private:
  int dim_ = 0;
  double weight_sum_ = 0.0;
  Point weighted_sum_;          // Σ y p
  double weighted_sq_norm_ = 0.0;   // Σ y ||p||^2
  Point weighted_sq_norm_p_;    // Σ y ||p||^2 p
  double weighted_quartic_ = 0.0;   // Σ y ||p||^4
  std::vector<double> outer_;   // Σ y p p^T (row-major d x d)
};

// Per-tree augmentation: WeightedNodeStats for every node of an existing
// KdTree, built from targets given in the *input* point order (the tree's
// build permutation is applied internally).
class WeightedAugmentation {
 public:
  // y_original.size() must equal tree.num_points(); all values >= 0.
  WeightedAugmentation(const KdTree& tree,
                       const std::vector<double>& y_original);

  const WeightedNodeStats& node(int32_t id) const { return stats_[id]; }

  // Targets in tree order: y_tree_order()[i] belongs to tree.points()[i].
  const std::vector<double>& y_tree_order() const { return y_; }

 private:
  std::vector<double> y_;
  std::vector<WeightedNodeStats> stats_;
};

}  // namespace kdv

#endif  // QUADKDV_REGRESS_WEIGHTED_STATS_H_
