// Nadaraya–Watson kernel regression with certified bounds (paper §8 future
// work: "apply QUAD to other kernel-based machine learning models").
//
// The estimator at a query q is the ratio of two kernel aggregations,
//   R(q) = N(q) / D(q),  N(q) = Σ y_i K(q, p_i),  D(q) = Σ K(q, p_i),
// with non-negative targets y_i. One best-first refinement maintains
// certified intervals on N and D simultaneously (numerator bounds from
// regress/weighted_bounds.h, denominator bounds from bounds/node_bounds.h);
// the ratio interval [lbN/ubD, ubN/lbD] tightens until the requested
// relative error is certified — QUAD's tighter bounds certify earlier.
#ifndef QUADKDV_REGRESS_KERNEL_REGRESSOR_H_
#define QUADKDV_REGRESS_KERNEL_REGRESSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bounds/node_bounds.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"
#include "regress/weighted_stats.h"

namespace kdv {

class KernelRegressor {
 public:
  struct Options {
    Method method = Method::kQuad;
    KernelType kernel = KernelType::kGaussian;
    size_t leaf_size = 32;
    double gamma_override = -1.0;  // >= 0 overrides Scott's rule
    BoundsOptions bounds;
  };

  struct Result {
    double estimate = 0.0;       // midpoint of the certified ratio interval
    double lower = 0.0;          // certified ratio bounds
    double upper = 0.0;
    bool converged = false;      // certified to the requested eps
    bool defined = true;         // false if D(q) == 0 (no kernel mass at q)
    uint64_t iterations = 0;
    uint64_t points_scanned = 0;
  };

  // xs: sample locations; ys: non-negative targets, one per location.
  KernelRegressor(PointSet xs, std::vector<double> ys, const Options& options);

  KernelRegressor(const KernelRegressor&) = delete;
  KernelRegressor& operator=(const KernelRegressor&) = delete;

  const KdTree& tree() const { return *tree_; }
  const KernelParams& params() const { return params_; }

  // Certified (1±eps) estimate of R(q).
  Result Estimate(const Point& q, double eps) const;

  // Brute-force Nadaraya–Watson, for validation. Returns 0 and sets
  // *defined = false (if non-null) when D(q) underflows to zero.
  double EstimateExact(const Point& q, bool* defined = nullptr) const;

 private:
  Options options_;
  std::unique_ptr<KdTree> tree_;
  std::unique_ptr<WeightedAugmentation> weights_;
  KernelParams params_;
  std::unique_ptr<NodeBounds> denom_bounds_;  // null for Method::kExact
};

}  // namespace kdv

#endif  // QUADKDV_REGRESS_KERNEL_REGRESSOR_H_
