#include "bounds/profile.h"

#include <algorithm>
#include <cmath>

#include "kernel/kernel.h"
#include "util/check.h"

namespace kdv {

LinearCoeffs ExpChordUpper(double x_min, double x_max) {
  KDV_DCHECK(x_max > x_min);
  const double e_min = ClampedExpNeg(x_min);
  const double e_max = ClampedExpNeg(x_max);
  LinearCoeffs lin;
  lin.m = (e_max - e_min) / (x_max - x_min);
  lin.k = e_min - lin.m * x_min;
  return lin;
}

LinearCoeffs ExpTangentLower(double t) {
  KDV_DCHECK(t >= 0.0);
  const double e_t = ClampedExpNeg(t);
  LinearCoeffs lin;
  lin.m = -e_t;
  lin.k = (1.0 + t) * e_t;
  return lin;
}

QuadraticCoeffs ExpQuadUpper(double x_min, double x_max) {
  KDV_DCHECK(x_max > x_min);
  const double e_min = ClampedExpNeg(x_min);
  const double e_max = ClampedExpNeg(x_max);
  const double delta = x_max - x_min;

  QuadraticCoeffs q;
  // Theorem 1 (see header note for the sign derivation).
  q.a = (e_min - (delta + 1.0) * e_max) / (delta * delta);
  // Interpolation of both endpoints pins b and c given a.
  q.b = (e_max - e_min) / delta - q.a * (x_min + x_max);
  q.c = (e_min * x_max - e_max * x_min) / delta + q.a * x_min * x_max;
  return q;
}

QuadraticCoeffs ExpQuadLower(double t, double x_max) {
  KDV_DCHECK(t < x_max);
  KDV_DCHECK(t >= 0.0);
  const double e_t = ClampedExpNeg(t);
  const double e_max = ClampedExpNeg(x_max);
  const double d = x_max - t;

  QuadraticCoeffs q;
  // §4.3: tangent to exp(-x) at t, interpolating (x_max, e^-x_max).
  q.a = (e_max + (x_max - 1.0 - t) * e_t) / (d * d);
  q.b = -e_t - 2.0 * t * q.a;
  q.c = (1.0 + t) * e_t + t * t * q.a;
  return q;
}

double GaussianTangentPoint(double gamma, double sum_sq_dist, double count,
                            double x_min, double x_max) {
  KDV_DCHECK(count > 0.0);
  double t = gamma * sum_sq_dist / count;  // Eq. 3: mean of x_i
  return std::clamp(t, x_min, x_max);
}

QuadraticCoeffs TriangularQuadUpper(double x_min, double x_max) {
  KDV_DCHECK(x_max > x_min);
  KDV_DCHECK(x_min >= 0.0);
  const double k_min = std::max(1.0 - x_min, 0.0);
  const double k_max = std::max(1.0 - x_max, 0.0);
  const double denom = x_max * x_max - x_min * x_min;

  QuadraticCoeffs q;
  q.a = (k_max - k_min) / denom;
  q.b = 0.0;
  q.c = (x_max * x_max * k_min - x_min * x_min * k_max) / denom;
  return q;
}

QuadraticCoeffs TriangularQuadLower(double mean_sq_x) {
  KDV_DCHECK(mean_sq_x > 0.0);
  QuadraticCoeffs q;
  // Theorem 2: a_l* = -sqrt(n / (4 gamma^2 S1)) = -1 / (2 sqrt(m2)), and
  // Eq. 8: c_l = 1 + 1/(4 a_l).
  q.a = -0.5 / std::sqrt(mean_sq_x);
  q.b = 0.0;
  q.c = 1.0 + 1.0 / (4.0 * q.a);
  return q;
}

QuadraticCoeffs CosineQuadUpper(double x_min, double x_max) {
  KDV_DCHECK(x_max > x_min);
  KDV_DCHECK(x_min >= 0.0);
  const double c_min = std::cos(x_min);
  const double c_max = std::cos(x_max);
  const double denom = x_max * x_max - x_min * x_min;

  QuadraticCoeffs q;
  // §9.6.1, Eqs. 10-11.
  q.a = (c_max - c_min) / denom;
  q.b = 0.0;
  q.c = (x_max * x_max * c_min - x_min * x_min * c_max) / denom;
  return q;
}

QuadraticCoeffs CosineQuadLower(double x_max) {
  KDV_DCHECK(x_max > 0.0);
  QuadraticCoeffs q;
  // §9.6.2, Eqs. 12-13: slope match with cos at x_max.
  q.a = -std::sin(x_max) / (2.0 * x_max);
  q.b = 0.0;
  q.c = std::cos(x_max) + x_max * std::sin(x_max) / 2.0;
  return q;
}

QuadraticCoeffs ExponentialQuadUpper(double x_min, double x_max) {
  KDV_DCHECK(x_max > x_min);
  KDV_DCHECK(x_min >= 0.0);
  const double e_min = ClampedExpNeg(x_min);
  const double e_max = ClampedExpNeg(x_max);
  const double denom = x_max * x_max - x_min * x_min;

  QuadraticCoeffs q;
  // §9.6.3, Eqs. 14-15.
  q.a = (e_max - e_min) / denom;
  q.b = 0.0;
  q.c = (x_max * x_max * e_min - x_min * x_min * e_max) / denom;
  return q;
}

QuadraticCoeffs ExponentialQuadLower(double t) {
  KDV_DCHECK(t > 0.0);
  const double e_t = ClampedExpNeg(t);
  QuadraticCoeffs q;
  // §9.6.4, Eqs. 16-17.
  q.a = -e_t / (2.0 * t);
  q.b = 0.0;
  q.c = 0.5 * (t + 2.0) * e_t;
  return q;
}

double ExponentialTangentPoint(double gamma, double sum_sq_dist, double count,
                               double x_min, double x_max) {
  KDV_DCHECK(count > 0.0);
  // Eq. 18: root-mean-square of the x_i.
  double t = std::sqrt(gamma * gamma * sum_sq_dist / count);
  return std::clamp(t, x_min, x_max);
}

}  // namespace kdv
