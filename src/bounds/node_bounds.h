// Per-node bound-function interface shared by all KDV methods.
//
// Each compared method (aKDE / tKDC / KARL / QUAD) is one implementation of
// NodeBounds; the refinement engine in src/core is method-agnostic. A bound
// object is bound to one kernel configuration (KernelParams) at construction.
#ifndef QUADKDV_BOUNDS_NODE_BOUNDS_H_
#define QUADKDV_BOUNDS_NODE_BOUNDS_H_

#include <algorithm>
#include <cmath>
#include <memory>

#include "geom/point.h"
#include "geom/rect.h"
#include "index/node_stats.h"
#include "kernel/kernel.h"

namespace kdv {

// Aggregated lower/upper bounds on F_R(q) = sum_{p in R} w*K(q,p) for one
// index node R.
struct BoundPair {
  double lower = 0.0;
  double upper = 0.0;
};

// The profile-argument interval [x_min, x_max] induced by a node's MBR: x
// evaluated at the minimum / maximum distance between q and the MBR.
struct XInterval {
  double x_min = 0.0;
  double x_max = 0.0;
};

// Computes the profile-argument interval for a node MBR and pixel q.
inline XInterval ProfileInterval(const KernelParams& params, const Rect& mbr,
                                 const Point& q) {
  XInterval xi;
  xi.x_min = params.XFromSquaredDistance(mbr.MinSquaredDistance(q));
  xi.x_max = params.XFromSquaredDistance(mbr.MaxSquaredDistance(q));
  return xi;
}

// Region variant: the profile-argument interval valid for *every* query in
// `query_rect`, via the rect-to-rect min/max distances between the query
// region and the node MBR.
inline XInterval RegionProfileInterval(const KernelParams& params,
                                       const Rect& mbr,
                                       const Rect& query_rect) {
  XInterval xi;
  xi.x_min = params.XFromSquaredDistance(mbr.MinSquaredDistance(query_rect));
  xi.x_max = params.XFromSquaredDistance(mbr.MaxSquaredDistance(query_rect));
  return xi;
}

// The classic min/max-distance bounds n*w*K(x_max) <= F_R(q) <= n*w*K(x_min)
// (valid for every monotone-decreasing kernel profile). These are both the
// aKDE/tKDC baselines and the safety clamp applied on top of the tighter
// analytic bounds.
inline BoundPair TrivialBounds(const KernelParams& params, double count,
                               const XInterval& xi) {
  BoundPair b;
  b.lower = count * params.weight * KernelProfile(params.type, xi.x_max);
  b.upper = count * params.weight * KernelProfile(params.type, xi.x_min);
  return b;
}

// Options shared by all bound implementations.
struct BoundsOptions {
  // Intersect analytic bounds with TrivialBounds. Guards correctness against
  // floating-point drift and support-edge extrapolation; costs two kernel
  // evaluations. Disable only to study the raw analytic bounds.
  bool clamp_with_trivial = true;
};

// Strategy interface: evaluates node-level bounds on F_R(q).
class NodeBounds {
 public:
  NodeBounds(const KernelParams& params, const BoundsOptions& options)
      : params_(params), options_(options) {}
  virtual ~NodeBounds() = default;

  NodeBounds(const NodeBounds&) = delete;
  NodeBounds& operator=(const NodeBounds&) = delete;

  // Bounds on F_R(q); must satisfy lower <= F_R(q) <= upper.
  virtual BoundPair Evaluate(const NodeStats& stats, const Point& q) const = 0;

  // Region bounds: lower <= F_R(q) <= upper must hold for *every* q in
  // `query_rect` (the tile refiner's shared-traversal contract). The default
  // is the min/max-distance bound at the rect-to-rect extremal distances,
  // valid for every monotone-decreasing kernel profile; subclasses override
  // with tighter bounds evaluated at tile-extremal distance moments.
  // Region bounds are deliberately conservative: they may be wider than the
  // per-pixel Evaluate() interval at any single q, never narrower than F
  // allows.
  virtual BoundPair EvaluateRegion(const NodeStats& stats,
                                   const Rect& query_rect) const;

  // Short method name for reports ("aKDE", "KARL", "QUAD").
  virtual const char* name() const = 0;

  const KernelParams& params() const { return params_; }
  const BoundsOptions& options() const { return options_; }

 protected:
  // Applies the safety clamp (if enabled) and the lower >= 0 floor.
  BoundPair Finalize(BoundPair analytic, double count,
                     const XInterval& xi) const {
    if (options_.clamp_with_trivial) {
      BoundPair trivial = TrivialBounds(params_, count, xi);
      analytic.lower = std::max(analytic.lower, trivial.lower);
      analytic.upper = std::min(analytic.upper, trivial.upper);
    }
    analytic.lower = std::max(analytic.lower, 0.0);
    if (analytic.upper < analytic.lower) analytic.upper = analytic.lower;
    return analytic;
  }

  KernelParams params_;
  BoundsOptions options_;
};

// ---------------------------------------------------------------------------
// Implementations (one per method camp).
// ---------------------------------------------------------------------------

// aKDE (Gray & Moore) / tKDC bounds: kernel value at the min/max distance to
// the node MBR. O(d) per node, all kernels.
class MinMaxDistBounds final : public NodeBounds {
 public:
  MinMaxDistBounds(const KernelParams& params, const BoundsOptions& options)
      : NodeBounds(params, options) {}
  BoundPair Evaluate(const NodeStats& stats, const Point& q) const override;
  const char* name() const override { return "aKDE"; }
};

// KARL linear bounds on exp(-x) (chord upper, tangent lower) for the
// Gaussian kernel. O(d) per node.
class KarlLinearBounds final : public NodeBounds {
 public:
  KarlLinearBounds(const KernelParams& params, const BoundsOptions& options);
  BoundPair Evaluate(const NodeStats& stats, const Point& q) const override;
  BoundPair EvaluateRegion(const NodeStats& stats,
                           const Rect& query_rect) const override;
  const char* name() const override { return "KARL"; }
};

// QUAD quadratic bounds for the Gaussian kernel (paper §4): Theorem 1 upper,
// §4.3 lower with tangent point t* = gamma*S1/n. O(d^2) per node.
class QuadGaussianBounds final : public NodeBounds {
 public:
  QuadGaussianBounds(const KernelParams& params, const BoundsOptions& options);
  BoundPair Evaluate(const NodeStats& stats, const Point& q) const override;
  BoundPair EvaluateRegion(const NodeStats& stats,
                           const Rect& query_rect) const override;
  const char* name() const override { return "QUAD"; }
};

// QUAD a*x^2 + c bounds for distance-argument kernels: triangular, cosine,
// exponential (paper §5, §9.6). O(d) per node.
class QuadDistanceKernelBounds final : public NodeBounds {
 public:
  QuadDistanceKernelBounds(const KernelParams& params,
                           const BoundsOptions& options);
  BoundPair Evaluate(const NodeStats& stats, const Point& q) const override;
  BoundPair EvaluateRegion(const NodeStats& stats,
                           const Rect& query_rect) const override;
  const char* name() const override { return "QUAD"; }

 private:
  BoundPair EvaluateTriangular(const NodeStats& stats, const XInterval& xi,
                               double sum_x_sq) const;
  BoundPair EvaluateCosine(const NodeStats& stats, const XInterval& xi,
                           double sum_x_sq) const;
  BoundPair EvaluateExponential(const NodeStats& stats, const XInterval& xi,
                                double sum_x_sq) const;
};

// Exact or near-exact node aggregation for polynomial kernels (extension
// beyond the paper): Epanechnikov and quartic profiles are polynomials in
// dist^2, so S1/S2 give the node aggregate exactly whenever the node lies
// inside the kernel support; uniform reduces to pure interval tests.
class PolynomialExactBounds final : public NodeBounds {
 public:
  PolynomialExactBounds(const KernelParams& params,
                        const BoundsOptions& options);
  BoundPair Evaluate(const NodeStats& stats, const Point& q) const override;
  BoundPair EvaluateRegion(const NodeStats& stats,
                           const Rect& query_rect) const override;
  const char* name() const override { return "POLY"; }
};

// ---------------------------------------------------------------------------
// Factory.
// ---------------------------------------------------------------------------

// The method "camps" compared in the paper (Tables 2 and 6).
enum class Method {
  kExact,   // sequential scan, no index
  kAkde,    // min/max-distance bounds (also the tKDC bound function)
  kTkdc,    // alias of kAkde bounds; differs only in τ-mode usage
  kKarl,    // linear bounds (Gaussian only)
  kQuad,    // this paper
  kZorder,  // Z-order sampling baseline (no bounds; handled in sampling/)
};

const char* MethodName(Method method);

// Creates the bound function implementing `method` for `params`. Returns
// nullptr for unsupported combinations (paper Table 6): kExact/kZorder have
// no bound function; KARL supports only the Gaussian kernel.
std::unique_ptr<NodeBounds> MakeNodeBounds(Method method,
                                           const KernelParams& params,
                                           const BoundsOptions& options = {});

}  // namespace kdv

#endif  // QUADKDV_BOUNDS_NODE_BOUNDS_H_
