#include "bounds/node_bounds.h"

#include <cmath>

#include "bounds/profile.h"
#include "util/check.h"

namespace kdv {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Interval width below which the node is effectively at one distance and the
// trivial bounds are already (near-)exact.
constexpr double kDegenerateInterval = 1e-12;

// Extremizes a linear term coeff * s over s in [lo, hi] by coefficient sign.
// Region bounds treat each aggregate moment independently over its range,
// which is conservative (hence sound) even though the moments are correlated.
double MaxTerm(double coeff, double lo, double hi) {
  return coeff >= 0.0 ? coeff * hi : coeff * lo;
}
double MinTerm(double coeff, double lo, double hi) {
  return coeff >= 0.0 ? coeff * lo : coeff * hi;
}

// Range of S2(q) = sum_i dist(q, p_i)^4 over a query rect, derived from the
// S1 range and the extremal squared distances d ∈ [dmin2, dmax2]:
//   S2 >= S1^2/n      (Cauchy-Schwarz)
//   S2 >= dmin2 * S1  (r_i^2 >= dmin2 * r_i termwise)
//   S2 <= dmax2 * S1  (r_i^2 <= dmax2 * r_i termwise)
void SumQuarticRange(double n, double s1_min, double s1_max, double dmin2,
                     double dmax2, double* s2_min, double* s2_max) {
  *s2_min = std::max(s1_min * s1_min / n, dmin2 * s1_min);
  *s2_max = dmax2 * s1_max;
  if (*s2_max < *s2_min) *s2_max = *s2_min;
}

}  // namespace

// Base implementation: min/max-distance bounds at the rect-to-rect extremal
// distances — the region analogue of TrivialBounds, valid for every
// monotone-decreasing profile (covers MinMaxDistBounds exactly).
BoundPair NodeBounds::EvaluateRegion(const NodeStats& stats,
                                     const Rect& query_rect) const {
  XInterval xi = RegionProfileInterval(params_, stats.mbr(), query_rect);
  return TrivialBounds(params_, static_cast<double>(stats.count()), xi);
}

// ---------------------------------------------------------------------------
// MinMaxDistBounds
// ---------------------------------------------------------------------------

BoundPair MinMaxDistBounds::Evaluate(const NodeStats& stats,
                                     const Point& q) const {
  XInterval xi = ProfileInterval(params_, stats.mbr(), q);
  return TrivialBounds(params_, static_cast<double>(stats.count()), xi);
}

// ---------------------------------------------------------------------------
// KarlLinearBounds
// ---------------------------------------------------------------------------

KarlLinearBounds::KarlLinearBounds(const KernelParams& params,
                                   const BoundsOptions& options)
    : NodeBounds(params, options) {
  KDV_CHECK_MSG(params.type == KernelType::kGaussian,
                "KARL linear bounds require the Gaussian kernel (Lemma 1 "
                "needs x = gamma*dist^2)");
}

BoundPair KarlLinearBounds::Evaluate(const NodeStats& stats,
                                     const Point& q) const {
  const double n = static_cast<double>(stats.count());
  XInterval xi = ProfileInterval(params_, stats.mbr(), q);
  if (xi.x_max - xi.x_min < kDegenerateInterval) {
    return TrivialBounds(params_, n, xi);
  }

  const double s1 = stats.SumSquaredDistances(q);
  const double sum_x = params_.gamma * s1;  // sum_i x_i
  const double w = params_.weight;

  BoundPair b;
  LinearCoeffs upper = ExpChordUpper(xi.x_min, xi.x_max);
  b.upper = w * (upper.m * sum_x + upper.k * n);

  double t = GaussianTangentPoint(params_.gamma, s1, n, xi.x_min, xi.x_max);
  LinearCoeffs lower = ExpTangentLower(t);
  b.lower = w * (lower.m * sum_x + lower.k * n);

  return Finalize(b, n, xi);
}

BoundPair KarlLinearBounds::EvaluateRegion(const NodeStats& stats,
                                           const Rect& query_rect) const {
  const double n = static_cast<double>(stats.count());
  XInterval xi = RegionProfileInterval(params_, stats.mbr(), query_rect);
  if (xi.x_max - xi.x_min < kDegenerateInterval) {
    return TrivialBounds(params_, n, xi);
  }

  double s1_min = 0.0, s1_max = 0.0;
  stats.SumSquaredDistancesRange(query_rect, &s1_min, &s1_max);
  const double sx_min = params_.gamma * s1_min;
  const double sx_max = params_.gamma * s1_max;
  const double w = params_.weight;

  BoundPair b;
  LinearCoeffs upper = ExpChordUpper(xi.x_min, xi.x_max);
  b.upper = w * (MaxTerm(upper.m, sx_min, sx_max) + upper.k * n);

  // Tangent at the mid-range mean argument; any tangent point yields a valid
  // global lower bound on exp(-x) by convexity.
  double t = GaussianTangentPoint(params_.gamma, 0.5 * (s1_min + s1_max), n,
                                  xi.x_min, xi.x_max);
  LinearCoeffs lower = ExpTangentLower(t);
  b.lower = w * (MinTerm(lower.m, sx_min, sx_max) + lower.k * n);

  return Finalize(b, n, xi);
}

// ---------------------------------------------------------------------------
// QuadGaussianBounds
// ---------------------------------------------------------------------------

QuadGaussianBounds::QuadGaussianBounds(const KernelParams& params,
                                       const BoundsOptions& options)
    : NodeBounds(params, options) {
  KDV_CHECK_MSG(params.type == KernelType::kGaussian,
                "QuadGaussianBounds requires the Gaussian kernel");
}

BoundPair QuadGaussianBounds::Evaluate(const NodeStats& stats,
                                       const Point& q) const {
  const double n = static_cast<double>(stats.count());
  XInterval xi = ProfileInterval(params_, stats.mbr(), q);
  if (xi.x_max - xi.x_min < kDegenerateInterval) {
    return TrivialBounds(params_, n, xi);
  }

  const double s1 = stats.SumSquaredDistances(q);
  const double s2 = stats.SumQuarticDistances(q);
  const double sum_x = params_.gamma * s1;                    // sum x_i
  const double sum_x_sq = params_.gamma * params_.gamma * s2;  // sum x_i^2
  const double w = params_.weight;

  BoundPair b;
  QuadraticCoeffs upper = ExpQuadUpper(xi.x_min, xi.x_max);
  b.upper = w * (upper.a * sum_x_sq + upper.b * sum_x + upper.c * n);

  double t = GaussianTangentPoint(params_.gamma, s1, n, xi.x_min, xi.x_max);
  if (xi.x_max - t < kDegenerateInterval) {
    // Tangent point collapses onto x_max; the quadratic form degenerates.
    // Fall back to the linear tangent bound, which is still valid.
    LinearCoeffs lower = ExpTangentLower(t);
    b.lower = w * (lower.m * sum_x + lower.k * n);
  } else {
    QuadraticCoeffs lower = ExpQuadLower(t, xi.x_max);
    b.lower = w * (lower.a * sum_x_sq + lower.b * sum_x + lower.c * n);
  }

  return Finalize(b, n, xi);
}

BoundPair QuadGaussianBounds::EvaluateRegion(const NodeStats& stats,
                                             const Rect& query_rect) const {
  const double n = static_cast<double>(stats.count());
  const Rect& mbr = stats.mbr();
  XInterval xi = RegionProfileInterval(params_, mbr, query_rect);
  if (xi.x_max - xi.x_min < kDegenerateInterval) {
    return TrivialBounds(params_, n, xi);
  }

  double s1_min = 0.0, s1_max = 0.0;
  stats.SumSquaredDistancesRange(query_rect, &s1_min, &s1_max);
  double s2_min = 0.0, s2_max = 0.0;
  SumQuarticRange(n, s1_min, s1_max, mbr.MinSquaredDistance(query_rect),
                  mbr.MaxSquaredDistance(query_rect), &s2_min, &s2_max);

  const double g = params_.gamma;
  const double sx_min = g * s1_min, sx_max = g * s1_max;
  const double sxsq_min = g * g * s2_min, sxsq_max = g * g * s2_max;
  const double w = params_.weight;

  BoundPair b;
  QuadraticCoeffs upper = ExpQuadUpper(xi.x_min, xi.x_max);
  b.upper = w * (MaxTerm(upper.a, sxsq_min, sxsq_max) +
                 MaxTerm(upper.b, sx_min, sx_max) + upper.c * n);

  double t = GaussianTangentPoint(g, 0.5 * (s1_min + s1_max), n, xi.x_min,
                                  xi.x_max);
  if (xi.x_max - t < kDegenerateInterval) {
    LinearCoeffs lower = ExpTangentLower(t);
    b.lower = w * (MinTerm(lower.m, sx_min, sx_max) + lower.k * n);
  } else {
    QuadraticCoeffs lower = ExpQuadLower(t, xi.x_max);
    b.lower = w * (MinTerm(lower.a, sxsq_min, sxsq_max) +
                   MinTerm(lower.b, sx_min, sx_max) + lower.c * n);
  }

  return Finalize(b, n, xi);
}

// ---------------------------------------------------------------------------
// QuadDistanceKernelBounds
// ---------------------------------------------------------------------------

QuadDistanceKernelBounds::QuadDistanceKernelBounds(
    const KernelParams& params, const BoundsOptions& options)
    : NodeBounds(params, options) {
  KDV_CHECK_MSG(params.type == KernelType::kTriangular ||
                    params.type == KernelType::kCosine ||
                    params.type == KernelType::kExponential,
                "QuadDistanceKernelBounds supports triangular, cosine and "
                "exponential kernels");
}

BoundPair QuadDistanceKernelBounds::Evaluate(const NodeStats& stats,
                                             const Point& q) const {
  XInterval xi = ProfileInterval(params_, stats.mbr(), q);
  // sum_i x_i^2 = gamma^2 * S1 — the only aggregate these bounds need
  // (Lemma 4: O(d) time).
  const double sum_x_sq =
      params_.gamma * params_.gamma * stats.SumSquaredDistances(q);

  switch (params_.type) {
    case KernelType::kTriangular:
      return EvaluateTriangular(stats, xi, sum_x_sq);
    case KernelType::kCosine:
      return EvaluateCosine(stats, xi, sum_x_sq);
    case KernelType::kExponential:
      return EvaluateExponential(stats, xi, sum_x_sq);
    default:
      KDV_CHECK_MSG(false, "unreachable kernel type");
  }
}

BoundPair QuadDistanceKernelBounds::EvaluateRegion(
    const NodeStats& stats, const Rect& query_rect) const {
  const double n = static_cast<double>(stats.count());
  const double w = params_.weight;
  XInterval xi = RegionProfileInterval(params_, stats.mbr(), query_rect);

  double s1_min = 0.0, s1_max = 0.0;
  stats.SumSquaredDistancesRange(query_rect, &s1_min, &s1_max);
  const double g2 = params_.gamma * params_.gamma;
  const double sxsq_min = g2 * s1_min;
  const double sxsq_max = g2 * s1_max;

  BoundPair b;
  switch (params_.type) {
    case KernelType::kTriangular: {
      if (xi.x_min >= 1.0) return BoundPair{0.0, 0.0};
      if (xi.x_max - xi.x_min < kDegenerateInterval) {
        return TrivialBounds(params_, n, xi);
      }
      QuadraticCoeffs upper = TriangularQuadUpper(xi.x_min, xi.x_max);
      b.upper = w * (MaxTerm(upper.a, sxsq_min, sxsq_max) + upper.c * n);
      // Theorem 2 closed form, minimized over the S1 range (the bound is
      // decreasing in sum x_i^2).
      b.lower = w * (n - std::sqrt(n * sxsq_max));
      break;
    }
    case KernelType::kCosine: {
      const double half_pi = kPi / 2.0;
      if (xi.x_min >= half_pi) return BoundPair{0.0, 0.0};
      if (xi.x_max - xi.x_min < kDegenerateInterval) {
        return TrivialBounds(params_, n, xi);
      }
      if (xi.x_max <= half_pi) {
        QuadraticCoeffs upper = CosineQuadUpper(xi.x_min, xi.x_max);
        b.upper = w * (MaxTerm(upper.a, sxsq_min, sxsq_max) + upper.c * n);
      } else {
        b.upper = n * w * std::cos(xi.x_min);
      }
      double x_max_eff = std::min(xi.x_max, half_pi);
      QuadraticCoeffs lower = CosineQuadLower(x_max_eff);
      b.lower = w * (MinTerm(lower.a, sxsq_min, sxsq_max) + lower.c * n);
      break;
    }
    case KernelType::kExponential: {
      if (xi.x_max - xi.x_min < kDegenerateInterval) {
        return TrivialBounds(params_, n, xi);
      }
      QuadraticCoeffs upper = ExponentialQuadUpper(xi.x_min, xi.x_max);
      b.upper = w * (MaxTerm(upper.a, sxsq_min, sxsq_max) + upper.c * n);
      double t = ExponentialTangentPoint(params_.gamma,
                                         0.5 * (s1_min + s1_max), n,
                                         xi.x_min, xi.x_max);
      if (t <= kDegenerateInterval) {
        return Finalize(TrivialBounds(params_, n, xi), n, xi);
      }
      QuadraticCoeffs lower = ExponentialQuadLower(t);
      b.lower = w * (MinTerm(lower.a, sxsq_min, sxsq_max) + lower.c * n);
      break;
    }
    default:
      KDV_CHECK_MSG(false, "unreachable kernel type");
  }
  return Finalize(b, n, xi);
}

BoundPair QuadDistanceKernelBounds::EvaluateTriangular(
    const NodeStats& stats, const XInterval& xi, double sum_x_sq) const {
  const double n = static_cast<double>(stats.count());
  const double w = params_.weight;

  // Entire node beyond the kernel support: contribution is exactly 0.
  if (xi.x_min >= 1.0) return BoundPair{0.0, 0.0};
  if (xi.x_max - xi.x_min < kDegenerateInterval) {
    return TrivialBounds(params_, n, xi);
  }

  BoundPair b;
  QuadraticCoeffs upper = TriangularQuadUpper(xi.x_min, xi.x_max);
  b.upper = w * (upper.a * sum_x_sq + upper.c * n);

  // Theorem 2 / Lemma 6 closed form of the optimal lower bound:
  //   F >= w * (n - sqrt(n * sum_i x_i^2)).
  // Valid for all x (see §5.2.2: for x > 1 the bound is negative while the
  // kernel is 0, so it stays below).
  b.lower = w * (n - std::sqrt(n * sum_x_sq));

  return Finalize(b, n, xi);
}

BoundPair QuadDistanceKernelBounds::EvaluateCosine(const NodeStats& stats,
                                                   const XInterval& xi,
                                                   double sum_x_sq) const {
  const double n = static_cast<double>(stats.count());
  const double w = params_.weight;
  const double half_pi = kPi / 2.0;

  if (xi.x_min >= half_pi) return BoundPair{0.0, 0.0};
  if (xi.x_max - xi.x_min < kDegenerateInterval) {
    return TrivialBounds(params_, n, xi);
  }

  BoundPair b;
  if (xi.x_max <= half_pi) {
    // Lemma 9: interpolating quadratic upper bound, valid on [0, pi/2].
    QuadraticCoeffs upper = CosineQuadUpper(xi.x_min, xi.x_max);
    b.upper = w * (upper.a * sum_x_sq + upper.c * n);
  } else {
    // Node straddles the support edge: the interpolation argument breaks
    // (cos is concave, the zero-clamped profile is not), keep the trivial
    // upper bound n*w*cos(x_min). Correctness first; only boundary nodes
    // lose tightness.
    b.upper = n * w * std::cos(xi.x_min);
  }

  // Lemma 10 lower bound with x_max clamped to the support edge. For
  // x > pi/2 the quadratic is <= 0 <= K, so it remains a valid lower bound
  // when the node straddles the edge.
  double x_max_eff = std::min(xi.x_max, half_pi);
  QuadraticCoeffs lower = CosineQuadLower(x_max_eff);
  b.lower = w * (lower.a * sum_x_sq + lower.c * n);

  return Finalize(b, n, xi);
}

BoundPair QuadDistanceKernelBounds::EvaluateExponential(
    const NodeStats& stats, const XInterval& xi, double sum_x_sq) const {
  const double n = static_cast<double>(stats.count());
  const double w = params_.weight;

  if (xi.x_max - xi.x_min < kDegenerateInterval) {
    return TrivialBounds(params_, n, xi);
  }

  BoundPair b;
  QuadraticCoeffs upper = ExponentialQuadUpper(xi.x_min, xi.x_max);
  b.upper = w * (upper.a * sum_x_sq + upper.c * n);

  double t = ExponentialTangentPoint(params_.gamma, sum_x_sq /
                                         (params_.gamma * params_.gamma),
                                     n, xi.x_min, xi.x_max);
  if (t <= kDegenerateInterval) {
    // All points effectively at the query: trivial bounds are exact.
    return Finalize(TrivialBounds(params_, n, xi), n, xi);
  }
  QuadraticCoeffs lower = ExponentialQuadLower(t);
  b.lower = w * (lower.a * sum_x_sq + lower.c * n);

  return Finalize(b, n, xi);
}

// ---------------------------------------------------------------------------
// PolynomialExactBounds
// ---------------------------------------------------------------------------

PolynomialExactBounds::PolynomialExactBounds(const KernelParams& params,
                                             const BoundsOptions& options)
    : NodeBounds(params, options) {
  KDV_CHECK_MSG(params.type == KernelType::kEpanechnikov ||
                    params.type == KernelType::kQuartic ||
                    params.type == KernelType::kUniform,
                "PolynomialExactBounds supports epanechnikov, quartic and "
                "uniform kernels");
}

BoundPair PolynomialExactBounds::Evaluate(const NodeStats& stats,
                                          const Point& q) const {
  const double n = static_cast<double>(stats.count());
  const double w = params_.weight;
  XInterval xi = ProfileInterval(params_, stats.mbr(), q);

  if (xi.x_min >= 1.0) return BoundPair{0.0, 0.0};

  const double g2 = params_.gamma * params_.gamma;
  const double sum_x_sq = g2 * stats.SumSquaredDistances(q);

  BoundPair b;
  switch (params_.type) {
    case KernelType::kEpanechnikov: {
      // K = 1 - x^2 inside support: the node aggregate is w*(n - sum x_i^2),
      // exact when the node is fully inside.
      double poly = w * (n - sum_x_sq);
      if (xi.x_max <= 1.0) return BoundPair{poly, poly};
      // Straddling: the polynomial under-counts (negative terms where K=0),
      // so it is a valid lower bound.
      b.lower = poly;
      b.upper = n * w * std::max(1.0 - xi.x_min * xi.x_min, 0.0);
      break;
    }
    case KernelType::kQuartic: {
      // K = (1 - x^2)^2 = 1 - 2 x^2 + x^4 inside support; x^4 aggregates via
      // S2 (gamma^4 * sum dist^4).
      double sum_x_4 = g2 * g2 * stats.SumQuarticDistances(q);
      double poly = w * (n - 2.0 * sum_x_sq + sum_x_4);
      if (xi.x_max <= 1.0) return BoundPair{poly, poly};
      // Straddling: (1-x^2)^2 >= 0 = K outside the support, so the
      // polynomial over-counts -> valid upper bound.
      b.upper = poly;
      b.lower = 0.0;
      break;
    }
    case KernelType::kUniform: {
      b.lower = xi.x_max <= 1.0 ? n * w : 0.0;
      b.upper = xi.x_min <= 1.0 ? n * w : 0.0;
      break;
    }
    default:
      KDV_CHECK_MSG(false, "unreachable kernel type");
  }
  return Finalize(b, n, xi);
}

BoundPair PolynomialExactBounds::EvaluateRegion(const NodeStats& stats,
                                                const Rect& query_rect) const {
  const double n = static_cast<double>(stats.count());
  const double w = params_.weight;
  const Rect& mbr = stats.mbr();
  XInterval xi = RegionProfileInterval(params_, mbr, query_rect);

  if (xi.x_min >= 1.0) return BoundPair{0.0, 0.0};

  double s1_min = 0.0, s1_max = 0.0;
  stats.SumSquaredDistancesRange(query_rect, &s1_min, &s1_max);
  const double g2 = params_.gamma * params_.gamma;
  const double sxsq_min = g2 * s1_min;
  const double sxsq_max = g2 * s1_max;

  BoundPair b;
  switch (params_.type) {
    case KernelType::kEpanechnikov: {
      // Inside the support the node aggregate is exactly w*(n - sum x_i^2),
      // so its range over the tile is the exact region interval.
      b.lower = w * (n - sxsq_max);
      b.upper = w * (n - sxsq_min);
      if (xi.x_max > 1.0) {
        // Straddling: the polynomial under-counts, so only the lower side
        // survives; the upper falls back to the support-clamped profile.
        b.upper = n * w * std::max(1.0 - xi.x_min * xi.x_min, 0.0);
      }
      break;
    }
    case KernelType::kQuartic: {
      double s2_min = 0.0, s2_max = 0.0;
      SumQuarticRange(n, s1_min, s1_max, mbr.MinSquaredDistance(query_rect),
                      mbr.MaxSquaredDistance(query_rect), &s2_min, &s2_max);
      const double sx4_min = g2 * g2 * s2_min;
      const double sx4_max = g2 * g2 * s2_max;
      b.lower = w * (n - 2.0 * sxsq_max + sx4_min);
      b.upper = w * (n - 2.0 * sxsq_min + sx4_max);
      if (xi.x_max > 1.0) {
        // Straddling: (1-x^2)^2 over-counts outside the support, so only the
        // upper side survives.
        b.lower = 0.0;
      }
      break;
    }
    case KernelType::kUniform: {
      b.lower = xi.x_max <= 1.0 ? n * w : 0.0;
      b.upper = xi.x_min <= 1.0 ? n * w : 0.0;
      break;
    }
    default:
      KDV_CHECK_MSG(false, "unreachable kernel type");
  }
  return Finalize(b, n, xi);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

const char* MethodName(Method method) {
  switch (method) {
    case Method::kExact:
      return "EXACT";
    case Method::kAkde:
      return "aKDE";
    case Method::kTkdc:
      return "tKDC";
    case Method::kKarl:
      return "KARL";
    case Method::kQuad:
      return "QUAD";
    case Method::kZorder:
      return "Z-order";
  }
  return "unknown";
}

std::unique_ptr<NodeBounds> MakeNodeBounds(Method method,
                                           const KernelParams& params,
                                           const BoundsOptions& options) {
  switch (method) {
    case Method::kExact:
    case Method::kZorder:
      return nullptr;
    case Method::kAkde:
    case Method::kTkdc:
      return std::make_unique<MinMaxDistBounds>(params, options);
    case Method::kKarl:
      if (params.type != KernelType::kGaussian) return nullptr;  // Table 6
      return std::make_unique<KarlLinearBounds>(params, options);
    case Method::kQuad:
      switch (params.type) {
        case KernelType::kGaussian:
          return std::make_unique<QuadGaussianBounds>(params, options);
        case KernelType::kTriangular:
        case KernelType::kCosine:
        case KernelType::kExponential:
          return std::make_unique<QuadDistanceKernelBounds>(params, options);
        case KernelType::kEpanechnikov:
        case KernelType::kQuartic:
        case KernelType::kUniform:
          return std::make_unique<PolynomialExactBounds>(params, options);
      }
      return nullptr;
  }
  return nullptr;
}

}  // namespace kdv
