// Profile-level bound coefficients (the paper's §3.3, §4, §5, §9.6 formulas).
//
// A bound on the kernel profile f(x) over an interval [x_min, x_max] is a
// linear function m*x + k (KARL) or quadratic a*x^2 + b*x + c (QUAD) that
// stays on one side of f on the whole interval. These pure functions return
// the coefficients; aggregation over a node happens in node_bounds.
//
// Derivation notes on the Gaussian tight upper coefficient: Theorem 1's
// condition is slope(Q_U) <= slope(exp(-x)) at x_max, i.e.
// 2*a_u*x_max + b_u <= -exp(-x_max); substituting the chord-interpolation
// b_u gives
//     a_u* = (exp(-x_min) - (x_max - x_min + 1) * exp(-x_max))
//            / (x_max - x_min)^2,
// which is >= 0 for all 0 <= x_min <= x_max (equality iff x_min == x_max).
#ifndef QUADKDV_BOUNDS_PROFILE_H_
#define QUADKDV_BOUNDS_PROFILE_H_

namespace kdv {

// Linear profile bound m*x + k.
struct LinearCoeffs {
  double m = 0.0;
  double k = 0.0;
  double Eval(double x) const { return m * x + k; }
};

// Quadratic profile bound a*x^2 + b*x + c.
struct QuadraticCoeffs {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double Eval(double x) const { return (a * x + b) * x + c; }
};

// ---------------------------------------------------------------------------
// exp(-x) with x = gamma*dist^2 (Gaussian kernel). KARL linear bounds.
// ---------------------------------------------------------------------------

// Chord through (x_min, e^-x_min) and (x_max, e^-x_max); upper-bounds exp(-x)
// on [x_min, x_max] by convexity. Requires x_max > x_min.
LinearCoeffs ExpChordUpper(double x_min, double x_max);

// Tangent to exp(-x) at t; lower-bounds exp(-x) everywhere by convexity.
LinearCoeffs ExpTangentLower(double t);

// ---------------------------------------------------------------------------
// exp(-x) quadratic bounds (QUAD, §4).
// ---------------------------------------------------------------------------

// Theorem 1: the tightest correct quadratic upper bound of exp(-x) on
// [x_min, x_max] that interpolates both endpoints. Requires x_max > x_min.
QuadraticCoeffs ExpQuadUpper(double x_min, double x_max);

// §4.3: quadratic lower bound tangent to exp(-x) at t and passing through
// (x_max, e^-x_max). Requires t < x_max. Tighter than ExpTangentLower.
QuadraticCoeffs ExpQuadLower(double t, double x_max);

// The paper's tangent-point choice (Eq. 3): the mean profile argument
// t* = gamma * S1 / n, clamped into [x_min, x_max].
double GaussianTangentPoint(double gamma, double sum_sq_dist, double count,
                            double x_min, double x_max);

// ---------------------------------------------------------------------------
// Distance-argument kernels, bounds of form a*x^2 + c (QUAD, §5 and §9.6),
// with x = gamma*dist so that x^2 aggregates via S1 in O(d).
// ---------------------------------------------------------------------------

// Triangular max(1-x, 0): concave-through-endpoints upper bound (§5.2.1).
// Requires x_max > x_min.
QuadraticCoeffs TriangularQuadUpper(double x_min, double x_max);

// Triangular lower bound (Theorem 2): parameterized by the mean squared
// argument m2 = (gamma^2 * S1) / n > 0; the optimal a_l* = -1/(2*sqrt(m2)).
QuadraticCoeffs TriangularQuadLower(double mean_sq_x);

// Cosine cos(x) on [0, pi/2]: upper through both endpoints (Lemma 9);
// requires 0 <= x_min < x_max <= pi/2.
QuadraticCoeffs CosineQuadUpper(double x_min, double x_max);

// Cosine lower: slope-matching at x_max (Lemma 10); requires
// 0 < x_max <= pi/2. Also valid for x > pi/2 where cos is clamped to 0,
// because the bound is <= 0 there.
QuadraticCoeffs CosineQuadLower(double x_max);

// Exponential exp(-x), x = gamma*dist: upper through both endpoints
// (Lemma 11); requires x_max > x_min.
QuadraticCoeffs ExponentialQuadUpper(double x_min, double x_max);

// Exponential lower: tangent-point form (Lemma 12); requires t > 0.
QuadraticCoeffs ExponentialQuadLower(double t);

// Eq. 18 tangent point for the exponential kernel:
// t* = sqrt(gamma^2 * S1 / n), clamped into [x_min, x_max].
double ExponentialTangentPoint(double gamma, double sum_sq_dist, double count,
                               double x_min, double x_max);

}  // namespace kdv

#endif  // QUADKDV_BOUNDS_PROFILE_H_
