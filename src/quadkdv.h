// Umbrella header: the full public API of the QUAD KDV library.
//
// Typical usage:
//
//   #include "quadkdv.h"
//
//   kdv::PointSet pts = kdv::GenerateMixture(kdv::CrimeSpec(0.05));
//   kdv::Workbench bench(std::move(pts), kdv::KernelType::kGaussian);
//   kdv::KdeEvaluator quad = bench.MakeEvaluator(kdv::Method::kQuad);
//   kdv::PixelGrid grid(640, 480, bench.data_bounds());
//   kdv::DensityFrame f = kdv::RenderEpsFrame(quad, grid, 0.01, nullptr);
//   kdv::RenderHeatMap(f).WritePpm("hotspots.ppm");
#ifndef QUADKDV_QUADKDV_H_
#define QUADKDV_QUADKDV_H_

#include "approx/grid_kde.h"
#include "bounds/node_bounds.h"
#include "bounds/profile.h"
#include "classify/kde_classifier.h"
#include "core/evaluator.h"
#include "core/leaf_kernel.h"
#include "core/refinement_stream.h"
#include "core/kdv_runner.h"
#include "data/datasets.h"
#include "data/validate.h"
#include "dynamic/dynamic_kdv.h"
#include "geom/morton.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "index/journal.h"
#include "index/kdtree.h"
#include "index/manifest.h"
#include "index/node_stats.h"
#include "index/serialization.h"
#include "kernel/bandwidth.h"
#include "kernel/kernel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "progressive/progressive.h"
#include "regress/kernel_regressor.h"
#include "regress/weighted_bounds.h"
#include "regress/weighted_stats.h"
#include "sampling/zorder.h"
#include "serve/health.h"
#include "serve/recovery_manager.h"
#include "serve/overload_governor.h"
#include "serve/render_service.h"
#include "serve/resilient_renderer.h"
#include "serve/scrubber.h"
#include "serve/watchdog.h"
#include "sim/fault_schedule.h"
#include "sim/sim_clock.h"
#include "sim/sim_env.h"
#include "sim/sim_executor.h"
#include "stats/density_stats.h"
#include "stats/pca.h"
#include "util/atomic_file.h"
#include "util/backoff.h"
#include "util/build_info.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/crc32.h"
#include "util/csv.h"
#include "util/json_writer.h"
#include "util/mem_budget.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "viz/block_tau.h"
#include "viz/color_map.h"
#include "viz/frame.h"
#include "viz/parallel_render.h"
#include "viz/pixel_grid.h"
#include "viz/render.h"
#include "workbench/workbench.h"

#endif  // QUADKDV_QUADKDV_H_
