// Grid-convolution KDE — the "function approximation" camp of the paper's
// Table 2 (fast Gauss transform descendants, Raykar et al. / Yang et al.).
//
// Points are binned onto a G x G grid; a query's density is approximated by
// summing count(cell) * K(q, cell_center) over cells within the kernel's
// truncation radius. Fast and simple, but the result carries NO error
// guarantee (binning + truncation error is unbounded relative to ε at
// low-density pixels) — which is precisely why the paper's εKDV/τKDV
// problem statements exclude this camp. Included as a baseline to
// demonstrate that trade-off.
#ifndef QUADKDV_APPROX_GRID_KDE_H_
#define QUADKDV_APPROX_GRID_KDE_H_

#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "kernel/kernel.h"
#include "viz/frame.h"
#include "viz/pixel_grid.h"

namespace kdv {

// Thread safety: the binned grid is built in the constructor and only read
// afterwards (all query methods are const with no caching), so one GridKde
// may be shared across threads. In practice the serving path builds a fresh
// per-request instance instead — construction is cheap relative to a frame.
class GridKde {
 public:
  struct Options {
    int grid_size = 256;        // cells per axis
    double truncation = 1e-4;   // drop kernel contributions below this value
    // Convolve the binned counts onto the grid once at construction and
    // answer Evaluate/RenderFrame by bilinear interpolation of that table.
    // Queries become O(1) instead of O(occupied cells in the truncation
    // window) — the serve layer's brownout tier turns this on (behind its
    // per-epoch cache) so a browned-out service pays the convolution once,
    // not per frame. Trade-offs: construction costs ~grid_size^2 direct
    // evaluations, and queries outside the domain clamp to the boundary
    // cell instead of decaying to zero.
    bool precompute = false;
  };

  // Bins `points` over `domain` (points outside the domain are clamped to
  // its boundary cells). 2-d only.
  GridKde(const PointSet& points, const KernelParams& params,
          const Rect& domain, const Options& options);

  // Approximate density at q (no guarantee).
  double Evaluate(const Point& q) const;

  // Approximate densities for a whole frame.
  DensityFrame RenderFrame(const PixelGrid& grid) const;

  int grid_size() const { return grid_size_; }

  // Truncation radius in data-space units: contributions from farther than
  // this are dropped.
  double truncation_radius() const { return radius_; }

 private:
  Point CellCenter(int cx, int cy) const;
  // Kernel sum over occupied cells in the truncation window around q.
  double EvaluateDirect(const Point& q) const;

  KernelParams params_;
  Rect domain_;
  int grid_size_;
  double radius_;
  // Occupied cells only, CSR-style: row cy's cells are col_[row_start_[cy]
  // .. row_start_[cy+1]), sorted by cx, with their counts alongside. A wide
  // truncation radius makes Evaluate's window cover most of the grid, and a
  // dense row-major scan would walk tens of thousands of empty cells per
  // pixel; iterating only occupied cells (in the same row-major order, so
  // the kernel sum is bit-identical) makes the cost proportional to the
  // data, not the grid.
  std::vector<int> row_start_;   // grid_size + 1 entries
  std::vector<int> col_;         // cx per occupied cell
  std::vector<double> counts_;   // bin count per occupied cell
  // Density at every cell center, row-major; empty unless
  // Options::precompute. Queries bilinearly interpolate this table.
  std::vector<double> table_;
};

}  // namespace kdv

#endif  // QUADKDV_APPROX_GRID_KDE_H_
