// Grid-convolution KDE — the "function approximation" camp of the paper's
// Table 2 (fast Gauss transform descendants, Raykar et al. / Yang et al.).
//
// Points are binned onto a G x G grid; a query's density is approximated by
// summing count(cell) * K(q, cell_center) over cells within the kernel's
// truncation radius. Fast and simple, but the result carries NO error
// guarantee (binning + truncation error is unbounded relative to ε at
// low-density pixels) — which is precisely why the paper's εKDV/τKDV
// problem statements exclude this camp. Included as a baseline to
// demonstrate that trade-off.
#ifndef QUADKDV_APPROX_GRID_KDE_H_
#define QUADKDV_APPROX_GRID_KDE_H_

#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "kernel/kernel.h"
#include "viz/frame.h"
#include "viz/pixel_grid.h"

namespace kdv {

// Thread safety: the binned grid is built in the constructor and only read
// afterwards (all query methods are const with no caching), so one GridKde
// may be shared across threads. In practice the serving path builds a fresh
// per-request instance instead — construction is cheap relative to a frame.
class GridKde {
 public:
  struct Options {
    int grid_size = 256;        // cells per axis
    double truncation = 1e-4;   // drop kernel contributions below this value
  };

  // Bins `points` over `domain` (points outside the domain are clamped to
  // its boundary cells). 2-d only.
  GridKde(const PointSet& points, const KernelParams& params,
          const Rect& domain, const Options& options);

  // Approximate density at q (no guarantee).
  double Evaluate(const Point& q) const;

  // Approximate densities for a whole frame.
  DensityFrame RenderFrame(const PixelGrid& grid) const;

  int grid_size() const { return grid_size_; }

  // Truncation radius in data-space units: contributions from farther than
  // this are dropped.
  double truncation_radius() const { return radius_; }

 private:
  Point CellCenter(int cx, int cy) const;

  KernelParams params_;
  Rect domain_;
  int grid_size_;
  double radius_;
  std::vector<double> counts_;  // grid_size^2 bin counts, row-major
};

}  // namespace kdv

#endif  // QUADKDV_APPROX_GRID_KDE_H_
