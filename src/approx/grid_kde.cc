#include "approx/grid_kde.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kdv {

namespace {

// Distance beyond which K(x(dist)) < truncation, in data-space units.
double TruncationRadius(const KernelParams& params, double truncation) {
  KDV_CHECK(truncation > 0.0 && truncation < 1.0);
  if (HasFiniteSupport(params.type)) {
    return SupportEdge(params.type) / params.gamma;
  }
  // exp(-x) < t  <=>  x > ln(1/t).
  double x_cut = std::log(1.0 / truncation);
  if (UsesSquaredDistanceArgument(params.type)) {
    return std::sqrt(x_cut / params.gamma);  // x = gamma * d^2
  }
  return x_cut / params.gamma;  // x = gamma * d
}

}  // namespace

GridKde::GridKde(const PointSet& points, const KernelParams& params,
                 const Rect& domain, const Options& options)
    : params_(params), domain_(domain),
      grid_size_(std::max(options.grid_size, 1)),
      radius_(TruncationRadius(params, options.truncation)),
      counts_(static_cast<size_t>(grid_size_) * grid_size_, 0.0) {
  KDV_CHECK(domain_.dim() >= 2);
  for (const Point& p : points) {
    int cx = 0, cy = 0;
    for (int axis = 0; axis < 2; ++axis) {
      double len = domain_.Length(axis);
      double t = len > 0.0 ? (p[axis] - domain_.lo(axis)) / len : 0.5;
      int c = static_cast<int>(std::clamp(t, 0.0, 1.0) * grid_size_);
      c = std::min(c, grid_size_ - 1);
      (axis == 0 ? cx : cy) = c;
    }
    counts_[static_cast<size_t>(cy) * grid_size_ + cx] += 1.0;
  }
}

Point GridKde::CellCenter(int cx, int cy) const {
  Point p(2);
  p[0] = domain_.lo(0) + (cx + 0.5) * domain_.Length(0) / grid_size_;
  p[1] = domain_.lo(1) + (cy + 0.5) * domain_.Length(1) / grid_size_;
  return p;
}

double GridKde::Evaluate(const Point& q) const {
  // Cell ranges overlapping the truncation disc around q.
  const double cell_w = domain_.Length(0) / grid_size_;
  const double cell_h = domain_.Length(1) / grid_size_;
  auto cell_range = [this](double lo, double q_coord, double cell_len,
                           double radius) {
    int first = 0, last = grid_size_ - 1;
    if (cell_len > 0.0) {
      first = std::max(
          0, static_cast<int>((q_coord - radius - lo) / cell_len) - 1);
      last = std::min(grid_size_ - 1,
                      static_cast<int>((q_coord + radius - lo) / cell_len) +
                          1);
    }
    return std::make_pair(first, last);
  };
  auto [x0, x1] = cell_range(domain_.lo(0), q[0], cell_w, radius_);
  auto [y0, y1] = cell_range(domain_.lo(1), q[1], cell_h, radius_);

  const double radius_sq = radius_ * radius_;
  double sum = 0.0;
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      double c = counts_[static_cast<size_t>(cy) * grid_size_ + cx];
      if (c == 0.0) continue;
      double d_sq = SquaredDistance(q, CellCenter(cx, cy));
      if (d_sq > radius_sq) continue;
      sum += c * params_.EvalSquaredDistance(d_sq);
    }
  }
  return params_.weight * sum;
}

DensityFrame GridKde::RenderFrame(const PixelGrid& grid) const {
  DensityFrame frame(grid.width(), grid.height());
  for (int py = 0; py < grid.height(); ++py) {
    for (int px = 0; px < grid.width(); ++px) {
      frame.at(px, py) = Evaluate(grid.PixelCenter(px, py));
    }
  }
  return frame;
}

}  // namespace kdv
