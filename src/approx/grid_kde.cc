#include "approx/grid_kde.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kdv {

namespace {

// Distance beyond which K(x(dist)) < truncation, in data-space units.
double TruncationRadius(const KernelParams& params, double truncation) {
  KDV_CHECK(truncation > 0.0 && truncation < 1.0);
  if (HasFiniteSupport(params.type)) {
    return SupportEdge(params.type) / params.gamma;
  }
  // exp(-x) < t  <=>  x > ln(1/t).
  double x_cut = std::log(1.0 / truncation);
  if (UsesSquaredDistanceArgument(params.type)) {
    return std::sqrt(x_cut / params.gamma);  // x = gamma * d^2
  }
  return x_cut / params.gamma;  // x = gamma * d
}

}  // namespace

GridKde::GridKde(const PointSet& points, const KernelParams& params,
                 const Rect& domain, const Options& options)
    : params_(params), domain_(domain),
      grid_size_(std::max(options.grid_size, 1)),
      radius_(TruncationRadius(params, options.truncation)) {
  KDV_CHECK(domain_.dim() >= 2);
  // Bin densely first, then compress to occupied cells (see header).
  std::vector<double> dense(static_cast<size_t>(grid_size_) * grid_size_,
                            0.0);
  for (const Point& p : points) {
    int cx = 0, cy = 0;
    for (int axis = 0; axis < 2; ++axis) {
      double len = domain_.Length(axis);
      double t = len > 0.0 ? (p[axis] - domain_.lo(axis)) / len : 0.5;
      int c = static_cast<int>(std::clamp(t, 0.0, 1.0) * grid_size_);
      c = std::min(c, grid_size_ - 1);
      (axis == 0 ? cx : cy) = c;
    }
    dense[static_cast<size_t>(cy) * grid_size_ + cx] += 1.0;
  }
  row_start_.reserve(static_cast<size_t>(grid_size_) + 1);
  row_start_.push_back(0);
  for (int cy = 0; cy < grid_size_; ++cy) {
    for (int cx = 0; cx < grid_size_; ++cx) {
      double c = dense[static_cast<size_t>(cy) * grid_size_ + cx];
      if (c == 0.0) continue;
      col_.push_back(cx);
      counts_.push_back(c);
    }
    row_start_.push_back(static_cast<int>(col_.size()));
  }
  if (options.precompute) {
    // Convolve once: density at every cell center, so queries are O(1)
    // bilinear lookups. Costs grid^2 direct evaluations up front — callers
    // that render many frames per dataset (the serve brownout tier, behind
    // its per-epoch cache) amortize it; one-shot callers should leave
    // precompute off.
    table_.resize(static_cast<size_t>(grid_size_) * grid_size_);
    for (int cy = 0; cy < grid_size_; ++cy) {
      for (int cx = 0; cx < grid_size_; ++cx) {
        table_[static_cast<size_t>(cy) * grid_size_ + cx] =
            EvaluateDirect(CellCenter(cx, cy));
      }
    }
  }
}

Point GridKde::CellCenter(int cx, int cy) const {
  Point p(2);
  p[0] = domain_.lo(0) + (cx + 0.5) * domain_.Length(0) / grid_size_;
  p[1] = domain_.lo(1) + (cy + 0.5) * domain_.Length(1) / grid_size_;
  return p;
}

double GridKde::Evaluate(const Point& q) const {
  if (table_.empty()) return EvaluateDirect(q);
  // Bilinear interpolation between the four nearest cell centers; queries
  // outside the domain clamp to the boundary cells.
  auto axis_coord = [this](double q_coord, int axis, int* i0, double* frac) {
    const double len = domain_.Length(axis);
    const double u =
        len > 0.0
            ? (q_coord - domain_.lo(axis)) / len * grid_size_ - 0.5
            : 0.0;
    const double clamped =
        std::clamp(u, 0.0, static_cast<double>(grid_size_ - 1));
    *i0 = std::min(static_cast<int>(clamped), grid_size_ - 2);
    if (*i0 < 0) *i0 = 0;  // grid_size_ == 1
    *frac = std::clamp(clamped - *i0, 0.0, 1.0);
  };
  int x0 = 0, y0 = 0;
  double fx = 0.0, fy = 0.0;
  axis_coord(q[0], 0, &x0, &fx);
  axis_coord(q[1], 1, &y0, &fy);
  const int x1 = std::min(x0 + 1, grid_size_ - 1);
  const int y1 = std::min(y0 + 1, grid_size_ - 1);
  auto at = [this](int cx, int cy) {
    return table_[static_cast<size_t>(cy) * grid_size_ + cx];
  };
  const double top = at(x0, y0) + fx * (at(x1, y0) - at(x0, y0));
  const double bot = at(x0, y1) + fx * (at(x1, y1) - at(x0, y1));
  return top + fy * (bot - top);
}

double GridKde::EvaluateDirect(const Point& q) const {
  // Cell ranges overlapping the truncation disc around q.
  const double cell_w = domain_.Length(0) / grid_size_;
  const double cell_h = domain_.Length(1) / grid_size_;
  auto cell_range = [this](double lo, double q_coord, double cell_len,
                           double radius) {
    int first = 0, last = grid_size_ - 1;
    if (cell_len > 0.0) {
      first = std::max(
          0, static_cast<int>((q_coord - radius - lo) / cell_len) - 1);
      last = std::min(grid_size_ - 1,
                      static_cast<int>((q_coord + radius - lo) / cell_len) +
                          1);
    }
    return std::make_pair(first, last);
  };
  auto [x0, x1] = cell_range(domain_.lo(0), q[0], cell_w, radius_);
  auto [y0, y1] = cell_range(domain_.lo(1), q[1], cell_h, radius_);

  const double radius_sq = radius_ * radius_;
  double sum = 0.0;
  for (int cy = y0; cy <= y1; ++cy) {
    const int row_begin = row_start_[cy];
    const int row_end = row_start_[cy + 1];
    // First occupied cell in this row with cx >= x0.
    const int* first = std::lower_bound(col_.data() + row_begin,
                                        col_.data() + row_end, x0);
    for (int i = static_cast<int>(first - col_.data()); i < row_end; ++i) {
      const int cx = col_[i];
      if (cx > x1) break;
      double d_sq = SquaredDistance(q, CellCenter(cx, cy));
      if (d_sq > radius_sq) continue;
      sum += counts_[i] * params_.EvalSquaredDistance(d_sq);
    }
  }
  return params_.weight * sum;
}

DensityFrame GridKde::RenderFrame(const PixelGrid& grid) const {
  DensityFrame frame(grid.width(), grid.height());
  for (int py = 0; py < grid.height(); ++py) {
    for (int px = 0; px < grid.width(); ++px) {
      frame.at(px, py) = Evaluate(grid.PixelCenter(px, py));
    }
  }
  return frame;
}

}  // namespace kdv
