#include "sim/sim_env.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "data/datasets.h"
#include "geom/rect.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/recovery_manager.h"
#include "serve/render_service.h"
#include "serve/scrubber.h"
#include "sim/sim_clock.h"
#include "sim/sim_executor.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "viz/pixel_grid.h"
#include "workbench/workbench.h"

namespace kdv {

namespace {

uint64_t SplitMix(uint64_t* state) {
  uint64_t x = (*state += 0x9E3779B97F4A7C15ull);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from 53 random bits.
double UnitDouble(uint64_t* state) {
  return static_cast<double>(SplitMix(state) >> 11) * 0x1.0p-53;
}

bool PointLess(const Point& a, const Point& b) {
  if (a.dim() != b.dim()) return a.dim() < b.dim();
  for (int i = 0; i < a.dim(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

bool PointSetsEqual(PointSet a, PointSet b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end(), PointLess);
  std::sort(b.begin(), b.end(), PointLess);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].dim() != b[i].dim()) return false;
    for (int d = 0; d < a[i].dim(); ++d) {
      if (a[i][d] != b[i][d]) return false;
    }
  }
  return true;
}

const char* TierName(QualityTier tier) { return QualityTierName(tier); }

// One published evaluator generation, kept alive for the whole run: an
// in-flight render may finish on an old epoch long after a newer one was
// published (or the state it came from was crashed away), so epochs are
// decoupled from the crashable persistence state on purpose.
struct EpochCtx {
  explicit EpochCtx(PointSet points)
      : bench(std::move(points), KernelType::kGaussian),
        eval(bench.MakeEvaluator(Method::kQuad)) {}
  Workbench bench;
  KdeEvaluator eval;
};

struct PendingRequest {
  uint64_t id = 0;
  std::future<ServeOutcome> future;
  double eps = 0.05;
  double budget = -1.0;
  bool checked = false;
};

class SimEnv {
 public:
  explicit SimEnv(const SimOptions& options)
      : options_(options),
        rng_(options.seed ^ 0x51E57A7E5EEDull),
        clock_(0.0),
        executor_(&clock_, MakeExecutorOptions(options)),
        grid_(6, 6, UnitSquare()) {}

  SimReport Run();

 private:
  static SimExecutor::Options MakeExecutorOptions(const SimOptions& o) {
    SimExecutor::Options eo;
    eo.num_workers = o.num_workers;
    eo.max_queue = o.max_queue;
    eo.seed = o.seed ^ 0xE8EC0704Bull;
    return eo;
  }

  static Rect UnitSquare() {
    Rect r(2);
    r.set_lo(0, 0.0);
    r.set_hi(0, 1.0);
    r.set_lo(1, 0.0);
    r.set_hi(1, 1.0);
    return r;
  }

  uint64_t Rand() { return SplitMix(&rng_); }

  void Log(const std::string& line) {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "t=%.6f op=%llu ",
                  clock_.NowSeconds(),
                  static_cast<unsigned long long>(report_.ops));
    report_.events.push_back(prefix + line);
  }

  void Fail(const std::string& why) {
    if (report_.failed) return;
    report_.failed = true;
    report_.failure = why;
    Log("FAIL " + why);
  }

  Status SetUp();
  void TearDown();
  void PublishEpoch(const char* cause);
  Status CrashRecover(const char* cause);

  void OpSubmit();
  void OpTick();
  void OpPump(bool final_drain);
  void OpJournalAppend();
  void OpCheckpoint();
  void OpSwap();
  void ArmDueFaults(int op_index);
  void CheckOutcome(PendingRequest* req, const ServeOutcome& outcome);
  void CheckTransitionLogs();

  const SimOptions options_;
  SimReport report_;
  uint64_t rng_;

  SimClock clock_;
  SimExecutor executor_;
  PixelGrid grid_;

  std::string state_dir_;
  RecoveryOptions recovery_options_;
  RecoveredState state_;
  PointSet acked_;  // every write the journal acknowledged (plus bootstrap)
  // The last failed append's batch. An unacknowledged append is
  // indeterminate, not guaranteed-absent: a fault after the record hit the
  // file (a failed fsync, say) persists the data, and replay legitimately
  // resurrects it. Cleared once recovery adjudicates.
  PointSet indeterminate_;

  std::vector<std::unique_ptr<EpochCtx>> epochs_;  // index i <-> epoch id i+1
  std::unique_ptr<RenderService> service_;
  std::unique_ptr<IntegrityScrubber> scrubber_;

  FaultSchedule schedule_;
  size_t next_fault_ = 0;

  std::vector<PendingRequest> pending_;
  std::set<uint64_t> completed_ids_;
  uint64_t next_request_id_ = 1;
  bool bug_planted_ = false;
};

Status SimEnv::SetUp() {
  failpoint::Reset();

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path root = options_.state_root.empty()
                      ? fs::temp_directory_path(ec)
                      : fs::path(options_.state_root);
  state_dir_ =
      (root / ("kdvsim-" + std::to_string(options_.seed))).string();
  fs::remove_all(state_dir_, ec);
  fs::create_directories(state_dir_, ec);
  if (ec) {
    return InternalError("cannot create sim state dir " + state_dir_ + ": " +
                         ec.message());
  }

  // Deterministic bootstrap dataset in the unit square.
  MixtureSpec spec;
  spec.name = "sim";
  spec.n = static_cast<size_t>(std::max(8, options_.dataset_n));
  spec.dim = 2;
  spec.num_clusters = 4;
  spec.seed = options_.seed ^ 0xDA7A5E7ull;
  PointSet base = GenerateMixture(spec);
  NormalizeToUnitCube(&base);

  recovery_options_.state_dir = state_dir_;
  recovery_options_.leaf_size = 16;
  StatusOr<RecoveredState> boot =
      RecoveryManager::Bootstrap(recovery_options_, std::move(base));
  if (!boot.ok()) return boot.status();
  state_ = std::move(*boot);
  acked_ = state_.live_points;

  RenderService::Options so;
  so.num_threads = options_.num_workers;
  so.max_queue = options_.max_queue;
  so.max_attempts = 3;
  so.backoff.initial_ms = 1.0;
  so.backoff.max_ms = 16.0;
  so.backoff_seed = options_.seed ^ 0xBAC0FFull;
  so.breaker.failure_threshold = 3;
  so.breaker.cooldown_seconds = 0.2;
  so.clock = &clock_;
  so.executor = &executor_;
  so.governor.enabled = true;
  so.governor.memory_budget_bytes = 0;  // real RSS is not deterministic
  so.watchdog.enabled = true;
  so.watchdog.start_monitor = false;  // the driver sweeps at tick points
  so.watchdog.no_progress_seconds = 0.5;
  so.watchdog.no_budget_kill_seconds = 5.0;
  service_ = std::make_unique<RenderService>(so);

  PublishEpoch("bootstrap");

  IntegrityScrubber::Options sc;
  sc.enabled = true;
  sc.index_path = "";  // CRC sweep reads real files; keep the sim in-memory
  sc.pixel_samples_per_tick = 2;
  sc.pixel_eps = 0.05;
  sc.seed = options_.seed ^ 0x5C2BBEull;
  sc.clock = &clock_;
  scrubber_ = std::make_unique<IntegrityScrubber>(
      sc, [this]() { return service_->CurrentEvaluator(); },
      [this](const std::string& reason) {
        Log("scrub.corruption reason=" + reason);
        return CrashRecover("scrub");
      });
  // Never Start(): RunTick() is driven from tick ops, like the watchdog.

  schedule_ = options_.schedule_override != nullptr
                  ? *options_.schedule_override
                  : DeriveFaultSchedule(options_.seed, options_.num_ops);
  report_.schedule = schedule_;
  return OkStatus();
}

void SimEnv::TearDown() {
  scrubber_.reset();
  if (service_ != nullptr) service_->Stop();
  service_.reset();
  state_ = RecoveredState();
  failpoint::Reset();
  std::error_code ec;
  std::filesystem::remove_all(state_dir_, ec);
}

void SimEnv::PublishEpoch(const char* cause) {
  epochs_.push_back(std::make_unique<EpochCtx>(state_.live_points));
  service_->SwapEvaluator(&epochs_.back()->eval);
  ++report_.swaps;
  char line[96];
  std::snprintf(line, sizeof(line), "swap epoch=%zu points=%zu cause=%s",
                epochs_.size(), state_.live_points.size(), cause);
  Log(line);
}

// Simulated crash of the persistence layer: drop every in-memory handle
// (open journal fd included — an unsynced tail is exactly what a real crash
// leaves), then run full recovery against the directory and hot-swap the
// recovered dataset in. The service keeps serving throughout; in-flight
// renders finish on their snapshotted epochs.
Status SimEnv::CrashRecover(const char* cause) {
  ++report_.crashes;
  service_->SetHealth(ServiceHealth::kRecovering);
  state_.journal.reset();
  state_.tree.reset();

  RecoveryReport recovery;
  StatusOr<RecoveredState> rec =
      RecoveryManager::Recover(recovery_options_, &recovery);
  if (!rec.ok()) {
    // A fault injected *during* recovery is legitimate chaos, and "crash
    // during recovery is just another recovery": clear the transient and
    // retry once. A second failure is a real recovery bug.
    Log(std::string("recover retry after: ") + rec.status().message());
    failpoint::Reset();
    rec = RecoveryManager::Recover(recovery_options_, &recovery);
  }
  if (!rec.ok()) {
    Fail(std::string("recovery failed after crash (") + cause +
         "): " + rec.status().message());
    return rec.status();
  }
  state_ = std::move(*rec);

  char line[160];
  std::snprintf(line, sizeof(line),
                "recover cause=%s source=%s gen=%llu replayed=%llu torn=%d "
                "quarantined=%zu",
                cause, RecoverySourceName(recovery.source),
                static_cast<unsigned long long>(recovery.generation),
                static_cast<unsigned long long>(
                    recovery.journal_stats.records_applied),
                recovery.journal_stats.tail_truncated ? 1 : 0,
                recovery.quarantined.size());
  Log(line);

  // Crash atomicity: what recovery serves must be exactly the acknowledged
  // writes. Data loss is only legal when recovery itself declared it (and
  // nothing in the crash fault model should make it).
  if (recovery.possible_data_loss) {
    Fail("recovery declared possible data loss under crash-only faults");
  } else if (!PointSetsEqual(state_.live_points, acked_)) {
    // Not the acked set exactly — the one legal alternative is the acked
    // set plus the single indeterminate batch (an append that failed after
    // its record was durably written). Journal records are atomic under
    // replay, so the batch must appear whole or not at all; anything else
    // is a real crash-atomicity violation.
    bool resurrected_whole = false;
    if (!indeterminate_.empty()) {
      PointSet with_batch = acked_;
      for (const Point& p : indeterminate_) with_batch.push_back(p);
      resurrected_whole = PointSetsEqual(state_.live_points, with_batch);
    }
    if (!resurrected_whole) {
      char why[128];
      std::snprintf(why, sizeof(why),
                    "recovered point set (%zu) != acknowledged set (%zu, "
                    "%zu indeterminate)",
                    state_.live_points.size(), acked_.size(),
                    indeterminate_.size());
      Fail(why);
    }
  }
  acked_ = state_.live_points;
  indeterminate_.clear();

  PublishEpoch(cause);
  return OkStatus();
}

void SimEnv::ArmDueFaults(int op_index) {
  while (next_fault_ < schedule_.events.size() &&
         schedule_.events[next_fault_].at_op <= op_index) {
    const FaultEvent& e = schedule_.events[next_fault_++];
    if (options_.faults_enabled) {
      Status armed = failpoint::Arm(e.site, e.action, e.delay_ms, e.max_hits);
      if (!armed.ok()) {
        Fail("failpoint arm failed: " + armed.message());
        return;
      }
      ++report_.faults_armed;
    }
    char line[128];
    std::snprintf(line, sizeof(line), "fault site=%s hits=%d delay=%d",
                  e.site.c_str(), e.max_hits, e.delay_ms);
    Log(line);
  }
}

void SimEnv::OpSubmit() {
  ++report_.submits;
  ServeRequestOptions req;
  req.eps = 0.05;
  switch (Rand() % 4) {
    case 0:
      req.budget_seconds = -1.0;
      break;
    case 1:
      req.budget_seconds = 0.05;
      break;
    case 2:
      req.budget_seconds = 0.2;
      break;
    default:
      req.budget_seconds = 0.5;
      break;
  }
  req.degrade = (Rand() % 5) != 0;

  StatusOr<std::future<ServeOutcome>> sub = service_->Submit(grid_, req);
  const uint64_t id = next_request_id_++;
  char line[128];
  if (!sub.ok()) {
    std::snprintf(line, sizeof(line), "submit id=%llu -> shed code=%d",
                  static_cast<unsigned long long>(id),
                  static_cast<int>(sub.status().code()));
    Log(line);
    // Admission may only shed (queue/in-flight/governor full). kUnavailable
    // would mean the service lost its published evaluator mid-run.
    if (sub.status().code() != StatusCode::kResourceExhausted) {
      Fail("submit rejected with illegal code " +
           std::to_string(static_cast<int>(sub.status().code())));
    }
    return;
  }
  ++report_.admitted;
  std::snprintf(line, sizeof(line), "submit id=%llu budget=%.3f degrade=%d",
                static_cast<unsigned long long>(id), req.budget_seconds,
                req.degrade ? 1 : 0);
  Log(line);
  PendingRequest pending;
  pending.id = id;
  pending.future = std::move(*sub);
  pending.eps = req.eps;
  pending.budget = req.budget_seconds;
  pending_.push_back(std::move(pending));
}

void SimEnv::OpTick() {
  const double dt = 0.005 + static_cast<double>(Rand() % 100) * 0.001;
  executor_.AdvanceUntil(clock_.NowSeconds() + dt);
  const int kills = service_->WatchdogSweepOnce();
  Status scrub = scrubber_->RunTick();
  char line[96];
  std::snprintf(line, sizeof(line), "tick dt=%.3f kills=%d scrub=%d", dt,
                kills, static_cast<int>(scrub.code()));
  Log(line);
}

void SimEnv::OpPump(bool final_drain) {
  if (!final_drain) executor_.RunReady();
  for (PendingRequest& req : pending_) {
    if (req.checked) continue;
    if (req.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      if (final_drain) {
        Fail("lost request: future " + std::to_string(req.id) +
             " unresolved after drain");
        req.checked = true;
      }
      continue;
    }
    ServeOutcome outcome = req.future.get();
    req.checked = true;
    CheckOutcome(&req, outcome);
  }
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [](const PendingRequest& r) {
                                  return r.checked;
                                }),
                 pending_.end());
}

void SimEnv::CheckOutcome(PendingRequest* req, const ServeOutcome& outcome) {
  ++report_.completions;
  char line[160];
  std::snprintf(line, sizeof(line),
                "complete id=%llu code=%d tier=%s epoch=%llu attempts=%d",
                static_cast<unsigned long long>(req->id),
                static_cast<int>(outcome.status.code()),
                TierName(outcome.render.tier),
                static_cast<unsigned long long>(outcome.epoch),
                outcome.attempts);
  Log(line);

  if (!completed_ids_.insert(req->id).second) {
    Fail("request " + std::to_string(req->id) + " completed twice");
    return;
  }

  switch (outcome.status.code()) {
    case StatusCode::kOk:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:
      break;
    default:
      Fail("outcome carries illegal status code " +
           std::to_string(static_cast<int>(outcome.status.code())));
      return;
  }

  const DensityFrame& frame = outcome.render.frame;
  if (frame.width != grid_.width() || frame.height != grid_.height()) {
    Fail("frame has wrong dimensions");
    return;
  }
  for (double v : frame.values) {
    if (!std::isfinite(v)) {
      Fail("frame contains a non-finite value");
      return;
    }
  }

  if (outcome.render.tier == QualityTier::kCertified &&
      outcome.status.ok() && outcome.render.certified_eps >= 0 &&
      outcome.render.numeric_faults == 0) {
    ++report_.certified;
    if (outcome.epoch == 0 || outcome.epoch > epochs_.size()) {
      Fail("certified outcome names unknown epoch " +
           std::to_string(outcome.epoch));
      return;
    }
    // ε-oracle: sampled pixels of a certified frame must match the exact
    // density of the epoch they rendered on, within the certified relative
    // ε (paper guarantee |R - F| <= ε·F), plus float-order slack.
    const KdeEvaluator& eval = epochs_[outcome.epoch - 1]->eval;
    const double eps = outcome.render.certified_eps;
    for (int s = 0; s < 3; ++s) {
      const int px = static_cast<int>(Rand() % grid_.width());
      const int py = static_cast<int>(Rand() % grid_.height());
      const double value = frame.values[grid_.PixelIndex(px, py)];
      const double exact = eval.EvaluateExact(grid_.PixelCenter(px, py));
      const double slack = eps * exact + 1e-9 * exact + 1e-12;
      if (std::abs(value - exact) > slack) {
        std::snprintf(line, sizeof(line),
                      "eps oracle violated: pixel (%d,%d) value=%.17g "
                      "exact=%.17g eps=%.3f epoch=%llu",
                      px, py, value, exact, eps,
                      static_cast<unsigned long long>(outcome.epoch));
        Fail(line);
        return;
      }
    }
  } else if (outcome.render.tier != QualityTier::kCertified) {
    ++report_.degraded;
  }
}

void SimEnv::OpJournalAppend() {
  // Insert-only batches keep the acked mirror trivially exact: the live set
  // is bootstrap ∪ acknowledged inserts, whatever order replay applies.
  PointSet batch;
  const int n = 1 + static_cast<int>(Rand() % 4);
  for (int i = 0; i < n; ++i) {
    Point p(2);
    p[0] = UnitDouble(&rng_);
    p[1] = UnitDouble(&rng_);
    batch.push_back(p);
  }
  Status appended = state_.journal->Append(JournalOp::kInsert, batch);
  char line[96];
  std::snprintf(line, sizeof(line), "append n=%d code=%d", n,
                static_cast<int>(appended.code()));
  Log(line);
  if (appended.ok()) {
    ++report_.journal_appends;
    for (const Point& p : batch) {
      acked_.push_back(p);
      state_.live_points.push_back(p);
    }
    return;
  }
  // A failed durable write is fatal to the writer: the tail may be torn,
  // and appending past a torn record would turn repairable crash damage
  // into mid-segment corruption. Crash and recover instead. The batch was
  // never acknowledged but its durability is indeterminate — recovery may
  // find it whole (fault hit after the write) or not at all.
  indeterminate_ = std::move(batch);
  (void)CrashRecover("append-fault");
}

void SimEnv::OpCheckpoint() {
  Status st = RecoveryManager::RunCheckpoint(&state_);
  char line[96];
  std::snprintf(line, sizeof(line), "checkpoint code=%d gen=%llu",
                static_cast<int>(st.code()),
                static_cast<unsigned long long>(state_.generation));
  Log(line);
  if (st.ok()) {
    ++report_.checkpoints;
    return;
  }
  // A failed checkpoint may have rotated the journal or left temps behind;
  // the in-memory handles are no longer trustworthy. Same policy as a
  // failed append: crash, and let recovery adjudicate what committed.
  (void)CrashRecover("checkpoint-fault");
}

void SimEnv::OpSwap() {
  if (options_.plant_bug && !bug_planted_) {
    // Deliberate bookkeeping bug (the determinism test's canary): claim an
    // in-flight request already completed, so its real completion counts
    // twice. Mimics the classic lost/double-completion race a hot-swap
    // could introduce.
    if (pending_.empty()) OpSubmit();
    if (!pending_.empty()) {
      completed_ids_.insert(pending_.front().id);
      bug_planted_ = true;
    }
  }
  PublishEpoch("swap");
}

SimReport SimEnv::Run() {
  // Install the virtual clock as the process default for the whole run.
  // The serve stack gets its clock plumbed explicitly (Options::clock), but
  // code below that seam — recovery timing, any default-constructed Timer
  // in the obs instrumentation — falls back to CurrentClock(), and a real
  // clock there leaks wall time into duration histograms, breaking the
  // byte-identical-metrics replay contract.
  ScopedClockOverride virtual_time(&clock_);
  // Zero the process-wide metrics so the end-of-run snapshot is a pure
  // function of this run (and of the seed): byte-identical across replays.
  obs::MetricsRegistry::Global().Reset();
  report_.seed = options_.seed;
  report_.num_ops = options_.num_ops;
  report_.num_workers = options_.num_workers;
  report_.max_queue = options_.max_queue;
  report_.dataset_n = options_.dataset_n;
  report_.plant_bug = options_.plant_bug;
  Status up = SetUp();
  if (!up.ok()) {
    Fail("setup: " + up.message());
  } else {
    for (int op = 0; op < options_.num_ops && !report_.failed; ++op) {
      report_.ops = static_cast<uint64_t>(op);
      ArmDueFaults(op);
      if (report_.failed) break;
      const uint64_t roll = Rand() % 100;
      if (roll < 40) {
        OpSubmit();
      } else if (roll < 60) {
        OpTick();
      } else if (roll < 75) {
        OpPump(false);
      } else if (roll < 85) {
        OpJournalAppend();
      } else if (roll < 90) {
        OpCheckpoint();
      } else if (roll < 95) {
        OpSwap();
      } else {
        (void)CrashRecover("chaos");
      }
    }
    report_.ops = static_cast<uint64_t>(options_.num_ops);

    // Drain: stop rejects new work and runs every admitted task to
    // completion on virtual time; afterwards every future must be ready.
    service_->Stop();
    OpPump(true);
    CheckTransitionLogs();

    const ServiceStats stats = service_->stats();
    if (!report_.failed && stats.completed != stats.admitted) {
      Fail("service stats leak: admitted " + std::to_string(stats.admitted) +
           " != completed " + std::to_string(stats.completed));
    }
    if (!report_.failed &&
        completed_ids_.size() != static_cast<size_t>(report_.admitted)) {
      Fail("completion bookkeeping mismatch: " +
           std::to_string(completed_ids_.size()) + " completions for " +
           std::to_string(report_.admitted) + " admissions");
    }
    Log("done");
  }

  report_.virtual_seconds = clock_.NowSeconds();
  uint32_t hash = 0;
  for (const std::string& line : report_.events) {
    hash = Crc32Update(hash, line.data(), line.size());
    hash = Crc32Update(hash, "\n", 1);
  }
  report_.event_hash = hash;

  report_.metrics_text =
      obs::ExportPrometheus(obs::MetricsRegistry::Global().Snapshot());
  report_.metrics_crc = Crc32Update(0, report_.metrics_text.data(),
                                    report_.metrics_text.size());

  TearDown();
  return report_;
}

void SimEnv::CheckTransitionLogs() {
  using BS = CircuitBreaker::State;
  double last = -1.0;
  for (const CircuitBreaker::Transition& t :
       service_->breaker_transitions()) {
    const bool legal = (t.from == BS::kClosed && t.to == BS::kOpen) ||
                       (t.from == BS::kOpen && t.to == BS::kHalfOpen) ||
                       (t.from == BS::kHalfOpen && t.to == BS::kOpen) ||
                       (t.from == BS::kHalfOpen && t.to == BS::kClosed);
    if (!legal) {
      Fail(std::string("illegal breaker transition ") +
           CircuitBreaker::StateName(t.from) + " -> " +
           CircuitBreaker::StateName(t.to));
      return;
    }
    if (t.at_seconds < last) {
      Fail("breaker transition log is not time-ordered");
      return;
    }
    last = t.at_seconds;
  }
  last = -1.0;
  for (const OverloadGovernor::Transition& t :
       service_->governor_transitions()) {
    if (t.from == t.to) {
      Fail("governor recorded a self-transition");
      return;
    }
    if (t.at_seconds < last) {
      Fail("governor transition log is not time-ordered");
      return;
    }
    last = t.at_seconds;
  }
}

}  // namespace

std::string SimReport::Summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "seed=%llu %s hash=%08x ops=%llu submits=%llu/%llu done=%llu "
      "certified=%llu appends=%llu ckpts=%llu swaps=%llu crashes=%llu "
      "faults=%llu vt=%.3fs",
      static_cast<unsigned long long>(seed), failed ? "FAIL" : "ok",
      event_hash, static_cast<unsigned long long>(ops),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(submits),
      static_cast<unsigned long long>(completions),
      static_cast<unsigned long long>(certified),
      static_cast<unsigned long long>(journal_appends),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(swaps),
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(faults_armed), virtual_seconds);
  return buf;
}

std::string SimReport::ReproLine() const {
  const SimOptions defaults;
  std::string line = "kdvtool sim --seed " + std::to_string(seed);
  if (num_ops != defaults.num_ops) {
    line += " --ops " + std::to_string(num_ops);
  }
  if (num_workers != defaults.num_workers) {
    line += " --workers " + std::to_string(num_workers);
  }
  if (max_queue != defaults.max_queue) {
    line += " --queue " + std::to_string(max_queue);
  }
  if (dataset_n != defaults.dataset_n) {
    line += " --n " + std::to_string(dataset_n);
  }
  if (plant_bug) line += " --plant-bug";
  const std::string spec = schedule.Spec();
  if (!spec.empty()) line += " --schedule \"" + spec + "\"";
  return line;
}

SimReport RunSimulation(const SimOptions& options) {
  SimEnv env(options);
  return env.Run();
}

SimReport MinimizeFailure(const SimOptions& options,
                          const SimReport& failing) {
  if (!failing.failed) return failing;
  const FaultSchedule minimal = ShrinkSchedule(
      failing.schedule, [&options](const FaultSchedule& candidate) {
        SimOptions attempt = options;
        attempt.schedule_override = &candidate;
        return RunSimulation(attempt).failed;
      });
  SimOptions final_options = options;
  final_options.schedule_override = &minimal;
  return RunSimulation(final_options);
}

}  // namespace kdv
