// Deterministic cooperative executor: the simulator's ThreadPool stand-in.
//
// SimExecutor implements the Executor contract (util/thread_pool.h) the
// render service and the parallel frame renderers program against, but
// replaces preemptive OS scheduling with FoundationDB-style cooperative
// scheduling: every submitted task runs on its own real thread, yet *at
// most one task executes at any instant*. The scheduler resumes one task,
// waits until it either finishes or parks itself in SimClock::WaitFor (a
// yield point), then consults a seeded PRNG to pick the next runnable
// task. Because the only scheduling decisions are (a) which runnable task
// runs next and (b) how far virtual time jumps — both pure functions of
// the seed and the task set — an entire chaotic multi-"threaded" run
// replays bit-identically from its seed.
//
// The worker-slot model mirrors ThreadPool: at most `num_workers` tasks
// are active (admitted to a slot) concurrently in the simulated sense;
// further admitted tasks wait FIFO in the queue, and TrySubmit sheds with
// kResourceExhausted past max_queue exactly like the real pool, so the
// service's admission control behaves identically under simulation.
//
// Yield points. A task yields only inside SimClock::WaitFor — which is
// where every sleep in the serve stack already goes (retry backoff,
// failpoint delays, watchdog stall loops). A task that blocks on a raw
// condition_variable the scheduler cannot see would deadlock the
// simulation; the serve stack has exactly one such construct (the parallel
// renderer's tile completion latch), which is why the simulator leaves
// Options::tile_executor unset and renders frames serially.
//
// Wakers. TaskWait registers a notify hook on the caller's Waker *before*
// parking, so a Set() from any other task (or the driver) promotes the
// sleeper back to runnable at the current virtual time. A Waker shared by
// several concurrent sleepers keeps only the most recent hook; that is
// fine because hooks are an accelerator, not a correctness mechanism —
// every sleep also carries a finite wake_at the scheduler honors.
//
// Thread safety: TrySubmit and the stat accessors may be called from the
// driver or from a running task. The scheduling surface (RunOneStep /
// RunUntilIdle / AdvanceUntil / Stop) is the driver thread's alone.
#ifndef QUADKDV_SIM_SIM_EXECUTOR_H_
#define QUADKDV_SIM_SIM_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/sim_clock.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace kdv {

class SimExecutor : public Executor {
 public:
  struct Options {
    int num_workers = 2;    // simulated worker slots (clamped to >= 1)
    size_t max_queue = 16;  // tasks waiting beyond the active ones
    uint64_t seed = 1;      // scheduling PRNG seed (xorshift64*)
  };

  // `clock` is the run's virtual clock, borrowed; it must outlive the
  // executor. The executor advances it when every active task is asleep.
  SimExecutor(SimClock* clock, Options options);
  ~SimExecutor() override;  // Stop()

  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  // Executor contract — identical rejection behavior to ThreadPool:
  // kUnavailable after Stop(), kResourceExhausted past max_queue. The task
  // does not start running here; it runs when the scheduler picks it.
  Status TrySubmit(std::function<void()> task) override;

  // Drains every admitted task to completion (advancing virtual time as
  // needed for sleepers), then rejects further submits. Driver thread
  // only; must not be called from a simulated task. Idempotent.
  void Stop() override;

  int num_threads() const override { return num_workers_; }
  size_t queue_depth() const override;
  uint64_t tasks_executed() const override;

  // --- Scheduling surface (driver thread only) ----------------------------

  // Runs one task until its next yield point or completion. When nothing is
  // runnable, advances virtual time to the earliest sleeper's deadline
  // first. Returns false when no task exists to run (queue and slots both
  // empty).
  bool RunOneStep();

  // RunOneStep until it returns false: every admitted task has completed.
  void RunUntilIdle();

  // Advances virtual time to `target_seconds`, executing every task step
  // that becomes due on the way (the simulation's "let dt elapse" op).
  // Steps that need no time advance run first; sleepers are woken in
  // deadline order. On return the clock reads exactly `target_seconds`
  // (or later, if it already did).
  void AdvanceUntil(double target_seconds);

  // Runs only steps that are due *now* — never advances the clock.
  void RunReady();

  // Total scheduling decisions taken (one per task resume). Event-log
  // fodder: two runs of the same seed must agree on this.
  uint64_t steps() const;

  // --- Internal: SimClock::WaitFor routes simulated-task waits here ------
  void TaskWait(double seconds, Waker* waker);

 private:
  struct Task;

  // The running simulated task of the calling thread, or null when the
  // caller is not a simulated task (the driver). SimClock uses this to
  // route WaitFor.
  friend SimExecutor* CurrentSimTaskExecutor();

  Task* PickLocked(bool allow_advance, double advance_limit);
  void ResumeLocked(std::unique_lock<std::mutex>& lock, Task* task);
  bool StepOnce(bool allow_advance, double advance_limit);
  void TaskMain(Task* task);
  void WakeTaskById(uint64_t id);
  uint64_t NextRandom();

  SimClock* const clock_;
  const int num_workers_;
  const size_t max_queue_;

  mutable std::mutex mu_;
  std::condition_variable sched_cv_;  // driver waits for the running task
  std::deque<std::unique_ptr<Task>> queued_;           // admitted, no slot yet
  std::vector<std::unique_ptr<Task>> active_;          // hold a worker slot
  bool stopping_ = false;
  uint64_t next_id_ = 1;
  uint64_t executed_ = 0;
  uint64_t steps_ = 0;
  uint64_t rng_state_;
};

// The SimExecutor scheduling the calling thread's simulated task, or null
// when the caller is the driver (or any non-simulated thread).
SimExecutor* CurrentSimTaskExecutor();

}  // namespace kdv

#endif  // QUADKDV_SIM_SIM_EXECUTOR_H_
