// Seeded fault schedules: which failpoints fire, when, derived from a seed.
//
// A simulation run (sim/sim_env.h) drives a fixed number of virtual
// operations. A FaultSchedule maps operation indexes to failpoint
// activations: "at op 37, arm io.fsync with error for 1 hit". Deriving the
// schedule from the run's seed keeps the whole run a pure function of
// (seed, config) — replaying the seed replays the faults — while the
// textual Spec() round-trip lets a failing schedule be shrunk, printed as
// a repro line, and re-run explicitly with `kdvtool sim --schedule`.
//
// Shrinking: when a seed fails, ShrinkSchedule() greedily drops events
// and re-runs the caller's predicate, keeping each drop that still fails.
// The result is a (locally) minimal schedule — usually one or two events —
// which is what a human wants to read in a bug report.
#ifndef QUADKDV_SIM_FAULT_SCHEDULE_H_
#define QUADKDV_SIM_FAULT_SCHEDULE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/failpoint.h"
#include "util/status.h"

namespace kdv {

// One scheduled activation: at virtual operation `at_op`, arm `site` with
// `action` for `max_hits` hits. Delay actions sleep `delay_ms` of virtual
// time (the failpoint's sleep routes through the simulation clock).
struct FaultEvent {
  int at_op = 0;
  std::string site;
  failpoint::Action action = failpoint::Action::kError;
  int delay_ms = 5;
  int max_hits = 1;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;  // kept sorted by at_op

  // Canonical textual form, one event per ';':
  //   "37:io.fsync=error;52:refine.stall=delay(40,1)"
  // delay carries (delay_ms,max_hits); error/nan carry (max_hits) only when
  // it differs from 1. An empty schedule is "".
  std::string Spec() const;

  // Parses a Spec()-formatted string. Unknown sites, malformed entries, and
  // unknown actions return InvalidArgument.
  static StatusOr<FaultSchedule> Parse(const std::string& spec);
};

// Derives a schedule for a run of `num_ops` operations from `seed`. Roughly
// one event per 40 ops, drawn from the persistence sites (io.write,
// io.fsync, io.rename, journal.tail), the render sites (serve.render,
// runner.eps, refine.step), the wedge site (refine.stall), and the
// scrubber's forced mismatch (scrub.corrupt).
FaultSchedule DeriveFaultSchedule(uint64_t seed, int num_ops);

// Greedy delta-debugging: repeatedly removes events whose removal keeps
// `still_fails(schedule)` true. The predicate must be deterministic (a
// simulation re-run). Returns the shrunk schedule; at worst the input.
FaultSchedule ShrinkSchedule(const FaultSchedule& schedule,
                             const std::function<bool(const FaultSchedule&)>&
                                 still_fails);

}  // namespace kdv

#endif  // QUADKDV_SIM_FAULT_SCHEDULE_H_
