// Virtual clock for deterministic whole-stack simulation.
//
// SimClock is the time authority of a simulation run (src/sim/sim_env.h):
// NowSeconds() is a plain variable that moves only when the scheduler says
// so, never because the OS scheduler got around to us. The simulator
// installs it as the process default (ScopedClockOverride), so every Timer,
// Deadline, breaker cooldown, backoff sleep, and failpoint delay in the
// serve stack reads virtual time without knowing it.
//
// The interesting part is WaitFor. Who is calling decides what a wait
// means:
//
//   * From a simulated task (a thread the SimExecutor is cooperatively
//     scheduling): the wait is a *yield*. The call parks the task, hands
//     control back to the scheduler, and returns only when the scheduler
//     resumes the task — at or after the virtual deadline, or early when
//     the Waker fires. This is how a retry-backoff sleep inside a pooled
//     render job becomes a deterministic scheduling point instead of a
//     real-time stall.
//
//   * From the driver thread (the single thread running the simulation
//     loop): the driver IS the time authority, so the wait simply advances
//     virtual time. Sleeping tasks whose deadlines the jump passes are not
//     missed — the scheduler promotes any sleeper whose wake_at <= now on
//     its next step.
//
// Thread safety: NowSeconds may be read from any thread; AdvanceTo is the
// scheduler/driver's alone (the executor calls it while holding its own
// scheduling lock, so concurrent advances never happen in practice).
#ifndef QUADKDV_SIM_SIM_CLOCK_H_
#define QUADKDV_SIM_SIM_CLOCK_H_

#include <atomic>

#include "util/clock.h"

namespace kdv {

class SimClock : public Clock {
 public:
  explicit SimClock(double start_seconds = 0.0) : now_(start_seconds) {}

  double NowSeconds() const override {
    return now_.load(std::memory_order_acquire);
  }

  // Yield (on a simulated task) or advance (on the driver); see above.
  void WaitFor(double seconds, Waker* waker = nullptr) override;

  bool IsSimulated() const override { return true; }

  // Moves virtual time forward to `t_seconds`; a target in the past is a
  // no-op (virtual time is monotone). Scheduler/driver only.
  void AdvanceTo(double t_seconds);
  void AdvanceBy(double dt_seconds) { AdvanceTo(NowSeconds() + dt_seconds); }

 private:
  std::atomic<double> now_;
};

}  // namespace kdv

#endif  // QUADKDV_SIM_SIM_CLOCK_H_
