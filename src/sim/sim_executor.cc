#include "sim/sim_executor.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "util/check.h"

namespace kdv {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();

thread_local SimExecutor* tls_executor = nullptr;
}  // namespace

SimExecutor* CurrentSimTaskExecutor() { return tls_executor; }

// One admitted task. State transitions (all under mu_):
//
//   kQueued   --slot frees-->  kRunnable  --scheduler picks-->  kRunning
//   kRunning  --TaskWait-->    kSleeping  --due / woken-->      kRunnable
//   kRunning  --fn returns-->  kDone      --driver joins & erases
//
// The OS thread is spawned lazily on the first resume and parked in
// TaskWait between resumes, so "one task at a time" is enforced by the
// resume/yield handshake, not by trusting the OS scheduler.
struct SimExecutor::Task {
  enum State { kQueued, kRunnable, kRunning, kSleeping, kDone };

  uint64_t id = 0;
  std::function<void()> fn;
  std::thread thread;
  bool started = false;

  State state = kQueued;
  double wake_at = 0.0;       // kSleeping: due at this virtual time
  bool wake_pending = false;  // a Waker fired while not (yet) sleeping
  bool resume = false;        // driver -> task handshake flag
  std::condition_variable resume_cv;
};

SimExecutor::SimExecutor(SimClock* clock, Options options)
    : clock_(clock),
      num_workers_(std::max(1, options.num_workers)),
      max_queue_(options.max_queue),
      rng_state_(options.seed != 0 ? options.seed : 0x9E3779B97F4A7C15ull) {
  KDV_CHECK(clock_ != nullptr);
}

SimExecutor::~SimExecutor() { Stop(); }

uint64_t SimExecutor::NextRandom() {
  // xorshift64*: cheap, seedable, and good enough to diversify schedules.
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

Status SimExecutor::TrySubmit(std::function<void()> task) {
  KDV_CHECK(task != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    return UnavailableError("sim executor is stopped");
  }
  if (queued_.size() >= max_queue_) {
    return ResourceExhaustedError("sim executor queue is full (" +
                                  std::to_string(max_queue_) + " tasks)");
  }
  auto t = std::make_unique<Task>();
  t->id = next_id_++;
  t->fn = std::move(task);
  queued_.push_back(std::move(t));
  return OkStatus();
}

size_t SimExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_.size();
}

uint64_t SimExecutor::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

uint64_t SimExecutor::steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

SimExecutor::Task* SimExecutor::PickLocked(bool allow_advance,
                                           double advance_limit) {
  for (;;) {
    // Admit queued tasks to free worker slots, FIFO like ThreadPool.
    while (static_cast<int>(active_.size()) < num_workers_ &&
           !queued_.empty()) {
      std::unique_ptr<Task> t = std::move(queued_.front());
      queued_.pop_front();
      t->state = Task::kRunnable;
      active_.push_back(std::move(t));
    }

    const double now = clock_->NowSeconds();
    std::vector<Task*> runnable;
    double next_wake = kInfinity;
    for (auto& t : active_) {
      if (t->state == Task::kSleeping &&
          (t->wake_pending || t->wake_at <= now)) {
        t->state = Task::kRunnable;
        t->wake_pending = false;
      }
      if (t->state == Task::kRunnable) {
        runnable.push_back(t.get());
      } else if (t->state == Task::kSleeping) {
        next_wake = std::min(next_wake, t->wake_at);
      }
    }
    if (!runnable.empty()) {
      return runnable[NextRandom() % runnable.size()];
    }
    if (next_wake < kInfinity && allow_advance && next_wake <= advance_limit) {
      clock_->AdvanceTo(next_wake);
      continue;  // the due sleeper(s) promote on the next pass
    }
    return nullptr;
  }
}

void SimExecutor::ResumeLocked(std::unique_lock<std::mutex>& lock,
                               Task* task) {
  ++steps_;
  task->state = Task::kRunning;
  if (!task->started) {
    task->started = true;
    task->thread = std::thread(&SimExecutor::TaskMain, this, task);
  } else {
    task->resume = true;
    task->resume_cv.notify_one();
  }
  // The resumed task runs alone until it parks in TaskWait or finishes;
  // either way it flips its state and signals sched_cv_.
  sched_cv_.wait(lock, [task] { return task->state != Task::kRunning; });
}

bool SimExecutor::StepOnce(bool allow_advance, double advance_limit) {
  std::unique_ptr<Task> finished;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Task* task = PickLocked(allow_advance, advance_limit);
    if (task == nullptr) return false;
    ResumeLocked(lock, task);
    if (task->state == Task::kDone) {
      for (auto it = active_.begin(); it != active_.end(); ++it) {
        if (it->get() == task) {
          finished = std::move(*it);
          active_.erase(it);
          break;
        }
      }
      ++executed_;
    }
  }
  // Join outside mu_: the task thread's final act takes mu_ to flip kDone.
  if (finished != nullptr && finished->thread.joinable()) {
    finished->thread.join();
  }
  return true;
}

bool SimExecutor::RunOneStep() { return StepOnce(true, kInfinity); }

void SimExecutor::RunUntilIdle() {
  while (RunOneStep()) {
  }
}

void SimExecutor::AdvanceUntil(double target_seconds) {
  while (StepOnce(true, target_seconds)) {
  }
  clock_->AdvanceTo(target_seconds);
}

void SimExecutor::RunReady() {
  while (StepOnce(false, 0.0)) {
  }
}

void SimExecutor::Stop() {
  KDV_CHECK(tls_executor != this);  // Stop from a pooled task would deadlock
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  RunUntilIdle();
}

void SimExecutor::TaskMain(Task* task) {
  tls_executor = this;
  task->fn();
  tls_executor = nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  task->state = Task::kDone;
  sched_cv_.notify_all();
}

void SimExecutor::WakeTaskById(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& t : active_) {
    if (t->id == id) {
      t->wake_pending = true;
      return;
    }
  }
  // Not found: the task already completed — the one-shot hook outlived it.
}

void SimExecutor::TaskWait(double seconds, Waker* waker) {
  Task* task = nullptr;
  {
    // Identify the calling task by matching the running state: exactly one
    // task is kRunning at a time, and only it can be calling in.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& t : active_) {
      if (t->state == Task::kRunning) {
        task = t.get();
        break;
      }
    }
  }
  KDV_CHECK(task != nullptr);
  const uint64_t id = task->id;
  if (waker != nullptr) {
    // Register before parking. If the waker is already set the hook fires
    // synchronously here, wake_pending goes up, and the sleep below
    // collapses to an immediate reschedule — still a yield point, so the
    // interleaving stays deterministic.
    waker->SetNotifyHook([this, id] { WakeTaskById(id); });
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    const double now = clock_->NowSeconds();
    task->wake_at = seconds > 0 ? now + seconds : now;
    if (task->wake_pending) {
      task->wake_at = now;
      task->wake_pending = false;
    }
    task->state = Task::kSleeping;
    task->resume = false;
    sched_cv_.notify_all();  // hand control back to the driver
    task->resume_cv.wait(lock, [task] { return task->resume; });
    task->resume = false;
  }
  if (waker != nullptr) {
    waker->SetNotifyHook(nullptr);  // clears the hook only if it never fired
  }
}

}  // namespace kdv
