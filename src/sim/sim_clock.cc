#include "sim/sim_clock.h"

#include "sim/sim_executor.h"

namespace kdv {

void SimClock::WaitFor(double seconds, Waker* waker) {
  SimExecutor* executor = CurrentSimTaskExecutor();
  if (executor != nullptr) {
    // A simulated task is asking to sleep: yield to the scheduler. The
    // executor parks the task and resumes it at (or after) the virtual
    // deadline, or as soon as the waker fires.
    executor->TaskWait(seconds, waker);
    return;
  }
  // The driver (or a non-simulated thread) sleeping just moves time. A set
  // waker means "don't wait at all" — same early-out as the other clocks.
  if (waker != nullptr && waker->is_set()) return;
  if (seconds > 0) AdvanceBy(seconds);
}

void SimClock::AdvanceTo(double t_seconds) {
  double current = now_.load(std::memory_order_relaxed);
  while (t_seconds > current &&
         !now_.compare_exchange_weak(current, t_seconds,
                                     std::memory_order_release,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace kdv
