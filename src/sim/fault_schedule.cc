#include "sim/fault_schedule.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace kdv {

namespace {

const char* ActionName(failpoint::Action action) {
  switch (action) {
    case failpoint::Action::kError:
      return "error";
    case failpoint::Action::kNaN:
      return "nan";
    case failpoint::Action::kDelay:
      return "delay";
    case failpoint::Action::kOff:
      return "off";
  }
  return "off";
}

uint64_t Mix(uint64_t x) {
  // splitmix64 finalizer: decorrelates the seed stream from the executor's
  // xorshift stream so schedules and schedules don't echo each other.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct SitePick {
  const char* site;
  failpoint::Action action;
  int delay_ms;
  int weight;
};

// The pool DeriveFaultSchedule draws from. Persistence faults dominate —
// they are the ones whose mishandling loses data — with a sprinkle of
// render faults (retry/breaker paths), wedges (watchdog path), and forced
// scrub mismatches (quarantine → recover → swap path).
const SitePick kPool[] = {
    {"io.write", failpoint::Action::kError, 0, 4},
    {"io.fsync", failpoint::Action::kError, 0, 4},
    {"io.rename", failpoint::Action::kError, 0, 3},
    {"journal.tail", failpoint::Action::kError, 0, 3},
    {"serve.render", failpoint::Action::kError, 0, 3},
    {"runner.eps", failpoint::Action::kError, 0, 2},
    {"refine.step", failpoint::Action::kNaN, 0, 2},
    {"serve.render", failpoint::Action::kDelay, 30, 2},
    {"refine.stall", failpoint::Action::kDelay, 60, 1},
    {"scrub.corrupt", failpoint::Action::kError, 0, 1},
};

}  // namespace

std::string FaultSchedule::Spec() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) out.push_back(';');
    char buf[128];
    if (e.action == failpoint::Action::kDelay) {
      std::snprintf(buf, sizeof(buf), "%d:%s=delay(%d,%d)", e.at_op,
                    e.site.c_str(), e.delay_ms, e.max_hits);
    } else if (e.max_hits != 1) {
      std::snprintf(buf, sizeof(buf), "%d:%s=%s(%d)", e.at_op,
                    e.site.c_str(), ActionName(e.action), e.max_hits);
    } else {
      std::snprintf(buf, sizeof(buf), "%d:%s=%s", e.at_op, e.site.c_str(),
                    ActionName(e.action));
    }
    out += buf;
  }
  return out;
}

StatusOr<FaultSchedule> FaultSchedule::Parse(const std::string& spec) {
  FaultSchedule schedule;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t colon = entry.find(':');
    const size_t eq = entry.find('=');
    if (colon == std::string::npos || eq == std::string::npos || eq < colon) {
      return InvalidArgumentError("malformed fault event '" + entry +
                                  "' (want at_op:site=action[(args)])");
    }
    FaultEvent event;
    const std::string at_op_text = entry.substr(0, colon);
    char* at_op_end = nullptr;
    const long at_op = std::strtol(at_op_text.c_str(), &at_op_end, 10);
    if (at_op_text.empty() || *at_op_end != '\0' || at_op < 0) {
      return InvalidArgumentError("bad at_op in fault event '" + entry +
                                  "' (want a non-negative integer)");
    }
    event.at_op = static_cast<int>(at_op);
    event.site = entry.substr(colon + 1, eq - colon - 1);
    std::string action = entry.substr(eq + 1);

    // Optional "(a)" or "(a,b)" argument list.
    int args[2] = {0, 0};
    int num_args = 0;
    const size_t paren = action.find('(');
    if (paren != std::string::npos) {
      if (action.back() != ')') {
        return InvalidArgumentError("unterminated args in '" + entry + "'");
      }
      std::string inner = action.substr(paren + 1,
                                        action.size() - paren - 2);
      action = action.substr(0, paren);
      size_t p = 0;
      while (p < inner.size() && num_args < 2) {
        size_t comma = inner.find(',', p);
        if (comma == std::string::npos) comma = inner.size();
        args[num_args++] = std::atoi(inner.substr(p, comma - p).c_str());
        p = comma + 1;
      }
    }
    if (action == "error") {
      event.action = failpoint::Action::kError;
      event.max_hits = num_args >= 1 ? args[0] : 1;
    } else if (action == "nan") {
      event.action = failpoint::Action::kNaN;
      event.max_hits = num_args >= 1 ? args[0] : 1;
    } else if (action == "delay") {
      event.action = failpoint::Action::kDelay;
      event.delay_ms = num_args >= 1 ? args[0] : 10;
      event.max_hits = num_args >= 2 ? args[1] : 1;
    } else {
      return InvalidArgumentError("unknown fault action '" + action + "'");
    }

    const std::vector<std::string>& sites = failpoint::AllSites();
    if (std::find(sites.begin(), sites.end(), event.site) == sites.end()) {
      return InvalidArgumentError("unknown failpoint site '" + event.site +
                                  "'");
    }
    schedule.events.push_back(std::move(event));
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_op < b.at_op;
                   });
  return schedule;
}

FaultSchedule DeriveFaultSchedule(uint64_t seed, int num_ops) {
  FaultSchedule schedule;
  int total_weight = 0;
  for (const SitePick& p : kPool) total_weight += p.weight;

  uint64_t state = seed ^ 0xFAB175C4EDu;
  const int num_events = num_ops / 40 + 1;
  for (int i = 0; i < num_events; ++i) {
    FaultEvent event;
    event.at_op = static_cast<int>(Mix(state++) % static_cast<uint64_t>(
                                       num_ops > 0 ? num_ops : 1));
    int roll = static_cast<int>(Mix(state++) %
                                static_cast<uint64_t>(total_weight));
    const SitePick* pick = &kPool[0];
    for (const SitePick& p : kPool) {
      if (roll < p.weight) {
        pick = &p;
        break;
      }
      roll -= p.weight;
    }
    event.site = pick->site;
    event.action = pick->action;
    event.delay_ms = pick->delay_ms;
    // Mostly single-shot faults; occasionally a short burst, which is what
    // trips the circuit breaker.
    event.max_hits = (Mix(state++) % 4 == 0) ? 3 : 1;
    schedule.events.push_back(std::move(event));
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_op < b.at_op;
                   });
  return schedule;
}

FaultSchedule ShrinkSchedule(
    const FaultSchedule& schedule,
    const std::function<bool(const FaultSchedule&)>& still_fails) {
  FaultSchedule current = schedule;
  bool improved = true;
  while (improved && current.events.size() > 1) {
    improved = false;
    for (size_t i = 0; i < current.events.size(); ++i) {
      FaultSchedule candidate = current;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<long>(i));
      if (still_fails(candidate)) {
        current = std::move(candidate);
        improved = true;
        break;  // restart: indexes shifted
      }
    }
  }
  return current;
}

}  // namespace kdv
