// Whole-stack deterministic simulation: virtual time, seeded chaos,
// bit-identical replay.
//
// RunSimulation() stands up the entire serve stack — RenderService with its
// breaker/governor/watchdog, the IntegrityScrubber, and the persistence
// stack (journal + checkpoints + RecoveryManager) over a real state
// directory — and drives it through a seed-derived schedule of virtual
// operations: render submissions, virtual-time ticks, journal appends,
// checkpoints, evaluator hot-swaps, simulated crash-and-recover cycles,
// and failpoint activations (sim/fault_schedule.h).
//
// Determinism comes from three substitutions, all behind seams the
// production code already has:
//
//   * SimClock replaces wall time (installed process-wide, so Timer,
//     Deadline, breaker cooldowns, backoff sleeps, and failpoint delays
//     all read virtual time).
//   * SimExecutor replaces the service's ThreadPool: every worker task is
//     cooperatively scheduled, one at a time, in a PRNG-chosen order.
//   * The watchdog and scrubber run no threads (start_monitor = false /
//     never Start()); the driver invokes their sweep/tick entry points at
//     deterministic points of virtual time.
//
// Everything the run does lands in a canonical event log (no pointers, no
// wall time, no paths), hashed with CRC32. Two runs of the same seed and
// config must produce the same hash — that is the replay contract
// `kdvtool sim --replay` enforces, and what makes "failing seed 12345"
// a complete bug report.
//
// Invariants checked while driving (any violation fails the run):
//   * ε-oracle: a certified frame's sampled pixels lie within the claimed
//     relative ε of EvaluateExact on the epoch the frame was rendered by.
//   * Frames are finite and correctly sized, whatever faults were active.
//   * Breaker and governor transition logs contain only legal edges, at
//     non-decreasing virtual times.
//   * No lost or double-completed requests: every admitted future resolves
//     exactly once, across hot-swaps, faults, and crash/recover cycles.
//   * Crash atomicity: after every crash-and-recover, the recovered point
//     set equals the acknowledged writes exactly — or the acknowledged
//     writes plus the one indeterminate batch whose append failed after
//     the record was durably written (whole-batch resurrection is legal;
//     partial batches and lost acks never are). Recovery declaring data
//     loss under crash-only faults is itself a violation.
//   * Admission rejections carry only the contractually allowed codes.
//
// The planted-bug mode (SimOptions::plant_bug) deliberately drops one
// completion from the bookkeeping when a hot-swap races in-flight renders;
// the determinism test uses it as a canary that the invariant machinery
// and the shrinking reducer actually catch and minimize bugs.
#ifndef QUADKDV_SIM_SIM_ENV_H_
#define QUADKDV_SIM_SIM_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_schedule.h"

namespace kdv {

struct SimOptions {
  uint64_t seed = 1;
  int num_ops = 300;    // virtual operations to drive
  int num_workers = 2;  // simulated worker slots
  size_t max_queue = 8;
  int dataset_n = 96;  // bootstrap dataset cardinality (kept small: the
                       // oracle re-evaluates pixels exactly per completion)
  // Root for per-run state directories; "" uses the system temp dir. Each
  // run works in <root>/kdvsim-<seed> and wipes it first.
  std::string state_root;
  // Override the seed-derived fault schedule (the shrinker's entry point;
  // also `kdvtool sim --schedule`). Borrowed; may be null.
  const FaultSchedule* schedule_override = nullptr;
  // Arm failpoints per the schedule. In a build without -DKDV_FAILPOINTS=ON
  // arming succeeds but sites never fire; the run is then pure
  // concurrency/crash chaos, and still deterministic.
  bool faults_enabled = true;
  bool plant_bug = false;  // canary: deliberately corrupt the bookkeeping
};

struct SimReport {
  uint64_t seed = 0;
  bool failed = false;
  std::string failure;  // first invariant violation, "" when !failed
  FaultSchedule schedule;

  // The scalar knobs the run used, echoed so ReproLine() names every flag
  // that differs from the defaults (a repro line must be complete).
  int num_ops = 0;
  int num_workers = 0;
  size_t max_queue = 0;
  int dataset_n = 0;
  bool plant_bug = false;

  // Canonical event log and its CRC32 — the replay-identity fingerprint.
  std::vector<std::string> events;
  uint32_t event_hash = 0;

  // Prometheus-text snapshot of the process-wide metrics registry at run
  // end, and its CRC32. The registry is Reset() at run start and every
  // duration flows through the virtual clock, so same-seed runs must
  // produce byte-identical snapshots — a second replay fingerprint, kept
  // out of event_hash so the event-log contract is unchanged.
  std::string metrics_text;
  uint32_t metrics_crc = 0;

  // Counters for the one-line summary.
  uint64_t ops = 0;
  uint64_t submits = 0;
  uint64_t admitted = 0;
  uint64_t completions = 0;
  uint64_t certified = 0;
  uint64_t degraded = 0;
  uint64_t journal_appends = 0;
  uint64_t checkpoints = 0;
  uint64_t swaps = 0;
  uint64_t crashes = 0;
  uint64_t faults_armed = 0;
  double virtual_seconds = 0.0;

  std::string Summary() const;
  // One shell-ready line that reproduces this run exactly.
  std::string ReproLine() const;
};

// Runs one simulation to completion (all ops, drain, final checks).
// Deterministic: equal options produce equal reports, event logs included.
SimReport RunSimulation(const SimOptions& options);

// Runs the failing seed's schedule through ShrinkSchedule, re-simulating
// each candidate, and returns the report of the minimal still-failing
// schedule (with its ReproLine naming the explicit schedule). `failing`
// must be a failed report produced from `options`.
SimReport MinimizeFailure(const SimOptions& options,
                          const SimReport& failing);

}  // namespace kdv

#endif  // QUADKDV_SIM_SIM_ENV_H_
