// Axis-aligned minimum bounding rectangle (MBR) in R^d.
//
// Bound functions (paper §3.3, §4, §5) need the minimum and maximum distance
// between a query pixel q and the MBR of an index node's points.
#ifndef QUADKDV_GEOM_RECT_H_
#define QUADKDV_GEOM_RECT_H_

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/point.h"
#include "util/check.h"

namespace kdv {

// Axis-aligned box [lo, hi] per dimension. An empty Rect (no points yet) has
// lo > hi in every dimension.
class Rect {
 public:
  Rect() : dim_(0) {}

  explicit Rect(int dim) : dim_(dim) {
    KDV_DCHECK(dim >= 0 && dim <= kMaxDim);
    for (int i = 0; i < dim_; ++i) {
      lo_[i] = std::numeric_limits<double>::infinity();
      hi_[i] = -std::numeric_limits<double>::infinity();
    }
  }

  static Rect FromPoints(const Point* points, size_t n, int dim) {
    Rect r(dim);
    for (size_t i = 0; i < n; ++i) r.Expand(points[i]);
    return r;
  }

  int dim() const { return dim_; }
  bool empty() const { return dim_ == 0 || lo_[0] > hi_[0]; }

  double lo(int i) const {
    KDV_DCHECK(i >= 0 && i < dim_);
    return lo_[i];
  }
  double hi(int i) const {
    KDV_DCHECK(i >= 0 && i < dim_);
    return hi_[i];
  }

  void set_lo(int i, double v) { lo_[i] = v; }
  void set_hi(int i, double v) { hi_[i] = v; }

  // Grows the box to contain p.
  void Expand(const Point& p) {
    KDV_DCHECK(p.dim() == dim_);
    for (int i = 0; i < dim_; ++i) {
      lo_[i] = std::min(lo_[i], p[i]);
      hi_[i] = std::max(hi_[i], p[i]);
    }
  }

  void Expand(const Rect& other) {
    KDV_DCHECK(other.dim_ == dim_);
    for (int i = 0; i < dim_; ++i) {
      lo_[i] = std::min(lo_[i], other.lo_[i]);
      hi_[i] = std::max(hi_[i], other.hi_[i]);
    }
  }

  bool Contains(const Point& p) const {
    KDV_DCHECK(p.dim() == dim_);
    for (int i = 0; i < dim_; ++i) {
      if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
    }
    return true;
  }

  // Extent along dimension i.
  double Length(int i) const { return hi_[i] - lo_[i]; }

  // Index of the dimension with the largest extent (split heuristic).
  int WidestDimension() const {
    int best = 0;
    double best_len = -1.0;
    for (int i = 0; i < dim_; ++i) {
      double len = Length(i);
      if (len > best_len) {
        best_len = len;
        best = i;
      }
    }
    return best;
  }

  Point Center() const {
    Point c(dim_);
    for (int i = 0; i < dim_; ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
    return c;
  }

  // Squared minimum distance from q to any point of the box (0 if inside).
  double MinSquaredDistance(const Point& q) const {
    KDV_DCHECK(q.dim() == dim_);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) {
      double d = 0.0;
      if (q[i] < lo_[i]) {
        d = lo_[i] - q[i];
      } else if (q[i] > hi_[i]) {
        d = q[i] - hi_[i];
      }
      s += d * d;
    }
    return s;
  }

  // Squared maximum distance from q to any point of the box (attained at the
  // farthest corner).
  double MaxSquaredDistance(const Point& q) const {
    KDV_DCHECK(q.dim() == dim_);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) {
      double d = std::max(std::abs(q[i] - lo_[i]), std::abs(q[i] - hi_[i]));
      s += d * d;
    }
    return s;
  }

  double MinDistance(const Point& q) const {
    return std::sqrt(MinSquaredDistance(q));
  }
  double MaxDistance(const Point& q) const {
    return std::sqrt(MaxSquaredDistance(q));
  }

  // Squared minimum distance between any point of this box and any point of
  // `other` (0 if they intersect).
  double MinSquaredDistance(const Rect& other) const {
    KDV_DCHECK(other.dim_ == dim_);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) {
      double d = 0.0;
      if (other.hi_[i] < lo_[i]) {
        d = lo_[i] - other.hi_[i];
      } else if (other.lo_[i] > hi_[i]) {
        d = other.lo_[i] - hi_[i];
      }
      s += d * d;
    }
    return s;
  }

  // Squared maximum distance between any point of this box and any point of
  // `other` (attained at a corner pair).
  double MaxSquaredDistance(const Rect& other) const {
    KDV_DCHECK(other.dim_ == dim_);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) {
      double d = std::max(std::abs(other.hi_[i] - lo_[i]),
                          std::abs(hi_[i] - other.lo_[i]));
      s += d * d;
    }
    return s;
  }

 private:
  int dim_;
  double lo_[kMaxDim];
  double hi_[kMaxDim];
};

}  // namespace kdv

#endif  // QUADKDV_GEOM_RECT_H_
