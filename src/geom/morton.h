// Morton (Z-order) codes for 2-d points.
//
// Substrate for the Z-order sampling baseline (Zheng et al., SIGMOD'13): the
// dataset is sorted along the Z-order space-filling curve and sampled at
// regular curve positions, which preserves spatial density structure.
#ifndef QUADKDV_GEOM_MORTON_H_
#define QUADKDV_GEOM_MORTON_H_

#include <cstdint>

#include "geom/point.h"
#include "geom/rect.h"

namespace kdv {

// Spreads the low 32 bits of x so that bit i moves to bit 2i.
uint64_t MortonSpreadBits(uint32_t x);

// Interleaves two 32-bit integers into a 64-bit Morton code (x gets the even
// bits, y the odd bits).
uint64_t MortonEncode2D(uint32_t x, uint32_t y);

// Maps a 2-d point inside `bounds` to its Morton code on a 2^21 x 2^21 grid.
// Points on the upper boundary map to the last cell. Only the first two
// coordinates participate.
uint64_t MortonCodeForPoint(const Point& p, const Rect& bounds);

}  // namespace kdv

#endif  // QUADKDV_GEOM_MORTON_H_
