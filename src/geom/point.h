// Fixed-capacity d-dimensional point type.
//
// KDV operates on 2-d data; the generalized KDE experiments (paper §7.7) go
// up to d = 10. A fixed inline capacity keeps points contiguous inside
// kd-tree leaves with no per-point heap allocation.
#ifndef QUADKDV_GEOM_POINT_H_
#define QUADKDV_GEOM_POINT_H_

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/check.h"

namespace kdv {

// Maximum supported dimensionality.
inline constexpr int kMaxDim = 16;

// A point in R^d with d <= kMaxDim. The dimensionality is a runtime value;
// coordinates beyond dim() are kept at zero so dot products and distances may
// safely loop to dim() only.
class Point {
 public:
  Point() : dim_(0), coords_{} {}

  explicit Point(int dim) : dim_(dim), coords_{} {
    KDV_DCHECK(dim >= 0 && dim <= kMaxDim);
  }

  Point(std::initializer_list<double> coords) : dim_(0), coords_{} {
    KDV_CHECK(static_cast<int>(coords.size()) <= kMaxDim);
    for (double c : coords) coords_[dim_++] = c;
  }

  static Point FromVector(const std::vector<double>& v) {
    KDV_CHECK(static_cast<int>(v.size()) <= kMaxDim);
    Point p(static_cast<int>(v.size()));
    for (size_t i = 0; i < v.size(); ++i) p.coords_[i] = v[i];
    return p;
  }

  int dim() const { return dim_; }

  double operator[](int i) const {
    KDV_DCHECK(i >= 0 && i < dim_);
    return coords_[i];
  }
  double& operator[](int i) {
    KDV_DCHECK(i >= 0 && i < dim_);
    return coords_[i];
  }

  const double* data() const { return coords_; }

  // Squared Euclidean norm ||p||^2.
  double SquaredNorm() const {
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) s += coords_[i] * coords_[i];
    return s;
  }

  friend bool operator==(const Point& a, const Point& b) {
    if (a.dim_ != b.dim_) return false;
    for (int i = 0; i < a.dim_; ++i) {
      if (a.coords_[i] != b.coords_[i]) return false;
    }
    return true;
  }

 private:
  int dim_;
  double coords_[kMaxDim];
};

// Dot product; both points must share dimensionality.
inline double Dot(const Point& a, const Point& b) {
  KDV_DCHECK(a.dim() == b.dim());
  double s = 0.0;
  for (int i = 0; i < a.dim(); ++i) s += a[i] * b[i];
  return s;
}

// Squared Euclidean distance.
inline double SquaredDistance(const Point& a, const Point& b) {
  KDV_DCHECK(a.dim() == b.dim());
  double s = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

// Euclidean distance.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

using PointSet = std::vector<Point>;

}  // namespace kdv

#endif  // QUADKDV_GEOM_POINT_H_
