#include "geom/morton.h"

#include <algorithm>

namespace kdv {
namespace {

// 2^21 cells per axis: two interleaved 21-bit coordinates fit in 42 bits.
constexpr uint32_t kGridBits = 21;
constexpr uint32_t kGridMax = (1u << kGridBits) - 1;

}  // namespace

uint64_t MortonSpreadBits(uint32_t x) {
  uint64_t v = x;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

uint64_t MortonEncode2D(uint32_t x, uint32_t y) {
  return MortonSpreadBits(x) | (MortonSpreadBits(y) << 1);
}

uint64_t MortonCodeForPoint(const Point& p, const Rect& bounds) {
  KDV_DCHECK(p.dim() >= 2 && bounds.dim() >= 2);
  uint32_t cell[2];
  for (int i = 0; i < 2; ++i) {
    double len = bounds.Length(i);
    double t = len > 0.0 ? (p[i] - bounds.lo(i)) / len : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    cell[i] = std::min<uint32_t>(static_cast<uint32_t>(t * (kGridMax + 1.0)),
                                 kGridMax);
  }
  return MortonEncode2D(cell[0], cell[1]);
}

}  // namespace kdv
