#include "obs/metrics.h"

#include <cmath>

namespace kdv {
namespace obs {

namespace {

// Recent-trace ring bound: enough for a bench run's tail or a serve-sim
// postmortem without letting a long-lived service grow without bound.
constexpr size_t kMaxTraces = 64;

}  // namespace

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5,1)
  if (exp < kMinExp) return 1;
  if (exp >= kMaxExp) return kNumBuckets - 1;
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0.0;
  const int j = i - 1;
  const int exp = kMinExp + j / kSubBuckets;
  const int sub = j % kSubBuckets;
  return std::ldexp(0.5 + 0.5 * (sub + 1) / kSubBuckets, exp);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cum += bucket(i);
    if (cum >= target && cum > 0) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RecordTrace(const TraceSpan& span) {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(span);
  if (traces_.size() > kMaxTraces) traces_.pop_front();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = hist->count();
    h.sum = hist->sum();
    h.p50 = hist->Quantile(0.50);
    h.p90 = hist->Quantile(0.90);
    h.p99 = hist->Quantile(0.99);
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t c = hist->bucket(i);
      if (c > 0) h.buckets.emplace_back(Histogram::BucketUpperBound(i), c);
    }
    snap.histograms.push_back(std::move(h));
  }
  snap.traces.assign(traces_.begin(), traces_.end());
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  traces_.clear();
}

}  // namespace obs
}  // namespace kdv
