// Process-wide metrics registry: the one place the serving stack's runtime
// subsystems report what they are doing.
//
// Before this layer each subsystem kept private counters surfaced (or not)
// through one-off serve-sim JSON fields; bugs that only a cross-subsystem
// view would catch stayed invisible. The registry holds three metric kinds:
//
//   * Counter   — monotonic uint64 (requests, faults, cache hits).
//   * Gauge     — last-written double (governor pressure, brownout level).
//   * Histogram — log-linear bucketed distribution (latencies, per-pixel
//                 bound evaluations). Quantiles are bucket-upper-bound
//                 estimates with <= ~1/(2·kSubBuckets) relative error.
//
// Hot-path contract: Record/Increment/Set are single relaxed atomic RMWs on
// pre-resolved pointers — no locks, no allocation, no name lookups. The
// registry mutex guards only registration (once per call site, cached in a
// function-local static) and snapshotting. Metric handles are never
// invalidated: Reset() zeroes values in place, so cached pointers survive.
//
// Determinism-under-sim contract: metrics carry no wall-clock timestamps of
// their own. Every duration recorded into a histogram is measured by the
// caller through the util/clock.h seam (Timer/Deadline on CurrentClock), so
// under src/sim the same seed produces byte-identical snapshots — the sim
// suite asserts exactly that. Snapshot iteration is name-ordered, and the
// exporters (obs/export.h) are pure functions of the snapshot.
#ifndef QUADKDV_OBS_METRICS_H_
#define QUADKDV_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace kdv {
namespace obs {

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-linear histogram: each power-of-two decade is split into kSubBuckets
// linear sub-buckets (the HdrHistogram layout), covering ~1e-9 .. ~1.7e10
// with a dedicated bucket 0 for values <= 0 (and non-finite values, which a
// measurement seam should never produce but must not corrupt the buckets).
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -30;  // 2^-30 ~ 0.93 ns
  static constexpr int kMaxExp = 34;   // 2^34  ~ 1.7e10
  static constexpr int kNumBuckets =
      (kMaxExp - kMinExp) * kSubBuckets + 1;

  void Record(double v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    if (v > 0.0 && v < 1e308) {
      // Relaxed CAS add; contention is per-histogram and rare.
      double sum = sum_.load(std::memory_order_relaxed);
      while (!sum_.compare_exchange_weak(sum, sum + v,
                                         std::memory_order_relaxed)) {
      }
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Upper-bound estimate of the q-quantile (q in [0, 1]); 0 when empty.
  double Quantile(double q) const;

  void Reset();

  // Which bucket a value lands in.
  static int BucketIndex(double v);
  // Inclusive upper bound of bucket i (0.0 for bucket 0).
  static double BucketUpperBound(int i);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Point-in-time copy of one histogram, only non-empty buckets retained.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  // (inclusive upper bound, count) per non-empty bucket, ascending.
  std::vector<std::pair<double, uint64_t>> buckets;
};

// Name-ordered copy of every metric plus the recent-trace ring.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<TraceSpan> traces;  // oldest first
};

class MetricsRegistry {
 public:
  // The process-wide registry every production call site reports into.
  // Tests and the simulator Reset() it at run start.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the metric registered under `name`, creating it on first use.
  // The returned pointer is stable for the registry's lifetime — call once
  // per site and cache it. Kinds live in separate namespaces, but reusing
  // one name across kinds garbles the exports; don't.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Appends a completed request span to the recent-trace ring (bounded;
  // oldest dropped).
  void RecordTrace(const TraceSpan& span);

  MetricsSnapshot Snapshot() const;

  // Zeroes every metric and clears the trace ring in place; handles handed
  // out by Get* stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::deque<TraceSpan> traces_;
};

}  // namespace obs
}  // namespace kdv

#endif  // QUADKDV_OBS_METRICS_H_
