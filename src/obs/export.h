// Exporters: one snapshot, two wire formats.
//
// Both functions are pure — the same MetricsSnapshot always yields the same
// bytes — which is what lets the sim suite assert byte-identical metric
// exports across same-seed replays.
//
//   * ExportPrometheus: Prometheus text exposition. Counters get a _total
//     name (the naming scheme in DESIGN.md §13 bakes the suffix in),
//     histograms expand to cumulative _bucket{le="..."} series plus _sum
//     and _count, and each recent trace span contributes per-stage
//     kdv_trace_stage_seconds{stage="...",...} samples.
//   * ExportJson: the same data as one strictly valid JSON object (via
//     util/json_writer, so strings are escaped and non-finite doubles are
//     scrubbed to null). Layout:
//       {"counters":{...},"gauges":{...},
//        "histograms":{name:{count,sum,p50,p90,p99,buckets:[[ub,n],...]}},
//        "traces":[{request_id,epoch,tier,attempts,ok,total_seconds,
//                   stages:{...}},...]}
#ifndef QUADKDV_OBS_EXPORT_H_
#define QUADKDV_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace kdv {
namespace obs {

std::string ExportPrometheus(const MetricsSnapshot& snapshot);
std::string ExportJson(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace kdv

#endif  // QUADKDV_OBS_EXPORT_H_
