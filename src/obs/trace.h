// Per-request trace spans: where one render's wall time actually went.
//
// A TraceSpan is a fixed-size record of stage timings for a single request
// as it moves through the serve stack:
//
//   queue_wait  — Submit() admission to worker pickup
//   admission   — worker-side preflight (governor assessment, epoch
//                 snapshot, queue-expiry checks) before the attempt loop
//   tier_attempt— total time inside certified-path attempts (all retries)
//   tile_pass   — shared-traversal region passes (core/tile_refiner),
//                 summed across tiles (CPU seconds, not wall)
//   refinement  — certified-path time not spent in tile passes
//   coarse      — GridKde fallback renders
//   scrub       — final non-finite scrub of the outgoing frame
//   backoff     — retry backoff sleeps
//
// The epoch id and the delivered degradation tier ride along, so one span
// answers "why was this request slow and what did it actually get".
//
// All durations are measured by the caller through util/clock.h (Timer on
// CurrentClock), never by this header — that keeps spans deterministic
// under the simulator's virtual clock. Spans are plain values: the service
// fills one per request and hands it to MetricsRegistry::RecordTrace, which
// keeps a bounded recent-trace ring for the exporters.
#ifndef QUADKDV_OBS_TRACE_H_
#define QUADKDV_OBS_TRACE_H_

#include <cstdint>

#include "util/timer.h"

namespace kdv {
namespace obs {

enum class TraceStage {
  kQueueWait = 0,
  kAdmission,
  kTierAttempt,
  kTilePass,
  kRefinement,
  kCoarse,
  kScrub,
  kBackoff,
};
constexpr int kNumTraceStages = 8;

// Stable snake_case stage name ("queue_wait", ...), used verbatim as the
// JSON key and the Prometheus label value.
const char* TraceStageName(TraceStage stage);

struct TraceSpan {
  uint64_t request_id = 0;

  // Evaluator epoch the render executed against. has_epoch distinguishes
  // "ran on epoch N" from "never reached execution" — epoch ids start at 1,
  // but the distinction must not hang on that convention.
  uint64_t epoch = 0;
  bool has_epoch = false;

  // Delivered tier name (QualityTierName: "certified", "coarse", ...);
  // points at static storage. "" until the outcome is known.
  const char* tier = "";

  int attempts = 0;
  bool ok = false;
  double total_seconds = 0.0;
  double stage_seconds[kNumTraceStages] = {};

  void AddStage(TraceStage stage, double seconds) {
    if (seconds > 0.0) stage_seconds[static_cast<int>(stage)] += seconds;
  }
  double stage(TraceStage s) const {
    return stage_seconds[static_cast<int>(s)];
  }
};

// RAII stage timer: adds the scope's elapsed time (CurrentClock, so virtual
// under sim) to one stage of `span`. Null span: inert.
class StageTimer {
 public:
  StageTimer(TraceSpan* span, TraceStage stage) : span_(span), stage_(stage) {}
  ~StageTimer() {
    if (span_ != nullptr) span_->AddStage(stage_, timer_.ElapsedSeconds());
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  TraceSpan* span_;
  TraceStage stage_;
  Timer timer_;
};

}  // namespace obs
}  // namespace kdv

#endif  // QUADKDV_OBS_TRACE_H_
