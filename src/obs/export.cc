#include "obs/export.h"

#include <string_view>

#include "util/json_writer.h"

namespace kdv {
namespace obs {

namespace {

// Counters follow the Prometheus convention of a _total suffix, enforced at
// the naming scheme (DESIGN.md §13); metrics that already carry it are not
// double-suffixed.
bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

void AppendPromNumber(std::string* out, double v) {
  // Prometheus text accepts NaN/Inf, but the deterministic-snapshot contract
  // is easier to hold (and the text easier to diff) with them scrubbed the
  // same way the JSON exporter scrubs.
  *out += JsonNumber(v);
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string full = EndsWith(name, "_total") ? name : name + "_total";
    out += "# TYPE " + full + " counter\n";
    out += full + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    AppendPromNumber(&out, value);
    out += "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    uint64_t cum = 0;
    for (const auto& [ub, n] : h.buckets) {
      cum += n;
      out += h.name + "_bucket{le=\"";
      AppendPromNumber(&out, ub);
      out += "\"} " + std::to_string(cum) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += h.name + "_sum ";
    AppendPromNumber(&out, h.sum);
    out += "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  for (const TraceSpan& span : snapshot.traces) {
    for (int i = 0; i < kNumTraceStages; ++i) {
      if (span.stage_seconds[i] <= 0.0) continue;
      out += "kdv_trace_stage_seconds{request_id=\"" +
             std::to_string(span.request_id) + "\",stage=\"" +
             TraceStageName(static_cast<TraceStage>(i)) + "\",tier=\"" +
             span.tier + "\"} ";
      AppendPromNumber(&out, span.stage_seconds[i]);
      out += "\n";
    }
  }
  return out;
}

std::string ExportJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();

  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w.Key(name).Value(value);
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w.Key(name).Value(value);
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    w.Key(h.name).BeginObject();
    w.Key("count").Value(h.count);
    w.Key("sum").Value(h.sum);
    w.Key("p50").Value(h.p50);
    w.Key("p90").Value(h.p90);
    w.Key("p99").Value(h.p99);
    w.Key("buckets").BeginArray();
    for (const auto& [ub, n] : h.buckets) {
      w.BeginArray().Value(ub).Value(n).EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  w.Key("traces").BeginArray();
  for (const TraceSpan& span : snapshot.traces) {
    w.BeginObject();
    w.Key("request_id").Value(span.request_id);
    if (span.has_epoch) {
      w.Key("epoch").Value(span.epoch);
    } else {
      w.Key("epoch").Null();
    }
    w.Key("tier").Value(span.tier);
    w.Key("attempts").Value(span.attempts);
    w.Key("ok").Value(span.ok);
    w.Key("total_seconds").Value(span.total_seconds);
    w.Key("stages").BeginObject();
    for (int i = 0; i < kNumTraceStages; ++i) {
      if (span.stage_seconds[i] <= 0.0) continue;
      w.Key(TraceStageName(static_cast<TraceStage>(i)))
          .Value(span.stage_seconds[i]);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.Take();
}

}  // namespace obs
}  // namespace kdv
