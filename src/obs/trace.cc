#include "obs/trace.h"

namespace kdv {
namespace obs {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kQueueWait:
      return "queue_wait";
    case TraceStage::kAdmission:
      return "admission";
    case TraceStage::kTierAttempt:
      return "tier_attempt";
    case TraceStage::kTilePass:
      return "tile_pass";
    case TraceStage::kRefinement:
      return "refinement";
    case TraceStage::kCoarse:
      return "coarse";
    case TraceStage::kScrub:
      return "scrub";
    case TraceStage::kBackoff:
      return "backoff";
  }
  return "unknown";
}

}  // namespace obs
}  // namespace kdv
