#include "viz/render.h"

namespace kdv {

DensityFrame RenderEpsFrame(const KdeEvaluator& evaluator,
                            const PixelGrid& grid, double eps,
                            BatchStats* stats) {
  DensityFrame frame(grid.width(), grid.height());
  frame.values = RunEpsBatch(evaluator, grid.AllPixelCenters(), eps, stats);
  return frame;
}

BinaryFrame RenderTauFrame(const KdeEvaluator& evaluator,
                           const PixelGrid& grid, double tau,
                           BatchStats* stats) {
  BinaryFrame frame(grid.width(), grid.height());
  frame.values = RunTauBatch(evaluator, grid.AllPixelCenters(), tau, stats);
  return frame;
}

DensityFrame RenderExactFrame(const KdeEvaluator& evaluator,
                              const PixelGrid& grid, BatchStats* stats) {
  DensityFrame frame(grid.width(), grid.height());
  frame.values = RunExactBatch(evaluator, grid.AllPixelCenters(), stats);
  return frame;
}

}  // namespace kdv
