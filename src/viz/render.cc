#include "viz/render.h"

#include "util/failpoint.h"

namespace kdv {

namespace {

// Injected whole-frame fault: record it and hand back the untouched
// (all-zero, finite) frame.
bool EntryFault(BatchStats* stats) {
  Status status = KDV_FAILPOINT_STATUS("viz.render");
  if (status.ok()) return false;
  if (stats != nullptr) {
    stats->completed = false;
    stats->status = status;
  }
  return true;
}

}  // namespace

DensityFrame RenderEpsFrame(const KdeEvaluator& evaluator,
                            const PixelGrid& grid, double eps,
                            const QueryControl& control, BatchStats* stats) {
  DensityFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  frame.values =
      RunEpsBatch(evaluator, grid.AllPixelCenters(), eps, control, stats);
  return frame;
}

DensityFrame RenderEpsFrame(const KdeEvaluator& evaluator,
                            const PixelGrid& grid, double eps,
                            BatchStats* stats) {
  return RenderEpsFrame(evaluator, grid, eps, QueryControl(), stats);
}

BinaryFrame RenderTauFrame(const KdeEvaluator& evaluator,
                           const PixelGrid& grid, double tau,
                           const QueryControl& control, BatchStats* stats) {
  BinaryFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  frame.values =
      RunTauBatch(evaluator, grid.AllPixelCenters(), tau, control, stats);
  return frame;
}

BinaryFrame RenderTauFrame(const KdeEvaluator& evaluator,
                           const PixelGrid& grid, double tau,
                           BatchStats* stats) {
  return RenderTauFrame(evaluator, grid, tau, QueryControl(), stats);
}

DensityFrame RenderExactFrame(const KdeEvaluator& evaluator,
                              const PixelGrid& grid,
                              const QueryControl& control, BatchStats* stats) {
  DensityFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  frame.values =
      RunExactBatch(evaluator, grid.AllPixelCenters(), control, stats);
  return frame;
}

DensityFrame RenderExactFrame(const KdeEvaluator& evaluator,
                              const PixelGrid& grid, BatchStats* stats) {
  return RenderExactFrame(evaluator, grid, QueryControl(), stats);
}

}  // namespace kdv
