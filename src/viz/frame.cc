#include "viz/frame.h"

#include <algorithm>
#include <cmath>

namespace kdv {

double AverageRelativeError(const std::vector<double>& returned,
                            const std::vector<double>& exact, double floor) {
  KDV_CHECK(returned.size() == exact.size());
  KDV_CHECK(!returned.empty());
  double sum = 0.0;
  for (size_t i = 0; i < returned.size(); ++i) {
    double denom = std::max(std::abs(exact[i]), floor);
    sum += std::abs(returned[i] - exact[i]) / denom;
  }
  return sum / static_cast<double>(returned.size());
}

double MaxRelativeError(const std::vector<double>& returned,
                        const std::vector<double>& exact, double floor) {
  KDV_CHECK(returned.size() == exact.size());
  KDV_CHECK(!returned.empty());
  double worst = 0.0;
  for (size_t i = 0; i < returned.size(); ++i) {
    double denom = std::max(std::abs(exact[i]), floor);
    worst = std::max(worst, std::abs(returned[i] - exact[i]) / denom);
  }
  return worst;
}

uint64_t ScrubNonFinite(DensityFrame* frame, double fill) {
  KDV_CHECK(frame != nullptr);
  uint64_t scrubbed = 0;
  for (double& v : frame->values) {
    if (!std::isfinite(v)) {
      v = fill;
      ++scrubbed;
    }
  }
  return scrubbed;
}

double BinaryMismatchRate(const std::vector<uint8_t>& a,
                          const std::vector<uint8_t>& b) {
  KDV_CHECK(a.size() == b.size());
  KDV_CHECK(!a.empty());
  size_t mismatch = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] != 0) != (b[i] != 0)) ++mismatch;
  }
  return static_cast<double>(mismatch) / static_cast<double>(a.size());
}

}  // namespace kdv
