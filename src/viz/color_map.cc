#include "viz/color_map.h"

#include <algorithm>
#include <fstream>

#include "util/check.h"

namespace kdv {

namespace {

uint8_t ToByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
}

constexpr Rgb kHotColor = {220, 30, 30};    // τKDV "above" color
constexpr Rgb kColdColor = {235, 235, 245};  // τKDV "below" color

}  // namespace

Rgb HeatColor(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Piecewise-linear jet: (0) dark blue, (1/3) cyan, (2/3) yellow, (1) red.
  double r, g, b;
  if (t < 1.0 / 3.0) {
    double u = t * 3.0;
    r = 0.0;
    g = u;
    b = 0.5 + 0.5 * u;
  } else if (t < 2.0 / 3.0) {
    double u = (t - 1.0 / 3.0) * 3.0;
    r = u;
    g = 1.0;
    b = 1.0 - u;
  } else {
    double u = (t - 2.0 / 3.0) * 3.0;
    r = 1.0;
    g = 1.0 - u;
    b = 0.0;
  }
  return Rgb{ToByte(r), ToByte(g), ToByte(b)};
}

Rgb PaletteColor(Palette palette, double t) {
  t = std::clamp(t, 0.0, 1.0);
  switch (palette) {
    case Palette::kHeat:
      return HeatColor(t);
    case Palette::kViridis: {
      // Coarse piecewise-linear fit of matplotlib's viridis control points.
      struct Stop {
        double t;
        double r, g, b;
      };
      static constexpr Stop kStops[] = {
          {0.0, 0.267, 0.005, 0.329}, {0.25, 0.229, 0.322, 0.546},
          {0.5, 0.128, 0.567, 0.551}, {0.75, 0.369, 0.789, 0.383},
          {1.0, 0.993, 0.906, 0.144},
      };
      for (size_t i = 1; i < sizeof(kStops) / sizeof(kStops[0]); ++i) {
        if (t <= kStops[i].t) {
          const Stop& a = kStops[i - 1];
          const Stop& b = kStops[i];
          double u = (t - a.t) / (b.t - a.t);
          return Rgb{ToByte(a.r + u * (b.r - a.r)),
                     ToByte(a.g + u * (b.g - a.g)),
                     ToByte(a.b + u * (b.b - a.b))};
        }
      }
      return Rgb{ToByte(0.993), ToByte(0.906), ToByte(0.144)};
    }
    case Palette::kGrayscale:
      return Rgb{ToByte(t), ToByte(t), ToByte(t)};
  }
  return HeatColor(t);
}

bool Image::WritePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (const Rgb& p : pixels_) {
    char rgb[3] = {static_cast<char>(p.r), static_cast<char>(p.g),
                   static_cast<char>(p.b)};
    out.write(rgb, 3);
  }
  return out.good();
}

bool Image::WritePgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;
  out << "P5\n" << width_ << " " << height_ << "\n255\n";
  for (const Rgb& p : pixels_) {
    // Rec. 601 luma.
    double y = 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
    char byte = static_cast<char>(
        static_cast<uint8_t>(std::clamp(y, 0.0, 255.0) + 0.5));
    out.write(&byte, 1);
  }
  return out.good();
}

Image RenderHeatMap(const DensityFrame& frame) {
  return RenderHeatMap(frame, Palette::kHeat);
}

Image RenderHeatMap(const DensityFrame& frame, Palette palette) {
  KDV_CHECK(frame.width > 0 && frame.height > 0);
  double lo = frame.values[0];
  double hi = frame.values[0];
  for (double v : frame.values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo;

  Image img(frame.width, frame.height);
  for (int y = 0; y < frame.height; ++y) {
    for (int x = 0; x < frame.width; ++x) {
      double t = range > 0.0 ? (frame.at(x, y) - lo) / range : 0.0;
      img.at(x, y) = PaletteColor(palette, t);
    }
  }
  return img;
}

Image RenderThresholdMap(const BinaryFrame& frame) {
  KDV_CHECK(frame.width > 0 && frame.height > 0);
  Image img(frame.width, frame.height);
  for (int y = 0; y < frame.height; ++y) {
    for (int x = 0; x < frame.width; ++x) {
      img.at(x, y) =
          frame.values[static_cast<size_t>(y) * frame.width + x] != 0
              ? kHotColor
              : kColdColor;
    }
  }
  return img;
}

Image RenderThresholdMap(const DensityFrame& frame, double tau) {
  BinaryFrame binary(frame.width, frame.height);
  for (size_t i = 0; i < frame.values.size(); ++i) {
    binary.values[i] = frame.values[i] >= tau ? 1 : 0;
  }
  return RenderThresholdMap(binary);
}

}  // namespace kdv
