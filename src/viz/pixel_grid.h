// Mapping between screen pixels and data space.
#ifndef QUADKDV_VIZ_PIXEL_GRID_H_
#define QUADKDV_VIZ_PIXEL_GRID_H_

#include <cstddef>

#include "geom/point.h"
#include "geom/rect.h"
#include "util/check.h"

namespace kdv {

// A W x H pixel raster covering a 2-d data-space rectangle. Pixel (0, 0) is
// the top-left corner; each pixel's query point is its center.
class PixelGrid {
 public:
  PixelGrid(int width, int height, const Rect& domain)
      : width_(width), height_(height), domain_(domain) {
    KDV_CHECK(width > 0 && height > 0);
    KDV_CHECK(domain.dim() >= 2);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  size_t num_pixels() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(height_);
  }
  const Rect& domain() const { return domain_; }

  // Data-space center of pixel (px, py). Always a 2-d point.
  Point PixelCenter(int px, int py) const {
    KDV_DCHECK(px >= 0 && px < width_ && py >= 0 && py < height_);
    Point p(2);
    p[0] = domain_.lo(0) + (px + 0.5) * domain_.Length(0) / width_;
    // Screen y grows downward; data y grows upward.
    p[1] = domain_.lo(1) + (height_ - py - 0.5) * domain_.Length(1) / height_;
    return p;
  }

  // Row-major index of pixel (px, py).
  size_t PixelIndex(int px, int py) const {
    return static_cast<size_t>(py) * width_ + px;
  }

  // All pixel centers in row-major order.
  PointSet AllPixelCenters() const {
    PointSet centers;
    centers.reserve(num_pixels());
    for (int py = 0; py < height_; ++py) {
      for (int px = 0; px < width_; ++px) {
        centers.push_back(PixelCenter(px, py));
      }
    }
    return centers;
  }

 private:
  int width_;
  int height_;
  Rect domain_;
};

}  // namespace kdv

#endif  // QUADKDV_VIZ_PIXEL_GRID_H_
