// Intra-frame data-parallel KDV rendering.
//
// The pixel grid is split into horizontal bands of `tile_rows` rows; workers
// claim bands off a shared atomic counter and evaluate their pixels with a
// per-worker reusable RefinementStream (zero allocations after warm-up).
// The caller thread always participates in tile processing, so a frame makes
// progress even when the helper pool is saturated or absent — and a frame
// rendered through an exhausted pool degrades to the serial path rather than
// failing.
//
// Determinism: pixels are independent queries and every worker runs the
// exact same per-pixel evaluation as the serial renderers (viz/render.h), so
// a completed parallel frame is bit-identical to the serial frame for any
// thread count and tile size. Tile stats are merged in tile-index order, so
// the aggregate BatchStats counters are deterministic too (seconds excepted).
//
// Tile-shared mode (RenderOptions::tile_shared) amortizes the tree traversal
// across the pixels of each tile chunk with one region-bound pass
// (core/tile_refiner.h) and seeds every pixel's stream from the shared
// frontier. Frames remain deterministic for any thread count (the chunk pass
// and the seeded per-pixel refinement are both deterministic, and a cached
// frontier is bitwise the one a rebuild would produce) but are not bitwise
// equal to the per-pixel path: whole chunks may be answered from region
// bounds alone. The εKDV/τKDV certificates hold exactly either way.
//
// Contracts preserved from the serial path:
//   * QueryControl is polled before every pixel and at iteration granularity
//     inside each refining evaluation; on a stop the partial frame comes
//     back with completed=false and the deadline_expired/cancelled flags
//     set. Tiles not yet claimed are abandoned.
//   * The per-query failpoint sites ("runner.eps" / "runner.tau" /
//     "runner.exact") and the whole-frame entry site ("viz.render") fire
//     exactly as in the serial renderers.
#ifndef QUADKDV_VIZ_PARALLEL_RENDER_H_
#define QUADKDV_VIZ_PARALLEL_RENDER_H_

#include "core/evaluator.h"
#include "core/kdv_runner.h"
#include "util/cancel.h"
#include "util/thread_pool.h"
#include "viz/frame.h"
#include "viz/frontier_cache.h"
#include "viz/pixel_grid.h"

namespace kdv {

// Intra-frame parallelism knobs, threaded end-to-end (CLI --threads, the
// render service, the resilient renderer, bench_frame).
struct RenderOptions {
  // Worker threads per frame, including the calling thread. 0 means
  // hardware_concurrency; 1 renders serially in the caller. Values above 1
  // only take effect when an Executor is supplied.
  int num_threads = 1;
  // Grid rows per work item. Small tiles balance load (refinement cost
  // varies wildly across a frame: pixels near dense clusters converge fast,
  // sparse regions refine deep); large tiles amortize claim overhead.
  // Clamped to [1, grid height].
  int tile_rows = 16;

  // Shared-traversal tile refinement (core/tile_refiner.h): each row band is
  // split into ~square column chunks, one region-bound pass runs per chunk,
  // and pixels are seeded from the resulting frontier (or whole chunks are
  // answered from the region bounds alone). Off keeps frames bit-identical
  // to the serial per-pixel renderers; on preserves the εKDV/τKDV
  // certificates but may produce (certified) different pixel values.
  // Ignored for the EXACT method and for non-2-d indexes.
  bool tile_shared = false;
  // Pixel columns per shared-traversal chunk; 0 derives the chunk width from
  // tile_rows (square-ish chunks — full-width row bands make poor query
  // regions).
  int tile_cols = 0;
  // Optional cross-frame frontier cache; entries are namespaced by
  // cache_epoch (the serving layer passes its epoch id, so a dataset
  // hot-swap can never reuse stale frontiers).
  FrontierCache* frontier_cache = nullptr;
  uint64_t cache_epoch = 0;
};

// Resolves a --threads style request: 0 -> hardware_concurrency (>= 1),
// otherwise the value itself (clamped to >= 1).
int ResolveRenderThreads(int num_threads);

// εKDV over the whole grid, fanned out over `pool`. `pool` may be nullptr
// and `stats` may be nullptr; helpers beyond the caller are submitted with
// TrySubmit, so an exhausted pool sheds work back onto the caller instead of
// blocking. The pool must not be the one executing the calling task when
// that pool has a bounded queue sized below num_threads (the caller
// participates, so no completion deadlock is possible either way).
DensityFrame RenderEpsFrameParallel(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    const RenderOptions& options,
                                    Executor* pool,
                                    const QueryControl& control,
                                    BatchStats* stats);

// τKDV over the whole grid.
BinaryFrame RenderTauFrameParallel(const KdeEvaluator& evaluator,
                                   const PixelGrid& grid, double tau,
                                   const RenderOptions& options,
                                   Executor* pool,
                                   const QueryControl& control,
                                   BatchStats* stats);

// Exact KDV over the whole grid.
DensityFrame RenderExactFrameParallel(const KdeEvaluator& evaluator,
                                      const PixelGrid& grid,
                                      const RenderOptions& options,
                                      Executor* pool,
                                      const QueryControl& control,
                                      BatchStats* stats);

}  // namespace kdv

#endif  // QUADKDV_VIZ_PARALLEL_RENDER_H_
