// Whole-frame KDV rendering: evaluates every pixel of a grid with one
// method/operation and returns the resulting frame.
//
// Each renderer accepts an optional QueryControl (per-request deadline +
// shared CancelToken); on a stop the partial frame is returned with the
// stop recorded in *stats (deadline_expired / cancelled, completed=false).
#ifndef QUADKDV_VIZ_RENDER_H_
#define QUADKDV_VIZ_RENDER_H_

#include "core/evaluator.h"
#include "core/kdv_runner.h"
#include "util/cancel.h"
#include "viz/frame.h"
#include "viz/pixel_grid.h"

namespace kdv {

// εKDV over the whole grid. `stats` may be nullptr.
DensityFrame RenderEpsFrame(const KdeEvaluator& evaluator,
                            const PixelGrid& grid, double eps,
                            const QueryControl& control, BatchStats* stats);
DensityFrame RenderEpsFrame(const KdeEvaluator& evaluator,
                            const PixelGrid& grid, double eps,
                            BatchStats* stats);

// τKDV over the whole grid.
BinaryFrame RenderTauFrame(const KdeEvaluator& evaluator,
                           const PixelGrid& grid, double tau,
                           const QueryControl& control, BatchStats* stats);
BinaryFrame RenderTauFrame(const KdeEvaluator& evaluator,
                           const PixelGrid& grid, double tau,
                           BatchStats* stats);

// Exact KDV over the whole grid.
DensityFrame RenderExactFrame(const KdeEvaluator& evaluator,
                              const PixelGrid& grid,
                              const QueryControl& control, BatchStats* stats);
DensityFrame RenderExactFrame(const KdeEvaluator& evaluator,
                              const PixelGrid& grid, BatchStats* stats);

}  // namespace kdv

#endif  // QUADKDV_VIZ_RENDER_H_
