// Color maps and image output (binary PPM — readable by any image viewer).
#ifndef QUADKDV_VIZ_COLOR_MAP_H_
#define QUADKDV_VIZ_COLOR_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "viz/frame.h"

namespace kdv {

struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  friend bool operator==(const Rgb& a, const Rgb& b) {
    return a.r == b.r && a.g == b.g && a.b == b.b;
  }
};

// Jet-like heat color for t in [0, 1]: dark blue -> cyan -> yellow -> red.
// Values outside [0, 1] are clamped.
Rgb HeatColor(double t);

// Color palettes for density maps.
enum class Palette {
  kHeat,       // jet-like (default; matches the paper's figures)
  kViridis,    // perceptually uniform dark-violet -> green -> yellow
  kGrayscale,  // black -> white
};

// Palette color for t in [0, 1] (clamped).
Rgb PaletteColor(Palette palette, double t);

// RGB raster image.
class Image {
 public:
  Image(int width, int height)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height) {}

  int width() const { return width_; }
  int height() const { return height_; }

  Rgb at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  Rgb& at(int x, int y) { return pixels_[static_cast<size_t>(y) * width_ + x]; }

  // Writes a binary PPM (P6). Returns false on I/O failure.
  bool WritePpm(const std::string& path) const;

  // Writes a binary grayscale PGM (P5) using the luma of each pixel.
  // Returns false on I/O failure.
  bool WritePgm(const std::string& path) const;

 private:
  int width_;
  int height_;
  std::vector<Rgb> pixels_;
};

// Renders a density frame as a heat map; values are normalized to the
// frame's [min, max] range (a degenerate range renders uniformly cold).
Image RenderHeatMap(const DensityFrame& frame);

// Same with an explicit palette.
Image RenderHeatMap(const DensityFrame& frame, Palette palette);

// Renders a τKDV two-color map: hot color where the density is classified
// above the threshold, cold elsewhere.
Image RenderThresholdMap(const BinaryFrame& frame);

// Convenience: thresholds a density frame at tau and renders the two-color
// map.
Image RenderThresholdMap(const DensityFrame& frame, double tau);

}  // namespace kdv

#endif  // QUADKDV_VIZ_COLOR_MAP_H_
