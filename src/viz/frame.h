// Density / binary frames and frame-level quality metrics.
#ifndef QUADKDV_VIZ_FRAME_H_
#define QUADKDV_VIZ_FRAME_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace kdv {

// A W x H raster of density values in row-major order.
struct DensityFrame {
  int width = 0;
  int height = 0;
  std::vector<double> values;

  DensityFrame() = default;
  DensityFrame(int w, int h, double fill = 0.0)
      : width(w), height(h),
        values(static_cast<size_t>(w) * static_cast<size_t>(h), fill) {}

  double at(int x, int y) const {
    return values[static_cast<size_t>(y) * width + x];
  }
  double& at(int x, int y) {
    return values[static_cast<size_t>(y) * width + x];
  }
  size_t size() const { return values.size(); }
};

// A W x H raster of τKDV classifications (1 = density >= τ).
struct BinaryFrame {
  int width = 0;
  int height = 0;
  std::vector<uint8_t> values;

  BinaryFrame() = default;
  BinaryFrame(int w, int h, uint8_t fill = 0)
      : width(w), height(h),
        values(static_cast<size_t>(w) * static_cast<size_t>(h), fill) {}

  size_t size() const { return values.size(); }
};

// Average relative error (paper §7.5): mean over pixels of
// |R(q) - F(q)| / max(F(q), floor). The floor avoids division blow-up on
// empty regions where F(q) underflows.
double AverageRelativeError(const std::vector<double>& returned,
                            const std::vector<double>& exact,
                            double floor = 1e-30);

// Maximum relative error over all pixels.
double MaxRelativeError(const std::vector<double>& returned,
                        const std::vector<double>& exact,
                        double floor = 1e-30);

// Fraction of pixels whose binary classification disagrees.
double BinaryMismatchRate(const std::vector<uint8_t>& a,
                          const std::vector<uint8_t>& b);

// Replaces every non-finite value in the frame with `fill` and returns how
// many pixels were scrubbed. Last line of defense before a frame is handed
// to a color map: a NaN pixel must never reach the screen.
uint64_t ScrubNonFinite(DensityFrame* frame, double fill = 0.0);

}  // namespace kdv

#endif  // QUADKDV_VIZ_FRAME_H_
