// Block-level τKDV rendering.
//
// The per-pixel algorithm (paper §3.2) classifies each pixel independently.
// For two-color maps, whole regions of the screen are far above or far below
// τ, and they can be certified in one shot: for a pixel *block* B and a data
// node R, kernel monotonicity gives bounds valid for EVERY pixel q in B,
//   |R| · w · K(x(maxdist(B, R)))  <=  F_R(q)  <=  |R| · w · K(x(mindist(B, R)))
// using rectangle-to-rectangle min/max distances. A quad-tree over pixel
// blocks certifies coarse blocks first and only descends (eventually to the
// ordinary per-pixel refinement) where the threshold actually cuts through.
// This is an extension of the paper's framework in the spirit of its
// progressive §6: same guarantees, and the same mask as per-pixel τKDV
// (pixels with exactly F(q) == τ may differ, as both classifications are
// then correct).
#ifndef QUADKDV_VIZ_BLOCK_TAU_H_
#define QUADKDV_VIZ_BLOCK_TAU_H_

#include <cstdint>

#include "core/evaluator.h"
#include "viz/frame.h"
#include "viz/pixel_grid.h"

namespace kdv {

struct BlockTauStats {
  double seconds = 0.0;
  uint64_t blocks_certified = 0;   // blocks (>= 1 pixel) decided wholesale
  uint64_t pixels_filled_by_blocks = 0;
  uint64_t pixel_evaluations = 0;  // pixels that needed the per-pixel path
  uint64_t iterations = 0;         // refinement steps (block + pixel level)
};

struct BlockTauOptions {
  // Refinement steps to spend on one block before splitting it. Small
  // values split eagerly; large values try harder to certify coarse blocks.
  uint32_t max_block_iterations = 48;
};

// τKDV over the grid with block-level certification. Produces exactly the
// same mask as RenderTauFrame for the same evaluator. The evaluator must
// have a bound function (EXACT has nothing to certify blocks with; it is
// rejected by KDV_CHECK).
BinaryFrame RenderTauFrameBlocked(const KdeEvaluator& evaluator,
                                  const PixelGrid& grid, double tau,
                                  const BlockTauOptions& options,
                                  BlockTauStats* stats);

inline BinaryFrame RenderTauFrameBlocked(const KdeEvaluator& evaluator,
                                         const PixelGrid& grid, double tau,
                                         BlockTauStats* stats = nullptr) {
  return RenderTauFrameBlocked(evaluator, grid, tau, BlockTauOptions{},
                               stats);
}

}  // namespace kdv

#endif  // QUADKDV_VIZ_BLOCK_TAU_H_
