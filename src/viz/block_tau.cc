#include "viz/block_tau.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "geom/rect.h"
#include "util/check.h"
#include "util/timer.h"

namespace kdv {

namespace {

// Outcome of trying to certify one pixel block wholesale.
enum class BlockVerdict { kAllAbove, kAllBelow, kUndecided };

// Block-level trivial bounds on F(q) valid for every q in `block`.
struct BlockBounds {
  double lower = 0.0;
  double upper = 0.0;
};

BlockBounds BoundsForNode(const KernelParams& params, const Rect& block,
                          const NodeStats& stats) {
  const double n = static_cast<double>(stats.count());
  const double x_min = params.XFromSquaredDistance(
      block.MinSquaredDistance(stats.mbr()));
  const double x_max = params.XFromSquaredDistance(
      block.MaxSquaredDistance(stats.mbr()));
  BlockBounds b;
  b.lower = n * params.weight * KernelProfile(params.type, x_max);
  b.upper = n * params.weight * KernelProfile(params.type, x_min);
  return b;
}

// Point-level block bounds: the tightest block-wise statement about one
// leaf, summing K at the min/max distance between the block and each point.
BlockBounds BoundsForLeafPoints(const KernelParams& params, const Rect& block,
                                const KdTree& tree,
                                const KdTree::Node& node) {
  BlockBounds b;
  const PointSet& pts = tree.points();
  for (uint32_t i = node.begin; i < node.end; ++i) {
    b.lower += KernelProfile(
        params.type,
        params.XFromSquaredDistance(block.MaxSquaredDistance(pts[i])));
    b.upper += KernelProfile(
        params.type,
        params.XFromSquaredDistance(block.MinSquaredDistance(pts[i])));
  }
  b.lower *= params.weight;
  b.upper *= params.weight;
  return b;
}

// Best-first refinement at block granularity. Only kernel-monotonicity
// bounds apply to a whole block (the analytic KARL/QUAD bounds are
// per-query); leaves refine to per-point block bounds, which is as tight as
// any block-wise statement can get.
BlockVerdict ClassifyBlock(const KdeEvaluator& evaluator, const Rect& block,
                           double tau, uint32_t max_iterations,
                           uint64_t* iterations) {
  const KdTree& tree = evaluator.tree();
  const KernelParams& params = evaluator.params();

  struct Entry {
    double gap;
    int32_t node;
    BlockBounds bounds;
  };
  struct GapLess {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.gap < b.gap;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, GapLess> queue;

  BlockBounds root = BoundsForNode(params, block, tree.node(tree.root()).stats);
  double lb = root.lower;
  double ub = root.upper;
  queue.push({ub - lb, tree.root(), root});

  for (uint32_t i = 0; i < max_iterations && !queue.empty(); ++i) {
    if (lb >= tau) return BlockVerdict::kAllAbove;
    if (ub <= tau) return BlockVerdict::kAllBelow;
    Entry top = queue.top();
    queue.pop();
    ++(*iterations);
    lb -= top.bounds.lower;
    ub -= top.bounds.upper;
    const KdTree::Node& node = tree.node(top.node);
    if (node.IsLeaf()) {
      // Final block-wise refinement: per-point bounds (not re-queued).
      BlockBounds pb = BoundsForLeafPoints(params, block, tree, node);
      lb += pb.lower;
      ub += pb.upper;
    } else {
      for (int32_t child : {node.left, node.right}) {
        BlockBounds cb = BoundsForNode(params, block, tree.node(child).stats);
        lb += cb.lower;
        ub += cb.upper;
        queue.push({cb.upper - cb.lower, child, cb});
      }
    }
  }
  if (lb >= tau) return BlockVerdict::kAllAbove;
  if (ub <= tau) return BlockVerdict::kAllBelow;
  return BlockVerdict::kUndecided;
}

struct PixelBlock {
  int x0, y0, x1, y1;  // [x0, x1) x [y0, y1)
};

// Data-space rectangle spanned by the centers of the block's pixels.
Rect BlockCenterRect(const PixelGrid& grid, const PixelBlock& b) {
  Rect r(2);
  r.Expand(grid.PixelCenter(b.x0, b.y0));
  r.Expand(grid.PixelCenter(b.x1 - 1, b.y1 - 1));
  return r;
}

}  // namespace

BinaryFrame RenderTauFrameBlocked(const KdeEvaluator& evaluator,
                                  const PixelGrid& grid, double tau,
                                  const BlockTauOptions& options,
                                  BlockTauStats* stats) {
  KDV_CHECK_MSG(evaluator.bounds() != nullptr,
                "block τKDV requires a bound-based method");
  Timer timer;
  BinaryFrame frame(grid.width(), grid.height());
  BlockTauStats local;

  std::vector<PixelBlock> pending;
  pending.push_back({0, 0, grid.width(), grid.height()});

  while (!pending.empty()) {
    PixelBlock b = pending.back();
    pending.pop_back();
    const int w = b.x1 - b.x0;
    const int h = b.y1 - b.y0;

    if (w == 1 && h == 1) {
      TauResult r = evaluator.EvaluateTau(grid.PixelCenter(b.x0, b.y0), tau);
      frame.values[grid.PixelIndex(b.x0, b.y0)] = r.above_threshold ? 1 : 0;
      ++local.pixel_evaluations;
      local.iterations += r.iterations;
      continue;
    }

    BlockVerdict verdict =
        ClassifyBlock(evaluator, BlockCenterRect(grid, b), tau,
                      options.max_block_iterations, &local.iterations);
    if (verdict != BlockVerdict::kUndecided) {
      const uint8_t value = verdict == BlockVerdict::kAllAbove ? 1 : 0;
      for (int y = b.y0; y < b.y1; ++y) {
        for (int x = b.x0; x < b.x1; ++x) {
          frame.values[grid.PixelIndex(x, y)] = value;
        }
      }
      ++local.blocks_certified;
      local.pixels_filled_by_blocks += static_cast<uint64_t>(w) * h;
      continue;
    }

    // Split along both axes where possible.
    const int mx = b.x0 + w / 2;
    const int my = b.y0 + h / 2;
    if (w > 1 && h > 1) {
      pending.push_back({b.x0, b.y0, mx, my});
      pending.push_back({mx, b.y0, b.x1, my});
      pending.push_back({b.x0, my, mx, b.y1});
      pending.push_back({mx, my, b.x1, b.y1});
    } else if (w > 1) {
      pending.push_back({b.x0, b.y0, mx, b.y1});
      pending.push_back({mx, b.y0, b.x1, b.y1});
    } else {
      pending.push_back({b.x0, b.y0, b.x1, my});
      pending.push_back({b.x0, my, b.x1, b.y1});
    }
  }

  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return frame;
}

}  // namespace kdv
