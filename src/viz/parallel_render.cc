#include "viz/parallel_render.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/failpoint.h"
#include "util/timer.h"

namespace kdv {

namespace {

// Injected whole-frame fault (same site as the serial renderers): record it
// and hand back the untouched (all-zero, finite) frame.
bool EntryFault(BatchStats* stats) {
  Status status = KDV_FAILPOINT_STATUS("viz.render");
  if (status.ok()) return false;
  if (stats != nullptr) {
    stats->completed = false;
    stats->status = status;
  }
  return true;
}

void MarkTileStopped(BatchStats* stats, StopReason reason) {
  stats->completed = false;
  if (reason == StopReason::kDeadline) stats->deadline_expired = true;
  if (reason == StopReason::kCancel) stats->cancelled = true;
}

// Shared state of one in-flight frame. Helper tasks hold it via shared_ptr:
// a helper that only gets scheduled after the frame finished claims no tile,
// dereferences none of the frame-lifetime pointers below, and merely drops
// its reference.
struct FrameJob {
  // Frame-lifetime (owned by the rendering call, valid while any tile is
  // unclaimed or in flight — i.e. until tiles_done == num_tiles).
  const KdeEvaluator* evaluator = nullptr;
  const PixelGrid* grid = nullptr;
  const QueryControl* control = nullptr;
  const char* failpoint_site = nullptr;

  uint32_t tile_rows = 1;
  uint32_t num_tiles = 0;

  std::atomic<uint32_t> next_tile{0};
  // First stop/fault raises this; other workers abandon their tiles at the
  // next per-pixel poll instead of finishing a frame nobody will keep.
  std::atomic<bool> stop{false};
  std::vector<BatchStats> tile_stats;

  std::mutex mu;
  std::condition_variable done_cv;
  uint32_t tiles_done = 0;  // guarded by mu
};

// Evaluates one band of rows. EvalPixel is
//   Value (const Point& q, RefinementStream& scratch, BatchStats* ts,
//          bool* interrupted)
// — the exact per-pixel body of the corresponding serial batch driver.
template <typename Value, typename EvalPixel>
void ProcessTile(FrameJob& job, uint32_t tile, Value* values,
                 RefinementStream& scratch, const EvalPixel& eval) {
  BatchStats& ts = job.tile_stats[tile];
  const PixelGrid& grid = *job.grid;
  const int height = grid.height();
  const int row_begin = static_cast<int>(tile * job.tile_rows);
  const int row_end =
      std::min<int>(row_begin + static_cast<int>(job.tile_rows), height);
  for (int py = row_begin; py < row_end; ++py) {
    for (int px = 0; px < grid.width(); ++px) {
      if (job.stop.load(std::memory_order_relaxed)) {
        ts.completed = false;
        return;
      }
      StopReason stop = job.control->CheckStop();
      if (stop != StopReason::kNone) {
        MarkTileStopped(&ts, stop);
        job.stop.store(true, std::memory_order_relaxed);
        return;
      }
      Status status = KDV_FAILPOINT_STATUS(job.failpoint_site);
      if (!status.ok()) {
        ts.completed = false;
        ts.status = status;
        job.stop.store(true, std::memory_order_relaxed);
        return;
      }
      bool interrupted = false;
      values[grid.PixelIndex(px, py)] =
          eval(grid.PixelCenter(px, py), scratch, &ts, &interrupted);
      if (interrupted) {
        MarkTileStopped(&ts, job.control->CheckStop());
        job.stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
}

// Claims and processes tiles until the counter is exhausted. Runs in the
// caller thread and in every helper task; each drainer reuses one
// RefinementStream across all its tiles (zero-allocation refinement).
template <typename Value, typename EvalPixel>
void DrainTiles(const std::shared_ptr<FrameJob>& job, Value* values,
                const EvalPixel& eval) {
  uint32_t tile = job->next_tile.fetch_add(1, std::memory_order_relaxed);
  if (tile >= job->num_tiles) return;  // late helper: frame may be gone
  RefinementStream scratch = job->evaluator->MakeScratch();
  do {
    ProcessTile(*job, tile, values, scratch, eval);
    bool all_done;
    {
      std::lock_guard<std::mutex> lock(job->mu);
      all_done = ++job->tiles_done == job->num_tiles;
    }
    if (all_done) job->done_cv.notify_all();
    tile = job->next_tile.fetch_add(1, std::memory_order_relaxed);
  } while (tile < job->num_tiles);
}

// Tile-index-order merge keeps every counter deterministic across thread
// counts and schedules.
void MergeTileStats(const std::vector<BatchStats>& tiles, BatchStats* stats) {
  if (stats == nullptr) return;
  for (const BatchStats& tile : tiles) {
    stats->queries += tile.queries;
    stats->iterations += tile.iterations;
    stats->points_scanned += tile.points_scanned;
    stats->numeric_faults += tile.numeric_faults;
    if (!tile.completed) stats->completed = false;
    if (tile.deadline_expired) stats->deadline_expired = true;
    if (tile.cancelled) stats->cancelled = true;
    if (stats->status.ok() && !tile.status.ok()) stats->status = tile.status;
  }
}

template <typename Value, typename EvalPixel>
void RenderFrameTiled(const KdeEvaluator& evaluator, const PixelGrid& grid,
                      const RenderOptions& options, Executor* pool,
                      const QueryControl& control, BatchStats* stats,
                      const char* failpoint_site, std::vector<Value>* values,
                      const EvalPixel& eval) {
  Timer timer;
  auto job = std::make_shared<FrameJob>();
  job->evaluator = &evaluator;
  job->grid = &grid;
  job->control = &control;
  job->failpoint_site = failpoint_site;
  job->tile_rows = static_cast<uint32_t>(
      std::clamp(options.tile_rows, 1, grid.height()));
  job->num_tiles = (static_cast<uint32_t>(grid.height()) + job->tile_rows - 1) /
                   job->tile_rows;
  job->tile_stats.resize(job->num_tiles);

  const int threads = ResolveRenderThreads(options.num_threads);
  int helpers = 0;
  if (pool != nullptr && threads > 1 && job->num_tiles > 1) {
    const int want = std::min<int>(threads - 1,
                                   static_cast<int>(job->num_tiles) - 1);
    Value* data = values->data();
    for (int i = 0; i < want; ++i) {
      // Rejections (pool saturated or stopping) shed the band back onto the
      // caller loop below — the frame still completes, just less parallel.
      if (pool->TrySubmit([job, data, eval] { DrainTiles(job, data, eval); })
              .ok()) {
        ++helpers;
      }
    }
  }
  DrainTiles(job, values->data(), eval);
  if (helpers > 0) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock,
                      [&job] { return job->tiles_done == job->num_tiles; });
  }
  MergeTileStats(job->tile_stats, stats);
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
}

}  // namespace

int ResolveRenderThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

DensityFrame RenderEpsFrameParallel(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    const RenderOptions& options,
                                    Executor* pool,
                                    const QueryControl& control,
                                    BatchStats* stats) {
  DensityFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  RenderFrameTiled(
      evaluator, grid, options, pool, control, stats, "runner.eps",
      &frame.values,
      [&evaluator, eps, &control](const Point& q, RefinementStream& scratch,
                                  BatchStats* ts, bool* interrupted) {
        EvalResult r = evaluator.EvaluateEps(q, eps, control, &scratch);
        AccumulateQueryStats(ts, r);
        *interrupted = r.interrupted;
        return r.estimate;
      });
  return frame;
}

BinaryFrame RenderTauFrameParallel(const KdeEvaluator& evaluator,
                                   const PixelGrid& grid, double tau,
                                   const RenderOptions& options,
                                   Executor* pool,
                                   const QueryControl& control,
                                   BatchStats* stats) {
  BinaryFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  RenderFrameTiled(
      evaluator, grid, options, pool, control, stats, "runner.tau",
      &frame.values,
      [&evaluator, tau, &control](const Point& q, RefinementStream& scratch,
                                  BatchStats* ts, bool* interrupted) {
        TauResult r = evaluator.EvaluateTau(q, tau, control, &scratch);
        AccumulateQueryStats(ts, r);
        *interrupted = r.interrupted;
        return static_cast<uint8_t>(r.above_threshold ? 1 : 0);
      });
  return frame;
}

DensityFrame RenderExactFrameParallel(const KdeEvaluator& evaluator,
                                      const PixelGrid& grid,
                                      const RenderOptions& options,
                                      Executor* pool,
                                      const QueryControl& control,
                                      BatchStats* stats) {
  DensityFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  const uint64_t num_points = evaluator.tree().num_points();
  RenderFrameTiled(
      evaluator, grid, options, pool, control, stats, "runner.exact",
      &frame.values,
      [&evaluator, num_points](const Point& q, RefinementStream& /*scratch*/,
                               BatchStats* ts, bool* interrupted) {
        // Exact scans are uninterruptible mid-query, matching RunExactBatch.
        *interrupted = false;
        ++ts->queries;
        ts->points_scanned += num_points;
        return evaluator.EvaluateExact(q);
      });
  return frame;
}

}  // namespace kdv
